//! Batcher's odd-even merge sort network on the PRAM (EREW).
//!
//! The second classical sorting network of the paper's related work
//! (Kipfer et al.'s GPU sorter is based on it, Section 2.2). Like the
//! bitonic network it runs in `log n (log n + 1) / 2` parallel steps, but
//! with fewer comparators per step on average — still `Θ(n log² n)` work,
//! i.e. the same asymptotic surcharge over adaptive bitonic sorting.

use super::{pad_to_power_of_two, SortRun};
use crate::error::Result;
use crate::machine::{Pram, PramModel};
use stream_arch::Value;

/// Number of parallel steps of the network for `n` (power-of-two) inputs —
/// the same `log n (log n + 1) / 2` depth as the bitonic network.
pub fn steps_for(n: usize) -> u64 {
    let log_n = n.trailing_zeros() as u64;
    log_n * (log_n + 1) / 2
}

/// The comparator pairs of one `(p, k)` step of the odd-even merge sort
/// network over `n` elements (Batcher's classic formulation).
fn comparators(n: usize, p: usize, k: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    let mut j = k % p;
    while j + k < n {
        for i in 0..k.min(n - j - k) {
            let a = i + j;
            let b = i + j + k;
            if a / (2 * p) == b / (2 * p) {
                pairs.push((a, b));
            }
        }
        j += 2 * k;
    }
    pairs
}

/// Sort `values` ascending with the odd-even merge sort network, one PRAM
/// step per network stage.
pub fn sort(values: &[Value]) -> Result<SortRun> {
    let original_len = values.len();
    if original_len <= 1 {
        return Ok(SortRun {
            output: values.to_vec(),
            stats: Default::default(),
            model: PramModel::Erew,
            padded_len: original_len,
        });
    }

    let padded = pad_to_power_of_two(values);
    let n = padded.len();
    let mut pram: Pram<Value> = Pram::from_vec(padded, PramModel::Erew);

    let mut p = 1usize;
    while p < n {
        let mut k = p;
        while k >= 1 {
            let pairs = comparators(n, p, k);
            pram.step(pairs.len(), |t, ctx| {
                let (lo_idx, hi_idx) = pairs[t];
                let a = ctx.read(lo_idx);
                let b = ctx.read(hi_idx);
                ctx.charge_comparison();
                let (lo, hi) = if a.gt(&b) { (b, a) } else { (a, b) };
                ctx.write(lo_idx, lo);
                ctx.write(hi_idx, hi);
            })?;
            k /= 2;
        }
        p *= 2;
    }

    let mut output = pram.memory().to_vec();
    output.truncate(original_len);
    Ok(SortRun {
        output,
        stats: pram.take_stats(),
        model: PramModel::Erew,
        padded_len: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sorters::bitonic_network;

    fn assert_sorted_permutation(input: &[Value], output: &[Value]) {
        assert_eq!(input.len(), output.len());
        assert!(output.windows(2).all(|w| w[0] <= w[1]), "output not sorted");
        let mut a: Vec<_> = input.to_vec();
        let mut b: Vec<_> = output.to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn comparator_pairs_are_disjoint_within_a_step() {
        for log_n in 1..=7u32 {
            let n = 1usize << log_n;
            let mut p = 1usize;
            while p < n {
                let mut k = p;
                while k >= 1 {
                    let pairs = comparators(n, p, k);
                    let mut touched = std::collections::HashSet::new();
                    for (a, b) in pairs {
                        assert!(a < b && b < n);
                        assert!(touched.insert(a), "index {a} reused (p={p}, k={k})");
                        assert!(touched.insert(b), "index {b} reused (p={p}, k={k})");
                    }
                    k /= 2;
                }
                p *= 2;
            }
        }
    }

    #[test]
    fn sorts_random_inputs() {
        for log_n in 1..=10u32 {
            let n = 1usize << log_n;
            let input = workloads::uniform(n, 90 + log_n as u64);
            let run = sort(&input).unwrap();
            assert_sorted_permutation(&input, &run.output);
        }
    }

    #[test]
    fn sorts_non_power_of_two_inputs() {
        for &n in &[3usize, 5, 100, 1000, 1023] {
            let input = workloads::uniform(n, n as u64);
            let run = sort(&input).unwrap();
            assert_eq!(run.output.len(), n);
            assert_sorted_permutation(&input, &run.output);
        }
    }

    #[test]
    fn runs_on_an_erew_machine_without_conflicts() {
        let input = workloads::uniform(512, 7);
        let run = sort(&input).unwrap();
        assert_eq!(run.model, PramModel::Erew);
        assert_eq!(run.stats.conflicts(PramModel::Erew), 0);
    }

    #[test]
    fn step_count_matches_the_closed_form() {
        for log_n in 1..=10u32 {
            let n = 1usize << log_n;
            let input = workloads::uniform(n, 3);
            let run = sort(&input).unwrap();
            assert_eq!(run.stats.num_steps(), steps_for(n), "n={n}");
        }
    }

    #[test]
    fn uses_fewer_comparisons_than_the_bitonic_network_but_more_than_2n_log_n() {
        let n = 1usize << 10;
        let input = workloads::uniform(n, 5);
        let oem = sort(&input).unwrap().stats.comparisons();
        let bitonic = bitonic_network::sort(&input).unwrap().stats.comparisons();
        assert!(
            oem < bitonic,
            "odd-even merge should save comparators ({oem} vs {bitonic})"
        );
        assert!(oem > 2 * (n as u64) * 10, "still Θ(n log² n) work");
    }

    #[test]
    fn comparison_count_is_data_independent() {
        let mut counts = std::collections::HashSet::new();
        for dist in workloads::Distribution::all_for_data_dependence() {
            let input = workloads::generate(dist, 512, 3);
            counts.insert(sort(&input).unwrap().stats.comparisons());
        }
        assert_eq!(counts.len(), 1);
    }

    #[test]
    fn agrees_with_the_bitonic_network_output() {
        for seed in 0..5u64 {
            let input = workloads::uniform(777, seed);
            let a = sort(&input).unwrap().output;
            let b = bitonic_network::sort(&input).unwrap().output;
            assert_eq!(a, b);
        }
    }

    #[test]
    fn tiny_inputs_pass_through() {
        assert!(sort(&[]).unwrap().output.is_empty());
        let one = vec![Value::new(2.0, 0)];
        assert_eq!(sort(&one).unwrap().output, one);
    }
}
