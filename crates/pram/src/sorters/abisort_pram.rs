//! Bilardi & Nicolau's parallel adaptive bitonic sort on the EREW-PRAM —
//! the algorithm the GPU-ABiSort paper starts from (Section 2.1) and then
//! ports to stream architectures (Section 5).
//!
//! The bitonic tree lives in shared memory as a flat pool of [`Node`]s in
//! the same in-order storage the sequential and stream implementations use.
//! One processor per active subtree executes one *phase* of the simplified
//! adaptive min/max determination (Section 4.2) per synchronous step; the
//! traversal pointers `(p, q)` stay in the processor's private registers.
//! Because the PRAM allows random-access writes, nodes are modified in
//! place — this is exactly the capability the stream version has to work
//! around with its node output stream.
//!
//! Two schedules are provided, mirroring the stream implementation:
//!
//! * **overlapped** (the original Bilardi–Nicolau schedule, re-used by the
//!   paper's Section 5.4): phase `i` of stage `k` runs together with phase
//!   `i + 2` of stage `k − 1`, so one recursion level takes `2j − 1` steps
//!   and the whole sort `log² n` steps;
//! * **sequential stages**: stages run one after another, `j (j+1) / 2`
//!   steps per level — the PRAM analogue of the `O(log³ n)`-stream-op
//!   version of Section 5.3 / Appendix A.
//!
//! The EREW machine verifies at runtime that no step of either schedule
//! ever touches a node from two processors — the exclusivity argument the
//! paper's Figure 6 layout makes for the stream version.

use super::{block_ascending, out_of_order, pad_to_power_of_two, SortRun};
use crate::error::Result;
use crate::machine::{Pram, PramModel, ProcCtx};
use stream_arch::{Node, Value, NULL_INDEX};

/// Which step schedule to use for every merge.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Overlapped stages: `2j − 1` steps per recursion level `j`
    /// (`log² n` steps in total). The default.
    #[default]
    Overlapped,
    /// Stages executed one after another: `j (j + 1) / 2` steps per level.
    SequentialStages,
}

/// Number of PRAM steps one recursion level `j` takes under `schedule`.
pub fn steps_per_level(j: u32, schedule: Schedule) -> u64 {
    match schedule {
        Schedule::Overlapped => (2 * j - 1) as u64,
        Schedule::SequentialStages => (j as u64 * (j as u64 + 1)) / 2,
    }
}

/// Total number of PRAM steps for sorting `n` (power-of-two) values.
pub fn total_steps(n: usize, schedule: Schedule) -> u64 {
    let log_n = n.trailing_zeros();
    (1..=log_n).map(|j| steps_per_level(j, schedule)).sum()
}

/// Sort with the default (overlapped) schedule.
pub fn sort(values: &[Value]) -> Result<SortRun> {
    sort_with_schedule(values, Schedule::Overlapped)
}

/// Sort `values` ascending on an EREW-PRAM with the chosen schedule.
pub fn sort_with_schedule(values: &[Value], schedule: Schedule) -> Result<SortRun> {
    let original_len = values.len();
    if original_len <= 1 {
        return Ok(SortRun {
            output: values.to_vec(),
            stats: Default::default(),
            model: PramModel::Erew,
            padded_len: original_len,
        });
    }

    let padded = pad_to_power_of_two(values);
    let n = padded.len();
    let log_n = n.trailing_zeros();

    let mut pram: Pram<Node> = Pram::from_vec(initial_nodes(&padded), PramModel::Erew);

    for j in 1..=log_n {
        merge_level(&mut pram, n, j, schedule)?;
    }

    let mut output = Vec::with_capacity(n);
    in_order(pram.memory(), n / 2 - 1, log_n, &mut output);
    output.push(pram.memory()[n - 1].value);
    output.truncate(original_len);

    Ok(SortRun {
        output,
        stats: pram.take_stats(),
        model: PramModel::Erew,
        padded_len: n,
    })
}

/// The in-order-stored node pool over `values` (Listing 2's initialisation):
/// node `i` has children at `i ∓ ((i+1) & !i)/2`, leaves and the spare carry
/// the sentinel.
fn initial_nodes(values: &[Value]) -> Vec<Node> {
    let n = values.len();
    values
        .iter()
        .enumerate()
        .map(|(i, &value)| {
            let step = ((i as u64 + 1) & !(i as u64)) / 2;
            if i == n - 1 || step == 0 {
                Node::leaf(value)
            } else {
                Node::new(value, (i as u64 - step) as u32, (i as u64 + step) as u32)
            }
        })
        .collect()
}

/// Host-side in-order traversal following the (swapped) child pointers.
fn in_order(nodes: &[Node], root: usize, height: u32, out: &mut Vec<Value>) {
    let node = &nodes[root];
    if height <= 1 {
        out.push(node.value);
        return;
    }
    in_order(nodes, node.left as usize, height - 1, out);
    out.push(node.value);
    in_order(nodes, node.right as usize, height - 1, out);
}

/// One traversal instance: for phase 0 `(a, b)` is the subtree's
/// `(root, spare)`, for later phases it is the `(p, q)` pointer pair kept in
/// the processor's private registers.
#[derive(Copy, Clone, Debug)]
struct Instance {
    a: usize,
    b: usize,
    ascending: bool,
}

/// The per-stage traversal state of one recursion level.
struct StageState {
    /// The phase the stage will execute next (0-based).
    next_phase: u32,
    /// Active traversal instances; after phase 0 these hold `(p, q)`.
    instances: Vec<Instance>,
    /// `(root, spare)` pairs for the next stage, captured during phase 0.
    spawned: Vec<Instance>,
}

/// What one processor reports back to the driver after executing a phase.
#[derive(Copy, Clone)]
struct PhaseOutcome {
    next_p: u32,
    next_q: u32,
    /// For phase 0: the (possibly swapped) children of the root, which
    /// become the roots of the next stage's subtrees.
    left_child: u32,
    right_child: u32,
}

/// Run the adaptive bitonic merge of recursion level `j` on all
/// `n / 2^j` blocks simultaneously.
fn merge_level(pram: &mut Pram<Node>, n: usize, j: u32, schedule: Schedule) -> Result<()> {
    let block = 1usize << j;
    let num_trees = n / block;

    // Stage 0 operates on the whole block trees.
    let mut stages: Vec<StageState> = Vec::with_capacity(j as usize);
    stages.push(StageState {
        next_phase: 0,
        instances: (0..num_trees)
            .map(|t| Instance {
                a: t * block + block / 2 - 1,
                b: (t + 1) * block - 1,
                ascending: block_ascending(t),
            })
            .collect(),
        spawned: Vec::new(),
    });

    match schedule {
        Schedule::Overlapped => {
            // Steps i = 0 .. 2j − 2; stage k executes phase i − 2k.
            for i in 0..(2 * j - 1) {
                let mut active: Vec<usize> = Vec::new();
                for (k, stage) in stages.iter().enumerate() {
                    let phase = i as i64 - 2 * k as i64;
                    if phase >= 0
                        && (phase as u32) < j - k as u32
                        && phase as u32 == stage.next_phase
                    {
                        active.push(k);
                    }
                }
                run_phases(pram, &mut stages, &active, j)?;
                // A new stage starts every other step.
                if i % 2 == 1 {
                    let k_new = (i as usize).div_ceil(2);
                    if k_new < j as usize {
                        let spawned = std::mem::take(&mut stages[k_new - 1].spawned);
                        stages.push(StageState {
                            next_phase: 0,
                            instances: spawned,
                            spawned: Vec::new(),
                        });
                    }
                }
            }
        }
        Schedule::SequentialStages => {
            for k in 0..j as usize {
                for _phase in 0..(j - k as u32) {
                    run_phases(pram, &mut stages, &[k], j)?;
                }
                if (k as u32) < j - 1 {
                    let spawned = std::mem::take(&mut stages[k].spawned);
                    stages.push(StageState {
                        next_phase: 0,
                        instances: spawned,
                        spawned: Vec::new(),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Execute one synchronous PRAM step in which every active stage runs its
/// next phase on all of its instances.
fn run_phases(
    pram: &mut Pram<Node>,
    stages: &mut [StageState],
    active: &[usize],
    j: u32,
) -> Result<()> {
    // Flatten the work of all active stages into one task list.
    let mut tasks: Vec<(usize, usize, Instance, bool)> = Vec::new(); // (stage, slot, instance, is_phase0)
    for &k in active {
        let is_phase0 = stages[k].next_phase == 0;
        for (slot, &inst) in stages[k].instances.iter().enumerate() {
            tasks.push((k, slot, inst, is_phase0));
        }
    }
    if tasks.is_empty() {
        // A stage can have zero remaining phases only through a driver bug;
        // record nothing.
        return Ok(());
    }

    let outcomes = pram.step_map(tasks.len(), |i, ctx| {
        let (_, _, inst, is_phase0) = tasks[i];
        if is_phase0 {
            phase0(ctx, inst)
        } else {
            phase_i(ctx, inst)
        }
    })?;

    // Fold the outcomes back into the driver state: phase 0 captures the
    // next stage's (root, spare) pairs, every phase advances the stage's
    // private (p, q) registers.
    for ((k, slot, inst, is_phase0), outcome) in tasks.iter().zip(outcomes) {
        let stage = &mut stages[*k];
        if *is_phase0 {
            // Subtrees of this stage have j − k levels; subtrees with a
            // single level have no further phases and spawn nothing.
            let levels = j - *k as u32;
            if levels >= 2 {
                stage.spawned.push(Instance {
                    a: outcome.left_child as usize,
                    b: inst.a,
                    ascending: inst.ascending,
                });
                stage.spawned.push(Instance {
                    a: outcome.right_child as usize,
                    b: inst.b,
                    ascending: inst.ascending,
                });
            }
        }
        stage.instances[*slot] = Instance {
            a: outcome.next_p as usize,
            b: outcome.next_q as usize,
            ascending: inst.ascending,
        };
    }
    for &k in active {
        stages[k].next_phase += 1;
    }
    Ok(())
}

/// Phase 0 of the simplified adaptive min/max determination (Section 4.2)
/// for the subtree `(root, spare)` held by `inst`.
fn phase0(ctx: &mut ProcCtx<'_, Node>, inst: Instance) -> PhaseOutcome {
    let mut root = ctx.read(inst.a);
    let mut spare = ctx.read(inst.b);
    ctx.charge_comparison();
    if out_of_order(&root.value, &spare.value, inst.ascending) {
        std::mem::swap(&mut root.value, &mut spare.value);
        std::mem::swap(&mut root.left, &mut root.right);
    }
    ctx.write(inst.a, root);
    ctx.write(inst.b, spare);
    PhaseOutcome {
        next_p: root.left,
        next_q: root.right,
        left_child: root.left,
        right_child: root.right,
    }
}

/// Phase `i > 0`: compare the nodes at the private pointers `(p, q)`, swap
/// values and left children if out of order, and descend.
fn phase_i(ctx: &mut ProcCtx<'_, Node>, inst: Instance) -> PhaseOutcome {
    let mut p = ctx.read(inst.a);
    let mut q = ctx.read(inst.b);
    ctx.charge_comparison();
    let (next_p, next_q);
    if out_of_order(&p.value, &q.value, inst.ascending) {
        std::mem::swap(&mut p.value, &mut q.value);
        std::mem::swap(&mut p.left, &mut q.left);
        next_p = p.right;
        next_q = q.right;
    } else {
        next_p = p.left;
        next_q = q.left;
    }
    ctx.write(inst.a, p);
    ctx.write(inst.b, q);
    PhaseOutcome {
        next_p,
        next_q,
        left_child: NULL_INDEX,
        right_child: NULL_INDEX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_sorted_permutation(input: &[Value], output: &[Value]) {
        assert_eq!(input.len(), output.len());
        assert!(output.windows(2).all(|w| w[0] <= w[1]), "output not sorted");
        let mut a: Vec<_> = input.to_vec();
        let mut b: Vec<_> = output.to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn sorts_random_inputs_with_both_schedules() {
        for schedule in [Schedule::Overlapped, Schedule::SequentialStages] {
            for log_n in 1..=10u32 {
                let n = 1usize << log_n;
                let input = workloads::uniform(n, 60 + log_n as u64);
                let run = sort_with_schedule(&input, schedule).unwrap();
                assert_sorted_permutation(&input, &run.output);
            }
        }
    }

    #[test]
    fn sorts_non_power_of_two_inputs() {
        for &n in &[3usize, 5, 100, 777, 1000] {
            let input = workloads::uniform(n, n as u64);
            let run = sort(&input).unwrap();
            assert_eq!(run.output.len(), n);
            assert_sorted_permutation(&input, &run.output);
        }
    }

    #[test]
    fn is_a_true_erew_algorithm() {
        // The machine rejects any concurrent access, so finishing at all
        // proves exclusivity; the counter double-checks.
        let input = workloads::uniform(1 << 11, 3);
        for schedule in [Schedule::Overlapped, Schedule::SequentialStages] {
            let run = sort_with_schedule(&input, schedule).unwrap();
            assert_eq!(run.model, PramModel::Erew);
            assert_eq!(run.stats.conflicts(PramModel::Erew), 0);
        }
    }

    #[test]
    fn comparison_count_matches_the_sequential_implementation() {
        // Same algorithm, same comparisons — the PRAM execution merely
        // parallelises them.
        for log_n in 4..=12u32 {
            let n = 1usize << log_n;
            let input = workloads::uniform(n, log_n as u64);
            let run = sort(&input).unwrap();
            let (_, seq) = abisort::sequential::adaptive_bitonic_sort_with(
                &input,
                abisort::MergeVariant::Simplified,
            );
            assert_eq!(run.stats.comparisons(), seq.comparisons, "n={n}");
        }
    }

    #[test]
    fn overlapped_schedule_uses_log_squared_steps() {
        for log_n in 1..=12u32 {
            let n = 1usize << log_n;
            let input = workloads::uniform(n, 9);
            let run = sort_with_schedule(&input, Schedule::Overlapped).unwrap();
            assert_eq!(run.stats.num_steps(), (log_n as u64).pow(2), "n={n}");
            assert_eq!(run.stats.num_steps(), total_steps(n, Schedule::Overlapped));
        }
    }

    #[test]
    fn sequential_stage_schedule_uses_log_cubed_steps() {
        let log_n = 10u32;
        let n = 1usize << log_n;
        let input = workloads::uniform(n, 11);
        let run = sort_with_schedule(&input, Schedule::SequentialStages).unwrap();
        let expected: u64 = (1..=log_n as u64).map(|j| j * (j + 1) / 2).sum();
        assert_eq!(run.stats.num_steps(), expected);
        assert_eq!(
            run.stats.num_steps(),
            total_steps(n, Schedule::SequentialStages)
        );
        // The overlapped schedule is shorter by a Θ(log n) factor.
        let overlapped = sort_with_schedule(&input, Schedule::Overlapped).unwrap();
        assert!(overlapped.stats.num_steps() * 2 < run.stats.num_steps());
    }

    #[test]
    fn comparison_count_stays_below_two_n_log_n() {
        for log_n in 4..=12u32 {
            let n = 1usize << log_n;
            let input = workloads::uniform(n, 5);
            let run = sort(&input).unwrap();
            assert!(
                run.stats.comparisons() < 2 * (n as u64) * log_n as u64,
                "n={n}"
            );
        }
    }

    #[test]
    fn comparison_count_is_data_independent() {
        let mut counts = std::collections::HashSet::new();
        for dist in workloads::Distribution::all_for_data_dependence() {
            let input = workloads::generate(dist, 1 << 9, 3);
            counts.insert(sort(&input).unwrap().stats.comparisons());
        }
        assert_eq!(counts.len(), 1);
    }

    #[test]
    fn optimal_speedup_with_n_over_log_n_processors() {
        // The Bilardi–Nicolau claim the paper quotes: O(log² n) parallel
        // time on a PRAC with O(n / log n) processors.
        let log_n = 12u64;
        let n = 1usize << log_n;
        let input = workloads::uniform(n, 31);
        let run = sort(&input).unwrap();
        let p = (n as u64) / log_n;
        let brent = run.stats.brent_time(p);
        // Each phase costs 4 shared accesses, so the bound has a small
        // constant: c · log² n with c well below 20.
        assert!(
            brent <= 20 * log_n * log_n,
            "Brent time {brent} exceeds O(log² n) bound"
        );
        // And the speed-up over one processor is within a factor ~2 of p
        // (i.e. optimal up to constants).
        assert!(run.stats.speedup(p) >= p as f64 / 4.0);
    }

    #[test]
    fn processor_demand_is_at_most_n_over_two() {
        let n = 1usize << 10;
        let input = workloads::uniform(n, 2);
        let run = sort(&input).unwrap();
        assert!(run.stats.max_processors() <= n as u64 / 2);
    }

    #[test]
    fn both_schedules_produce_identical_output_and_comparisons() {
        for seed in 0..5u64 {
            let input = workloads::uniform(1 << 9, seed);
            let a = sort_with_schedule(&input, Schedule::Overlapped).unwrap();
            let b = sort_with_schedule(&input, Schedule::SequentialStages).unwrap();
            assert_eq!(a.output, b.output);
            assert_eq!(a.stats.comparisons(), b.stats.comparisons());
        }
    }

    #[test]
    fn matches_the_stream_implementation_output() {
        // Cross-check against the paper's own sequential reference.
        for seed in 0..5u64 {
            let input = workloads::uniform(1000, 100 + seed);
            let pram_out = sort(&input).unwrap().output;
            let seq_out = abisort::adaptive_bitonic_sort(&input);
            assert_eq!(pram_out, seq_out);
        }
    }

    #[test]
    fn steps_per_level_formulas() {
        assert_eq!(steps_per_level(1, Schedule::Overlapped), 1);
        assert_eq!(steps_per_level(4, Schedule::Overlapped), 7);
        assert_eq!(steps_per_level(4, Schedule::SequentialStages), 10);
        assert_eq!(total_steps(16, Schedule::Overlapped), 1 + 3 + 5 + 7);
    }

    #[test]
    fn tiny_inputs_pass_through() {
        assert!(sort(&[]).unwrap().output.is_empty());
        let one = vec![Value::new(1.0, 0)];
        assert_eq!(sort(&one).unwrap().output, one);
        let two = vec![Value::new(5.0, 0), Value::new(2.0, 1)];
        let run = sort(&two).unwrap();
        assert_eq!(run.output[0].key, 2.0);
        assert_eq!(run.output[1].key, 5.0);
    }

    #[test]
    fn sorts_adversarial_distributions() {
        use workloads::Distribution;
        for dist in [
            Distribution::Sorted,
            Distribution::Reverse,
            Distribution::OrganPipe,
            Distribution::FewDistinct { distinct: 2 },
            Distribution::Constant,
        ] {
            let input = workloads::generate(dist, 1 << 9, 41);
            let run = sort(&input).unwrap();
            assert_sorted_permutation(&input, &run.output);
        }
    }
}
