//! Rank-based parallel merge sort (CREW).
//!
//! The textbook way to get an `O(log² n)`-time PRAM merge sort: at every
//! level, runs of length `m` are merged pairwise by giving one processor to
//! each element, which computes the element's *rank* in the sibling run by
//! binary search and writes the element directly to its final position of
//! the merged run.
//!
//! This algorithm is time-optimal per level but
//!
//! * performs `Θ(n log n)` comparisons **per level** — `Θ(n log² n)` in
//!   total, asymptotically more than adaptive bitonic sorting's
//!   `< 2 n log n`;
//! * needs **concurrent reads**: the binary searches of many processors
//!   probe the same cells of the sibling run, so it is a CREW algorithm,
//!   not an EREW one.
//!
//! It stands in for the Section-2.1 observation that the known
//! asymptotically optimal PRAM sorts (AKS, Cole) are "not fast in practice"
//! — the simple optimal-time alternative shown here pays a full extra
//! `log n` factor of work and a stronger memory model, which is exactly the
//! gap adaptive bitonic sorting closes. (Cole's pipelined merge sort itself
//! is not implemented; DESIGN.md records the substitution.)

use super::{pad_to_power_of_two, SortRun};
use crate::error::Result;
use crate::machine::{Pram, PramModel, ProcCtx};
use stream_arch::Value;

/// Sort `values` ascending with the rank-based parallel merge sort.
///
/// Uses one processor per element and one PRAM step per merge level (each
/// processor performs its whole binary search within the step; the step
/// duration is the maximum number of accesses, i.e. `Θ(log m)`).
pub fn sort(values: &[Value]) -> Result<SortRun> {
    let original_len = values.len();
    if original_len <= 1 {
        return Ok(SortRun {
            output: values.to_vec(),
            stats: Default::default(),
            model: PramModel::Crew,
            padded_len: original_len,
        });
    }

    let padded = pad_to_power_of_two(values);
    let n = padded.len();

    // Double-buffered shared memory: [0, n) is the source, [n, 2n) the
    // destination of the current level; the roles swap every level.
    let mut mem = padded;
    mem.resize(2 * n, Value::default());
    let mut pram: Pram<Value> = Pram::from_vec(mem, PramModel::Crew);

    let mut src = 0usize;
    let mut dst = n;
    let mut run = 1usize;
    while run < n {
        pram.step(n, |i, ctx| {
            merge_task(ctx, i, src, dst, run);
        })?;
        std::mem::swap(&mut src, &mut dst);
        run *= 2;
    }

    let mut output = pram.memory()[src..src + n].to_vec();
    output.truncate(original_len);
    Ok(SortRun {
        output,
        stats: pram.take_stats(),
        model: PramModel::Crew,
        padded_len: n,
    })
}

/// One processor of one merge level: element `i` of the source buffer finds
/// its position in the merged output and writes itself there.
fn merge_task(ctx: &mut ProcCtx<'_, Value>, i: usize, src: usize, dst: usize, run: usize) {
    let value = ctx.read(src + i);
    let pair_base = i & !(2 * run - 1); // start of the pair of runs containing i
    let in_first_run = i & run == 0;
    let own_offset = i & (run - 1);
    let sibling_base = if in_first_run {
        pair_base + run
    } else {
        pair_base
    };

    // Rank of `value` in the sibling run. Elements of the first run use a
    // strict rank (number of sibling elements < value), elements of the
    // second run a non-strict rank (<= value); together with distinct values
    // this makes all output positions unique.
    let rank = binary_rank(ctx, src + sibling_base, run, &value, in_first_run);
    ctx.write(dst + pair_base + own_offset + rank, value);
}

/// Number of elements of the sorted run `[base, base + len)` that compare
/// before `value`. `strict` selects `<` (lower bound) versus `<=` (upper
/// bound).
fn binary_rank(
    ctx: &mut ProcCtx<'_, Value>,
    base: usize,
    len: usize,
    value: &Value,
    strict: bool,
) -> usize {
    let mut lo = 0usize;
    let mut hi = len;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let probe = ctx.read(base + mid);
        ctx.charge_comparison();
        let before = if strict {
            probe.lt(value)
        } else {
            !probe.gt(value)
        };
        if before {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_sorted_permutation(input: &[Value], output: &[Value]) {
        assert_eq!(input.len(), output.len());
        assert!(output.windows(2).all(|w| w[0] <= w[1]), "output not sorted");
        let mut a: Vec<_> = input.to_vec();
        let mut b: Vec<_> = output.to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn sorts_random_inputs() {
        for log_n in 1..=10u32 {
            let n = 1usize << log_n;
            let input = workloads::uniform(n, 40 + log_n as u64);
            let run = sort(&input).unwrap();
            assert_sorted_permutation(&input, &run.output);
        }
    }

    #[test]
    fn sorts_non_power_of_two_inputs() {
        for &n in &[3usize, 7, 100, 1000, 1025] {
            let input = workloads::uniform(n, n as u64);
            let run = sort(&input).unwrap();
            assert_eq!(run.output.len(), n);
            assert_sorted_permutation(&input, &run.output);
        }
    }

    #[test]
    fn needs_concurrent_reads() {
        // The binary searches of different processors probe common cells:
        // the algorithm is CREW, not EREW — the contrast to adaptive bitonic
        // sorting the crate documentation points out.
        let input = workloads::uniform(256, 3);
        let run = sort(&input).unwrap();
        assert_eq!(run.model, PramModel::Crew);
        assert!(run.stats.read_conflicts > 0, "expected concurrent reads");
        assert_eq!(run.stats.write_conflicts, 0);
    }

    #[test]
    fn uses_one_step_per_merge_level() {
        let n = 1usize << 9;
        let input = workloads::uniform(n, 5);
        let run = sort(&input).unwrap();
        assert_eq!(run.stats.num_steps(), 9);
        assert_eq!(run.stats.max_processors(), n as u64);
    }

    #[test]
    fn performs_asymptotically_more_comparisons_than_adaptive_bitonic_sorting() {
        let n = 1usize << 12;
        let input = workloads::uniform(n, 17);
        let rank_run = sort(&input).unwrap();
        let (_, seq_stats) = abisort::sequential::adaptive_bitonic_sort_with(
            &input,
            abisort::MergeVariant::Simplified,
        );
        // Θ(n log² n) vs < 2 n log n: at n = 4096 the rank-based sort already
        // performs several times more comparisons.
        assert!(
            rank_run.stats.comparisons() > 2 * seq_stats.comparisons,
            "rank merge {} vs adaptive {}",
            rank_run.stats.comparisons(),
            seq_stats.comparisons
        );
    }

    #[test]
    fn parallel_time_is_polylogarithmic() {
        let n = 1usize << 12;
        let input = workloads::uniform(n, 23);
        let run = sort(&input).unwrap();
        let log_n = 12u64;
        // Each level costs Θ(log run) accesses; the total is O(log² n).
        assert!(run.stats.parallel_time() <= 4 * log_n * log_n);
    }

    #[test]
    fn binary_rank_matches_linear_scan() {
        let sorted: Vec<Value> = (0..16).map(|i| Value::new((i * 2) as f32, i)).collect();
        let mut pram: Pram<Value> = Pram::from_vec(sorted.clone(), PramModel::Crew);
        for probe_key in [-1.0f32, 0.0, 3.0, 14.0, 31.0, 99.0] {
            let probe = Value::new(probe_key, 1000);
            let expected_strict = sorted.iter().filter(|v| (*v).lt(&probe)).count();
            let expected_loose = sorted.iter().filter(|v| !(*v).gt(&probe)).count();
            let got = pram
                .step_map(1, |_, ctx| {
                    (
                        binary_rank(ctx, 0, 16, &probe, true),
                        binary_rank(ctx, 0, 16, &probe, false),
                    )
                })
                .unwrap()[0];
            assert_eq!(got, (expected_strict, expected_loose), "key {probe_key}");
        }
    }

    #[test]
    fn tiny_inputs_pass_through() {
        assert!(sort(&[]).unwrap().output.is_empty());
        let one = vec![Value::new(1.0, 0)];
        assert_eq!(sort(&one).unwrap().output, one);
    }

    #[test]
    fn sorts_adversarial_distributions() {
        use workloads::Distribution;
        for dist in [
            Distribution::Sorted,
            Distribution::Reverse,
            Distribution::OrganPipe,
            Distribution::FewDistinct { distinct: 3 },
        ] {
            let input = workloads::generate(dist, 300, 29);
            let run = sort(&input).unwrap();
            assert_sorted_permutation(&input, &run.output);
        }
    }
}
