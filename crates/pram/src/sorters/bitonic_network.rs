//! Batcher's bitonic sorting network on the PRAM (EREW).
//!
//! This is the algorithm family *all previous GPU sorts* in the paper's
//! related work are based on (Section 2.2). On a PRAM with `n/2` processors
//! it runs in `log n (log n + 1) / 2` compare-exchange steps, i.e.
//! `O(log² n)` time — the same parallel time as adaptive bitonic sorting —
//! but performs `Θ(n log² n)` comparisons, which is the non-optimal work the
//! paper's contribution removes.

use super::{pad_to_power_of_two, SortRun};
use crate::error::Result;
use crate::machine::{Pram, PramModel};
use stream_arch::Value;

/// Number of compare-exchange steps of the network for `n` (power-of-two)
/// inputs: `log n (log n + 1) / 2`.
pub fn steps_for(n: usize) -> u64 {
    let log_n = n.trailing_zeros() as u64;
    log_n * (log_n + 1) / 2
}

/// Sort `values` ascending with Batcher's bitonic network, one PRAM step per
/// network stage with `n/2` compare-exchange processors.
pub fn sort(values: &[Value]) -> Result<SortRun> {
    let original_len = values.len();
    if original_len <= 1 {
        return Ok(SortRun {
            output: values.to_vec(),
            stats: Default::default(),
            model: PramModel::Erew,
            padded_len: original_len,
        });
    }

    let padded = pad_to_power_of_two(values);
    let n = padded.len();
    let mut pram: Pram<Value> = Pram::from_vec(padded, PramModel::Erew);

    // Standard bitonic network: block size k doubles every (outer) stage,
    // the comparator distance j halves within a stage.
    let mut k = 2usize;
    while k <= n {
        let mut j = k / 2;
        while j >= 1 {
            pram.step(n / 2, |pair, ctx| {
                // The `pair`-th comparator of this stage: skip indices whose
                // j-bit is set so that every (i, i^j) pair appears once.
                let i = expand_index(pair, j);
                let partner = i ^ j;
                let ascending = i & k == 0;
                let a = ctx.read(i);
                let b = ctx.read(partner);
                ctx.charge_comparison();
                let (lo, hi) = if a.gt(&b) { (b, a) } else { (a, b) };
                if ascending {
                    ctx.write(i, lo);
                    ctx.write(partner, hi);
                } else {
                    ctx.write(i, hi);
                    ctx.write(partner, lo);
                }
            })?;
            j /= 2;
        }
        k *= 2;
    }

    let mut output = pram.memory().to_vec();
    output.truncate(original_len);
    Ok(SortRun {
        output,
        stats: pram.take_stats(),
        model: PramModel::Erew,
        padded_len: n,
    })
}

/// Map a comparator number `pair ∈ [0, n/2)` to the lower index `i` of its
/// `(i, i ^ j)` pair: insert a zero bit at the position of `j`'s single set
/// bit.
fn expand_index(pair: usize, j: usize) -> usize {
    let low_mask = j - 1;
    let low = pair & low_mask;
    let high = (pair & !low_mask) << 1;
    high | low
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::PramModel;

    fn assert_sorted_permutation(input: &[Value], output: &[Value]) {
        assert_eq!(input.len(), output.len());
        assert!(output.windows(2).all(|w| w[0] <= w[1]), "output not sorted");
        let mut a: Vec<_> = input.to_vec();
        let mut b: Vec<_> = output.to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b, "output is not a permutation of the input");
    }

    #[test]
    fn expand_index_enumerates_every_comparator_exactly_once() {
        for log_n in 1..=6u32 {
            let n = 1usize << log_n;
            let mut j = 1usize;
            while j < n {
                let mut seen = std::collections::HashSet::new();
                for pair in 0..n / 2 {
                    let i = expand_index(pair, j);
                    assert_eq!(i & j, 0, "lower index must have the j-bit clear");
                    assert!(i < n);
                    assert!(seen.insert(i), "duplicate comparator for i={i} j={j}");
                }
                j *= 2;
            }
        }
    }

    #[test]
    fn sorts_random_inputs() {
        for log_n in 1..=10u32 {
            let n = 1usize << log_n;
            let input = workloads::uniform(n, log_n as u64);
            let run = sort(&input).unwrap();
            assert_sorted_permutation(&input, &run.output);
        }
    }

    #[test]
    fn sorts_non_power_of_two_inputs() {
        for &n in &[3usize, 5, 100, 1000, 1023] {
            let input = workloads::uniform(n, n as u64);
            let run = sort(&input).unwrap();
            assert_eq!(run.output.len(), n);
            assert_sorted_permutation(&input, &run.output);
            assert_eq!(run.padded_len, n.next_power_of_two());
        }
    }

    #[test]
    fn runs_on_an_erew_machine_without_conflicts() {
        let input = workloads::uniform(512, 7);
        let run = sort(&input).unwrap();
        assert_eq!(run.model, PramModel::Erew);
        assert_eq!(run.stats.conflicts(PramModel::Erew), 0);
    }

    #[test]
    fn step_count_matches_the_closed_form() {
        for log_n in 1..=10u32 {
            let n = 1usize << log_n;
            let input = workloads::uniform(n, 3);
            let run = sort(&input).unwrap();
            assert_eq!(run.stats.num_steps(), steps_for(n), "n={n}");
        }
    }

    #[test]
    fn comparison_count_is_n_half_log_squared() {
        // Every step performs exactly n/2 comparisons.
        let n = 1usize << 9;
        let input = workloads::uniform(n, 5);
        let run = sort(&input).unwrap();
        assert_eq!(run.stats.comparisons(), steps_for(n) * (n as u64 / 2));
    }

    #[test]
    fn uses_exactly_n_half_processors() {
        let n = 256;
        let input = workloads::uniform(n, 11);
        let run = sort(&input).unwrap();
        assert_eq!(run.stats.max_processors(), n as u64 / 2);
    }

    #[test]
    fn comparison_count_is_data_independent() {
        let mut counts = std::collections::HashSet::new();
        for dist in workloads::Distribution::all_for_data_dependence() {
            let input = workloads::generate(dist, 512, 3);
            counts.insert(sort(&input).unwrap().stats.comparisons());
        }
        assert_eq!(counts.len(), 1);
    }

    #[test]
    fn tiny_inputs_pass_through() {
        assert!(sort(&[]).unwrap().output.is_empty());
        let one = vec![Value::new(4.0, 0)];
        assert_eq!(sort(&one).unwrap().output, one);
    }

    #[test]
    fn sorts_adversarial_distributions() {
        use workloads::Distribution;
        for dist in [
            Distribution::Sorted,
            Distribution::Reverse,
            Distribution::OrganPipe,
            Distribution::FewDistinct { distinct: 2 },
        ] {
            let input = workloads::generate(dist, 512, 13);
            let run = sort(&input).unwrap();
            assert_sorted_permutation(&input, &run.output);
        }
    }
}
