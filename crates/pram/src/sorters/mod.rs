//! Parallel sorting algorithms executed on the [`crate::Pram`] machine.
//!
//! * [`abisort_pram`] — Bilardi & Nicolau's adaptive bitonic sort, the
//!   EREW-PRAM ("PRAC") algorithm the paper ports to stream architectures;
//! * [`bitonic_network`] — Batcher's bitonic sorting network, the
//!   non-optimal-work baseline every previous GPU sort was based on;
//! * [`oem_network`] — Batcher's odd-even merge sort network (the basis of
//!   Kipfer et al.'s GPU sorter), same depth, slightly fewer comparators;
//! * [`rank_merge`] — a rank-based parallel merge sort (CREW), standing in
//!   for the asymptotically optimal but constant-heavy PRAM sorts of
//!   Section 2.1.
//!
//! All sorters take a slice of [`Value`]s of arbitrary length, pad to a
//! power of two internally (Section 4 of the paper), and return a
//! [`SortRun`] with the sorted output and the machine statistics.

pub mod abisort_pram;
pub mod bitonic_network;
pub mod oem_network;
pub mod rank_merge;

use crate::machine::PramModel;
use crate::metrics::PramStats;
use stream_arch::Value;

/// The result of running one PRAM sorter.
#[derive(Clone, Debug)]
pub struct SortRun {
    /// The sorted values (same length as the input).
    pub output: Vec<Value>,
    /// Step/work/access statistics of the execution.
    pub stats: PramStats,
    /// The PRAM model the algorithm was executed (and checked) under.
    pub model: PramModel,
    /// The padded power-of-two problem size the machine operated on.
    pub padded_len: usize,
}

/// Pad `values` to the next power of two with maximum-key sentinels
/// (Section 4: "this can be achieved by padding the input sequence").
pub(crate) fn pad_to_power_of_two(values: &[Value]) -> Vec<Value> {
    let n = values.len();
    let padded_len = n.next_power_of_two().max(1);
    let mut padded = values.to_vec();
    for i in 0..(padded_len - n) {
        padded.push(Value::padding_sentinel(i));
    }
    padded
}

/// Direction of the `t`-th block of a recursion level: even blocks ascend,
/// odd blocks descend, so that the next level sees bitonic inputs (same
/// convention as the sequential and stream implementations).
pub(crate) fn block_ascending(t: usize) -> bool {
    t.is_multiple_of(2)
}

/// "Out of order" under the requested direction — the single comparison
/// primitive of the paper's pseudo code.
pub(crate) fn out_of_order(a: &Value, b: &Value, ascending: bool) -> bool {
    a.gt(b) == ascending
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_reaches_the_next_power_of_two_and_sorts_last() {
        let input: Vec<Value> = (0..5).map(|i| Value::new(i as f32, i)).collect();
        let padded = pad_to_power_of_two(&input);
        assert_eq!(padded.len(), 8);
        assert_eq!(&padded[..5], &input[..]);
        for pad in &padded[5..] {
            for original in &input {
                assert!(pad.gt(original));
            }
        }
    }

    #[test]
    fn padding_keeps_power_of_two_lengths_unchanged() {
        let input: Vec<Value> = (0..8).map(|i| Value::new(i as f32, i)).collect();
        assert_eq!(pad_to_power_of_two(&input), input);
    }

    #[test]
    fn block_direction_alternates() {
        assert!(block_ascending(0));
        assert!(!block_ascending(1));
        assert!(block_ascending(2));
    }

    #[test]
    fn out_of_order_flips_with_direction() {
        let lo = Value::new(1.0, 0);
        let hi = Value::new(2.0, 0);
        assert!(out_of_order(&hi, &lo, true));
        assert!(!out_of_order(&hi, &lo, false));
    }
}
