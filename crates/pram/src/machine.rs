//! The synchronous PRAM machine.
//!
//! A PRAM execution is a sequence of **synchronous parallel steps**. In one
//! step every active processor reads from shared memory, computes, and
//! writes back; all reads observe the memory contents *from before the
//! step* (the read sub-cycle) and all writes become visible together when
//! the step ends (the write sub-cycle). Exclusivity is therefore checked
//! separately for the two sub-cycles: a read and a write to the same cell
//! by different processors in one step is deterministic and allowed — the
//! pattern behind the classic EREW pairwise exchange. The machine checks
//! the access pattern of every step against the declared model:
//!
//! * [`PramModel::Erew`] — exclusive read, exclusive write: no cell may be
//!   touched by more than one processor per step (the model adaptive
//!   bitonic sorting was designed for — Bilardi & Nicolau's "PRAC");
//! * [`PramModel::Crew`] — concurrent read, exclusive write: several
//!   processors may read the same cell, writes stay exclusive.
//!
//! Violations fail the step with a [`PramError`]; the per-step task counts,
//! access counts and comparisons are accumulated into [`PramStats`] so that
//! experiments can report parallel time, work and processor demand.

use std::collections::HashMap;

use crate::error::{PramError, Result};
use crate::metrics::{PramStats, StepRecord};
use serde::{Deserialize, Serialize};

/// The memory-access discipline the machine enforces per step.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PramModel {
    /// Exclusive read, exclusive write (the paper's "PRAC").
    Erew,
    /// Concurrent read, exclusive write.
    Crew,
}

impl PramModel {
    /// Short lowercase name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            PramModel::Erew => "EREW",
            PramModel::Crew => "CREW",
        }
    }
}

/// The view a single processor has during one step: reads against the
/// pre-step memory snapshot, writes buffered until the step commits.
pub struct ProcCtx<'a, T: Copy> {
    mem: &'a [T],
    reads: Vec<usize>,
    writes: Vec<(usize, T)>,
    comparisons: u64,
    out_of_bounds: Option<usize>,
}

impl<'a, T: Copy + Default> ProcCtx<'a, T> {
    fn new(mem: &'a [T]) -> Self {
        ProcCtx {
            mem,
            reads: Vec::new(),
            writes: Vec::new(),
            comparisons: 0,
            out_of_bounds: None,
        }
    }

    /// Read `cell` from shared memory (the value from before this step).
    pub fn read(&mut self, cell: usize) -> T {
        if cell >= self.mem.len() {
            self.out_of_bounds.get_or_insert(cell);
            return T::default();
        }
        self.reads.push(cell);
        self.mem[cell]
    }

    /// Write `value` to `cell`; the write becomes visible when the step
    /// ends.
    pub fn write(&mut self, cell: usize, value: T) {
        if cell >= self.mem.len() {
            self.out_of_bounds.get_or_insert(cell);
            return;
        }
        self.writes.push((cell, value));
    }

    /// Charge one key comparison to this step's statistics.
    pub fn charge_comparison(&mut self) {
        self.comparisons += 1;
    }

    /// Number of shared-memory accesses this processor has issued so far in
    /// the current step.
    pub fn accesses(&self) -> u64 {
        (self.reads.len() + self.writes.len()) as u64
    }
}

/// A synchronous PRAM over cells of type `T`.
#[derive(Clone, Debug)]
pub struct Pram<T: Copy + Default> {
    mem: Vec<T>,
    model: PramModel,
    stats: PramStats,
}

impl<T: Copy + Default> Pram<T> {
    /// Create a machine with `size` zero-initialised cells.
    pub fn new(size: usize, model: PramModel) -> Self {
        Pram {
            mem: vec![T::default(); size],
            model,
            stats: PramStats::default(),
        }
    }

    /// Create a machine whose shared memory is initialised from `values`.
    pub fn from_vec(values: Vec<T>, model: PramModel) -> Self {
        Pram {
            mem: values,
            model,
            stats: PramStats::default(),
        }
    }

    /// The access model this machine enforces.
    pub fn model(&self) -> PramModel {
        self.model
    }

    /// Shared memory contents (between steps).
    pub fn memory(&self) -> &[T] {
        &self.mem
    }

    /// Mutable access to shared memory for host-side setup between steps
    /// (loading the input, reading back the output). Not counted as PRAM
    /// work.
    pub fn memory_mut(&mut self) -> &mut [T] {
        &mut self.mem
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &PramStats {
        &self.stats
    }

    /// Take the accumulated statistics, leaving empty ones behind.
    pub fn take_stats(&mut self) -> PramStats {
        std::mem::take(&mut self.stats)
    }

    /// Execute one synchronous step with `tasks` processors; processor `i`
    /// runs `f(i, ctx)`. Returns the per-processor results in task order.
    ///
    /// Fails without modifying memory if the access pattern violates the
    /// machine's [`PramModel`] or touches a cell out of bounds.
    pub fn step_map<R>(
        &mut self,
        tasks: usize,
        mut f: impl FnMut(usize, &mut ProcCtx<'_, T>) -> R,
    ) -> Result<Vec<R>> {
        let mut results = Vec::with_capacity(tasks);
        let mut record = StepRecord {
            tasks: tasks as u64,
            ..StepRecord::default()
        };
        // cell -> (first reader, #distinct readers, first writer, #writers)
        let mut uses: HashMap<usize, CellUse> = HashMap::new();
        let mut pending_writes: Vec<(usize, T)> = Vec::new();

        for task in 0..tasks {
            let mut ctx = ProcCtx::new(&self.mem);
            let result = f(task, &mut ctx);
            if let Some(cell) = ctx.out_of_bounds {
                return Err(PramError::OutOfBounds {
                    cell,
                    size: self.mem.len(),
                });
            }
            record.max_accesses = record.max_accesses.max(ctx.accesses());
            record.reads += ctx.reads.len() as u64;
            record.writes += ctx.writes.len() as u64;
            record.comparisons += ctx.comparisons;

            // De-duplicate within the task: one processor may touch the same
            // cell repeatedly without creating a conflict.
            let mut read_set = ctx.reads;
            read_set.sort_unstable();
            read_set.dedup();
            for cell in read_set {
                uses.entry(cell).or_default().add_reader(task);
            }
            let mut write_cells: Vec<usize> = ctx.writes.iter().map(|w| w.0).collect();
            write_cells.sort_unstable();
            write_cells.dedup();
            for cell in write_cells {
                uses.entry(cell).or_default().add_writer(task);
            }
            pending_writes.extend(ctx.writes);
            results.push(result);
        }

        // Conflict detection across processors (reads and writes live in
        // separate sub-cycles, so they are checked independently).
        let mut read_conflicts = 0u64;
        for (&cell, usage) in &uses {
            if usage.writers > 1 {
                return Err(PramError::WriteConflict { cell });
            }
            if usage.readers > 1 {
                read_conflicts += usage.readers as u64 - 1;
                if self.model == PramModel::Erew {
                    return Err(PramError::ReadConflict { cell });
                }
            }
        }

        // Commit: all writes become visible together.
        for (cell, value) in pending_writes {
            self.mem[cell] = value;
        }
        self.stats.read_conflicts += read_conflicts;
        self.stats.steps.push(record);
        Ok(results)
    }

    /// Execute one synchronous step, discarding the per-processor results.
    pub fn step(&mut self, tasks: usize, f: impl FnMut(usize, &mut ProcCtx<'_, T>)) -> Result<()> {
        self.step_map(tasks, f).map(|_| ())
    }
}

/// How one memory cell was used during a step.
#[derive(Default)]
struct CellUse {
    readers: u32,
    writers: u32,
}

impl CellUse {
    fn add_reader(&mut self, _task: usize) {
        self.readers += 1;
    }

    fn add_writer(&mut self, _task: usize) {
        self.writers += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_see_the_pre_step_state() {
        let mut pram: Pram<u32> = Pram::from_vec(vec![1, 2], PramModel::Erew);
        // Two processors swap the two cells; both must read the old values.
        let read_back = pram
            .step_map(2, |i, ctx| {
                let other = ctx.read(1 - i);
                ctx.write(i, other);
                other
            })
            .unwrap();
        assert_eq!(read_back, vec![2, 1]);
        assert_eq!(pram.memory(), &[2, 1]);
    }

    #[test]
    fn erew_rejects_concurrent_reads() {
        let mut pram: Pram<u32> = Pram::from_vec(vec![5, 0], PramModel::Erew);
        let err = pram.step(2, |_, ctx| {
            let _ = ctx.read(0);
        });
        assert_eq!(err, Err(PramError::ReadConflict { cell: 0 }));
    }

    #[test]
    fn crew_allows_concurrent_reads_and_counts_them() {
        let mut pram: Pram<u32> = Pram::from_vec(vec![5, 0, 0, 0], PramModel::Crew);
        pram.step(3, |i, ctx| {
            let v = ctx.read(0);
            ctx.write(i + 1, v);
        })
        .unwrap();
        assert_eq!(pram.memory(), &[5, 5, 5, 5]);
        assert_eq!(pram.stats().read_conflicts, 2);
    }

    #[test]
    fn concurrent_writes_are_rejected_under_both_models() {
        for model in [PramModel::Erew, PramModel::Crew] {
            let mut pram: Pram<u32> = Pram::new(1, model);
            let err = pram.step(2, |i, ctx| ctx.write(0, i as u32));
            assert_eq!(err, Err(PramError::WriteConflict { cell: 0 }), "{model:?}");
        }
    }

    #[test]
    fn read_and_write_of_one_cell_by_different_processors_is_deterministic() {
        // Reads happen in the read sub-cycle, writes in the write
        // sub-cycle, so this is not a conflict and the reader sees the old
        // value.
        let mut pram: Pram<u32> = Pram::from_vec(vec![3, 0], PramModel::Erew);
        let results = pram
            .step_map(2, |i, ctx| {
                if i == 0 {
                    ctx.read(0)
                } else {
                    ctx.write(0, 9);
                    0
                }
            })
            .unwrap();
        assert_eq!(results[0], 3);
        assert_eq!(pram.memory()[0], 9);
    }

    #[test]
    fn one_processor_may_read_and_write_its_own_cell() {
        let mut pram: Pram<u32> = Pram::from_vec(vec![3, 4], PramModel::Erew);
        pram.step(2, |i, ctx| {
            let v = ctx.read(i);
            ctx.write(i, v + 1);
        })
        .unwrap();
        assert_eq!(pram.memory(), &[4, 5]);
    }

    #[test]
    fn failed_steps_do_not_modify_memory_or_stats() {
        let mut pram: Pram<u32> = Pram::from_vec(vec![1, 2], PramModel::Erew);
        let before = pram.memory().to_vec();
        let _ = pram.step(2, |_, ctx| {
            let _ = ctx.read(0);
            ctx.write(1, 99);
        });
        assert_eq!(pram.memory(), &before[..]);
        assert_eq!(pram.stats().num_steps(), 0);
    }

    #[test]
    fn out_of_bounds_access_is_reported() {
        let mut pram: Pram<u32> = Pram::new(2, PramModel::Erew);
        let err = pram.step(1, |_, ctx| {
            let _ = ctx.read(7);
        });
        assert_eq!(err, Err(PramError::OutOfBounds { cell: 7, size: 2 }));
        let err = pram.step(1, |_, ctx| ctx.write(5, 1));
        assert_eq!(err, Err(PramError::OutOfBounds { cell: 5, size: 2 }));
    }

    #[test]
    fn step_records_capture_tasks_accesses_and_comparisons() {
        let mut pram: Pram<u32> = Pram::from_vec(vec![0; 8], PramModel::Erew);
        pram.step(4, |i, ctx| {
            let a = ctx.read(i);
            let b = ctx.read(i + 4);
            ctx.charge_comparison();
            ctx.write(i, a.max(b));
        })
        .unwrap();
        let stats = pram.stats();
        assert_eq!(stats.num_steps(), 1);
        let rec = stats.steps[0];
        assert_eq!(rec.tasks, 4);
        assert_eq!(rec.max_accesses, 3);
        assert_eq!(rec.reads, 8);
        assert_eq!(rec.writes, 4);
        assert_eq!(rec.comparisons, 4);
        assert_eq!(stats.parallel_time(), 3);
        assert_eq!(stats.work(), 12);
    }

    #[test]
    fn repeated_access_to_the_same_cell_by_one_processor_is_not_a_conflict() {
        let mut pram: Pram<u32> = Pram::from_vec(vec![2], PramModel::Erew);
        pram.step(1, |_, ctx| {
            let a = ctx.read(0);
            let b = ctx.read(0);
            ctx.write(0, a + b);
            ctx.write(0, a + b + 1);
        })
        .unwrap();
        assert_eq!(pram.memory(), &[5]);
    }

    #[test]
    fn take_stats_resets_the_accumulator() {
        let mut pram: Pram<u32> = Pram::new(4, PramModel::Erew);
        pram.step(2, |i, ctx| ctx.write(i, 1)).unwrap();
        let stats = pram.take_stats();
        assert_eq!(stats.num_steps(), 1);
        assert_eq!(pram.stats().num_steps(), 0);
    }

    #[test]
    fn model_names() {
        assert_eq!(PramModel::Erew.name(), "EREW");
        assert_eq!(PramModel::Crew.name(), "CREW");
    }
}
