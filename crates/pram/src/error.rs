//! Error types of the PRAM simulator.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, PramError>;

/// An error raised by the PRAM machine while executing a parallel step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PramError {
    /// Two processors read the same cell in one step under the EREW model.
    ReadConflict {
        /// The memory cell that was read concurrently.
        cell: usize,
    },
    /// Two processors wrote the same cell in one step (forbidden under both
    /// EREW and CREW).
    WriteConflict {
        /// The memory cell that was written concurrently.
        cell: usize,
    },
    /// A processor accessed a cell outside the allocated shared memory.
    OutOfBounds {
        /// The offending cell index.
        cell: usize,
        /// The size of the shared memory.
        size: usize,
    },
}

impl fmt::Display for PramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PramError::ReadConflict { cell } => {
                write!(f, "EREW violation: concurrent read of cell {cell}")
            }
            PramError::WriteConflict { cell } => {
                write!(f, "concurrent write of cell {cell}")
            }
            PramError::OutOfBounds { cell, size } => {
                write!(
                    f,
                    "access to cell {cell} outside shared memory of {size} cells"
                )
            }
        }
    }
}

impl std::error::Error for PramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_cell() {
        assert!(PramError::ReadConflict { cell: 7 }
            .to_string()
            .contains('7'));
        assert!(PramError::WriteConflict { cell: 9 }
            .to_string()
            .contains('9'));
        let e = PramError::OutOfBounds { cell: 11, size: 4 };
        assert!(e.to_string().contains("11"));
        assert!(e.to_string().contains('4'));
    }
}
