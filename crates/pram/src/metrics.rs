//! Accounting of PRAM executions: steps, work, accesses, conflicts, and the
//! Brent-scheduled parallel time for a machine with `p` processors.
//!
//! The quantities recorded here are exactly the ones the complexity claims
//! of Section 2.1 of the paper are about:
//!
//! * **parallel steps** — the `O(log² n)` bound of adaptive bitonic sorting
//!   and of the bitonic network;
//! * **work / comparisons** — the `< 2 n log n` bound of adaptive bitonic
//!   sorting versus the `Θ(n log² n)` of the sorting networks;
//! * **processor demand** — the `O(n / log n)` processors needed for the
//!   optimal-time execution;
//! * **access conflicts** — whether an algorithm really runs on an EREW
//!   machine or silently needs concurrent reads (CREW).

use crate::machine::PramModel;
use serde::{Deserialize, Serialize};

/// What happened in one synchronous parallel step.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Number of processors (tasks) active in this step.
    pub tasks: u64,
    /// The largest number of shared-memory accesses performed by any single
    /// task in this step — the unit-cost duration of the step.
    pub max_accesses: u64,
    /// Total shared-memory reads issued in this step.
    pub reads: u64,
    /// Total shared-memory writes issued in this step.
    pub writes: u64,
    /// Total comparisons charged in this step.
    pub comparisons: u64,
}

/// Aggregated statistics of a PRAM execution.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PramStats {
    /// Per-step records, in execution order.
    pub steps: Vec<StepRecord>,
    /// Concurrent reads that occurred (violations under EREW, allowed under
    /// CREW).
    pub read_conflicts: u64,
    /// Concurrent writes that occurred (violations under both models; they
    /// can only appear when the machine is configured not to fail fast).
    pub write_conflicts: u64,
}

impl PramStats {
    /// Number of synchronous parallel steps executed.
    pub fn num_steps(&self) -> u64 {
        self.steps.len() as u64
    }

    /// Parallel time with unlimited processors: the sum of the per-step
    /// unit-cost durations (`max_accesses` of each step).
    pub fn parallel_time(&self) -> u64 {
        self.steps.iter().map(|s| s.max_accesses.max(1)).sum()
    }

    /// Total work: the sum over steps of `tasks × max_accesses` — what a
    /// work-time scheduling argument charges.
    pub fn work(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| s.tasks * s.max_accesses.max(1))
            .sum()
    }

    /// Total shared-memory accesses actually issued (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.steps.iter().map(|s| s.reads + s.writes).sum()
    }

    /// Total comparisons charged by the algorithm.
    pub fn comparisons(&self) -> u64 {
        self.steps.iter().map(|s| s.comparisons).sum()
    }

    /// The largest number of processors used in any single step — the
    /// processor count required to achieve [`PramStats::parallel_time`].
    pub fn max_processors(&self) -> u64 {
        self.steps.iter().map(|s| s.tasks).max().unwrap_or(0)
    }

    /// Parallel time on a machine with only `p` processors, by Brent's
    /// scheduling principle: a step with `t` tasks of duration `d` takes
    /// `ceil(t / p) · d` time.
    pub fn brent_time(&self, p: u64) -> u64 {
        assert!(p > 0, "Brent scheduling needs at least one processor");
        self.steps
            .iter()
            .map(|s| s.tasks.div_ceil(p).max(1) * s.max_accesses.max(1))
            .sum()
    }

    /// Speed-up of `p` processors over one processor under Brent scheduling.
    pub fn speedup(&self, p: u64) -> f64 {
        self.brent_time(1) as f64 / self.brent_time(p) as f64
    }

    /// Number of access conflicts that are violations under `model`
    /// (concurrent writes always count; concurrent reads only under EREW).
    pub fn conflicts(&self, model: PramModel) -> u64 {
        match model {
            PramModel::Erew => self.read_conflicts + self.write_conflicts,
            PramModel::Crew => self.write_conflicts,
        }
    }

    /// Merge another execution's statistics into this one (used when an
    /// algorithm is built from phases that run on separate machines).
    pub fn absorb(&mut self, other: &PramStats) {
        self.steps.extend(other.steps.iter().copied());
        self.read_conflicts += other.read_conflicts;
        self.write_conflicts += other.write_conflicts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(steps: Vec<StepRecord>) -> PramStats {
        PramStats {
            steps,
            read_conflicts: 0,
            write_conflicts: 0,
        }
    }

    fn step(tasks: u64, max_accesses: u64) -> StepRecord {
        StepRecord {
            tasks,
            max_accesses,
            reads: 0,
            writes: 0,
            comparisons: 0,
        }
    }

    #[test]
    fn parallel_time_sums_step_durations() {
        let s = stats_with(vec![step(8, 3), step(4, 5)]);
        assert_eq!(s.num_steps(), 2);
        assert_eq!(s.parallel_time(), 8);
        assert_eq!(s.work(), 8 * 3 + 4 * 5);
        assert_eq!(s.max_processors(), 8);
    }

    #[test]
    fn brent_time_with_unlimited_processors_equals_parallel_time() {
        let s = stats_with(vec![step(8, 3), step(4, 5), step(1, 1)]);
        assert_eq!(s.brent_time(1024), s.parallel_time());
    }

    #[test]
    fn brent_time_with_one_processor_equals_work() {
        let s = stats_with(vec![step(8, 3), step(4, 5)]);
        assert_eq!(s.brent_time(1), s.work());
    }

    #[test]
    fn brent_time_rounds_task_groups_up() {
        let s = stats_with(vec![step(5, 2)]);
        // 5 tasks on 2 processors: 3 rounds of duration 2.
        assert_eq!(s.brent_time(2), 6);
    }

    #[test]
    fn speedup_is_work_over_brent_time() {
        let s = stats_with(vec![step(16, 1); 4]);
        assert!((s.speedup(16) - 16.0).abs() < 1e-9);
        assert!((s.speedup(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn conflicts_depend_on_the_model() {
        let mut s = stats_with(vec![]);
        s.read_conflicts = 3;
        s.write_conflicts = 1;
        assert_eq!(s.conflicts(PramModel::Erew), 4);
        assert_eq!(s.conflicts(PramModel::Crew), 1);
    }

    #[test]
    fn absorb_concatenates_steps() {
        let mut a = stats_with(vec![step(1, 1)]);
        let b = stats_with(vec![step(2, 2), step(3, 3)]);
        a.absorb(&b);
        assert_eq!(a.num_steps(), 3);
        assert_eq!(a.work(), 1 + 4 + 9);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn brent_time_rejects_zero_processors() {
        let _ = stats_with(vec![]).brent_time(0);
    }

    #[test]
    fn empty_stats_are_all_zero() {
        let s = PramStats::default();
        assert_eq!(s.parallel_time(), 0);
        assert_eq!(s.work(), 0);
        assert_eq!(s.accesses(), 0);
        assert_eq!(s.comparisons(), 0);
        assert_eq!(s.max_processors(), 0);
    }
}
