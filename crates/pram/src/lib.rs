//! # pram — a PRAM simulator and the parallel sorts the paper positions itself against
//!
//! Adaptive bitonic sorting was originally proposed by Bilardi & Nicolau for
//! a shared-memory **EREW-PRAM** ("PRAC — parallel random access computer"),
//! where it sorts `n` values in `O(log² n)` parallel time with `O(n / log n)`
//! processors and fewer than `2 n log n` comparisons in total. The GPU-ABiSort
//! paper (Section 2.1) compares this pedigree against Batcher's bitonic
//! sorting network (`O(n log² n)` work) and against asymptotically optimal
//! PRAM sorts with large constants (AKS network, Cole's parallel merge sort).
//!
//! This crate provides the substrate those claims are stated on:
//!
//! * [`machine`] — a synchronous PRAM with exclusive-read/exclusive-write
//!   (EREW) or concurrent-read (CREW) access checking, step/work accounting,
//!   and a Brent-scheduling time model for running `t` tasks on `p`
//!   processors;
//! * [`sorters::abisort_pram`] — the Bilardi–Nicolau parallel adaptive
//!   bitonic sort with the overlapped-stage schedule (`2j − 1` steps per
//!   recursion level) that Section 5.4 of the paper ports to the stream
//!   machine;
//! * [`sorters::bitonic_network`] — Batcher's bitonic sorting network, the
//!   non-optimal-work comparison point;
//! * [`sorters::rank_merge`] — a rank-based (binary-search) parallel merge
//!   sort: optimal `O(log² n)` time but `Θ(n log² n)` comparisons and CREW
//!   memory accesses. It stands in for the "asymptotically optimal but not
//!   fast in practice" PRAM sorts of Section 2.1 (Cole's pipelined merge
//!   sort itself is not reproduced; the substitution is recorded in
//!   DESIGN.md).
//!
//! The simulator *executes* every algorithm (the outputs are checked for
//! sortedness and permutation-of-input in the tests and experiments) while
//! recording exactly the quantities the complexity claims are about: parallel
//! steps, total work, shared-memory accesses, comparisons, and access
//! conflicts under the declared PRAM model.
//!
//! ## Quick start
//!
//! ```
//! use pram::{sorters, PramModel};
//! use stream_arch::Value;
//!
//! let input: Vec<Value> = (0..256u32).rev().map(|i| Value::new(i as f32, i)).collect();
//! let run = sorters::abisort_pram::sort(&input).unwrap();
//!
//! assert!(run.output.windows(2).all(|w| w[0] <= w[1]));
//! assert_eq!(run.stats.conflicts(PramModel::Erew), 0); // truly EREW
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod machine;
pub mod metrics;
pub mod sorters;

pub use error::{PramError, Result};
pub use machine::{Pram, PramModel, ProcCtx};
pub use metrics::{PramStats, StepRecord};
pub use sorters::SortRun;
