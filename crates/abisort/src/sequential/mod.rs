//! Sequential adaptive bitonic sorting (Section 4 of the paper).
//!
//! This module implements the classic Bilardi–Nicolau algorithm as the
//! paper recaps it (Section 4.1), the paper's own *simplified* variant of
//! the adaptive min/max determination (Section 4.2), and the merge-sort
//! driver that combines them into a complete `O(n log n)` sort.
//!
//! The sequential implementation serves three purposes:
//!
//! 1. it is the reference the stream implementation is validated against,
//! 2. it provides the comparison/operation counts for the work-complexity
//!    experiment (E13: fewer than `2 n log n` comparisons in total),
//! 3. it is a usable CPU sorter in its own right (the paper cites the
//!    original result that sequential adaptive bitonic sort is within a
//!    small factor of quicksort).

pub mod classic;
pub mod simplified;
mod sort;

pub use sort::{
    adaptive_bitonic_merge, adaptive_bitonic_sort, adaptive_bitonic_sort_with, MergeVariant,
    SortStats,
};

use stream_arch::Value;

/// Compare two values under the merge direction: "out of order" means
/// `a` should come after `b`.
///
/// For an ascending merge this is `a > b` (the paper's `(**)` condition);
/// for a descending merge the comparison is inverted, which is exactly the
/// `(... > ...) != reverseSortDir` test of the paper's kernels (Listing 3/4).
#[inline]
pub(crate) fn out_of_order(a: &Value, b: &Value, ascending: bool) -> bool {
    a.gt(b) == ascending
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_order_respects_direction() {
        let small = Value::new(1.0, 0);
        let big = Value::new(2.0, 0);
        assert!(out_of_order(&big, &small, true));
        assert!(!out_of_order(&small, &big, true));
        assert!(out_of_order(&small, &big, false));
        assert!(!out_of_order(&big, &small, false));
    }
}
