//! The paper's simplified adaptive min/max determination (Section 4.2).
//!
//! Exploiting that minimum and maximum are commutative, the two halves of
//! the bitonic sequence can be swapped up front whenever case (b) would
//! apply, reducing the algorithm to case (a) only. Compared to the classic
//! version a single pointer exchange was added (the sons of the root are
//! swapped along with the root/spare values), and the case distinction in
//! every later phase disappears — which is what makes the stream-kernel
//! implementation (Listing 3/4) small and branch-friendly.

use super::{out_of_order, sort::SortStats};
use stream_arch::Node;

/// One complete simplified adaptive min/max determination (phases
/// `0 … levels−1`) on the subtree rooted at `root` with spare `spare`.
pub fn min_max_determination(
    nodes: &mut [Node],
    root: usize,
    spare: usize,
    levels: u32,
    ascending: bool,
    stats: &mut SortStats,
) {
    // Phase 0: if root value > spare value, exchange the values of root and
    // spare as well as the two sons of root with each other.
    stats.comparisons += 1;
    if out_of_order(&nodes[root].value, &nodes[spare].value, ascending) {
        let tmp = nodes[root].value;
        nodes[root].value = nodes[spare].value;
        nodes[spare].value = tmp;
        let node = &mut nodes[root];
        std::mem::swap(&mut node.left, &mut node.right);
        stats.value_swaps += 1;
        stats.pointer_swaps += 1;
    }
    if levels <= 1 {
        return;
    }

    let mut p = nodes[root].left as usize;
    let mut q = nodes[root].right as usize;

    for _phase in 1..levels {
        stats.comparisons += 1;
        if out_of_order(&nodes[p].value, &nodes[q].value, ascending) {
            // Exchange the values of p and q as well as the left sons.
            let tmp = nodes[p].value;
            nodes[p].value = nodes[q].value;
            nodes[q].value = tmp;
            let tmp = nodes[p].left;
            nodes[p].left = nodes[q].left;
            nodes[q].left = tmp;
            stats.value_swaps += 1;
            stats.pointer_swaps += 1;
            // Assign the right sons of p, q to p, q.
            p = nodes[p].right as usize;
            q = nodes[q].right as usize;
        } else {
            // Assign the left sons of p, q to p, q.
            p = nodes[p].left as usize;
            q = nodes[q].left as usize;
        }
    }
}

/// The adaptive bitonic merge built on the simplified min/max
/// determination.
pub fn merge(
    nodes: &mut [Node],
    root: usize,
    spare: usize,
    levels: u32,
    ascending: bool,
    stats: &mut SortStats,
) {
    min_max_determination(nodes, root, spare, levels, ascending, stats);
    if levels > 1 {
        let left = nodes[root].left as usize;
        let right = nodes[root].right as usize;
        merge(nodes, left, root, levels - 1, ascending, stats);
        merge(nodes, right, spare, levels - 1, ascending, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::classic;
    use crate::tree::BitonicTree;
    use crate::verify::{is_permutation, is_sorted, is_sorted_descending};

    #[test]
    fn simplified_merge_sorts_bitonic_sequences() {
        for log_n in 1..=12u32 {
            let n = 1usize << log_n;
            let input = workloads::bitonic(n.max(2), 100 + log_n as u64);
            let mut tree = BitonicTree::from_values(&input);
            let mut stats = SortStats::default();
            let (root, spare) = (tree.root_index(), tree.spare_index());
            merge(tree.nodes_mut(), root, spare, log_n, true, &mut stats);
            let result = tree.to_sequence();
            assert!(is_sorted(&result), "n={n}");
            assert!(is_permutation(&input, &result), "n={n}");
        }
    }

    #[test]
    fn simplified_and_classic_produce_the_same_sequence() {
        for seed in 0..20u64 {
            let n = 256;
            let input = workloads::bitonic(n, seed);
            for ascending in [true, false] {
                let mut t1 = BitonicTree::from_values(&input);
                let mut t2 = BitonicTree::from_values(&input);
                let mut s1 = SortStats::default();
                let mut s2 = SortStats::default();
                classic::merge(t1.nodes_mut(), 127, 255, 8, ascending, &mut s1);
                merge(t2.nodes_mut(), 127, 255, 8, ascending, &mut s2);
                assert_eq!(t1.to_sequence(), t2.to_sequence(), "seed={seed}");
                // Both variants use exactly the same number of comparisons.
                assert_eq!(s1.comparisons, s2.comparisons);
            }
        }
    }

    #[test]
    fn simplified_merge_descending() {
        let input = workloads::bitonic(128, 77);
        let mut tree = BitonicTree::from_values(&input);
        let mut stats = SortStats::default();
        merge(tree.nodes_mut(), 63, 127, 7, false, &mut stats);
        let result = tree.to_sequence();
        assert!(is_sorted_descending(&result));
        assert!(is_permutation(&input, &result));
    }

    #[test]
    fn simplified_comparison_count_matches_closed_form() {
        // 2n − log n − 2 comparisons for one merge (Section 4.1).
        for log_n in 1..=10u32 {
            let n = 1usize << log_n;
            let input = workloads::bitonic(n.max(2), log_n as u64);
            let mut tree = BitonicTree::from_values(&input);
            let mut stats = SortStats::default();
            let (root, spare) = (tree.root_index(), tree.spare_index());
            merge(tree.nodes_mut(), root, spare, log_n, true, &mut stats);
            assert_eq!(stats.comparisons, (2 * n) as u64 - log_n as u64 - 2);
        }
    }

    #[test]
    fn phase_zero_swaps_sons_when_out_of_order() {
        // Construct a 4-element bitonic sequence where root > spare so the
        // simplified phase 0 must swap the sons.
        let input = vec![
            stream_arch::Value::new(2.0, 0),
            stream_arch::Value::new(9.0, 1),
            stream_arch::Value::new(7.0, 2),
            stream_arch::Value::new(1.0, 3),
        ];
        let mut tree = BitonicTree::from_values(&input);
        let before = tree.nodes()[1];
        let mut stats = SortStats::default();
        min_max_determination(tree.nodes_mut(), 1, 3, 2, true, &mut stats);
        let after = tree.nodes()[1];
        assert_eq!(after.left, before.right);
        assert_eq!(after.right, before.left);
        assert_eq!(after.value.key, 1.0);
        assert_eq!(tree.nodes()[3].value.key, 9.0);
    }
}
