//! The classic adaptive min/max determination and adaptive bitonic merge
//! (Section 4.1 of the paper, following Bilardi & Nicolau 1989).
//!
//! Given a bitonic tree (root + spare) the *adaptive min/max determination*
//! computes, in `log n` comparisons and fewer than `2 log n` exchanges, the
//! component-wise minimum sequence `p′` and maximum sequence `q′` of the
//! two halves of the represented bitonic sequence — in place, by walking a
//! single root-to-leaf path and swapping node values and child pointers.
//! Applied recursively down the tree this yields the *adaptive bitonic
//! merge* in `O(n)` sequential time.

use super::{out_of_order, sort::SortStats};
use stream_arch::Node;

/// One complete adaptive min/max determination (phases `0 … levels−1`) on
/// the subtree rooted at `root` with spare node `spare`, distinguishing the
/// paper's cases (a) and (b).
///
/// `levels` is the number of phases, i.e. `log₂` of the length of the
/// bitonic sequence represented by the subtree plus spare.
pub fn min_max_determination(
    nodes: &mut [Node],
    root: usize,
    spare: usize,
    levels: u32,
    ascending: bool,
    stats: &mut SortStats,
) {
    // Phase 0: determine which case applies.
    stats.comparisons += 1;
    let case_b = out_of_order(&nodes[root].value, &nodes[spare].value, ascending);
    if case_b {
        // Only in case (b): exchange the values of root and spare.
        let tmp = nodes[root].value;
        nodes[root].value = nodes[spare].value;
        nodes[spare].value = tmp;
        stats.value_swaps += 1;
    }
    if levels <= 1 {
        return;
    }

    let mut p = nodes[root].left as usize;
    let mut q = nodes[root].right as usize;

    for _phase in 1..levels {
        stats.comparisons += 1;
        let cond = out_of_order(&nodes[p].value, &nodes[q].value, ascending); // (**)
        if cond {
            // Exchange the values of p and q …
            let tmp = nodes[p].value;
            nodes[p].value = nodes[q].value;
            nodes[q].value = tmp;
            stats.value_swaps += 1;
            // … as well as, in case (a), the left sons, in case (b), the
            // right sons.
            if !case_b {
                let tmp = nodes[p].left;
                nodes[p].left = nodes[q].left;
                nodes[q].left = tmp;
            } else {
                let tmp = nodes[p].right;
                nodes[p].right = nodes[q].right;
                nodes[q].right = tmp;
            }
            stats.pointer_swaps += 1;
        }
        // Descend: left sons iff (case (a) and not (**)) or (case (b) and
        // (**)); otherwise right sons.
        let go_left = (!case_b && !cond) || (case_b && cond);
        if go_left {
            p = nodes[p].left as usize;
            q = nodes[q].left as usize;
        } else {
            p = nodes[p].right as usize;
            q = nodes[q].right as usize;
        }
    }
}

/// The classic adaptive bitonic merge: run the min/max determination on the
/// root, then recurse into both halves (Section 4.1).
pub fn merge(
    nodes: &mut [Node],
    root: usize,
    spare: usize,
    levels: u32,
    ascending: bool,
    stats: &mut SortStats,
) {
    min_max_determination(nodes, root, spare, levels, ascending, stats);
    if levels > 1 {
        let left = nodes[root].left as usize;
        let right = nodes[root].right as usize;
        // 1. root's left son as new root, root as new spare node.
        merge(nodes, left, root, levels - 1, ascending, stats);
        // 2. root's right son as new root, spare as new spare node.
        merge(nodes, right, spare, levels - 1, ascending, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::BitonicTree;
    use crate::verify::{is_permutation, is_sorted, is_sorted_descending};
    use stream_arch::Value;

    fn vals(keys: &[f32]) -> Vec<Value> {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| Value::new(k, i as u32))
            .collect()
    }

    /// The 16-value bitonic sequence of the paper's Figure 1.
    fn figure1_input() -> Vec<Value> {
        vals(&[
            0.0, 2.0, 3.0, 5.0, 7.0, 10.0, 11.0, 13.0, 15.0, 14.0, 12.0, 9.0, 8.0, 6.0, 4.0, 1.0,
        ])
    }

    #[test]
    fn figure1_first_stage_produces_expected_halves() {
        // Figure 1, second row: after the first min/max determination the
        // halves are (0 2 3 5 7 6 4 1) and (15 14 12 9 8 10 11 13).
        let input = figure1_input();
        let mut tree = BitonicTree::from_values(&input);
        let mut stats = SortStats::default();
        min_max_determination(tree.nodes_mut(), 7, 15, 4, true, &mut stats);
        let p = tree.in_order_of(tree.nodes()[7].left as usize, 7, 3);
        let q = tree.in_order_of(tree.nodes()[7].right as usize, 15, 3);
        let keys = |v: &[Value]| -> Vec<f32> { v.iter().map(|x| x.key).collect() };
        assert_eq!(keys(&p), vec![0.0, 2.0, 3.0, 5.0, 7.0, 6.0, 4.0, 1.0]);
        assert_eq!(keys(&q), vec![15.0, 14.0, 12.0, 9.0, 8.0, 10.0, 11.0, 13.0]);
        // Exactly log n = 4 comparisons were used.
        assert_eq!(stats.comparisons, 4);
    }

    #[test]
    fn figure1_full_merge_sorts_the_sequence() {
        let input = figure1_input();
        let mut tree = BitonicTree::from_values(&input);
        let mut stats = SortStats::default();
        merge(tree.nodes_mut(), 7, 15, 4, true, &mut stats);
        let result = tree.to_sequence();
        assert!(is_sorted(&result));
        assert!(is_permutation(&input, &result));
        let keys: Vec<f32> = result.iter().map(|x| x.key).collect();
        assert_eq!(keys, (0..16).map(|i| i as f32).collect::<Vec<_>>());
    }

    #[test]
    fn merge_comparison_count_is_linear() {
        // Per Section 4.1 the merge of n values needs 2n − log n − 2
        // comparisons.
        for log_n in 1..=10u32 {
            let n = 1usize << log_n;
            let input = workloads::bitonic(n.max(2), 7 + log_n as u64);
            let mut tree = BitonicTree::from_values(&input);
            let mut stats = SortStats::default();
            let (root, spare) = (tree.root_index(), tree.spare_index());
            merge(tree.nodes_mut(), root, spare, log_n, true, &mut stats);
            assert_eq!(
                stats.comparisons,
                (2 * n) as u64 - log_n as u64 - 2,
                "n={n}"
            );
            assert!(is_sorted(&tree.to_sequence()));
        }
    }

    #[test]
    fn merge_descending_direction() {
        let input = workloads::bitonic(64, 3);
        let mut tree = BitonicTree::from_values(&input);
        let mut stats = SortStats::default();
        merge(tree.nodes_mut(), 31, 63, 6, false, &mut stats);
        let result = tree.to_sequence();
        assert!(is_sorted_descending(&result));
        assert!(is_permutation(&input, &result));
    }

    #[test]
    fn merge_of_two_element_sequence() {
        let input = vals(&[5.0, 1.0]);
        let mut tree = BitonicTree::from_values(&input);
        let mut stats = SortStats::default();
        merge(tree.nodes_mut(), 0, 1, 1, true, &mut stats);
        let result = tree.to_sequence();
        assert_eq!(result[0].key, 1.0);
        assert_eq!(result[1].key, 5.0);
        assert_eq!(stats.comparisons, 1);
    }

    #[test]
    fn merge_handles_already_sorted_bitonic_input() {
        let mut input = workloads::uniform(128, 5);
        input.sort();
        let mut tree = BitonicTree::from_values(&input);
        let mut stats = SortStats::default();
        merge(tree.nodes_mut(), 63, 127, 7, true, &mut stats);
        assert_eq!(tree.to_sequence(), input);
    }

    #[test]
    fn merge_keeps_block_membership() {
        // Pointer swaps must never leak nodes out of the merged block.
        let input = workloads::bitonic(32, 11);
        let mut tree = BitonicTree::from_values(&input);
        let mut stats = SortStats::default();
        merge(tree.nodes_mut(), 15, 31, 5, true, &mut stats);
        let reach = tree.reachable_from(15, 5);
        assert_eq!(reach, (0..31).collect::<Vec<_>>());
    }
}
