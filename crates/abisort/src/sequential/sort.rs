//! The sequential adaptive bitonic *sort*: a merge sort whose merge step is
//! the adaptive bitonic merge (end of Section 4.1).
//!
//! The sort works level by level on one in-order-stored node pool
//! ([`crate::tree::BitonicTree`]): at recursion level `j` the pool contains
//! `n / 2^j` bitonic trees of `2^j` nodes each (every block of `2^j`
//! consecutive in-order positions, rooted at the block's centre position
//! with the block's last position as spare), and the adaptive bitonic merge
//! is applied to each of them with alternating sort directions so that the
//! next level again sees bitonic inputs. This is exactly the structure the
//! stream implementation parallelises (Section 5.1).

use super::{classic, simplified};
use crate::tree::{block_root_index, block_spare_index, BitonicTree};
use stream_arch::Value;

/// Which variant of the adaptive min/max determination to use.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum MergeVariant {
    /// The classic algorithm with the case (a)/(b) distinction
    /// (Section 4.1).
    Classic,
    /// The paper's simplified variant (Section 4.2) — the default, and the
    /// one the stream kernels implement.
    #[default]
    Simplified,
}

/// Operation counts of a sequential sort or merge.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SortStats {
    /// Key comparisons performed.
    pub comparisons: u64,
    /// Value exchanges performed.
    pub value_swaps: u64,
    /// Child-pointer exchanges performed.
    pub pointer_swaps: u64,
    /// Number of adaptive bitonic merges executed.
    pub merges: u64,
}

impl SortStats {
    /// The paper's bound on the total number of comparisons of the full
    /// sort: "less than 2 n log n in total for a sequence of length n"
    /// (Section 2.1).
    pub fn within_comparison_bound(&self, n: usize) -> bool {
        let n = n as u64;
        let log_n = usize::BITS as u64 - (n - 1).leading_zeros() as u64;
        self.comparisons < 2 * n * log_n.max(1)
    }
}

/// Sort `values` ascending with the sequential adaptive bitonic sort
/// (simplified merge variant). The length may be arbitrary; non-power-of-two
/// inputs are padded internally (see [`adaptive_bitonic_sort_with`]).
pub fn adaptive_bitonic_sort(values: &[Value]) -> Vec<Value> {
    adaptive_bitonic_sort_with(values, MergeVariant::Simplified).0
}

/// Sort `values` ascending and return the operation counts.
///
/// The paper assumes power-of-two input lengths ("this can be achieved by
/// padding the input sequence", Section 4); this function performs that
/// padding transparently: the input is padded with sentinel elements that
/// sort after every possible input, sorted, and cut off again. The returned
/// statistics include the work spent on the padding.
pub fn adaptive_bitonic_sort_with(
    values: &[Value],
    variant: MergeVariant,
) -> (Vec<Value>, SortStats) {
    let mut stats = SortStats::default();
    let n = values.len();
    if n <= 1 {
        return (values.to_vec(), stats);
    }
    let padded_len = n.next_power_of_two();
    let mut padded = values.to_vec();
    for i in 0..(padded_len - n) {
        padded.push(Value::padding_sentinel(i));
    }

    let mut tree = BitonicTree::from_values(&padded);
    let log_n = padded_len.trailing_zeros();

    for j in 1..=log_n {
        let block = 1usize << j;
        for t in 0..padded_len / block {
            let ascending = t % 2 == 0;
            let root = block_root_index(t, block);
            let spare = block_spare_index(t, block);
            stats.merges += 1;
            match variant {
                MergeVariant::Classic => {
                    classic::merge(tree.nodes_mut(), root, spare, j, ascending, &mut stats)
                }
                MergeVariant::Simplified => {
                    simplified::merge(tree.nodes_mut(), root, spare, j, ascending, &mut stats)
                }
            }
        }
    }

    let mut out = tree.to_sequence();
    out.truncate(n);
    (out, stats)
}

/// Merge one bitonic sequence (power-of-two length) into a monotonic
/// sequence in the requested direction, returning the result and the
/// operation counts. This is the sequential reference for the stream merge.
pub fn adaptive_bitonic_merge(
    bitonic: &[Value],
    ascending: bool,
    variant: MergeVariant,
) -> (Vec<Value>, SortStats) {
    let n = bitonic.len();
    assert!(
        n >= 2 && n.is_power_of_two(),
        "bitonic merge needs a power-of-two length >= 2"
    );
    let mut tree = BitonicTree::from_values(bitonic);
    let mut stats = SortStats::default();
    stats.merges += 1;
    let levels = n.trailing_zeros();
    let root = tree.root_index();
    let spare = tree.spare_index();
    match variant {
        MergeVariant::Classic => {
            classic::merge(tree.nodes_mut(), root, spare, levels, ascending, &mut stats)
        }
        MergeVariant::Simplified => {
            simplified::merge(tree.nodes_mut(), root, spare, levels, ascending, &mut stats)
        }
    }
    (tree.to_sequence(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_sorts, is_permutation, is_sorted};
    use workloads::Distribution;

    #[test]
    fn sorts_random_inputs_of_power_of_two_lengths() {
        for log_n in 1..=13u32 {
            let n = 1usize << log_n;
            let input = workloads::uniform(n, log_n as u64);
            let (out, stats) = adaptive_bitonic_sort_with(&input, MergeVariant::Simplified);
            check_sorts(&input, &out).unwrap();
            assert!(stats.within_comparison_bound(n), "n={n}: {stats:?}");
        }
    }

    #[test]
    fn sorts_non_power_of_two_lengths_by_padding() {
        for &n in &[0usize, 1, 3, 5, 100, 1000, 1023, 1025] {
            let input = workloads::uniform(n, n as u64);
            let out = adaptive_bitonic_sort(&input);
            assert_eq!(out.len(), n);
            if n > 0 {
                check_sorts(&input, &out).unwrap();
            }
        }
    }

    #[test]
    fn classic_and_simplified_sorts_agree() {
        for seed in 0..10u64 {
            let input = workloads::uniform(512, seed);
            let (a, sa) = adaptive_bitonic_sort_with(&input, MergeVariant::Classic);
            let (b, sb) = adaptive_bitonic_sort_with(&input, MergeVariant::Simplified);
            assert_eq!(a, b);
            assert_eq!(sa.comparisons, sb.comparisons);
        }
    }

    #[test]
    fn comparison_count_is_data_independent() {
        // The total number of comparisons performed by the adaptive bitonic
        // sort does not depend on the data (Section 8: "the timings of
        // GPU-ABiSort do not vary significantly dependent on the data to
        // sort (because the total number of comparisons ... is not data
        // dependent)").
        let n = 1024;
        let mut counts = std::collections::HashSet::new();
        for dist in Distribution::all_for_data_dependence() {
            let input = workloads::generate(dist, n, 3);
            let (_, stats) = adaptive_bitonic_sort_with(&input, MergeVariant::Simplified);
            counts.insert(stats.comparisons);
        }
        assert_eq!(
            counts.len(),
            1,
            "comparison count varied across inputs: {counts:?}"
        );
    }

    #[test]
    fn comparison_bound_is_tight_enough_to_be_meaningful() {
        let n = 4096;
        let input = workloads::uniform(n, 1);
        let (_, stats) = adaptive_bitonic_sort_with(&input, MergeVariant::Simplified);
        let log_n = 12u64;
        // Fewer than 2 n log n but more than (n/2) log n — i.e. the counter
        // actually counts something of the right magnitude.
        assert!(stats.comparisons < 2 * n as u64 * log_n);
        assert!(stats.comparisons > (n as u64 / 2) * log_n);
    }

    #[test]
    fn merge_helper_handles_both_directions() {
        let input = workloads::bitonic(256, 21);
        let (asc, _) = adaptive_bitonic_merge(&input, true, MergeVariant::Simplified);
        assert!(is_sorted(&asc));
        assert!(is_permutation(&input, &asc));
        let (desc, _) = adaptive_bitonic_merge(&input, false, MergeVariant::Classic);
        assert!(crate::verify::is_sorted_descending(&desc));
        assert!(is_permutation(&input, &desc));
    }

    #[test]
    fn sorts_adversarial_distributions() {
        for dist in [
            Distribution::Sorted,
            Distribution::Reverse,
            Distribution::Constant,
            Distribution::FewDistinct { distinct: 2 },
            Distribution::OrganPipe,
        ] {
            let input = workloads::generate(dist, 2048, 9);
            let out = adaptive_bitonic_sort(&input);
            check_sorts(&input, &out).unwrap_or_else(|e| panic!("{}: {e}", dist.name()));
        }
    }

    #[test]
    fn tiny_inputs() {
        assert!(adaptive_bitonic_sort(&[]).is_empty());
        let one = vec![stream_arch::Value::new(3.0, 0)];
        assert_eq!(adaptive_bitonic_sort(&one), one);
        let two = vec![
            stream_arch::Value::new(3.0, 0),
            stream_arch::Value::new(1.0, 1),
        ];
        let out = adaptive_bitonic_sort(&two);
        assert_eq!(out[0].key, 1.0);
        assert_eq!(out[1].key, 3.0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn merge_rejects_non_power_of_two() {
        let input = workloads::uniform(6, 0);
        let _ = adaptive_bitonic_merge(&input, true, MergeVariant::Simplified);
    }
}
