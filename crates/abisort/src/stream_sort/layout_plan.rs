//! The output-stream memory layout (Table 1) and the stage/phase schedules
//! (Sections 5.3, 5.4 and 7.2), including generators for the layout tables
//! shown in Figures 4–7 of the paper.
//!
//! On recursion level `j` of the sort, `numTrees = n / 2^j` bitonic trees
//! of `2^j` nodes are merged simultaneously. The merge runs in stages
//! `k = 0 … j−1`; stage `k` runs phases `i = 0 … j−k−1`; every phase writes
//! exactly `2^k · numTrees` node pairs. Table 1 assigns each phase a
//! contiguous block of the `n/2`-pair output stream such that a block only
//! ever overwrites node pairs that are no longer needed:
//!
//! | phase | start (pairs)                       | end (pairs)                          |
//! |-------|-------------------------------------|--------------------------------------|
//! | 0     | `0`                                 | `2^k · numTrees`                     |
//! | 1     | `2^k · numTrees`                    | `2^{k+1} · numTrees`                 |
//! | i > 1 | `(2^{k+i−1} + 2^k) · numTrees`      | `(2^{k+i−1} + 2^{k+1}) · numTrees`   |
//!
//! The *overlapped* schedule (Section 5.4) starts stage `k` at step `2k`
//! and lets it proceed one phase per step, so that a whole merge takes
//! `2j − 1` steps; when the last `s` stages are replaced by the fixed merge
//! of Section 7.2 the step count drops to `2j − 1 − s`.

use serde::{Deserialize, Serialize};

/// Identifies one phase of one merge stage.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhaseRef {
    /// Merge stage `k` (0-based).
    pub stage: u32,
    /// Phase `i` within the stage (0-based).
    pub phase: u32,
}

/// Table 1: the output block of phase `i` of stage `k`, in **node pairs**,
/// for a merge of `num_trees` simultaneous bitonic trees.
///
/// Returns `(start, len)`; the length is always `2^k · num_trees`.
pub fn table1_pair_block(stage: u32, phase: u32, num_trees: usize) -> (usize, usize) {
    let len = (1usize << stage) * num_trees;
    let start = match phase {
        0 => 0,
        1 => (1usize << stage) * num_trees,
        i => ((1usize << (stage + i - 1)) + (1usize << stage)) * num_trees,
    };
    (start, len)
}

/// Table 1 in **node elements** (two elements per pair).
pub fn table1_element_block(stage: u32, phase: u32, num_trees: usize) -> (usize, usize) {
    let (start, len) = table1_pair_block(stage, phase, num_trees);
    (2 * start, 2 * len)
}

/// The phases of one merge at recursion level `j`, in the fully sequential
/// order of Section 5.3 / Listing 5 (stage-major).
pub fn sequential_schedule(j: u32) -> Vec<PhaseRef> {
    let mut out = Vec::new();
    for stage in 0..j {
        for phase in 0..(j - stage) {
            out.push(PhaseRef { stage, phase });
        }
    }
    out
}

/// The partially overlapped schedule of Section 5.4: step `s` executes
/// phase `s − 2k` of every active stage `k`. `skip_last_stages` drops the
/// final stages for the Section 7.2 optimization (the dropped stages'
/// subtrees are handled by the fixed 16-element merge instead).
///
/// Returns one `Vec<PhaseRef>` per step; within a step the phases are
/// ordered by increasing stage.
pub fn overlapped_schedule(j: u32, skip_last_stages: u32) -> Vec<Vec<PhaseRef>> {
    if skip_last_stages >= j {
        return Vec::new();
    }
    let last_stage = j - 1 - skip_last_stages;
    let num_steps = j + last_stage; // = 2j − 1 − skip
    let mut steps = Vec::with_capacity(num_steps as usize);
    for s in 0..num_steps {
        let k_min = (s + 1).saturating_sub(j);
        let k_max = (s / 2).min(last_stage);
        let mut step = Vec::new();
        for k in k_min..=k_max {
            let phase = s - 2 * k;
            debug_assert!(phase < j - k);
            step.push(PhaseRef { stage: k, phase });
        }
        steps.push(step);
    }
    steps
}

/// Number of phases of one merge at level `j` (Section 5.4:
/// `½ j² + ½ j` in total).
pub fn phases_per_level(j: u32) -> u64 {
    (u64::from(j) * u64::from(j) + u64::from(j)) / 2
}

/// Number of steps of one merge at level `j` under the overlapped schedule
/// (`2j − 1`, Section 5.4), optionally with the last stages skipped.
pub fn steps_per_level(j: u32, skip_last_stages: u32) -> u64 {
    if skip_last_stages >= j {
        0
    } else {
        u64::from(2 * j - 1 - skip_last_stages)
    }
}

/// Total phases of the whole (unoptimized) sort of `n = 2^log_n` values —
/// the `O(log³ n)` stream-operation count of Section 5.3.
pub fn total_phases(log_n: u32) -> u64 {
    (1..=log_n).map(phases_per_level).sum()
}

/// Total steps of the whole sort under the overlapped schedule — the
/// `O(log² n)` stream-operation count of Section 5.4.
pub fn total_steps(log_n: u32) -> u64 {
    (1..=log_n).map(|j| steps_per_level(j, 0)).sum()
}

// ---------------------------------------------------------------------------
// Figure 4–7 layout tables
// ---------------------------------------------------------------------------

/// What one node of a written pair is, in the figures' notation: a tree
/// level (0 = root) or the spare node.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeTag {
    /// A node of the given tree level.
    Level(u32),
    /// The spare node of the bitonic tree.
    Spare,
}

impl NodeTag {
    fn symbol(&self) -> String {
        match self {
            NodeTag::Level(l) => l.to_string(),
            NodeTag::Spare => "s".to_string(),
        }
    }
}

/// The label of one node-pair cell in a layout figure.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellLabel {
    /// Tag of the first node of the pair.
    pub first: NodeTag,
    /// Tag of the second node of the pair.
    pub second: NodeTag,
    /// Which of the simultaneously merged bitonic trees the pair belongs to
    /// (the red/black distinction of Figure 5).
    pub tree: usize,
}

impl CellLabel {
    /// The two-character cell text used in the paper's figures, e.g. `"0s"`,
    /// `"21"`, `"33"`.
    pub fn text(&self) -> String {
        format!("{}{}", self.first.symbol(), self.second.symbol())
    }
}

/// One row of a layout figure: the phases executed in this row and the
/// resulting stream contents.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayoutRow {
    /// Row label (e.g. `"stage 1 phase 2"` or `"step 4 (stages 1,2)"`).
    pub label: String,
    /// The pairs newly written in this row (pair position → label).
    pub written: Vec<(usize, CellLabel)>,
    /// The full stream contents after this row (None = never written).
    pub cells: Vec<Option<CellLabel>>,
}

impl LayoutRow {
    /// The non-empty cells in stream order — the sequence of two-character
    /// labels the paper's figures print (empty positions are skipped there).
    pub fn non_empty_cell_text(&self) -> Vec<String> {
        self.cells.iter().flatten().map(|c| c.text()).collect()
    }
}

/// A complete layout table (one of Figures 4–7).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayoutTable {
    /// Recursion level `j` of the merge.
    pub j: u32,
    /// Number of simultaneously merged trees.
    pub num_trees: usize,
    /// Rows in execution order.
    pub rows: Vec<LayoutRow>,
}

impl LayoutTable {
    /// Render the table as fixed-width text resembling the paper's figures.
    pub fn render(&self) -> String {
        let pairs = self.num_trees << (self.j - 1);
        let mut out = String::new();
        let label_width = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(0)
            .max(12);
        out.push_str(&format!("{:label_width$} |", "stage/phase"));
        for p in 0..pairs {
            out.push_str(&format!(" {p:>2}"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:label_width$} |", row.label));
            for cell in &row.cells {
                match cell {
                    Some(c) => out.push_str(&format!(" {:>2}", c.text())),
                    None => out.push_str("  ."),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// The cell labels written by one phase, in pair order within its block.
fn phase_cells(stage: u32, phase: u32, num_trees: usize) -> Vec<CellLabel> {
    let per_tree = 1usize << stage;
    let mut cells = Vec::with_capacity(per_tree * num_trees);
    for tree in 0..num_trees {
        for m in 0..per_tree {
            let label = if phase == 0 {
                // Pair = (subtree root of level k, its spare). The spare of
                // the m-th subtree (in in-order order) is the upper-level
                // node that follows the subtree in the in-order traversal:
                // level k − 1 − trailing_ones(m), or the tree's spare node.
                let trailing_ones = (!(m as u64)).trailing_zeros();
                let spare = if m == per_tree - 1 {
                    NodeTag::Spare
                } else {
                    NodeTag::Level(stage - 1 - trailing_ones)
                };
                CellLabel {
                    first: NodeTag::Level(stage),
                    second: spare,
                    tree,
                }
            } else {
                let level = NodeTag::Level(stage + phase);
                CellLabel {
                    first: level,
                    second: level,
                    tree,
                }
            };
            cells.push(label);
        }
    }
    cells
}

fn apply_phases(
    rows: &mut Vec<LayoutRow>,
    cells: &mut [Option<CellLabel>],
    label: String,
    phases: &[PhaseRef],
    num_trees: usize,
) {
    let mut written = Vec::new();
    for pr in phases {
        let (start, len) = table1_pair_block(pr.stage, pr.phase, num_trees);
        let labels = phase_cells(pr.stage, pr.phase, num_trees);
        debug_assert_eq!(labels.len(), len);
        for (offset, label) in labels.into_iter().enumerate() {
            cells[start + offset] = Some(label);
            written.push((start + offset, label));
        }
    }
    rows.push(LayoutRow {
        label,
        written,
        cells: cells.to_vec(),
    });
}

/// The layout table for a merge at level `j` of sorting `2^log_n` values
/// with sequential phase execution — Figure 4 (`j = log_n = 4`) and
/// Figure 5 (`j = 4`, `log_n = 5`).
pub fn figure_table_sequential(j: u32, log_n: u32) -> LayoutTable {
    assert!(j >= 1 && j <= log_n);
    let num_trees = 1usize << (log_n - j);
    let pairs = num_trees << (j - 1);
    let mut cells = vec![None; pairs];
    let mut rows = Vec::new();
    for pr in sequential_schedule(j) {
        apply_phases(
            &mut rows,
            &mut cells,
            format!("stage {} phase {}", pr.stage, pr.phase),
            &[pr],
            num_trees,
        );
    }
    LayoutTable { j, num_trees, rows }
}

/// The layout table for a merge at level `j` of sorting `2^log_n` values
/// with overlapped stage execution — Figure 6 (`j = 4`, `log_n = 5`,
/// no skipping) and Figure 7 (`j = 6`, `log_n = 6`, last 4 stages skipped).
pub fn figure_table_overlapped(j: u32, log_n: u32, skip_last_stages: u32) -> LayoutTable {
    assert!(j >= 1 && j <= log_n);
    let num_trees = 1usize << (log_n - j);
    let pairs = num_trees << (j - 1);
    let mut cells = vec![None; pairs];
    let mut rows = Vec::new();
    for (s, step) in overlapped_schedule(j, skip_last_stages).iter().enumerate() {
        let stages: Vec<String> = step.iter().map(|p| p.stage.to_string()).collect();
        apply_phases(
            &mut rows,
            &mut cells,
            format!("step {s} (stages {})", stages.join(",")),
            step,
            num_trees,
        );
    }
    LayoutTable { j, num_trees, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper_formulas() {
        // Level j = 4, one tree (Figure 4).
        assert_eq!(table1_pair_block(0, 0, 1), (0, 1));
        assert_eq!(table1_pair_block(0, 1, 1), (1, 1));
        assert_eq!(table1_pair_block(0, 2, 1), (3, 1));
        assert_eq!(table1_pair_block(0, 3, 1), (5, 1));
        assert_eq!(table1_pair_block(1, 0, 1), (0, 2));
        assert_eq!(table1_pair_block(1, 1, 1), (2, 2));
        assert_eq!(table1_pair_block(1, 2, 1), (6, 2));
        assert_eq!(table1_pair_block(2, 0, 1), (0, 4));
        assert_eq!(table1_pair_block(2, 1, 1), (4, 4));
        assert_eq!(table1_pair_block(3, 0, 1), (0, 8));
        // Two trees (Figure 5) scale every block by numTrees.
        assert_eq!(table1_pair_block(1, 2, 2), (12, 4));
        // Element blocks are twice the pair blocks.
        assert_eq!(table1_element_block(1, 1, 2), (8, 8));
    }

    #[test]
    fn every_block_fits_in_the_output_stream() {
        for log_n in 1..=16u32 {
            for j in 1..=log_n {
                let num_trees = 1usize << (log_n - j);
                let pairs = num_trees << (j - 1);
                for pr in sequential_schedule(j) {
                    let (start, len) = table1_pair_block(pr.stage, pr.phase, num_trees);
                    assert!(
                        start + len <= pairs,
                        "block out of range: log_n={log_n} j={j} {pr:?}"
                    );
                    assert_eq!(len, (1usize << pr.stage) * num_trees);
                }
            }
        }
    }

    #[test]
    fn sequential_schedule_has_the_expected_phase_count() {
        for j in 1..=20u32 {
            let sched = sequential_schedule(j);
            assert_eq!(sched.len() as u64, phases_per_level(j));
            // Every stage k appears with phases 0..j-k in order.
            let mut expected = Vec::new();
            for stage in 0..j {
                for phase in 0..(j - stage) {
                    expected.push(PhaseRef { stage, phase });
                }
            }
            assert_eq!(sched, expected);
        }
    }

    #[test]
    fn overlapped_schedule_runs_every_phase_exactly_once() {
        for j in 1..=16u32 {
            let steps = overlapped_schedule(j, 0);
            assert_eq!(steps.len() as u64, steps_per_level(j, 0));
            let mut seen = std::collections::HashSet::new();
            for (s, step) in steps.iter().enumerate() {
                assert!(!step.is_empty(), "empty step {s} for j={j}");
                for pr in step {
                    assert_eq!(pr.phase, s as u32 - 2 * pr.stage);
                    assert!(seen.insert(*pr), "phase executed twice: {pr:?}");
                }
            }
            assert_eq!(seen.len() as u64, phases_per_level(j));
        }
    }

    #[test]
    fn overlapped_schedule_respects_phase_dependencies() {
        // Phase i of stage k may run only after phase i+1 of stage k−1
        // (Section 5.4) and after phase i−1 of the same stage.
        for j in 1..=12u32 {
            let steps = overlapped_schedule(j, 0);
            let step_of = |target: PhaseRef| {
                steps
                    .iter()
                    .position(|s| s.contains(&target))
                    .unwrap_or(usize::MAX)
            };
            for (s, step) in steps.iter().enumerate() {
                for pr in step {
                    if pr.phase > 0 {
                        let prev = PhaseRef {
                            stage: pr.stage,
                            phase: pr.phase - 1,
                        };
                        assert!(step_of(prev) < s);
                    }
                    if pr.stage > 0 {
                        let parent = PhaseRef {
                            stage: pr.stage - 1,
                            phase: pr.phase + 1,
                        };
                        assert!(step_of(parent) < s, "j={j} {pr:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn blocks_within_one_step_do_not_overlap() {
        // Section 5.4: "the memory blocks belonging to a single step of the
        // algorithm do not overlap."
        for log_n in 2..=14u32 {
            for j in 1..=log_n {
                let num_trees = 1usize << (log_n - j);
                for step in overlapped_schedule(j, 0) {
                    for a in 0..step.len() {
                        for b in a + 1..step.len() {
                            let (s1, l1) =
                                table1_pair_block(step[a].stage, step[a].phase, num_trees);
                            let (s2, l2) =
                                table1_pair_block(step[b].stage, step[b].phase, num_trees);
                            assert!(
                                s1 + l1 <= s2 || s2 + l2 <= s1,
                                "overlap at j={j}: {:?} {:?}",
                                step[a],
                                step[b]
                            );
                        }
                    }
                }
            }
        }
    }

    /// The central safety property of Section 5.3: when a phase writes its
    /// block, that block contains no node pair that any *later* phase still
    /// needs to read. We verify the equivalent statement that the figures
    /// illustrate: once stage k phase 0 has written a subtree root/spare
    /// pair, the locations holding tree levels 0..k are never read again —
    /// by checking that the roots each phase-0 consumes were written by the
    /// immediately preceding phase 1 (stage k−1), whose block is disjoint
    /// from everything written in between.
    #[test]
    fn phase0_inputs_are_the_previous_stages_outputs() {
        for j in 2..=10u32 {
            let num_trees = 3; // arbitrary; formulas are linear in numTrees
            for k in 1..j {
                let (root_start, root_len) = table1_pair_block(k - 1, 1, num_trees);
                let (spare_start, spare_len) = table1_pair_block(k - 1, 0, num_trees);
                // Roots of stage k are read from elements [2^k·nT, 2^{k+1}·nT)
                // = pairs [2^{k-1}·nT, 2^k·nT) = the stage k−1 phase-1 block.
                assert_eq!(root_start, (1 << (k - 1)) * num_trees);
                assert_eq!(root_len, (1 << (k - 1)) * num_trees);
                // Spares are read from pairs [0, 2^{k-1}·nT) = the stage k−1
                // phase-0 block.
                assert_eq!(spare_start, 0);
                assert_eq!(spare_len, (1 << (k - 1)) * num_trees);
            }
        }
    }

    #[test]
    fn step_and_phase_totals_have_the_right_asymptotics() {
        assert_eq!(phases_per_level(4), 10);
        assert_eq!(steps_per_level(4, 0), 7);
        assert_eq!(steps_per_level(6, 4), 7); // Figure 7: 2·6 − 5 = 7 steps
                                              // O(log² n) vs O(log³ n): the ratio grows roughly like log n / 4.
        let log_n = 20;
        assert!(total_phases(log_n) > 3 * total_steps(log_n));
        assert!(total_phases(40) > 6 * total_steps(40));
        assert_eq!(
            total_steps(log_n),
            (1..=log_n).map(|j| 2 * j as u64 - 1).sum::<u64>()
        );
    }

    // --- Figure golden tests -------------------------------------------

    fn row_text(table: &LayoutTable, row: usize) -> Vec<String> {
        table.rows[row].non_empty_cell_text()
    }

    fn split(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    /// Figure 4: output stream layout for the last recursion level (j = 4)
    /// of sorting n = 2^4 values.
    #[test]
    fn figure4_golden() {
        let t = figure_table_sequential(4, 4);
        assert_eq!(t.rows.len(), 10);
        assert_eq!(row_text(&t, 0), split("0s"));
        assert_eq!(row_text(&t, 1), split("0s 11"));
        assert_eq!(row_text(&t, 2), split("0s 11 22"));
        assert_eq!(row_text(&t, 3), split("0s 11 22 33"));
        assert_eq!(row_text(&t, 4), split("10 1s 22 33"));
        assert_eq!(row_text(&t, 5), split("10 1s 22 22 33"));
        assert_eq!(row_text(&t, 6), split("10 1s 22 22 33 33 33"));
        assert_eq!(row_text(&t, 7), split("21 20 21 2s 33 33 33"));
        assert_eq!(row_text(&t, 8), split("21 20 21 2s 33 33 33 33"));
        assert_eq!(row_text(&t, 9), split("32 31 32 30 32 31 32 3s"));
    }

    /// Figure 5: layout for recursion level j = 4 of sorting n = 2^5 values
    /// (two bitonic trees merged simultaneously).
    #[test]
    fn figure5_golden() {
        let t = figure_table_sequential(4, 5);
        assert_eq!(t.num_trees, 2);
        assert_eq!(t.rows.len(), 10);
        assert_eq!(row_text(&t, 0), split("0s 0s"));
        assert_eq!(row_text(&t, 1), split("0s 0s 11 11"));
        assert_eq!(row_text(&t, 2), split("0s 0s 11 11 22 22"));
        assert_eq!(row_text(&t, 3), split("0s 0s 11 11 22 22 33 33"));
        assert_eq!(row_text(&t, 4), split("10 1s 10 1s 22 22 33 33"));
        assert_eq!(row_text(&t, 5), split("10 1s 10 1s 22 22 22 22 33 33"));
        assert_eq!(
            row_text(&t, 6),
            split("10 1s 10 1s 22 22 22 22 33 33 33 33 33 33")
        );
        assert_eq!(
            row_text(&t, 7),
            split("21 20 21 2s 21 20 21 2s 33 33 33 33 33 33")
        );
        assert_eq!(
            row_text(&t, 8),
            split("21 20 21 2s 21 20 21 2s 33 33 33 33 33 33 33 33")
        );
        assert_eq!(
            row_text(&t, 9),
            split("32 31 32 30 32 31 32 3s 32 31 32 30 32 31 32 3s")
        );
        // Second half of the final row belongs to the second tree
        // (the red nodes of the figure).
        let final_row = &t.rows[9];
        assert!(final_row.cells[..8].iter().all(|c| c.unwrap().tree == 0));
        assert!(final_row.cells[8..].iter().all(|c| c.unwrap().tree == 1));
    }

    /// Figure 6: overlapped execution of the Figure 5 merge.
    #[test]
    fn figure6_golden() {
        let t = figure_table_overlapped(4, 5, 0);
        assert_eq!(t.rows.len(), 7);
        assert_eq!(row_text(&t, 0), split("0s 0s"));
        assert_eq!(row_text(&t, 1), split("0s 0s 11 11"));
        assert_eq!(row_text(&t, 2), split("10 1s 10 1s 22 22"));
        assert_eq!(row_text(&t, 3), split("10 1s 10 1s 22 22 22 22 33 33"));
        assert_eq!(
            row_text(&t, 4),
            split("21 20 21 2s 21 20 21 2s 33 33 33 33 33 33")
        );
        assert_eq!(
            row_text(&t, 5),
            split("21 20 21 2s 21 20 21 2s 33 33 33 33 33 33 33 33")
        );
        assert_eq!(
            row_text(&t, 6),
            split("32 31 32 30 32 31 32 3s 32 31 32 30 32 31 32 3s")
        );
    }

    /// Figure 7: adaptive bitonic merging of 2^6 values when the optimized
    /// bitonic merge of 2^4 values is applied afterwards (last 4 stages
    /// skipped).
    #[test]
    fn figure7_golden() {
        let t = figure_table_overlapped(6, 6, 4);
        assert_eq!(t.rows.len(), 7); // 2·6 − 5 steps
        assert_eq!(row_text(&t, 0), split("0s"));
        assert_eq!(row_text(&t, 1), split("0s 11"));
        assert_eq!(row_text(&t, 2), split("10 1s 22"));
        assert_eq!(row_text(&t, 3), split("10 1s 22 22 33"));
        assert_eq!(row_text(&t, 4), split("10 1s 22 22 33 33 33 44"));
        assert_eq!(row_text(&t, 5), split("10 1s 22 22 33 33 33 44 44 44 55"));
        assert_eq!(
            row_text(&t, 6),
            split("10 1s 22 22 33 33 33 44 44 44 55 55 55")
        );
        // The written positions of the last rows match the paper's columns:
        // 44 at pairs 9..12, 55 at pairs 17..20.
        let row4: Vec<usize> = t.rows[4].written.iter().map(|(p, _)| *p).collect();
        assert!(row4.contains(&9));
        let row6: Vec<usize> = t.rows[6].written.iter().map(|(p, _)| *p).collect();
        assert_eq!(row6, vec![18, 19]);
    }

    #[test]
    fn render_produces_a_row_per_phase_and_marks_empty_cells() {
        let t = figure_table_sequential(3, 3);
        let text = t.render();
        assert_eq!(text.lines().count(), 1 + t.rows.len());
        assert!(text.contains(" ."));
        assert!(text.contains("0s"));
        // Overlapped render too.
        let t = figure_table_overlapped(3, 4, 0);
        assert!(t.render().contains("step 2"));
    }

    #[test]
    fn skipping_all_stages_yields_empty_schedule() {
        assert!(overlapped_schedule(4, 4).is_empty());
        assert!(overlapped_schedule(4, 7).is_empty());
        assert_eq!(steps_per_level(4, 4), 0);
    }
}
