//! The kernel programs of GPU-ABiSort and their launch wrappers.
//!
//! Each kernel comes in two forms:
//!
//! * a **bound form** (`bind_*` returning a `*Bound` struct) that performs
//!   the hardware validation and binds the input/gather/output substream
//!   views *without launching* — the launch-graph planner records these
//!   bindings as DAG nodes and later replays them, either eagerly or fused
//!   into multi-kernel stages ([`StreamProcessor::launch_stage`]);
//! * an **eager wrapper** (the original free function) that binds and
//!   launches in one call, used by tests and by the planner's eager
//!   interpreter.
//!
//! The kernels correspond to the paper's pseudo code and Section 7
//! descriptions:
//!
//! | function              | paper reference                                  |
//! |-----------------------|--------------------------------------------------|
//! | [`extract_roots_and_spares`] | Listing 5, initialization of stage 0 phase 0 |
//! | [`phase0`]             | Listing 3 (`phase0` kernel)                      |
//! | [`phase_i`]            | Listing 4 (`phaseI` kernel)                      |
//! | [`copy_back`]          | Section 6.1 (write-back to the permanent input stream) |
//! | [`commit_level`]       | Listing 2, `bitonicTrees[n..2n−1].value = GPUABiMerge(…)` |
//! | [`local_sort8`]        | Section 7.1, odd-even transition sort of 8 pairs |
//! | [`build_trees16`]      | Section 7.1 / 7.2, conversion of sorted 16-blocks to bitonic trees |
//! | [`traverse16`]         | Section 7.2, in-order traversal producing 16-value bitonic sequences |
//! | [`fixed_merge16`]      | Section 7.2, non-adaptive bitonic merge of 16 values |
//!
//! All kernels follow the convention of Listings 3/4 for the sort
//! direction: `reverseSortDir = isOdd(instance_index / numInstancesPerTree)`,
//! which makes the simultaneously merged trees alternate between ascending
//! and descending order so that the next recursion level again receives
//! bitonic inputs.

use crate::tree::fixed_children;
use stream_arch::{
    GatherView, IterStream, KernelCtx, Node, ReadView, Result, Stream, StreamProcessor, Value,
    WriteView, NULL_INDEX,
};

/// `isOdd(instance / numInstancesPerTree)` — the alternating sort direction
/// of Listings 3/4, expressed as "is this tree sorted ascending?".
#[inline]
fn ascending_for(instance: usize, instances_per_tree: usize) -> bool {
    (instance / instances_per_tree).is_multiple_of(2)
}

/// The comparison of Listings 3/4: `(p > q) != reverseSortDir`, i.e. the
/// pair is out of order with respect to the tree's sort direction.
#[inline]
fn out_of_order(ctx: &mut KernelCtx<'_>, p: &Value, q: &Value, ascending: bool) -> bool {
    ctx.count_comparisons(1);
    p.gt(q) == ascending
}

/// Bound form of [`extract_roots_and_spares`]: views and derived counts,
/// ready to run.
pub struct ExtractRootsSparesBound<'a> {
    gather: GatherView<'a, Node>,
    out: WriteView<'a, Node>,
    n: usize,
    num_trees: usize,
    pairs_per_tree: usize,
}

/// Validate and bind [`extract_roots_and_spares`] without launching.
pub fn bind_extract_roots_and_spares<'a>(
    proc: &StreamProcessor,
    trees_in: &'a Stream<Node>,
    trees_out: &'a mut Stream<Node>,
    n: usize,
    j: u32,
) -> Result<ExtractRootsSparesBound<'a>> {
    let num_trees = n >> j;
    let pairs_per_tree = 1usize << (j - 1);
    proc.check_distinct_io(
        &[(trees_in.id(), trees_in.name())],
        &[(trees_out.id(), trees_out.name())],
    )?;
    let gather = GatherView::new(trees_in);
    let out = WriteView::contiguous(trees_out, 0, 2 * num_trees, 1)?;
    Ok(ExtractRootsSparesBound {
        gather,
        out,
        n,
        num_trees,
        pairs_per_tree,
    })
}

impl ExtractRootsSparesBound<'_> {
    /// The launch name of this kernel.
    pub const NAME: &'static str = "extract-roots-spares";

    /// Number of kernel instances the launch covers.
    pub fn instances(&self) -> usize {
        2 * self.num_trees
    }

    /// One kernel instance (the body of Listing 5's initialization).
    ///
    /// Instances [0, numTrees) emit the spare values, instances
    /// [numTrees, 2·numTrees) the root nodes, so that a single linear write
    /// produces the layout stage 0 phase 0 expects.
    pub fn run(&self, ctx: &mut KernelCtx<'_>) {
        let i = ctx.instance_index();
        if i < self.num_trees {
            let spare_pos = self.n + (2 * i + 2) * self.pairs_per_tree - 1;
            let spare = self.gather.gather(ctx, spare_pos);
            self.out.set(ctx, 0, Node::leaf(spare.value));
        } else {
            let t = i - self.num_trees;
            let root_pos = self.n + (2 * t + 1) * self.pairs_per_tree - 1;
            let root = self.gather.gather(ctx, root_pos);
            self.out.set(ctx, 0, root);
        }
    }
}

/// Initialization of the merge at recursion level `j` (Listing 5, before
/// the stage loop): for each of the `numTrees` input bitonic trees, gather
/// its root and spare node from the in-order-stored input half of the node
/// stream and write them to the locations stage 0 phase 0 reads from
/// (spare values to elements `[0, numTrees)`, root nodes to
/// `[numTrees, 2·numTrees)`).
pub fn extract_roots_and_spares(
    proc: &mut StreamProcessor,
    trees_in: &Stream<Node>,
    trees_out: &mut Stream<Node>,
    n: usize,
    j: u32,
) -> Result<()> {
    let b = bind_extract_roots_and_spares(proc, trees_in, trees_out, n, j)?;
    proc.launch(ExtractRootsSparesBound::NAME, b.instances(), |ctx| {
        b.run(ctx)
    })
}

/// Bound form of [`phase0`].
pub struct Phase0Bound<'a> {
    root_in: ReadView<'a, Node>,
    spare_in: ReadView<'a, Node>,
    node_out: WriteView<'a, Node>,
    pq: WriteView<'a, u32>,
    len: usize,
    instances_per_tree: usize,
}

/// Validate and bind [`phase0`] without launching.
pub fn bind_phase0<'a>(
    proc: &StreamProcessor,
    trees_in: &'a Stream<Node>,
    trees_out: &'a mut Stream<Node>,
    pq_out: &'a mut Stream<u32>,
    pq_out_offset: usize,
    len: usize,
    instances_per_tree: usize,
) -> Result<Phase0Bound<'a>> {
    proc.check_distinct_io(
        &[(trees_in.id(), trees_in.name())],
        &[
            (trees_out.id(), trees_out.name()),
            (pq_out.id(), pq_out.name()),
        ],
    )?;
    let root_in = ReadView::contiguous(trees_in, len, len, 1)?;
    let spare_in = ReadView::contiguous(trees_in, 0, len, 1)?;
    let node_out = WriteView::contiguous(trees_out, 0, 2 * len, 2)?;
    let pq = WriteView::contiguous(pq_out, pq_out_offset, 2 * len, 2)?;
    Ok(Phase0Bound {
        root_in,
        spare_in,
        node_out,
        pq,
        len,
        instances_per_tree,
    })
}

impl Phase0Bound<'_> {
    /// The launch name of this kernel.
    pub const NAME: &'static str = "phase0";

    /// Number of kernel instances the launch covers.
    pub fn instances(&self) -> usize {
        self.len
    }

    /// One kernel instance (the body of Listing 3).
    pub fn run(&self, ctx: &mut KernelCtx<'_>) {
        let ascending = ascending_for(ctx.instance_index(), self.instances_per_tree);
        let mut root = self.root_in.get(ctx, 0);
        let mut spare_value = self.spare_in.get(ctx, 0).value;
        if out_of_order(ctx, &root.value, &spare_value, ascending) {
            std::mem::swap(&mut root.value, &mut spare_value);
            std::mem::swap(&mut root.left, &mut root.right);
        }
        self.pq.pair(ctx, root.left, root.right);
        self.node_out
            .pair(ctx, Node::leaf(root.value), Node::leaf(spare_value));
    }
}

/// The phase 0 kernel (Listing 3): one instance per bitonic (sub)tree.
///
/// Reads the subtree's root node and spare value, performs phase 0 of the
/// simplified adaptive min/max determination (Section 4.2), pushes the new
/// `(p, q)` node indices for phase 1, and writes the updated root and spare
/// *values* to elements `[0, 2·len)` of the node output stream.
#[allow(clippy::too_many_arguments)]
pub fn phase0(
    proc: &mut StreamProcessor,
    trees_in: &Stream<Node>,
    trees_out: &mut Stream<Node>,
    pq_out: &mut Stream<u32>,
    pq_out_offset: usize,
    len: usize,
    instances_per_tree: usize,
) -> Result<()> {
    let b = bind_phase0(
        proc,
        trees_in,
        trees_out,
        pq_out,
        pq_out_offset,
        len,
        instances_per_tree,
    )?;
    proc.launch(Phase0Bound::NAME, b.instances(), |ctx| b.run(ctx))
}

/// Bound form of [`phase_i`].
pub struct PhaseIBound<'a> {
    pq_read: ReadView<'a, u32>,
    gather: GatherView<'a, Node>,
    node_out: WriteView<'a, Node>,
    pq_write: WriteView<'a, u32>,
    index_generator: IterStream,
    len: usize,
    instances_per_tree: usize,
}

/// Validate and bind [`phase_i`] without launching.
#[allow(clippy::too_many_arguments)]
pub fn bind_phase_i<'a>(
    proc: &StreamProcessor,
    trees_in: &'a Stream<Node>,
    trees_out: &'a mut Stream<Node>,
    pq_in: &'a Stream<u32>,
    pq_in_offset: usize,
    pq_out: &'a mut Stream<u32>,
    pq_out_offset: usize,
    out_block: (usize, usize),
    next_block_start: usize,
    len: usize,
    instances_per_tree: usize,
) -> Result<PhaseIBound<'a>> {
    proc.check_distinct_io(
        &[(trees_in.id(), trees_in.name()), (pq_in.id(), pq_in.name())],
        &[
            (trees_out.id(), trees_out.name()),
            (pq_out.id(), pq_out.name()),
        ],
    )?;
    let pq_read = ReadView::contiguous(pq_in, pq_in_offset, 2 * len, 2)?;
    let gather = GatherView::new(trees_in);
    let node_out = WriteView::contiguous(trees_out, out_block.0, out_block.1, 2)?;
    let pq_write = WriteView::contiguous(pq_out, pq_out_offset, 2 * len, 2)?;
    // The iterator stream yields the element indices the *next* phase will
    // write to (Section 5.2), so child pointers can be redirected there.
    let index_generator = IterStream::range(next_block_start, 2 * len, 2);
    Ok(PhaseIBound {
        pq_read,
        gather,
        node_out,
        pq_write,
        index_generator,
        len,
        instances_per_tree,
    })
}

impl PhaseIBound<'_> {
    /// The launch name of this kernel.
    pub const NAME: &'static str = "phaseI";

    /// Number of kernel instances the launch covers.
    pub fn instances(&self) -> usize {
        self.len
    }

    /// One kernel instance (the body of Listing 4).
    pub fn run(&self, ctx: &mut KernelCtx<'_>) {
        let ascending = ascending_for(ctx.instance_index(), self.instances_per_tree);
        let (p_idx, q_idx) = self.pq_read.pair(ctx);
        let mut p = self.gather.gather(ctx, p_idx as usize);
        let mut q = self.gather.gather(ctx, q_idx as usize);
        if out_of_order(ctx, &p.value, &q.value, ascending) {
            std::mem::swap(&mut p.value, &mut q.value);
            std::mem::swap(&mut p.left, &mut q.left);
            self.pq_write.pair(ctx, p.right, q.right);
            let (np, nq) = self.index_generator.pair(ctx);
            p.right = np;
            q.right = nq;
        } else {
            self.pq_write.pair(ctx, p.left, q.left);
            let (np, nq) = self.index_generator.pair(ctx);
            p.left = np;
            q.left = nq;
        }
        self.node_out.pair(ctx, p, q);
    }
}

/// The phase `i > 0` kernel (Listing 4): one instance per `(p, q)` node
/// pair.
///
/// Recovers the `(p, q)` indices from the pq-index stream, gathers the two
/// nodes, performs one phase of the simplified adaptive min/max
/// determination, updates the child pointers that will be replaced in the
/// next phase using the iterator stream, and writes the modified node pair
/// linearly to its Table-1 output block.
#[allow(clippy::too_many_arguments)]
pub fn phase_i(
    proc: &mut StreamProcessor,
    trees_in: &Stream<Node>,
    trees_out: &mut Stream<Node>,
    pq_in: &Stream<u32>,
    pq_in_offset: usize,
    pq_out: &mut Stream<u32>,
    pq_out_offset: usize,
    out_block: (usize, usize),
    next_block_start: usize,
    len: usize,
    instances_per_tree: usize,
) -> Result<()> {
    let b = bind_phase_i(
        proc,
        trees_in,
        trees_out,
        pq_in,
        pq_in_offset,
        pq_out,
        pq_out_offset,
        out_block,
        next_block_start,
        len,
        instances_per_tree,
    )?;
    proc.launch(PhaseIBound::NAME, b.instances(), |ctx| b.run(ctx))
}

/// Copy the node pairs just written to the output stream back to the
/// permanent input stream (Section 6.1: "After each step of the algorithm,
/// all nodes that have just been written to the output stream are simply
/// copied back to the input stream").
pub fn copy_back(
    proc: &mut StreamProcessor,
    trees_out: &Stream<Node>,
    trees_in: &mut Stream<Node>,
    block: (usize, usize),
) -> Result<()> {
    debug_assert_eq!(block.1 % 2, 0);
    proc.check_distinct_io(
        &[(trees_out.id(), trees_out.name())],
        &[(trees_in.id(), trees_in.name())],
    )?;
    // A pure block forward: the executor's vectorized copy launch charges
    // it wholesale (and runs it as the per-element reference kernel under
    // per-access accounting).
    proc.launch_copy("copy-back", trees_out, trees_in, block, 2)
}

/// Bound form of [`commit_level`].
pub struct CommitLevelBound<'a> {
    src: ReadView<'a, Node>,
    dst: WriteView<'a, Node>,
    n: usize,
}

/// Validate and bind [`commit_level`] without launching.
pub fn bind_commit_level<'a>(
    proc: &StreamProcessor,
    trees_in: &'a Stream<Node>,
    trees_out: &'a mut Stream<Node>,
    n: usize,
) -> Result<CommitLevelBound<'a>> {
    proc.check_distinct_io(
        &[(trees_in.id(), trees_in.name())],
        &[(trees_out.id(), trees_out.name())],
    )?;
    let src = ReadView::contiguous(trees_in, 0, n, 2)?;
    let dst = WriteView::contiguous(trees_out, n, n, 2)?;
    Ok(CommitLevelBound { src, dst, n })
}

impl CommitLevelBound<'_> {
    /// The launch name of this kernel.
    pub const NAME: &'static str = "commit-level";

    /// Number of kernel instances the launch covers.
    pub fn instances(&self) -> usize {
        self.n / 2
    }

    /// One kernel instance: re-tree two in-order values.
    pub fn run(&self, ctx: &mut KernelCtx<'_>) {
        let (a, b) = self.src.pair(ctx);
        let base = ctx.instance_index() * 2;
        self.dst.write_all(
            ctx,
            &[
                in_order_node(a.value, self.n, base),
                in_order_node(b.value, self.n, base + 1),
            ],
        );
    }
}

/// End-of-level commit (Listing 2): reinterpret the in-order value sequence
/// produced by the final merge stage (elements `[0, n)` of the node stream)
/// as the input bitonic trees of the next recursion level by writing the
/// values into the second half `[n, 2n)` with the fixed in-order child
/// indices.
pub fn commit_level(
    proc: &mut StreamProcessor,
    trees_in: &Stream<Node>,
    trees_out: &mut Stream<Node>,
    n: usize,
) -> Result<()> {
    let b = bind_commit_level(proc, trees_in, trees_out, n)?;
    proc.launch(CommitLevelBound::NAME, b.instances(), |ctx| b.run(ctx))
}

/// Bound form of [`local_sort8`].
pub struct LocalSort8Bound<'a> {
    src: ReadView<'a, Value>,
    dst: WriteView<'a, Value>,
    n: usize,
}

/// Validate and bind [`local_sort8`] without launching.
pub fn bind_local_sort8<'a>(
    proc: &StreamProcessor,
    source: &'a Stream<Value>,
    sorted: &'a mut Stream<Value>,
    n: usize,
) -> Result<LocalSort8Bound<'a>> {
    assert!(
        n.is_multiple_of(8),
        "local sort requires a multiple of 8 elements"
    );
    proc.check_distinct_io(
        &[(source.id(), source.name())],
        &[(sorted.id(), sorted.name())],
    )?;
    let src = ReadView::contiguous(source, 0, n, 8)?;
    let dst = WriteView::contiguous(sorted, 0, n, 8)?;
    Ok(LocalSort8Bound { src, dst, n })
}

impl LocalSort8Bound<'_> {
    /// The launch name of this kernel.
    pub const NAME: &'static str = "local-sort-8";

    /// Number of kernel instances the launch covers.
    pub fn instances(&self) -> usize {
        self.n / 8
    }

    /// One kernel instance: odd-even transition sort of 8 pairs.
    pub fn run(&self, ctx: &mut KernelCtx<'_>) {
        let ascending = ctx.instance_index().is_multiple_of(2);
        let mut v = [Value::default(); 8];
        self.src.read_into(ctx, &mut v);
        // Odd-even transition sort: 8 passes of alternating adjacent
        // compare-exchanges (the comparison order that "allows for better
        // SIMD optimizations", Section 7.1).
        for pass in 0..8 {
            let start = pass % 2;
            let mut i = start;
            while i + 1 < 8 {
                if out_of_order(ctx, &v[i], &v[i + 1], ascending) {
                    v.swap(i, i + 1);
                }
                i += 2;
            }
        }
        self.dst.write_all(ctx, &v);
    }
}

/// The Section 7.1 local sort: each instance reads 8 value/pointer pairs
/// and sorts them with an odd-even transition sort, ascending for even
/// block indices and descending for odd ones, so that consecutive blocks
/// form bitonic 16-sequences.
///
/// 8 pairs × 8 bytes = 64 bytes is exactly the per-instance output limit of
/// the paper's GPUs (16 × 32 bit), which is why the local sort stops at 8.
pub fn local_sort8(
    proc: &mut StreamProcessor,
    source: &Stream<Value>,
    sorted: &mut Stream<Value>,
    n: usize,
) -> Result<()> {
    let b = bind_local_sort8(proc, source, sorted, n)?;
    proc.launch(LocalSort8Bound::NAME, b.instances(), |ctx| b.run(ctx))
}

/// Bound form of [`build_trees16`].
pub struct BuildTrees16Bound<'a> {
    src: ReadView<'a, Value>,
    dst: WriteView<'a, Node>,
    n: usize,
}

/// Validate and bind [`build_trees16`] without launching.
pub fn bind_build_trees16<'a>(
    proc: &StreamProcessor,
    values: &'a Stream<Value>,
    trees_out: &'a mut Stream<Node>,
    n: usize,
) -> Result<BuildTrees16Bound<'a>> {
    assert!(
        n.is_multiple_of(4),
        "tree building requires a multiple of 4 elements"
    );
    proc.check_distinct_io(
        &[(values.id(), values.name())],
        &[(trees_out.id(), trees_out.name())],
    )?;
    let src = ReadView::contiguous(values, 0, n, 4)?;
    let dst = WriteView::contiguous(trees_out, n, n, 4)?;
    Ok(BuildTrees16Bound { src, dst, n })
}

impl BuildTrees16Bound<'_> {
    /// The launch name of this kernel.
    pub const NAME: &'static str = "build-trees-16";

    /// Number of kernel instances the launch covers.
    pub fn instances(&self) -> usize {
        self.n / 4
    }

    /// One kernel instance: emit 4 in-order tree nodes.
    pub fn run(&self, ctx: &mut KernelCtx<'_>) {
        let base = ctx.instance_index() * 4;
        let mut values = [Value::default(); 4];
        self.src.read_into(ctx, &mut values);
        let mut nodes = [Node::default(); 4];
        for (slot, value) in values.into_iter().enumerate() {
            nodes[slot] = in_order_node(value, self.n, base + slot);
        }
        self.dst.write_all(ctx, &nodes);
    }
}

/// Convert sorted/merged 16-value blocks into in-order-stored bitonic trees
/// of 16 nodes in the input half `[n, 2n)` of the node stream
/// (Section 7.1 / 7.2). Each instance emits 4 nodes (4 × 16 bytes = the
/// per-instance output limit).
pub fn build_trees16(
    proc: &mut StreamProcessor,
    values: &Stream<Value>,
    trees_out: &mut Stream<Node>,
    n: usize,
) -> Result<()> {
    let b = bind_build_trees16(proc, values, trees_out, n)?;
    proc.launch(BuildTrees16Bound::NAME, b.instances(), |ctx| b.run(ctx))
}

/// Where the 16-element groups of the Section 7.2 fixed merge find their
/// subtree roots and spare nodes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GroupSource {
    /// The groups are the input bitonic trees themselves (recursion level
    /// `j = 4`, where no adaptive stages run before the fixed merge):
    /// group `g`'s root is the in-order-stored node `n + 16g + 7` and its
    /// spare `n + 16g + 15`.
    InputTrees {
        /// Total number of elements `n` (the input half starts at `n`).
        n: usize,
    },
    /// The groups are the subtrees left over after the truncated adaptive
    /// merge (levels `j ≥ 5`): group `g`'s root was written by phase 1 of
    /// the last executed stage at element `roots_start + g`, and its spare
    /// value by phase 0 at element `g`.
    WorkspaceSubtrees {
        /// First element of the block holding the group roots.
        roots_start: usize,
    },
}

impl GroupSource {
    #[inline]
    fn root_index(&self, group: usize) -> usize {
        match *self {
            GroupSource::InputTrees { n } => n + 16 * group + 7,
            GroupSource::WorkspaceSubtrees { roots_start } => roots_start + group,
        }
    }

    #[inline]
    fn spare_index(&self, group: usize) -> usize {
        match *self {
            GroupSource::InputTrees { n } => n + 16 * group + 15,
            GroupSource::WorkspaceSubtrees { .. } => group,
        }
    }
}

/// In-order traversal of a subtree of the given height (≤ 3 here),
/// collecting values through gather reads only.
fn in_order_collect(
    ctx: &mut KernelCtx<'_>,
    gather: &GatherView<'_, Node>,
    node_idx: usize,
    height: u32,
    out: &mut [Value; 8],
    pos: &mut usize,
) {
    let node = gather.gather(ctx, node_idx);
    if height > 1 {
        in_order_collect(ctx, gather, node.left as usize, height - 1, out, pos);
    }
    out[*pos] = node.value;
    *pos += 1;
    if height > 1 {
        in_order_collect(ctx, gather, node.right as usize, height - 1, out, pos);
    }
}

/// Bound form of [`traverse16`].
pub struct Traverse16Bound<'a> {
    gather: GatherView<'a, Node>,
    dst: WriteView<'a, Value>,
    groups: usize,
    source: GroupSource,
}

/// Validate and bind [`traverse16`] without launching.
pub fn bind_traverse16<'a>(
    proc: &StreamProcessor,
    trees_in: &'a Stream<Node>,
    values_out: &'a mut Stream<Value>,
    groups: usize,
    source: GroupSource,
) -> Result<Traverse16Bound<'a>> {
    proc.check_distinct_io(
        &[(trees_in.id(), trees_in.name())],
        &[(values_out.id(), values_out.name())],
    )?;
    let gather = GatherView::new(trees_in);
    let dst = WriteView::contiguous(values_out, 0, groups * 16, 8)?;
    Ok(Traverse16Bound {
        gather,
        dst,
        groups,
        source,
    })
}

impl Traverse16Bound<'_> {
    /// The launch name of this kernel.
    pub const NAME: &'static str = "traverse-16";

    /// Number of kernel instances the launch covers.
    pub fn instances(&self) -> usize {
        self.groups * 2
    }

    /// One kernel instance: extract half of a 16-value bitonic sequence.
    pub fn run(&self, ctx: &mut KernelCtx<'_>) {
        let group = ctx.instance_index() / 2;
        let upper_half = ctx.instance_index() % 2 == 1;
        let root = self.gather.gather(ctx, self.source.root_index(group));
        let mut out = [Value::default(); 8];
        let mut pos = 0;
        if !upper_half {
            // Lower half: in-order of the root's left subtree, then the
            // root value itself.
            in_order_collect(ctx, &self.gather, root.left as usize, 3, &mut out, &mut pos);
            out[7] = root.value;
        } else {
            // Upper half: in-order of the root's right subtree, then the
            // spare value.
            in_order_collect(
                ctx,
                &self.gather,
                root.right as usize,
                3,
                &mut out,
                &mut pos,
            );
            out[7] = self
                .gather
                .gather(ctx, self.source.spare_index(group))
                .value;
        }
        self.dst.write_all(ctx, &out);
    }
}

/// The Section 7.2 in-order traversal: extract the 16-value bitonic
/// sequence of every remaining 16-node subtree into a plain value stream so
/// that the non-adaptive merge can read it linearly. Two instances per
/// group; each gathers 8–9 nodes and outputs 8 values (the per-instance
/// output limit).
pub fn traverse16(
    proc: &mut StreamProcessor,
    trees_in: &Stream<Node>,
    values_out: &mut Stream<Value>,
    groups: usize,
    source: GroupSource,
) -> Result<()> {
    let b = bind_traverse16(proc, trees_in, values_out, groups, source)?;
    proc.launch(Traverse16Bound::NAME, b.instances(), |ctx| b.run(ctx))
}

/// Bound form of [`fixed_merge16`].
pub struct FixedMerge16Bound<'a> {
    gather: GatherView<'a, Value>,
    dst: WriteView<'a, Value>,
    groups: usize,
    groups_per_tree: usize,
}

/// Validate and bind [`fixed_merge16`] without launching.
pub fn bind_fixed_merge16<'a>(
    proc: &StreamProcessor,
    values_in: &'a Stream<Value>,
    values_out: &'a mut Stream<Value>,
    groups: usize,
    groups_per_tree: usize,
) -> Result<FixedMerge16Bound<'a>> {
    proc.check_distinct_io(
        &[(values_in.id(), values_in.name())],
        &[(values_out.id(), values_out.name())],
    )?;
    let gather = GatherView::new(values_in);
    let dst = WriteView::contiguous(values_out, 0, groups * 16, 8)?;
    Ok(FixedMerge16Bound {
        gather,
        dst,
        groups,
        groups_per_tree,
    })
}

impl FixedMerge16Bound<'_> {
    /// The launch name of this kernel.
    pub const NAME: &'static str = "fixed-merge-16";

    /// Number of kernel instances the launch covers.
    pub fn instances(&self) -> usize {
        self.groups * 2
    }

    /// One kernel instance: merge half of a 16-value bitonic sequence.
    pub fn run(&self, ctx: &mut KernelCtx<'_>) {
        let group = ctx.instance_index() / 2;
        let upper_half = ctx.instance_index() % 2 == 1;
        let ascending = (group / self.groups_per_tree).is_multiple_of(2);

        // Load the whole 16-value bitonic sequence.
        let mut v = [Value::default(); 16];
        self.gather.gather_range(ctx, group * 16, &mut v);
        // First compare-exchange distance 8; afterwards the lower and upper
        // halves are independent, so the instance keeps only its half.
        for i in 0..8 {
            if out_of_order(ctx, &v[i], &v[i + 8], ascending) {
                v.swap(i, i + 8);
            }
        }
        let mut h = [Value::default(); 8];
        let offset = if upper_half { 8 } else { 0 };
        h.copy_from_slice(&v[offset..offset + 8]);
        // Remaining bitonic merge network on 8 values: distances 4, 2, 1.
        for step in [4usize, 2, 1] {
            let mut block = 0;
            while block < 8 {
                for i in block..block + step {
                    if out_of_order(ctx, &h[i], &h[i + step], ascending) {
                        h.swap(i, i + step);
                    }
                }
                block += 2 * step;
            }
        }
        self.dst.write_all(ctx, &h);
    }
}

/// The Section 7.2 non-adaptive bitonic merge of 16-value bitonic
/// sequences. Two instances per sequence: one outputs the merged lower
/// half, the other the merged upper half (respecting the per-instance
/// output limit). The merge direction alternates per destination tree so
/// the next recursion level again receives bitonic inputs.
pub fn fixed_merge16(
    proc: &mut StreamProcessor,
    values_in: &Stream<Value>,
    values_out: &mut Stream<Value>,
    groups: usize,
    groups_per_tree: usize,
) -> Result<()> {
    let b = bind_fixed_merge16(proc, values_in, values_out, groups, groups_per_tree)?;
    proc.launch(FixedMerge16Bound::NAME, b.instances(), |ctx| b.run(ctx))
}

/// The node stored at local in-order position `local` of the input half
/// `[n, 2n)`: fixed child indices for internal nodes, the leaf sentinel for
/// leaves and for the overall spare node (position `n − 1`), whose child
/// pointers are never dereferenced.
#[inline]
fn in_order_node(value: Value, n: usize, local: usize) -> Node {
    let global = n + local;
    let (left, right) = fixed_children(global);
    if left as usize == global || local == n - 1 {
        Node::leaf(value)
    } else {
        Node::new(value, left, right)
    }
}

/// Host-side initialization of the input half of a node stream with the
/// source values and the fixed in-order child indices (the initialization
/// loop of Listing 2). Corresponds to the application writing its data into
/// GPU memory, so it is not charged as kernel work.
pub fn init_input_trees(trees: &mut Stream<Node>, values: &[Value]) {
    let n = values.len();
    for (i, &value) in values.iter().enumerate() {
        trees.set(n + i, in_order_node(value, n, i));
    }
}

/// Host-side read-back of the sorted result from the input half of the node
/// stream (in-order storage makes this a plain copy of the value fields).
/// Reads through the borrowed [`Stream::range`] view — no intermediate
/// node copy.
pub fn read_back_values(trees: &Stream<Node>, n: usize) -> Vec<Value> {
    trees.range(n, n).iter().map(|node| node.value).collect()
}

/// The `NULL_INDEX` sentinel re-exported for tests that inspect kernels'
/// node output.
pub const LEAF_SENTINEL: u32 = NULL_INDEX;

#[cfg(test)]
mod tests {
    use super::*;
    use stream_arch::{GpuProfile, Layout};

    fn processor() -> StreamProcessor {
        StreamProcessor::new(GpuProfile::geforce_6800())
    }

    fn value_stream(name: &str, values: &[Value]) -> Stream<Value> {
        Stream::from_vec(name, values.to_vec(), Layout::ZOrder)
    }

    #[test]
    fn local_sort8_sorts_blocks_with_alternating_directions() {
        let n = 64;
        let input = workloads::uniform(n, 5);
        let src = value_stream("src", &input);
        let mut dst: Stream<Value> = Stream::new("dst", n, Layout::ZOrder);
        let mut p = processor();
        local_sort8(&mut p, &src, &mut dst, n).unwrap();
        let out = dst.as_slice();
        for block in 0..n / 8 {
            let slice = &out[block * 8..block * 8 + 8];
            if block % 2 == 0 {
                assert!(slice.windows(2).all(|w| w[0] <= w[1]), "block {block}");
            } else {
                assert!(slice.windows(2).all(|w| w[0] >= w[1]), "block {block}");
            }
            // Each block is a permutation of its input block.
            assert!(crate::verify::is_permutation(
                slice,
                &input[block * 8..block * 8 + 8]
            ));
        }
        let c = p.counters();
        assert_eq!(c.launches, 1);
        assert_eq!(c.kernel_instances, (n / 8) as u64);
    }

    #[test]
    fn build_trees16_produces_in_order_trees_with_fixed_children() {
        let n = 32;
        let values = workloads::uniform(n, 7);
        let src = value_stream("vals", &values);
        let mut trees: Stream<Node> = Stream::new("trees", 2 * n, Layout::ZOrder);
        let mut p = processor();
        build_trees16(&mut p, &src, &mut trees, n).unwrap();
        for (i, value) in values.iter().enumerate().take(n) {
            let node = trees.get(n + i);
            assert_eq!(node.value, *value);
            let (l, r) = fixed_children(n + i);
            if l as usize == n + i || i == n - 1 {
                assert_eq!(node.left, NULL_INDEX);
            } else {
                assert_eq!((node.left, node.right), (l, r));
            }
        }
    }

    #[test]
    fn init_and_read_back_roundtrip() {
        let n = 16;
        let values = workloads::uniform(n, 3);
        let mut trees: Stream<Node> = Stream::new("trees", 2 * n, Layout::ZOrder);
        init_input_trees(&mut trees, &values);
        assert_eq!(read_back_values(&trees, n), values);
    }

    #[test]
    fn extract_places_roots_and_spares_for_stage0() {
        let n = 16;
        let j = 2; // trees of 4 nodes: roots at n+1, n+5, …; spares at n+3, n+7, …
        let values = workloads::uniform(n, 9);
        let mut a: Stream<Node> = Stream::new("a", 2 * n, Layout::ZOrder);
        init_input_trees(&mut a, &values);
        let mut b: Stream<Node> = Stream::new("b", 2 * n, Layout::ZOrder);
        let mut p = processor();
        extract_roots_and_spares(&mut p, &a, &mut b, n, j).unwrap();
        let num_trees = n >> j;
        for t in 0..num_trees {
            assert_eq!(
                b.get(num_trees + t).value,
                values[4 * t + 1],
                "root of tree {t}"
            );
            assert_eq!(b.get(t).value, values[4 * t + 3], "spare of tree {t}");
        }
    }

    #[test]
    fn phase0_swaps_out_of_order_root_and_spare() {
        // Two trees so both sort directions are exercised.
        let n = 8;
        let mut a: Stream<Node> = Stream::new("a", 2 * n, Layout::ZOrder);
        // Stage 0 of level j=2: len = numTrees = 2. Roots at [2,4), spares at [0,2).
        a.set(2, Node::new(Value::new(5.0, 0), 40, 41));
        a.set(3, Node::new(Value::new(1.0, 1), 42, 43));
        a.set(0, Node::leaf(Value::new(3.0, 2))); // spare of tree 0
        a.set(1, Node::leaf(Value::new(4.0, 3))); // spare of tree 1
        let mut b: Stream<Node> = Stream::new("b", 2 * n, Layout::ZOrder);
        let mut pq: Stream<u32> = Stream::new("pq", 2 * n, Layout::Linear);
        let mut p = processor();
        phase0(&mut p, &a, &mut b, &mut pq, 0, 2, 1).unwrap();
        // Tree 0 (ascending): root 5.0 > spare 3.0 → swapped, children reversed.
        assert_eq!(b.get(0).value.key, 3.0);
        assert_eq!(b.get(1).value.key, 5.0);
        assert_eq!((pq.get(0), pq.get(1)), (41, 40));
        // Tree 1 (descending): root 1.0 < spare 4.0 → out of order for a
        // descending merge → swapped as well.
        assert_eq!(b.get(2).value.key, 4.0);
        assert_eq!(b.get(3).value.key, 1.0);
        assert_eq!((pq.get(2), pq.get(3)), (43, 42));
        assert_eq!(p.counters().comparisons, 2);
    }

    #[test]
    fn copy_back_restores_the_written_block() {
        let n = 8;
        let mut a: Stream<Node> = Stream::new("a", n, Layout::ZOrder);
        let mut b: Stream<Node> = Stream::new("b", n, Layout::ZOrder);
        for i in 0..n {
            b.set(i, Node::leaf(Value::new(i as f32, i as u32)));
        }
        let mut p = processor();
        copy_back(&mut p, &b, &mut a, (2, 4)).unwrap();
        assert_eq!(a.get(2).value.key, 2.0);
        assert_eq!(a.get(5).value.key, 5.0);
        assert_eq!(a.get(0).value.key, 0.0 * 0.0);
        assert_eq!(a.get(6).value, Value::default());
    }

    #[test]
    fn commit_level_rebuilds_in_order_trees() {
        let n = 16;
        let sorted = {
            let mut v = workloads::uniform(n, 13);
            v.sort();
            v
        };
        let mut a: Stream<Node> = Stream::new("a", 2 * n, Layout::ZOrder);
        for (i, &v) in sorted.iter().enumerate() {
            a.set(i, Node::leaf(v));
        }
        let mut b: Stream<Node> = Stream::new("b", 2 * n, Layout::ZOrder);
        let mut p = processor();
        commit_level(&mut p, &a, &mut b, n).unwrap();
        assert_eq!(read_back_values(&b, n), sorted);
        // Child indices are the fixed in-order ones.
        let root = b.get(n + n / 2 - 1);
        let (l, r) = fixed_children(n + n / 2 - 1);
        assert_eq!((root.left, root.right), (l, r));
    }

    #[test]
    fn traverse16_and_fixed_merge16_sort_bitonic_16_blocks() {
        // Build input trees over two bitonic 16-sequences and run the j=4
        // fixed-merge path (no adaptive stages).
        let n = 32;
        let mut input = Vec::new();
        for block in 0..2 {
            let mut b = workloads::uniform(16, block as u64);
            let half = 8;
            b[..half].sort();
            b[half..].sort_by(|a, b| b.cmp(a));
            input.extend(b);
        }
        let mut a: Stream<Node> = Stream::new("a", 2 * n, Layout::ZOrder);
        init_input_trees(&mut a, &input);
        let mut seqs: Stream<Value> = Stream::new("seqs", n, Layout::ZOrder);
        let mut merged: Stream<Value> = Stream::new("merged", n, Layout::ZOrder);
        let mut p = processor();
        let groups = n / 16;
        traverse16(&mut p, &a, &mut seqs, groups, GroupSource::InputTrees { n }).unwrap();
        // The traversal of in-order-stored trees reproduces the sequences.
        assert_eq!(seqs.as_slice(), &input[..]);
        fixed_merge16(&mut p, &seqs, &mut merged, groups, 1).unwrap();
        let out = merged.as_slice();
        // Group 0 ascending, group 1 descending (alternating trees).
        assert!(out[..16].windows(2).all(|w| w[0] <= w[1]));
        assert!(out[16..].windows(2).all(|w| w[0] >= w[1]));
        assert!(crate::verify::is_permutation(&out[..16], &input[..16]));
        assert!(crate::verify::is_permutation(&out[16..], &input[16..]));
    }

    #[test]
    fn fixed_merge16_final_level_is_fully_ascending() {
        let n = 16;
        let input = workloads::bitonic(16, 3);
        let src = value_stream("src", &input);
        let mut dst: Stream<Value> = Stream::new("dst", n, Layout::ZOrder);
        let mut p = processor();
        fixed_merge16(&mut p, &src, &mut dst, 1, 1).unwrap();
        assert!(crate::verify::is_sorted(dst.as_slice()));
        assert!(crate::verify::is_permutation(dst.as_slice(), &input));
    }

    #[test]
    fn kernel_output_budgets_are_respected() {
        // All Section 7 kernels stay within the 16 × 32-bit per-instance
        // output budget of the GeForce profile — the launches above would
        // have failed otherwise. This test asserts the budget is actually
        // the paper's value so a profile change cannot silently relax it.
        assert_eq!(GpuProfile::geforce_6800().max_kernel_output_bytes, 64);
        assert_eq!(GpuProfile::geforce_7800().max_kernel_output_bytes, 64);
    }
}
