//! The launch-graph planner: record the kernel launches of a sort as an
//! operator DAG, partition it into stages, and execute it either eagerly
//! (one processor launch per node) or staged (each stage handed to
//! [`StreamProcessor::launch_stage`], which fuses it into a single
//! worker-pool epoch when profitable).
//!
//! The driver used to *interleave* planning and execution: every phase of
//! every merge stage computed its Table-1 block and issued its launch on
//! the spot, re-deriving the whole schedule on every run. The planner
//! splits the two concerns:
//!
//! * [`SortPlan::record`] walks the exact control flow of the old driver
//!   (Listing 2 recursion, Listing 5 level merges, the Section 7
//!   prologue/tail) but *pushes [`Op`] nodes* instead of launching. Stage
//!   boundaries — the points where the old driver called
//!   [`StreamProcessor::record_step`] — become the plan's stage
//!   partition: consecutive nodes between two step marks write disjoint
//!   blocks (Section 5.4) or are ordered kernel→copy-back pairs, so a
//!   stage can run as one fused epoch.
//! * [`SortPlan::execute`] replays the nodes against a set of named
//!   buffers ([`PlanBuffers`]). Because a plan depends only on
//!   `(n, levels, config)` — never on the data — it is recorded once and
//!   cached per sorter; re-running the same problem shape replays the
//!   cached plan with zero planning work.
//!
//! Scratch-stream reuse is static in the plan: every node names its
//! buffers by [`BufferId`], so which physical stream backs which role is
//! decided once per run (by the arena) instead of per launch.

use super::kernels::{self, GroupSource};
use super::layout_plan::{overlapped_schedule, table1_element_block, PhaseRef};
use super::merge::{split_pq, MergeOutcome};
use stream_arch::{
    AccountingMode, ExecMode, Node, PlanMode, Result, StageCopy, Stream, StreamProcessor,
    SubLaunch, Value,
};

/// The named buffers a sort plan operates on. A plan never holds stream
/// pointers — it names roles, and [`PlanBuffers`] binds the roles to
/// physical streams at execution time.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum BufferId {
    /// Permanent gather/input node stream (2n nodes).
    TreesA,
    /// Permanent output node stream (2n nodes).
    TreesB,
    /// First pq-index ping-pong stream (2n indices).
    PqA,
    /// Second pq-index ping-pong stream (2n indices).
    PqB,
    /// Value scratch stream (n values; local-sort / traversal output).
    ScratchValues,
    /// Merged-value stream (n values; fixed-merge output).
    MergedValues,
    /// The source-value stream of the local-sort prologue (n values).
    SourceValues,
}

impl BufferId {
    /// The stream name the driver allocates this role under.
    pub fn name(self) -> &'static str {
        match self {
            BufferId::TreesA => "trees-a",
            BufferId::TreesB => "trees-b",
            BufferId::PqA => "pq-a",
            BufferId::PqB => "pq-b",
            BufferId::ScratchValues => "scratch-values",
            BufferId::MergedValues => "merged-values",
            BufferId::SourceValues => "source-values",
        }
    }
}

/// The pq ping-pong stream with the given parity.
fn pq_id(which: usize) -> BufferId {
    if which == 0 {
        BufferId::PqA
    } else {
        BufferId::PqB
    }
}

/// A reference to (part of) a named buffer, as read or written by one plan
/// node.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BufferRef {
    /// Which buffer.
    pub buffer: BufferId,
    /// The element block `(start, len)` accessed linearly, or `None` for
    /// random (gather) access over the whole stream.
    pub block: Option<(usize, usize)>,
}

impl BufferRef {
    fn gather(buffer: BufferId) -> Self {
        BufferRef {
            buffer,
            block: None,
        }
    }

    fn block(buffer: BufferId, block: (usize, usize)) -> Self {
        BufferRef {
            buffer,
            block: Some(block),
        }
    }
}

impl std::fmt::Display for BufferRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.block {
            Some((start, len)) => write!(f, "{}[{}..{})", self.buffer.name(), start, start + len),
            None => write!(f, "{}[*]", self.buffer.name()),
        }
    }
}

/// One node of the launch graph: a kernel launch (or vectorized copy) with
/// everything needed to re-bind its substream views, but no stream
/// pointers and no data dependence.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Section 7.1 local odd-even sort: `SourceValues → ScratchValues`.
    LocalSort8 {
        /// Total element count.
        n: usize,
    },
    /// Section 7.1/7.2 tree build: `src → TreesB[n, n)`.
    BuildTrees16 {
        /// Value source ([`BufferId::ScratchValues`] or
        /// [`BufferId::MergedValues`]).
        src: BufferId,
        /// Total element count.
        n: usize,
    },
    /// Listing 5 initialization: `TreesA → TreesB[0, 2·numTrees)`.
    ExtractRootsSpares {
        /// Total element count.
        n: usize,
        /// Recursion level.
        j: u32,
    },
    /// Listing 3: `TreesA → TreesB[0, 2·len) + pq_out[pq_offset, 2·len)`.
    Phase0 {
        /// Which pq stream receives the (p, q) pairs (0 or 1).
        pq_out: usize,
        /// Element offset of the pq block.
        pq_offset: usize,
        /// Number of kernel instances (subtrees).
        len: usize,
        /// Instances per simultaneously merged tree (sort direction).
        instances_per_tree: usize,
    },
    /// Listing 4: reads `pq_in`, gathers `TreesA`, writes its Table-1
    /// block of `TreesB` and the complementary pq stream.
    PhaseI {
        /// Which pq stream holds the live (p, q) pairs (0 or 1); the
        /// phase writes the other one.
        pq_in: usize,
        /// Element offset of both pq blocks.
        pq_offset: usize,
        /// Table-1 output block in `TreesB`, in elements.
        out_block: (usize, usize),
        /// First element of the *next* phase's block (iterator stream).
        next_start: usize,
        /// Number of kernel instances (node pairs).
        len: usize,
        /// Instances per simultaneously merged tree (sort direction).
        instances_per_tree: usize,
    },
    /// Section 6.1 write-back: `TreesB[block] → TreesA[block]`.
    CopyBack {
        /// The element block to copy.
        block: (usize, usize),
    },
    /// Listing 2 end-of-level commit: `TreesA[0, n) → TreesB[n, n)`.
    CommitLevel {
        /// Total element count.
        n: usize,
    },
    /// Section 7.2 traversal: `TreesA → ScratchValues[0, 16·groups)`.
    Traverse16 {
        /// Number of 16-element groups.
        groups: usize,
        /// Where the groups' roots and spares live.
        source: GroupSource,
    },
    /// Section 7.2 fixed merge: `ScratchValues → MergedValues`.
    FixedMerge16 {
        /// Number of 16-element groups.
        groups: usize,
        /// Groups per destination tree (merge direction).
        groups_per_tree: usize,
    },
}

impl Op {
    /// The launch name of this node's kernel.
    pub fn name(&self) -> &'static str {
        match self {
            Op::LocalSort8 { .. } => kernels::LocalSort8Bound::NAME,
            Op::BuildTrees16 { .. } => kernels::BuildTrees16Bound::NAME,
            Op::ExtractRootsSpares { .. } => kernels::ExtractRootsSparesBound::NAME,
            Op::Phase0 { .. } => kernels::Phase0Bound::NAME,
            Op::PhaseI { .. } => kernels::PhaseIBound::NAME,
            Op::CopyBack { .. } => "copy-back",
            Op::CommitLevel { .. } => kernels::CommitLevelBound::NAME,
            Op::Traverse16 { .. } => kernels::Traverse16Bound::NAME,
            Op::FixedMerge16 { .. } => kernels::FixedMerge16Bound::NAME,
        }
    }

    /// Number of kernel instances this node launches.
    pub fn instances(&self) -> usize {
        match *self {
            Op::LocalSort8 { n } => n / 8,
            Op::BuildTrees16 { n, .. } => n / 4,
            Op::ExtractRootsSpares { n, j } => 2 * (n >> j),
            Op::Phase0 { len, .. } | Op::PhaseI { len, .. } => len,
            Op::CopyBack { block } => block.1 / 2,
            Op::CommitLevel { n } => n / 2,
            Op::Traverse16 { groups, .. } | Op::FixedMerge16 { groups, .. } => 2 * groups,
        }
    }

    /// The buffers this node reads, as named refs.
    pub fn inputs(&self) -> Vec<BufferRef> {
        match *self {
            Op::LocalSort8 { n } => vec![BufferRef::block(BufferId::SourceValues, (0, n))],
            Op::BuildTrees16 { src, n } => vec![BufferRef::block(src, (0, n))],
            Op::ExtractRootsSpares { .. } => vec![BufferRef::gather(BufferId::TreesA)],
            Op::Phase0 { len, .. } => vec![BufferRef::block(BufferId::TreesA, (0, 2 * len))],
            Op::PhaseI {
                pq_in,
                pq_offset,
                len,
                ..
            } => vec![
                BufferRef::block(pq_id(pq_in), (pq_offset, 2 * len)),
                BufferRef::gather(BufferId::TreesA),
            ],
            Op::CopyBack { block } => vec![BufferRef::block(BufferId::TreesB, block)],
            Op::CommitLevel { n } => vec![BufferRef::block(BufferId::TreesA, (0, n))],
            Op::Traverse16 { .. } => vec![BufferRef::gather(BufferId::TreesA)],
            Op::FixedMerge16 { .. } => vec![BufferRef::gather(BufferId::ScratchValues)],
        }
    }

    /// The buffers this node writes, as named refs.
    pub fn outputs(&self) -> Vec<BufferRef> {
        match *self {
            Op::LocalSort8 { n } => vec![BufferRef::block(BufferId::ScratchValues, (0, n))],
            Op::BuildTrees16 { n, .. } => vec![BufferRef::block(BufferId::TreesB, (n, n))],
            Op::ExtractRootsSpares { n, j } => {
                vec![BufferRef::block(BufferId::TreesB, (0, 2 * (n >> j)))]
            }
            Op::Phase0 {
                pq_out,
                pq_offset,
                len,
                ..
            } => vec![
                BufferRef::block(BufferId::TreesB, (0, 2 * len)),
                BufferRef::block(pq_id(pq_out), (pq_offset, 2 * len)),
            ],
            Op::PhaseI {
                pq_in,
                pq_offset,
                out_block,
                len,
                ..
            } => vec![
                BufferRef::block(BufferId::TreesB, out_block),
                BufferRef::block(pq_id(1 - pq_in), (pq_offset, 2 * len)),
            ],
            Op::CopyBack { block } => vec![BufferRef::block(BufferId::TreesA, block)],
            Op::CommitLevel { n } => vec![BufferRef::block(BufferId::TreesB, (n, n))],
            Op::Traverse16 { groups, .. } => {
                vec![BufferRef::block(BufferId::ScratchValues, (0, 16 * groups))]
            }
            Op::FixedMerge16 { groups, .. } => {
                vec![BufferRef::block(BufferId::MergedValues, (0, 16 * groups))]
            }
        }
    }
}

/// Everything that determines the shape of a sort plan. Two runs with equal
/// keys execute structurally identical launch sequences, which is what
/// makes the per-sorter plan cache sound.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Padded power-of-two element count.
    pub n: usize,
    /// First recursion level to run (4 with the local-sort prologue,
    /// `log₂ block + 1` for a block merge, 1 otherwise).
    pub first_level: u32,
    /// Last recursion level to run, inclusive.
    pub top_level: u32,
    /// Run the Section 7.1 local-sort prologue.
    pub local_sort: bool,
    /// Replace the last 4 stages of each level with the Section 7.2
    /// fixed-merge tail.
    pub fixed_merge: bool,
    /// Use the Section 5.4 overlapped-stage schedule inside each level.
    pub overlapped: bool,
}

/// Accumulates [`Op`] nodes and stage boundaries during recording.
#[derive(Default)]
struct Recorder {
    nodes: Vec<Op>,
    stage_ends: Vec<usize>,
}

impl Recorder {
    fn push(&mut self, op: Op) {
        self.nodes.push(op);
    }

    /// Mark a stage boundary — the recording analogue of
    /// [`StreamProcessor::record_step`].
    fn step(&mut self) {
        self.stage_ends.push(self.nodes.len());
    }
}

/// A recorded launch graph: the [`Op`] nodes of one sort (or one level
/// merge) partitioned into stages at the old driver's step marks.
#[derive(Clone, Debug)]
pub struct SortPlan {
    key: PlanKey,
    nodes: Vec<Op>,
    /// `stage_ends[s]` = index one past the last node of stage `s`.
    stage_ends: Vec<usize>,
}

/// The physical streams backing a plan's named buffers for one execution.
/// `scratch`/`merged`/`source` are optional because a bare level merge
/// (no Section 7 tail) never touches them.
pub struct PlanBuffers<'a> {
    /// Backs [`BufferId::TreesA`].
    pub trees_a: &'a mut Stream<Node>,
    /// Backs [`BufferId::TreesB`].
    pub trees_b: &'a mut Stream<Node>,
    /// Backs [`BufferId::PqA`] / [`BufferId::PqB`].
    pub pq: &'a mut [Stream<u32>; 2],
    /// Backs [`BufferId::ScratchValues`].
    pub scratch: Option<&'a mut Stream<Value>>,
    /// Backs [`BufferId::MergedValues`].
    pub merged: Option<&'a mut Stream<Value>>,
    /// Backs [`BufferId::SourceValues`] (read-only).
    pub source: Option<&'a Stream<Value>>,
}

impl SortPlan {
    /// Record the launch graph for the given plan key — the exact launch
    /// sequence the pre-planner driver issued, as data.
    pub fn record(key: PlanKey) -> SortPlan {
        let mut r = Recorder::default();
        let n = key.n;
        if key.local_sort {
            // Section 7.1 prologue: local sort, then tree conversion.
            r.push(Op::LocalSort8 { n });
            r.step();
            r.push(Op::BuildTrees16 {
                src: BufferId::ScratchValues,
                n,
            });
            r.push(Op::CopyBack { block: (n, n) });
            r.step();
        }
        for j in key.first_level..=key.top_level {
            let skip = if key.fixed_merge && j >= 4 {
                4.min(j)
            } else {
                0
            };
            match record_level(&mut r, n, j, key.overlapped, skip) {
                MergeOutcome::Complete => {
                    r.push(Op::CommitLevel { n });
                    r.push(Op::CopyBack { block: (n, n) });
                    r.step();
                }
                MergeOutcome::Truncated { roots_start } => record_fixed_merge_tail(
                    &mut r,
                    n,
                    j,
                    GroupSource::WorkspaceSubtrees { roots_start },
                ),
                MergeOutcome::Skipped => {
                    record_fixed_merge_tail(&mut r, n, j, GroupSource::InputTrees { n })
                }
            }
        }
        debug_assert_eq!(r.stage_ends.last().copied(), Some(r.nodes.len()));
        SortPlan {
            key,
            nodes: r.nodes,
            stage_ends: r.stage_ends,
        }
    }

    /// The key this plan was recorded for.
    pub fn key(&self) -> PlanKey {
        self.key
    }

    /// Total number of launch nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of stages (worker-pool epochs under fused execution).
    pub fn num_stages(&self) -> usize {
        self.stage_ends.len()
    }

    /// Total kernel instances across all nodes.
    pub fn total_instances(&self) -> u64 {
        self.nodes.iter().map(|op| op.instances() as u64).sum()
    }

    /// The stages, each a slice of consecutive nodes.
    pub fn stages(&self) -> impl Iterator<Item = &[Op]> + '_ {
        let mut start = 0usize;
        self.stage_ends.iter().map(move |&end| {
            let stage = &self.nodes[start..end];
            start = end;
            stage
        })
    }

    /// Execute the plan against `bufs` on `proc`.
    ///
    /// Under [`PlanMode::Staged`] with a parallel, batched-accounting
    /// processor, each stage is handed to
    /// [`StreamProcessor::launch_stage`] as one unit — fused into a single
    /// worker-pool epoch when the stage is big enough. Everything else
    /// (eager mode, sequential execution, per-access accounting) replays
    /// the nodes one launch at a time through the monomorphized kernel
    /// wrappers, which keeps the per-instance dispatch static. Both paths
    /// issue byte-identical work and counters.
    pub fn execute(&self, proc: &mut StreamProcessor, bufs: &mut PlanBuffers<'_>) -> Result<()> {
        let staged = proc.plan_mode() == PlanMode::Staged
            && proc.mode() == ExecMode::Parallel
            && proc.accounting_mode() == AccountingMode::Batched;
        for stage in self.stages() {
            if staged {
                let subs = bind_stage(proc, bufs, stage)?;
                proc.launch_stage(&subs)?;
            } else {
                for op in stage {
                    exec_op(proc, bufs, op)?;
                }
            }
            proc.record_step();
        }
        Ok(())
    }

    /// Render the plan as human-readable text (`repro --dump-plan`): one
    /// header, then per stage one line per node with its named buffer
    /// reads and writes.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let k = &self.key;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "launch plan: n={} levels {}..={}{}{}, {}",
            k.n,
            k.first_level,
            k.top_level,
            if k.local_sort {
                ", local-sort prologue"
            } else {
                ""
            },
            if k.fixed_merge {
                ", fixed-merge tail"
            } else {
                ""
            },
            if k.overlapped {
                "overlapped steps"
            } else {
                "sequential phases"
            },
        );
        let _ = writeln!(
            out,
            "{} nodes in {} stages, {} kernel instances",
            self.num_nodes(),
            self.num_stages(),
            self.total_instances(),
        );
        for (s, stage) in self.stages().enumerate() {
            let _ = writeln!(out, "stage {s:>3} ({} nodes):", stage.len());
            for op in stage {
                let ins: Vec<String> = op.inputs().iter().map(BufferRef::to_string).collect();
                let outs: Vec<String> = op.outputs().iter().map(BufferRef::to_string).collect();
                let _ = writeln!(
                    out,
                    "  {} x{}: {} -> {}",
                    op.name(),
                    op.instances(),
                    ins.join(" "),
                    outs.join(" "),
                );
            }
        }
        out
    }
}

/// Record one recursion level of the adaptive bitonic merge — the planner
/// form of [`super::merge::merge_level`] — and return its plan together
/// with the [`MergeOutcome`] the eager driver would have reported.
pub fn record_level_plan(
    n: usize,
    j: u32,
    overlapped: bool,
    skip_last_stages: u32,
) -> (SortPlan, MergeOutcome) {
    let mut r = Recorder::default();
    let outcome = record_level(&mut r, n, j, overlapped, skip_last_stages);
    let plan = SortPlan {
        key: PlanKey {
            n,
            first_level: j,
            top_level: j,
            local_sort: false,
            fixed_merge: skip_last_stages > 0,
            overlapped,
        },
        nodes: r.nodes,
        stage_ends: r.stage_ends,
    };
    (plan, outcome)
}

/// Record one level merge (Listing 5): initialization, then the stage/phase
/// schedule — sequential (Section 5.3) or overlapped (Section 5.4).
fn record_level(
    r: &mut Recorder,
    n: usize,
    j: u32,
    overlapped: bool,
    skip_last_stages: u32,
) -> MergeOutcome {
    let num_trees = n >> j;
    if skip_last_stages >= j {
        return MergeOutcome::Skipped;
    }
    let last_stage = j - 1 - skip_last_stages;

    r.push(Op::ExtractRootsSpares { n, j });
    r.push(Op::CopyBack {
        block: (0, 2 * num_trees),
    });
    r.step();

    if overlapped {
        let mut pq_in = 0usize;
        for step in overlapped_schedule(j, skip_last_stages) {
            for PhaseRef { stage: k, phase: i } in step {
                let len = (1usize << k) * num_trees;
                let instances_per_tree = 1usize << k;
                // Each stage uses its own disjoint region of the pq
                // streams: elements [2·len_k, 4·len_k).
                let pq_offset = 2 * len;
                if i == 0 {
                    r.push(Op::Phase0 {
                        pq_out: 1 - pq_in,
                        pq_offset,
                        len,
                        instances_per_tree,
                    });
                    r.push(Op::CopyBack {
                        block: (0, 2 * len),
                    });
                } else {
                    let out_block = table1_element_block(k, i, num_trees);
                    let next_start = table1_element_block(k, i + 1, num_trees).0;
                    r.push(Op::PhaseI {
                        pq_in,
                        pq_offset,
                        out_block,
                        next_start,
                        len,
                        instances_per_tree,
                    });
                    r.push(Op::CopyBack { block: out_block });
                }
            }
            pq_in = 1 - pq_in;
            r.step();
        }
    } else {
        for k in 0..=last_stage {
            let len = (1usize << k) * num_trees;
            let instances_per_tree = 1usize << k;
            // Phase 0 always writes the initial (p, q) pairs to pq[0].
            r.push(Op::Phase0 {
                pq_out: 0,
                pq_offset: 0,
                len,
                instances_per_tree,
            });
            r.push(Op::CopyBack {
                block: (0, 2 * len),
            });
            r.step();
            let mut pq_in = 0usize;
            for i in 1..(j - k) {
                let out_block = table1_element_block(k, i, num_trees);
                let next_start = table1_element_block(k, i + 1, num_trees).0;
                r.push(Op::PhaseI {
                    pq_in,
                    pq_offset: 0,
                    out_block,
                    next_start,
                    len,
                    instances_per_tree,
                });
                r.push(Op::CopyBack { block: out_block });
                pq_in = 1 - pq_in;
                r.step();
            }
        }
    }

    if skip_last_stages == 0 {
        MergeOutcome::Complete
    } else {
        MergeOutcome::Truncated {
            roots_start: table1_element_block(last_stage, 1, num_trees).0,
        }
    }
}

/// Record the Section 7.2 tail: traversal, fixed merge, tree rebuild.
fn record_fixed_merge_tail(r: &mut Recorder, n: usize, j: u32, source: GroupSource) {
    let groups = n / 16;
    let groups_per_tree = 1usize << (j - 4);
    r.push(Op::Traverse16 { groups, source });
    r.step();
    r.push(Op::FixedMerge16 {
        groups,
        groups_per_tree,
    });
    r.step();
    r.push(Op::BuildTrees16 {
        src: BufferId::MergedValues,
        n,
    });
    r.push(Op::CopyBack { block: (n, n) });
    r.step();
}

/// Eagerly execute one node through the monomorphized kernel wrappers —
/// the exact calls the pre-planner driver made.
fn exec_op(proc: &mut StreamProcessor, bufs: &mut PlanBuffers<'_>, op: &Op) -> Result<()> {
    match *op {
        Op::LocalSort8 { n } => kernels::local_sort8(
            proc,
            bufs.source.expect("plan needs the source-values stream"),
            bufs.scratch
                .as_deref_mut()
                .expect("plan needs the scratch-values stream"),
            n,
        ),
        Op::BuildTrees16 { src, n } => {
            let values: &Stream<Value> = match src {
                BufferId::ScratchValues => bufs
                    .scratch
                    .as_deref()
                    .expect("plan needs the scratch-values stream"),
                BufferId::MergedValues => bufs
                    .merged
                    .as_deref()
                    .expect("plan needs the merged-values stream"),
                other => unreachable!("build-trees-16 cannot read {other:?}"),
            };
            kernels::build_trees16(proc, values, bufs.trees_b, n)
        }
        Op::ExtractRootsSpares { n, j } => {
            kernels::extract_roots_and_spares(proc, bufs.trees_a, bufs.trees_b, n, j)
        }
        Op::Phase0 {
            pq_out,
            pq_offset,
            len,
            instances_per_tree,
        } => kernels::phase0(
            proc,
            bufs.trees_a,
            bufs.trees_b,
            &mut bufs.pq[pq_out],
            pq_offset,
            len,
            instances_per_tree,
        ),
        Op::PhaseI {
            pq_in,
            pq_offset,
            out_block,
            next_start,
            len,
            instances_per_tree,
        } => {
            let (pq_in_stream, pq_out_stream) = split_pq(bufs.pq, pq_in);
            kernels::phase_i(
                proc,
                bufs.trees_a,
                bufs.trees_b,
                pq_in_stream,
                pq_offset,
                pq_out_stream,
                pq_offset,
                out_block,
                next_start,
                len,
                instances_per_tree,
            )
        }
        Op::CopyBack { block } => kernels::copy_back(proc, bufs.trees_b, bufs.trees_a, block),
        Op::CommitLevel { n } => kernels::commit_level(proc, bufs.trees_a, bufs.trees_b, n),
        Op::Traverse16 { groups, source } => kernels::traverse16(
            proc,
            bufs.trees_a,
            bufs.scratch
                .as_deref_mut()
                .expect("plan needs the scratch-values stream"),
            groups,
            source,
        ),
        Op::FixedMerge16 {
            groups,
            groups_per_tree,
        } => kernels::fixed_merge16(
            proc,
            bufs.scratch
                .as_deref()
                .expect("plan needs the scratch-values stream"),
            bufs.merged
                .as_deref_mut()
                .expect("plan needs the merged-values stream"),
            groups,
            groups_per_tree,
        ),
    }
}

/// Bind every node of a stage at once, producing the [`SubLaunch`] list
/// for [`StreamProcessor::launch_stage`].
///
/// Within a stage, later nodes read blocks earlier nodes write (a phase's
/// copy-back reads the block the phase just wrote), so the bindings of all
/// nodes must coexist — views of the same stream held as input by one sub
/// and as output by another. The views are raw-pointer based for exactly
/// this reason; `launch_stage`'s in-epoch barriers reproduce the eager
/// write-before-read order, which the fused-identity tests pin down.
fn bind_stage<'a>(
    proc: &StreamProcessor,
    bufs: &'a mut PlanBuffers<'_>,
    ops: &[Op],
) -> Result<Vec<SubLaunch<'a>>> {
    let trees_a: *mut Stream<Node> = &mut *bufs.trees_a;
    let trees_b: *mut Stream<Node> = &mut *bufs.trees_b;
    let pq0: *mut Stream<u32> = &mut bufs.pq[0];
    let pq1: *mut Stream<u32> = &mut bufs.pq[1];
    let scratch: Option<*mut Stream<Value>> =
        bufs.scratch.as_deref_mut().map(|s| s as *mut Stream<Value>);
    let merged: Option<*mut Stream<Value>> =
        bufs.merged.as_deref_mut().map(|s| s as *mut Stream<Value>);
    let source: Option<*const Stream<Value>> = bufs.source.map(|s| s as *const Stream<Value>);
    let pq_ptr = |which: usize| if which == 0 { pq0 } else { pq1 };
    let need = |name: &str| -> ! { panic!("plan needs the {name} stream") };

    let mut subs = Vec::with_capacity(ops.len());
    for op in ops {
        // SAFETY: the reborrows below create aliasing views of streams that
        // `bufs` holds exclusively for the duration of the returned subs
        // (the `'a` borrow). All views access elements through raw
        // pointers; the epoch barriers in `launch_stage` order every write
        // before the reads that depend on it, exactly like the eager path.
        let sub = unsafe {
            match *op {
                Op::LocalSort8 { n } => {
                    let src = &*source.unwrap_or_else(|| need("source-values"));
                    let dst = &mut *scratch.unwrap_or_else(|| need("scratch-values"));
                    let b = kernels::bind_local_sort8(proc, src, dst, n)?;
                    SubLaunch::Kernel {
                        name: kernels::LocalSort8Bound::NAME,
                        instances: b.instances(),
                        kernel: Box::new(move |ctx| b.run(ctx)),
                    }
                }
                Op::BuildTrees16 { src, n } => {
                    let values: &Stream<Value> = match src {
                        BufferId::ScratchValues => {
                            &*scratch.unwrap_or_else(|| need("scratch-values"))
                        }
                        BufferId::MergedValues => &*merged.unwrap_or_else(|| need("merged-values")),
                        other => unreachable!("build-trees-16 cannot read {other:?}"),
                    };
                    let b = kernels::bind_build_trees16(proc, values, &mut *trees_b, n)?;
                    SubLaunch::Kernel {
                        name: kernels::BuildTrees16Bound::NAME,
                        instances: b.instances(),
                        kernel: Box::new(move |ctx| b.run(ctx)),
                    }
                }
                Op::ExtractRootsSpares { n, j } => {
                    let b = kernels::bind_extract_roots_and_spares(
                        proc,
                        &*trees_a,
                        &mut *trees_b,
                        n,
                        j,
                    )?;
                    SubLaunch::Kernel {
                        name: kernels::ExtractRootsSparesBound::NAME,
                        instances: b.instances(),
                        kernel: Box::new(move |ctx| b.run(ctx)),
                    }
                }
                Op::Phase0 {
                    pq_out,
                    pq_offset,
                    len,
                    instances_per_tree,
                } => {
                    let b = kernels::bind_phase0(
                        proc,
                        &*trees_a,
                        &mut *trees_b,
                        &mut *pq_ptr(pq_out),
                        pq_offset,
                        len,
                        instances_per_tree,
                    )?;
                    SubLaunch::Kernel {
                        name: kernels::Phase0Bound::NAME,
                        instances: b.instances(),
                        kernel: Box::new(move |ctx| b.run(ctx)),
                    }
                }
                Op::PhaseI {
                    pq_in,
                    pq_offset,
                    out_block,
                    next_start,
                    len,
                    instances_per_tree,
                } => {
                    let b = kernels::bind_phase_i(
                        proc,
                        &*trees_a,
                        &mut *trees_b,
                        &*pq_ptr(pq_in),
                        pq_offset,
                        &mut *pq_ptr(1 - pq_in),
                        pq_offset,
                        out_block,
                        next_start,
                        len,
                        instances_per_tree,
                    )?;
                    SubLaunch::Kernel {
                        name: kernels::PhaseIBound::NAME,
                        instances: b.instances(),
                        kernel: Box::new(move |ctx| b.run(ctx)),
                    }
                }
                Op::CopyBack { block } => SubLaunch::Copy(StageCopy::new(
                    "copy-back",
                    &*trees_b,
                    &mut *trees_a,
                    block,
                    2,
                )?),
                Op::CommitLevel { n } => {
                    let b = kernels::bind_commit_level(proc, &*trees_a, &mut *trees_b, n)?;
                    SubLaunch::Kernel {
                        name: kernels::CommitLevelBound::NAME,
                        instances: b.instances(),
                        kernel: Box::new(move |ctx| b.run(ctx)),
                    }
                }
                Op::Traverse16 { groups, source: gs } => {
                    let dst = &mut *scratch.unwrap_or_else(|| need("scratch-values"));
                    let b = kernels::bind_traverse16(proc, &*trees_a, dst, groups, gs)?;
                    SubLaunch::Kernel {
                        name: kernels::Traverse16Bound::NAME,
                        instances: b.instances(),
                        kernel: Box::new(move |ctx| b.run(ctx)),
                    }
                }
                Op::FixedMerge16 {
                    groups,
                    groups_per_tree,
                } => {
                    let src = &*scratch.unwrap_or_else(|| need("scratch-values"));
                    let dst = &mut *merged.unwrap_or_else(|| need("merged-values"));
                    let b = kernels::bind_fixed_merge16(proc, src, dst, groups, groups_per_tree)?;
                    SubLaunch::Kernel {
                        name: kernels::FixedMerge16Bound::NAME,
                        instances: b.instances(),
                        kernel: Box::new(move |ctx| b.run(ctx)),
                    }
                }
            }
        };
        subs.push(sub);
    }
    Ok(subs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream_sort::layout_plan::{phases_per_level, steps_per_level};

    fn full_key(n: usize, overlapped: bool) -> PlanKey {
        PlanKey {
            n,
            first_level: 1,
            top_level: n.trailing_zeros(),
            local_sort: false,
            fixed_merge: false,
            overlapped,
        }
    }

    #[test]
    fn plan_stage_counts_match_the_paper_step_counts() {
        // The plan's stage partition must reproduce the step counts the
        // merge tests pin: per level, 1 (init) + 2j−1 overlapped steps or
        // 1 + ½j²+½j sequential phases, plus the level's commit stage.
        let n = 256usize;
        let log_n = n.trailing_zeros();
        let ovl = SortPlan::record(full_key(n, true));
        let seq = SortPlan::record(full_key(n, false));
        let expect_ovl: u64 = (1..=log_n).map(|j| 1 + steps_per_level(j, 0) + 1).sum();
        let expect_seq: u64 = (1..=log_n).map(|j| 1 + phases_per_level(j) + 1).sum();
        assert_eq!(ovl.num_stages() as u64, expect_ovl);
        assert_eq!(seq.num_stages() as u64, expect_seq);
        // Same nodes, different partition: each phase is one kernel plus
        // one copy-back, each level adds an init pair and a commit pair.
        assert_eq!(ovl.num_nodes(), seq.num_nodes());
        assert_eq!(ovl.total_instances(), seq.total_instances());
    }

    #[test]
    fn recorded_level_outcomes_match_merge_level() {
        // Complete, truncated, and skipped levels report the same outcome
        // (and the same roots_start) as the eager merge_level.
        let (_, complete) = record_level_plan(64, 6, true, 0);
        assert_eq!(complete, MergeOutcome::Complete);
        let (_, truncated) = record_level_plan(64, 6, true, 4);
        assert_eq!(truncated, MergeOutcome::Truncated { roots_start: 4 });
        let (plan, skipped) = record_level_plan(64, 4, true, 4);
        assert_eq!(skipped, MergeOutcome::Skipped);
        assert_eq!(plan.num_nodes(), 0);
        assert_eq!(plan.num_stages(), 0);
    }

    #[test]
    fn every_stage_writes_before_later_nodes_read() {
        // Within a stage, any block a node reads linearly from trees-b must
        // have been written by an earlier node of the same stage or a
        // previous stage — the property that makes in-stage fusion with
        // barriers equivalent to the eager launch order. (Copy-backs are
        // the only in-stage readers of trees-b.)
        for overlapped in [false, true] {
            let plan = SortPlan::record(PlanKey {
                n: 256,
                first_level: 1,
                top_level: 8,
                local_sort: false,
                fixed_merge: true,
                overlapped,
            });
            for stage in plan.stages() {
                let mut written: Vec<(usize, usize)> = Vec::new();
                for op in stage {
                    if let Op::CopyBack { block } = op {
                        assert!(
                            written.contains(block),
                            "copy-back of {block:?} without a matching in-stage write"
                        );
                    }
                    for out in op.outputs() {
                        if out.buffer == BufferId::TreesB {
                            written.push(out.block.expect("linear write"));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn describe_names_buffers_and_stages() {
        let plan = SortPlan::record(PlanKey {
            n: 64,
            first_level: 4,
            top_level: 6,
            local_sort: true,
            fixed_merge: true,
            overlapped: true,
        });
        let text = plan.describe();
        assert!(text.starts_with("launch plan: n=64 levels 4..=6"));
        assert!(text.contains("local-sort prologue"));
        assert!(text.contains("fixed-merge tail"));
        assert!(text.contains("local-sort-8 x8: source-values[0..64) -> scratch-values[0..64)"));
        assert!(text.contains("copy-back"));
        assert!(text.contains("trees-a[*]"));
        assert_eq!(
            text.lines().count(),
            2 + plan.num_stages() + plan.num_nodes()
        );
    }
}
