//! `GPUABiSort` — the complete sort (Listing 2) with the Section 7
//! optimizations, wrapped in the [`GpuAbiSorter`] API.
//!
//! The driver allocates the streams, looks up (or records) the
//! [`SortPlan`] for the problem shape, and executes it: the plan contains
//! the Section 7.1 local sort, the recursion levels (Listing 2), and
//! either the Listing-2 commit or the Section 7.2 fixed-merge pipeline at
//! the end of every level. The sorted result is read back from the input
//! half of the node stream, where every level leaves its output in
//! in-order storage.

use super::kernels;
use super::merge::MergeStreams;
use super::plan::{PlanBuffers, PlanKey, SortPlan};
use crate::config::SortConfig;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use stream_arch::{Counters, Node, PlanMode, Result, SimTime, Stream, StreamProcessor, Value};

/// The GPU-ABiSort sorter: a [`SortConfig`], a cache of recorded launch
/// plans, and the logic to run them on a [`StreamProcessor`].
///
/// Clones share the plan cache — a service that hands one sorter to many
/// worker slots pays the planning cost once per problem shape.
#[derive(Clone, Debug, Default)]
pub struct GpuAbiSorter {
    config: SortConfig,
    plans: Arc<Mutex<HashMap<PlanKey, Arc<SortPlan>>>>,
}

/// The outcome of one sort run: the sorted data plus the cost-accounting
/// artefacts the experiments report.
#[derive(Clone, Debug)]
pub struct SortRun {
    /// The sorted values (same length as the input).
    pub output: Vec<Value>,
    /// Event counters accumulated by this run (the processor is reset at
    /// the start of the run).
    pub counters: Counters,
    /// Simulated running time under the processor's hardware profile.
    pub sim_time: SimTime,
    /// Host wall-clock time spent executing the run.
    pub wall_time: std::time::Duration,
    /// The padded power-of-two problem size the stream program operated on.
    pub padded_len: usize,
}

/// The outcome of one *batched segmented* sort: many equal-sized segments
/// sorted independently but in shared stream operations (see
/// [`GpuAbiSorter::sort_segments_run`]).
#[derive(Clone, Debug)]
pub struct SegmentedRun {
    /// The concatenation of the sorted segments, each ascending.
    pub output: Vec<Value>,
    /// Event counters accumulated by this run (the processor is reset at
    /// the start of the run).
    pub counters: Counters,
    /// Simulated running time under the processor's hardware profile.
    pub sim_time: SimTime,
    /// Host wall-clock time spent executing the run.
    pub wall_time: std::time::Duration,
    /// Length of every segment (a power of two).
    pub segment_len: usize,
    /// Number of segments (a power of two).
    pub segments: usize,
}

/// The outcome of one top-k run: the `k` smallest values plus the
/// cost-accounting artefacts (see [`GpuAbiSorter::top_k_run`]).
#[derive(Clone, Debug)]
pub struct TopKRun {
    /// The `k` smallest values, ascending (fewer if the input was
    /// shorter than `k`).
    pub output: Vec<Value>,
    /// Event counters accumulated by this run (the processor is reset at
    /// the start of the run).
    pub counters: Counters,
    /// Simulated running time under the processor's hardware profile.
    pub sim_time: SimTime,
    /// Host wall-clock time spent executing the run.
    pub wall_time: std::time::Duration,
    /// The block size the bitonic recursion stopped at. Equal to
    /// [`TopKRun::padded_len`] when the run degenerated to a full sort;
    /// strictly smaller — skipping the merge levels above it — whenever
    /// `2 · k` rounded up to a power of two is below the padded length.
    pub block_len: usize,
    /// The padded power-of-two problem size the stream program operated
    /// on.
    pub padded_len: usize,
}

impl GpuAbiSorter {
    /// Create a sorter with the given configuration.
    pub fn new(config: SortConfig) -> Self {
        GpuAbiSorter {
            config,
            plans: Arc::default(),
        }
    }

    /// The configuration of this sorter.
    pub fn config(&self) -> &SortConfig {
        &self.config
    }

    /// Number of distinct launch plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.plans.lock().expect("plan cache poisoned").len()
    }

    /// The plan key [`Self::sort_run`] would use for an input of `len`
    /// values (after power-of-two padding), or `None` when no stream
    /// program runs (`len ≤ 1`).
    pub fn sort_plan_key(&self, len: usize) -> Option<PlanKey> {
        if len <= 1 {
            return None;
        }
        let n = len.next_power_of_two();
        Some(self.plan_key(n, n.trailing_zeros()))
    }

    /// Record (fresh, uncached) the launch plan [`Self::sort_run`] would
    /// execute for an input of `len` values — the `repro --dump-plan`
    /// backend.
    pub fn describe_plan(&self, len: usize) -> Option<String> {
        self.sort_plan_key(len)
            .map(|key| SortPlan::record(key).describe())
    }

    /// The plan key of a `run_stream_program` invocation: `n` elements,
    /// levels up to `top_level`, Section 7 optimizations gated on the
    /// independently sorted block size `2^top_level`.
    fn plan_key(&self, n: usize, top_level: u32) -> PlanKey {
        // The Section 7 optimizations assume at least 16 elements per
        // independently sorted block (8-element local-sort blocks,
        // 16-element fixed merges); below that the plain algorithm runs.
        let block = 1usize << top_level;
        let local_sort = self.config.local_sort_optimization && block >= 16;
        let fixed_merge = self.config.fixed_merge_optimization && block >= 16;
        PlanKey {
            n,
            first_level: if local_sort { 4 } else { 1 },
            top_level,
            local_sort,
            fixed_merge,
            overlapped: self.config.overlapped_steps,
        }
    }

    /// Look up (or record) the plan for `key`.
    ///
    /// Under [`PlanMode::Staged`] plans are cached per sorter: the first
    /// run of a problem shape records the launch graph, every later run
    /// replays it. [`PlanMode::Eager`] re-records on every run — the
    /// pre-planner behaviour, kept for byte-identity reference runs and as
    /// the baseline the plan-cache wall-clock differential is measured
    /// against.
    fn plan_for(&self, proc: &StreamProcessor, key: PlanKey) -> Arc<SortPlan> {
        if proc.plan_mode() == PlanMode::Eager {
            return Arc::new(SortPlan::record(key));
        }
        let mut plans = self.plans.lock().expect("plan cache poisoned");
        Arc::clone(
            plans
                .entry(key)
                .or_insert_with(|| Arc::new(SortPlan::record(key))),
        )
    }

    /// Sort `values` ascending, returning just the sorted data.
    ///
    /// Arbitrary input lengths are supported: non-power-of-two inputs are
    /// padded with maximum-key sentinels (the paper’s padding remark in
    /// Section 4) which are cut off again before returning.
    pub fn sort(&self, proc: &mut StreamProcessor, values: &[Value]) -> Result<Vec<Value>> {
        Ok(self.sort_run(proc, values)?.output)
    }

    /// Sort `values` ascending and return the full [`SortRun`] record.
    pub fn sort_run(&self, proc: &mut StreamProcessor, values: &[Value]) -> Result<SortRun> {
        let started = std::time::Instant::now();
        proc.reset();

        let original_len = values.len();
        if original_len <= 1 {
            return Ok(SortRun {
                output: values.to_vec(),
                counters: proc.counters(),
                sim_time: proc.simulated_time(),
                wall_time: started.elapsed(),
                padded_len: original_len,
            });
        }

        // Pad to a power of two (Section 4) with maximum-key sentinels that keep all
        // elements distinct. The padded copy lives in a recycled arena
        // buffer: a service sorting thousands of jobs on one pooled
        // processor reuses the same allocation run after run.
        let n = original_len.next_power_of_two();
        let mut padded = proc.arena().take_capacity::<Value>(n);
        padded.extend_from_slice(values);
        for i in 0..(n - original_len) {
            padded.push(Value::padding_sentinel(i));
        }

        let mut output = self.run_stream_program(proc, &padded, n.trailing_zeros())?;
        output.truncate(original_len);
        proc.arena().put_vec(padded);

        let counters = proc.counters();
        Ok(SortRun {
            output,
            sim_time: proc.simulated_time(),
            counters,
            wall_time: started.elapsed(),
            padded_len: n,
        })
    }

    /// Sort many equal-sized segments of `values` independently — but in
    /// *shared* stream operations — and return the full [`SegmentedRun`]
    /// record.
    ///
    /// This is the device side of a batched sorting service: the recursion
    /// of Listing 2 is simply stopped at level `log₂ segment_len`, so every
    /// `segment_len`-aligned block ends up sorted on its own while all
    /// blocks share each level's kernel launches. The number of stream
    /// operations is therefore that of sorting *one* segment, not
    /// `segments` times that — exactly the launch-overhead amortization the
    /// paper's cost model (Section 3.1) rewards for coalescing many small
    /// sorts into one device submission.
    ///
    /// Requirements: `segment_len` and `values.len() / segment_len` are
    /// powers of two, `values.len()` is a multiple of `segment_len`, and
    /// the elements of each segment are distinct under the total order
    /// (the adaptive-bitonic precondition; unique `id`s per segment
    /// suffice). Callers pad short segments with
    /// [`Value::padding_sentinel`]s and truncate after the run.
    pub fn sort_segments_run(
        &self,
        proc: &mut StreamProcessor,
        values: &[Value],
        segment_len: usize,
    ) -> Result<SegmentedRun> {
        assert!(
            segment_len.is_power_of_two(),
            "segment_len must be a power of two"
        );
        assert!(
            values.len().is_multiple_of(segment_len),
            "values length must be a multiple of segment_len"
        );
        let segments = values.len() / segment_len;
        assert!(
            segments == 0 || segments.is_power_of_two(),
            "segment count must be a power of two"
        );

        let started = std::time::Instant::now();
        proc.reset();

        let mut output = if values.is_empty() || segment_len == 1 {
            // Zero or single-element segments are sorted by definition.
            values.to_vec()
        } else {
            self.run_stream_program(proc, values, segment_len.trailing_zeros())?
        };

        // Simultaneously merged trees alternate between ascending and
        // descending order (Listings 3/4); the service wants every segment
        // ascending, so the odd segments are read back in reverse.
        for t in (1..segments).step_by(2) {
            output[t * segment_len..(t + 1) * segment_len].reverse();
        }

        let counters = proc.counters();
        Ok(SegmentedRun {
            output,
            sim_time: proc.simulated_time(),
            counters,
            wall_time: started.elapsed(),
            segment_len,
            segments,
        })
    }

    /// Return the `k` smallest values ascending, returning just the data.
    pub fn top_k(
        &self,
        proc: &mut StreamProcessor,
        values: &[Value],
        k: usize,
    ) -> Result<Vec<Value>> {
        Ok(self.top_k_run(proc, values, k)?.output)
    }

    /// Return the `k` smallest values ascending, stopping the bitonic
    /// recursion early, and return the full [`TopKRun`] record.
    ///
    /// The recursion of Listing 2 runs only up to level `log₂ b` where
    /// `b = max(16, 2·k rounded up to a power of two)`: every
    /// `b`-aligned block ends up sorted on its own (alternating
    /// directions, Listings 3/4) while the merge levels *above* `b` —
    /// which a full sort would still have to run — are skipped entirely.
    /// The `k` smallest of the whole input are necessarily among the `k`
    /// extremal elements of each sorted block, so the host-side readback
    /// filters `k` candidates per block (the prefix of ascending blocks,
    /// the reversed suffix of descending ones) and merges them by a
    /// `k`-way selection.
    ///
    /// Because the skipped merge levels cost at least one stream
    /// operation each (the workspace's `merge_blocks_is_the_tail_of_the_
    /// full_recursion` test shows level costs are additive), the kernel
    /// step count is *strictly* below a full sort's whenever `b` is
    /// smaller than the padded input length.
    pub fn top_k_run(
        &self,
        proc: &mut StreamProcessor,
        values: &[Value],
        k: usize,
    ) -> Result<TopKRun> {
        let started = std::time::Instant::now();
        proc.reset();

        let original_len = values.len();
        let k = k.min(original_len);
        if original_len <= 1 || k == 0 {
            let mut output = values[..k].to_vec();
            output.sort();
            return Ok(TopKRun {
                output,
                counters: proc.counters(),
                sim_time: proc.simulated_time(),
                wall_time: started.elapsed(),
                block_len: original_len,
                padded_len: original_len,
            });
        }

        let n = original_len.next_power_of_two();
        // Stop the recursion at blocks of 2·k (min 16 so the Section 7
        // optimizations stay applicable, max n when k is no longer small).
        let block = (2 * k.next_power_of_two()).max(16).min(n);

        let mut padded = proc.arena().take_capacity::<Value>(n);
        padded.extend_from_slice(values);
        for i in 0..(n - original_len) {
            padded.push(Value::padding_sentinel(i));
        }
        let blocks = self.run_stream_program(proc, &padded, block.trailing_zeros())?;
        proc.arena().put_vec(padded);

        // Candidate runs: the k smallest of each block, ascending. Even
        // blocks are sorted ascending (take the prefix), odd blocks
        // descending (take the suffix, reversed) — the Listing 3/4
        // alternating-direction convention. Padding sentinels are the
        // maximum keys, so with k ≤ original_len they never make the cut.
        let take = k.min(block);
        let runs: Vec<Vec<Value>> = blocks
            .chunks(block)
            .enumerate()
            .map(|(t, chunk)| {
                if t % 2 == 0 {
                    chunk[..take].to_vec()
                } else {
                    chunk[chunk.len() - take..].iter().rev().copied().collect()
                }
            })
            .collect();

        // Host-side k-way selection merge over the candidate runs.
        let mut heap = std::collections::BinaryHeap::with_capacity(runs.len());
        for (r, run) in runs.iter().enumerate() {
            if let Some(&head) = run.first() {
                heap.push(std::cmp::Reverse((head, r, 0usize)));
            }
        }
        let mut output = Vec::with_capacity(k);
        while output.len() < k {
            let std::cmp::Reverse((value, r, i)) = heap.pop().expect("k candidates exist");
            output.push(value);
            if let Some(&next) = runs[r].get(i + 1) {
                heap.push(std::cmp::Reverse((next, r, i + 1)));
            }
        }

        let counters = proc.counters();
        Ok(TopKRun {
            output,
            sim_time: proc.simulated_time(),
            counters,
            wall_time: started.elapsed(),
            block_len: block,
            padded_len: n,
        })
    }

    /// Merge `values.len() / block_len` pre-sorted blocks into one sorted
    /// sequence on the device, and return the full [`SortRun`] record.
    ///
    /// This is the recombination half of Listing 2 run on its own: the
    /// recursion levels *below* `log₂ block_len` are skipped because the
    /// blocks are already sorted, and the remaining levels form a
    /// tournament of pairwise adaptive bitonic merges (each level merges
    /// adjacent blocks, halving the block count) until one sorted sequence
    /// remains. A multi-device sorter uses this as its p-way recombination
    /// step: shards sorted on other devices are gathered onto one device
    /// and merged here.
    ///
    /// Requirements: `block_len` and `values.len() / block_len` are powers
    /// of two, and the blocks are sorted in **alternating directions**
    /// (block 0 ascending, block 1 descending, …) — the Listing 3/4
    /// direction convention every level of the recursion expects. All
    /// elements must be distinct under the total order.
    pub fn merge_blocks_run(
        &self,
        proc: &mut StreamProcessor,
        values: &[Value],
        block_len: usize,
    ) -> Result<SortRun> {
        assert!(
            block_len.is_power_of_two(),
            "block_len must be a power of two"
        );
        assert!(
            values.len().is_multiple_of(block_len.max(1)),
            "values length must be a multiple of block_len"
        );
        let blocks = values.len() / block_len;
        assert!(
            blocks == 0 || blocks.is_power_of_two(),
            "block count must be a power of two"
        );

        let started = std::time::Instant::now();
        proc.reset();

        let output = if values.len() <= 1 || blocks <= 1 {
            // Zero or one block: already sorted by precondition.
            values.to_vec()
        } else {
            let n = values.len();
            proc.check_stream_size::<Node>(2 * n)?;
            let layout = self.config.layout.to_layout();
            // A block merge gates the fixed-merge tail on the *total* size
            // (every level it runs has 16-element groups available), and
            // never runs the local-sort prologue — the blocks arrive
            // sorted.
            let key = PlanKey {
                n,
                first_level: block_len.trailing_zeros() + 1,
                top_level: n.trailing_zeros(),
                local_sort: false,
                fixed_merge: self.config.fixed_merge_optimization && n >= 16,
                overlapped: self.config.overlapped_steps,
            };
            let plan = self.plan_for(proc, key);
            let mut streams = MergeStreams::take(proc.arena(), n, layout);
            // Scratch/merged value streams are written in full by
            // `traverse16` / `fixed_merge16` before either is read, so
            // their refill is elided too.
            let mut scratch_values: Stream<Value> =
                proc.arena().take_stream_uninit("scratch-values", n, layout);
            let mut merged_values: Stream<Value> =
                proc.arena().take_stream_uninit("merged-values", n, layout);

            // The Listing-2 invariant at the start of level j is "the input
            // half holds the values in in-order storage, each 2^(j-1) block
            // sorted in alternating directions" — exactly what the caller
            // provides, so the recursion simply resumes above the blocks.
            kernels::init_input_trees(&mut streams.trees_a, values);
            plan.execute(
                proc,
                &mut PlanBuffers {
                    trees_a: &mut streams.trees_a,
                    trees_b: &mut streams.trees_b,
                    pq: &mut streams.pq,
                    scratch: Some(&mut scratch_values),
                    merged: Some(&mut merged_values),
                    source: None,
                },
            )?;
            let output = kernels::read_back_values(&streams.trees_a, n);
            streams.recycle(proc.arena());
            proc.arena().recycle(scratch_values);
            proc.arena().recycle(merged_values);
            output
        };

        let counters = proc.counters();
        Ok(SortRun {
            output,
            sim_time: proc.simulated_time(),
            counters,
            wall_time: started.elapsed(),
            padded_len: values.len(),
        })
    }

    /// The stream program shared by [`Self::sort_run`] (runs all
    /// `log₂ n` recursion levels) and [`Self::sort_segments_run`] (stops at
    /// level `top_level`, leaving every `2^top_level`-aligned block sorted
    /// with alternating directions).
    ///
    /// `padded.len()` must be a power-of-two multiple of `2^top_level`.
    fn run_stream_program(
        &self,
        proc: &mut StreamProcessor,
        padded: &[Value],
        top_level: u32,
    ) -> Result<Vec<Value>> {
        let n = padded.len();
        proc.check_stream_size::<Node>(2 * n)?;
        let layout = self.config.layout.to_layout();
        let key = self.plan_key(n, top_level);
        let plan = self.plan_for(proc, key);

        if self.config.include_transfer {
            // Upload of the input pairs and readback of the sorted output
            // (Section 8).
            proc.charge_transfer(2 * (n as u64) * 8);
        }

        let mut streams = MergeStreams::take(proc.arena(), n, layout);
        // Value streams used by the Section 7 kernels. Both are fully
        // written before they are read (`local_sort8`/`traverse16` fill
        // the scratch stream, `fixed_merge16` the merged stream), so the
        // default refill is elided.
        let mut scratch_values: Stream<Value> =
            proc.arena().take_stream_uninit("scratch-values", n, layout);
        let mut merged_values: Stream<Value> =
            proc.arena().take_stream_uninit("merged-values", n, layout);

        // --- Input setup -------------------------------------------------
        let source = if key.local_sort {
            // Section 7.1: the plan starts with the local sort of 8
            // value/pointer pairs per kernel instance; it reads the source
            // pairs from their own stream.
            Some(
                proc.arena()
                    .take_stream_from("source-values", padded, layout),
            )
        } else {
            // Listing 2: the input half of the node stream holds the source
            // data with the fixed in-order child indices (host-side
            // initialization / data upload).
            kernels::init_input_trees(&mut streams.trees_a, padded);
            None
        };

        plan.execute(
            proc,
            &mut PlanBuffers {
                trees_a: &mut streams.trees_a,
                trees_b: &mut streams.trees_b,
                pq: &mut streams.pq,
                scratch: Some(&mut scratch_values),
                merged: Some(&mut merged_values),
                source: source.as_ref(),
            },
        )?;

        let output = kernels::read_back_values(&streams.trees_a, n);
        streams.recycle(proc.arena());
        proc.arena().recycle(scratch_values);
        proc.arena().recycle(merged_values);
        if let Some(source) = source {
            proc.arena().recycle(source);
        }
        Ok(output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LayoutChoice, SortConfig};
    use crate::verify::check_sorts;
    use stream_arch::GpuProfile;
    use workloads::Distribution;

    fn run(config: SortConfig, n: usize, seed: u64) -> SortRun {
        let input = workloads::uniform(n, seed);
        let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
        let sorter = GpuAbiSorter::new(config);
        let run = sorter.sort_run(&mut proc, &input).expect("sort failed");
        check_sorts(&input, &run.output).expect("incorrect sort");
        run
    }

    #[test]
    fn default_configuration_sorts_various_sizes() {
        for &n in &[16usize, 32, 64, 128, 256, 512, 1024, 4096] {
            run(SortConfig::default(), n, n as u64);
        }
    }

    #[test]
    fn unoptimized_configuration_sorts_various_sizes() {
        for &n in &[2usize, 4, 8, 16, 64, 256, 1024] {
            run(SortConfig::unoptimized(), n, n as u64);
        }
    }

    #[test]
    fn every_configuration_combination_sorts_correctly() {
        let n = 256;
        for overlapped in [false, true] {
            for local in [false, true] {
                for fixed in [false, true] {
                    for layout in [LayoutChoice::ZOrder, LayoutChoice::RowWise { width: 64 }] {
                        let config = SortConfig {
                            layout,
                            overlapped_steps: overlapped,
                            local_sort_optimization: local,
                            fixed_merge_optimization: fixed,
                            include_transfer: false,
                        };
                        let input = workloads::uniform(n, 7);
                        let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
                        let out = GpuAbiSorter::new(config).sort(&mut proc, &input).unwrap();
                        check_sorts(&input, &out)
                            .unwrap_or_else(|e| panic!("{}: {e}", config.describe()));
                    }
                }
            }
        }
    }

    #[test]
    fn non_power_of_two_lengths_are_padded() {
        for &n in &[1usize, 3, 17, 100, 1000, 1023] {
            let input = workloads::uniform(n, n as u64);
            let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
            let out = GpuAbiSorter::new(SortConfig::default())
                .sort(&mut proc, &input)
                .unwrap();
            assert_eq!(out.len(), n);
            if n > 1 {
                check_sorts(&input, &out).unwrap();
            }
        }
    }

    #[test]
    fn small_inputs_fall_back_to_the_plain_algorithm() {
        // n < 16 cannot use the Section 7 optimizations; the sorter must
        // still work with the default (optimized) configuration.
        for &n in &[2usize, 4, 8] {
            run(SortConfig::default(), n, 5);
        }
    }

    #[test]
    fn adversarial_distributions_are_sorted() {
        for dist in Distribution::all_for_data_dependence() {
            let input = workloads::generate(dist, 512, 3);
            let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
            let out = GpuAbiSorter::new(SortConfig::default())
                .sort(&mut proc, &input)
                .unwrap();
            check_sorts(&input, &out).unwrap_or_else(|e| panic!("{}: {e}", dist.name()));
        }
    }

    #[test]
    fn comparison_count_is_data_independent() {
        let n = 1024;
        let mut counts = std::collections::HashSet::new();
        for dist in Distribution::all_for_data_dependence() {
            let input = workloads::generate(dist, n, 11);
            let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
            let run = GpuAbiSorter::new(SortConfig::default())
                .sort_run(&mut proc, &input)
                .unwrap();
            counts.insert(run.counters.comparisons);
        }
        assert_eq!(counts.len(), 1, "comparison counts varied: {counts:?}");
    }

    #[test]
    fn stream_and_sequential_sorts_agree() {
        for seed in 0..5u64 {
            let input = workloads::uniform(512, seed);
            let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
            let stream_out = GpuAbiSorter::new(SortConfig::default())
                .sort(&mut proc, &input)
                .unwrap();
            let seq_out = crate::sequential::adaptive_bitonic_sort(&input);
            assert_eq!(stream_out, seq_out);
        }
    }

    #[test]
    fn overlapped_steps_reduce_stream_operations() {
        let n = 4096;
        let overlapped = run(SortConfig::unoptimized().with_overlapped_steps(true), n, 1);
        let sequential = run(SortConfig::unoptimized(), n, 1);
        assert!(overlapped.counters.steps < sequential.counters.steps);
        assert_eq!(
            overlapped.counters.comparisons,
            sequential.counters.comparisons
        );
    }

    #[test]
    fn optimizations_reduce_steps_and_comparisons_stay_bounded() {
        let n = 4096;
        let optimized = run(SortConfig::default(), n, 2);
        let plain = run(
            SortConfig::default()
                .with_local_sort(false)
                .with_fixed_merge(false),
            n,
            2,
        );
        assert!(optimized.counters.steps < plain.counters.steps);
        // The plain adaptive sort stays under the 2 n log n comparison bound
        // cited in Section 2.1. The Section 7 optimizations trade a few
        // extra comparisons (the fixed merge is non-adaptive) for far fewer
        // stream operations, so its bound is slightly looser.
        let n_log_n = (n as u64) * 12;
        assert!(plain.counters.comparisons < 2 * n_log_n);
        assert!(optimized.counters.comparisons < 3 * n_log_n);
    }

    #[test]
    fn z_order_layout_beats_row_wise_in_simulated_time() {
        let n = 8192;
        let z = run(SortConfig::z_order(), n, 9);
        let row = run(SortConfig::row_wise(2048), n, 9);
        assert!(
            z.sim_time.total_ms < row.sim_time.total_ms,
            "z-order {:.2} ms vs row-wise {:.2} ms",
            z.sim_time.total_ms,
            row.sim_time.total_ms
        );
        assert!(z.counters.bytes_read < row.counters.bytes_read);
    }

    #[test]
    fn transfer_charge_is_optional_and_additive() {
        let n = 1024;
        let without = run(SortConfig::default(), n, 4);
        let with = run(SortConfig::default().with_transfer(true), n, 4);
        assert_eq!(without.counters.transfer_bytes, 0);
        assert_eq!(with.counters.transfer_bytes, 2 * 1024 * 8);
        assert!(with.sim_time.total_ms > without.sim_time.total_ms);
    }

    #[test]
    fn sort_run_reports_padded_length_and_wall_time() {
        let input = workloads::uniform(100, 0);
        let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
        let run = GpuAbiSorter::new(SortConfig::default())
            .sort_run(&mut proc, &input)
            .unwrap();
        assert_eq!(run.padded_len, 128);
        assert_eq!(run.output.len(), 100);
        assert!(run.wall_time.as_nanos() > 0);
    }

    #[test]
    fn empty_and_single_element_inputs() {
        let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
        let sorter = GpuAbiSorter::new(SortConfig::default());
        assert!(sorter.sort(&mut proc, &[]).unwrap().is_empty());
        let one = vec![Value::new(2.0, 7)];
        assert_eq!(sorter.sort(&mut proc, &one).unwrap(), one);
    }

    /// Reference for the segmented sort: sort each `segment_len` block of
    /// `input` on its own.
    fn per_segment_sorted(input: &[Value], segment_len: usize) -> Vec<Value> {
        let mut expected = input.to_vec();
        for chunk in expected.chunks_mut(segment_len.max(1)) {
            chunk.sort();
        }
        expected
    }

    #[test]
    fn segmented_sort_sorts_every_segment_ascending() {
        for &(segments, segment_len) in &[
            (1usize, 16usize),
            (2, 16),
            (2, 8),
            (4, 4),
            (8, 2),
            (16, 1),
            (4, 64),
            (8, 32),
            (2, 256),
        ] {
            let input = workloads::uniform(segments * segment_len, (segments * segment_len) as u64);
            let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
            let run = GpuAbiSorter::new(SortConfig::default())
                .sort_segments_run(&mut proc, &input, segment_len)
                .expect("segmented sort failed");
            assert_eq!(run.segments, segments);
            assert_eq!(
                run.output,
                per_segment_sorted(&input, segment_len),
                "segments={segments} segment_len={segment_len}"
            );
        }
    }

    #[test]
    fn segmented_sort_works_for_every_configuration() {
        let segments = 4;
        let segment_len = 64;
        let input = workloads::uniform(segments * segment_len, 7);
        let expected = per_segment_sorted(&input, segment_len);
        for config in [
            SortConfig::default(),
            SortConfig::unoptimized(),
            SortConfig::unoptimized().with_overlapped_steps(true),
            SortConfig::default().with_fixed_merge(false),
            SortConfig::default().with_local_sort(false),
            SortConfig::row_wise(64),
        ] {
            let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
            let run = GpuAbiSorter::new(config)
                .sort_segments_run(&mut proc, &input, segment_len)
                .expect("segmented sort failed");
            assert_eq!(run.output, expected, "{}", config.describe());
        }
    }

    #[test]
    fn segmented_sort_amortizes_stream_operations() {
        // Sorting k segments in one batched submission costs exactly the
        // stream operations of sorting ONE segment — every level's launches
        // are shared by all segments — while a one-job-per-launch submission
        // pays them k times. This is the economics the sorting service is
        // built on (Section 3.1 launch overhead).
        let segment_len = 256;
        let segments = 8;
        let input = workloads::uniform(segments * segment_len, 3);

        let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
        let sorter = GpuAbiSorter::new(SortConfig::default());
        let batched = sorter
            .sort_segments_run(&mut proc, &input, segment_len)
            .unwrap();

        let single = sorter.sort_run(&mut proc, &input[..segment_len]).unwrap();

        assert_eq!(batched.counters.steps, single.counters.steps);
        assert_eq!(
            batched.counters.kernel_instances,
            segments as u64 * single.counters.kernel_instances
        );
        // The batch is nevertheless cheaper than k separate submissions in
        // simulated time.
        let naive_ms = segments as f64 * single.sim_time.total_ms;
        assert!(
            batched.sim_time.total_ms < naive_ms,
            "batched {:.3} ms vs naive {:.3} ms",
            batched.sim_time.total_ms,
            naive_ms
        );
    }

    #[test]
    fn segmented_sort_with_sentinel_padding_truncates_cleanly() {
        // Two jobs of uneven length padded into 16-element segments: after
        // the run the sentinels sit at the end of each segment, so cutting
        // each segment back to its job length yields the per-job sorted
        // data.
        let jobs: Vec<Vec<Value>> = vec![workloads::uniform(11, 1), workloads::uniform(5, 2)];
        let segment_len = 16;
        let mut packed = Vec::new();
        let mut pad = 0usize;
        for job in &jobs {
            packed.extend_from_slice(job);
            for _ in job.len()..segment_len {
                packed.push(Value::padding_sentinel(pad));
                pad += 1;
            }
        }
        let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
        let run = GpuAbiSorter::new(SortConfig::default())
            .sort_segments_run(&mut proc, &packed, segment_len)
            .unwrap();
        for (t, job) in jobs.iter().enumerate() {
            let got = &run.output[t * segment_len..t * segment_len + job.len()];
            let mut expected = job.clone();
            expected.sort();
            assert_eq!(got, &expected[..], "job {t}");
        }
    }

    /// Alternating-direction pre-sorted blocks, the precondition of
    /// [`GpuAbiSorter::merge_blocks_run`].
    fn alternating_blocks(input: &[Value], block_len: usize) -> Vec<Value> {
        let mut blocks = input.to_vec();
        for (t, chunk) in blocks.chunks_mut(block_len).enumerate() {
            if t % 2 == 0 {
                chunk.sort();
            } else {
                chunk.sort_by(|a, b| b.cmp(a));
            }
        }
        blocks
    }

    #[test]
    fn merge_blocks_recombines_presorted_blocks() {
        for &(blocks, block_len) in &[(2usize, 16usize), (4, 64), (8, 32), (2, 256), (16, 16)] {
            let input = workloads::uniform(blocks * block_len, (blocks + block_len) as u64);
            let prepared = alternating_blocks(&input, block_len);
            let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
            let run = GpuAbiSorter::new(SortConfig::default())
                .merge_blocks_run(&mut proc, &prepared, block_len)
                .expect("block merge failed");
            let mut expected = input.clone();
            expected.sort();
            assert_eq!(
                run.output, expected,
                "blocks={blocks} block_len={block_len}"
            );
        }
    }

    #[test]
    fn merge_blocks_works_for_every_configuration() {
        let input = workloads::uniform(512, 21);
        let prepared = alternating_blocks(&input, 128);
        let mut expected = input.clone();
        expected.sort();
        for config in [
            SortConfig::default(),
            SortConfig::unoptimized(),
            SortConfig::unoptimized().with_overlapped_steps(true),
            SortConfig::default().with_fixed_merge(false),
            SortConfig::row_wise(64),
        ] {
            let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
            let run = GpuAbiSorter::new(config)
                .merge_blocks_run(&mut proc, &prepared, 128)
                .expect("block merge failed");
            assert_eq!(run.output, expected, "{}", config.describe());
        }
    }

    #[test]
    fn merge_blocks_is_the_tail_of_the_full_recursion() {
        // A segmented sort stopped at level log₂(segment) plus a block
        // merge of its (re-reversed) output runs exactly the levels the
        // full sort runs — so the outputs agree and the stream-operation
        // counts add up to the full sort's count.
        let n = 2048;
        let seg = 256;
        let input = workloads::uniform(n, 17);
        let sorter = GpuAbiSorter::new(SortConfig::default());
        let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());

        let full = sorter.sort_run(&mut proc, &input).unwrap();
        let segmented = sorter.sort_segments_run(&mut proc, &input, seg).unwrap();

        // Undo the readback reversal: the merge wants alternating order.
        let mut blocks = segmented.output.clone();
        for t in (1..n / seg).step_by(2) {
            blocks[t * seg..(t + 1) * seg].reverse();
        }
        let merged = sorter.merge_blocks_run(&mut proc, &blocks, seg).unwrap();

        assert_eq!(merged.output, full.output);
        assert_eq!(
            segmented.counters.steps + merged.counters.steps,
            full.counters.steps,
            "segment + merge levels must cost exactly the full recursion"
        );
        assert!(merged.sim_time.total_ms < full.sim_time.total_ms);
    }

    #[test]
    fn merge_blocks_handles_degenerate_shapes() {
        let sorter = GpuAbiSorter::new(SortConfig::default());
        let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
        // Empty input and a single block are returned as-is.
        assert!(sorter
            .merge_blocks_run(&mut proc, &[], 16)
            .unwrap()
            .output
            .is_empty());
        let mut one = workloads::uniform(64, 3);
        one.sort();
        assert_eq!(
            sorter.merge_blocks_run(&mut proc, &one, 64).unwrap().output,
            one
        );
        // Tiny blocks below the Section 7 sizes still merge correctly.
        let input = workloads::uniform(8, 5);
        let prepared = alternating_blocks(&input, 2);
        let mut expected = input.clone();
        expected.sort();
        assert_eq!(
            sorter
                .merge_blocks_run(&mut proc, &prepared, 2)
                .unwrap()
                .output,
            expected
        );
    }

    #[test]
    fn top_k_matches_the_sorted_prefix() {
        for &(n, k) in &[
            (1000usize, 10usize),
            (1024, 1),
            (1023, 16),
            (256, 256),
            (100, 200), // k > n clamps to n
            (17, 5),
            (2, 1),
            (1, 1),
            (0, 3),
            (64, 0),
        ] {
            let input = workloads::uniform(n, (n + k) as u64);
            let mut expected = input.clone();
            expected.sort();
            expected.truncate(k.min(n));
            let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
            let run = GpuAbiSorter::new(SortConfig::default())
                .top_k_run(&mut proc, &input, k)
                .expect("top-k failed");
            assert_eq!(run.output, expected, "n={n} k={k}");
        }
    }

    #[test]
    fn top_k_matches_the_sorted_prefix_on_adversarial_distributions() {
        for dist in Distribution::all_for_data_dependence() {
            let input = workloads::generate(dist, 512, 13);
            let mut expected = input.clone();
            expected.sort();
            expected.truncate(20);
            let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
            let run = GpuAbiSorter::new(SortConfig::default())
                .top_k_run(&mut proc, &input, 20)
                .expect("top-k failed");
            assert_eq!(run.output, expected, "{}", dist.name());
        }
    }

    #[test]
    fn top_k_does_strictly_fewer_kernel_steps_than_a_full_sort() {
        // The acceptance claim: stopping the recursion at blocks of ~2k
        // skips every merge level above them, so for k ≪ n the kernel
        // step count is strictly below the full sort of the same input.
        let n = 4096;
        let input = workloads::uniform(n, 23);
        let sorter = GpuAbiSorter::new(SortConfig::default());
        let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());

        let full = sorter.sort_run(&mut proc, &input).unwrap();
        for k in [1usize, 8, 64] {
            let top = sorter.top_k_run(&mut proc, &input, k).unwrap();
            assert!(top.block_len < top.padded_len, "k={k} must stop early");
            assert!(
                top.counters.steps < full.counters.steps,
                "k={k}: top-k ran {} steps, full sort {}",
                top.counters.steps,
                full.counters.steps
            );
            assert!(top.sim_time.total_ms < full.sim_time.total_ms);
        }

        // Once k stops being small the run degenerates to the full sort.
        let large = sorter.top_k_run(&mut proc, &input, n).unwrap();
        assert_eq!(large.block_len, large.padded_len);
        assert_eq!(large.counters.steps, full.counters.steps);
    }

    #[test]
    fn segmented_sort_handles_empty_input() {
        let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
        let run = GpuAbiSorter::new(SortConfig::default())
            .sort_segments_run(&mut proc, &[], 16)
            .unwrap();
        assert!(run.output.is_empty());
        assert_eq!(run.segments, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn segmented_sort_rejects_non_power_of_two_segment_count() {
        let input = workloads::uniform(48, 0); // 3 segments of 16
        let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
        let _ = GpuAbiSorter::new(SortConfig::default()).sort_segments_run(&mut proc, &input, 16);
    }

    #[test]
    fn stream_size_limit_is_enforced() {
        // A profile with a tiny maximum texture dimension must reject
        // oversized inputs instead of producing wrong results.
        let mut profile = GpuProfile::geforce_6800();
        profile.max_texture_dim = 8; // max 64 elements per stream
        let mut proc = StreamProcessor::new(profile);
        let input = workloads::uniform(64, 0); // needs a 128-node stream
        let err = GpuAbiSorter::new(SortConfig::default())
            .sort(&mut proc, &input)
            .unwrap_err();
        assert!(matches!(
            err,
            stream_arch::StreamError::StreamTooLarge { .. }
        ));
    }
}
