//! `GPUABiMerge` — one recursion level of GPU-ABiSort (Listing 5 and
//! Section 5.4).
//!
//! The merge simultaneously applies the adaptive bitonic merge to the
//! `numTrees = n / 2^j` bitonic trees stored in-order in the input half of
//! the node stream. It is executed either with *sequential phases*
//! (Section 5.3 / Appendix A: `½j² + ½j` stream operations per level) or
//! with *partially overlapped stages* (Section 5.4: `2j − 1` steps per
//! level). Both variants use the Table-1 output-stream layout from
//! [`super::layout_plan`] and the kernels from [`super::kernels`].
//!
//! Because the paper's GPUs require distinct input and output streams
//! (Section 6.1), node pairs are always gathered from the permanent input
//! stream `trees_a`, written to the output stream `trees_b`, and copied
//! back after every launch; the pq-index streams use the ping-pong
//! technique instead.

use super::plan::{record_level_plan, PlanBuffers};
use stream_arch::{Layout, Node, Result, Stream, StreamArena, StreamProcessor};

/// The streams a GPU-ABiSort run operates on.
pub struct MergeStreams {
    /// Permanent gather/input node stream (2n nodes: workspace + input trees).
    pub trees_a: Stream<Node>,
    /// Permanent output node stream (2n nodes).
    pub trees_b: Stream<Node>,
    /// Ping-pong pair of pq-index streams (2n indices each).
    pub pq: [Stream<u32>; 2],
}

impl MergeStreams {
    /// Allocate the four working streams for an `n`-element sort from the
    /// processor's buffer arena (recycled backing buffers when a previous
    /// run of the same size class handed its streams back).
    ///
    /// All four streams are taken **uninitialized** (zero-fill elision):
    /// every element read from them is written earlier in the same run.
    /// The input half `[n, 2n)` of `trees_a` is host-initialized before
    /// the levels run; its workspace half is only read through blocks
    /// that the per-phase `copy_back` wrote first. `trees_b` is read only
    /// by `copy_back` over exactly the block the preceding kernel wrote.
    /// The pq streams ping-pong: each phase reads the full `2·len` region
    /// the previous phase wrote. The elision proptests and the E21 live
    /// identity checks pin the resulting byte-identity down.
    pub fn take(arena: &mut StreamArena, n: usize, layout: Layout) -> Self {
        MergeStreams {
            trees_a: arena.take_stream_uninit("trees-a", 2 * n, layout),
            trees_b: arena.take_stream_uninit("trees-b", 2 * n, layout),
            pq: [
                arena.take_stream_uninit("pq-a", 2 * n, layout),
                arena.take_stream_uninit("pq-b", 2 * n, layout),
            ],
        }
    }

    /// Hand all backing buffers back for reuse by the next run.
    pub fn recycle(self, arena: &mut StreamArena) {
        arena.recycle(self.trees_a);
        arena.recycle(self.trees_b);
        let [pq_a, pq_b] = self.pq;
        arena.recycle(pq_a);
        arena.recycle(pq_b);
    }
}

/// What a (possibly truncated) level merge left behind.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MergeOutcome {
    /// All stages ran; the merged values sit in elements `[0, n)` of the
    /// node streams in in-order order and must be committed to the input
    /// half for the next level (Listing 2).
    Complete,
    /// The last stages were skipped (Section 7.2). The remaining 16-node
    /// subtrees must be traversed and merged with the fixed merge; their
    /// roots start at the given element index (their spare values sit at
    /// elements `[0, groups)`).
    Truncated {
        /// Element index of the first group root.
        roots_start: usize,
    },
    /// The level was skipped entirely (no adaptive stages to run); the
    /// 16-element groups are the input trees themselves.
    Skipped,
}

/// Run one recursion level of the adaptive bitonic merge.
///
/// * `n` — total number of elements being sorted (a power of two);
/// * `j` — recursion level (`1 ≤ j ≤ log₂ n`); the level merges
///   `n / 2^j` bitonic trees of `2^j` nodes each;
/// * `overlapped` — use the Section 5.4 overlapped-stage schedule;
/// * `skip_last_stages` — number of final stages to skip (4 when the
///   Section 7.2 fixed merge takes over, 0 otherwise).
///
/// Since the launch-graph planner landed this is a record-then-execute
/// wrapper: [`record_level_plan`] produces the level's launch plan (the
/// exact sequence this function used to issue inline), and the plan runs
/// against the level's streams — eagerly or as fused stages, depending on
/// the processor's [`stream_arch::PlanMode`].
pub fn merge_level(
    proc: &mut StreamProcessor,
    streams: &mut MergeStreams,
    n: usize,
    j: u32,
    overlapped: bool,
    skip_last_stages: u32,
) -> Result<MergeOutcome> {
    let (plan, outcome) = record_level_plan(n, j, overlapped, skip_last_stages);
    plan.execute(
        proc,
        &mut PlanBuffers {
            trees_a: &mut streams.trees_a,
            trees_b: &mut streams.trees_b,
            pq: &mut streams.pq,
            scratch: None,
            merged: None,
            source: None,
        },
    )?;
    Ok(outcome)
}

/// Borrow the ping-pong pq streams as (input, output) according to which
/// one currently holds the live indices.
pub(super) fn split_pq(
    pq: &mut [Stream<u32>; 2],
    pq_in: usize,
) -> (&Stream<u32>, &mut Stream<u32>) {
    let (first, second) = pq.split_at_mut(1);
    if pq_in == 0 {
        (&first[0], &mut second[0])
    } else {
        (&second[0], &mut first[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream_sort::kernels::init_input_trees;
    use crate::verify::{is_permutation, is_sorted, is_sorted_descending};
    use stream_arch::{GpuProfile, Layout, Value};

    fn make_streams(n: usize, layout: Layout) -> MergeStreams {
        MergeStreams {
            trees_a: Stream::new("trees-a", 2 * n, layout),
            trees_b: Stream::new("trees-b", 2 * n, layout),
            pq: [
                Stream::new("pq-a", 2 * n, layout),
                Stream::new("pq-b", 2 * n, layout),
            ],
        }
    }

    /// Run the full merge at the last recursion level (j = log n) on a
    /// bitonic input and return the merged sequence.
    fn merge_full(n: usize, input: &[Value], overlapped: bool) -> Vec<Value> {
        let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
        let mut streams = make_streams(n, Layout::ZOrder);
        init_input_trees(&mut streams.trees_a, input);
        let j = n.trailing_zeros();
        let outcome =
            merge_level(&mut proc, &mut streams, n, j, overlapped, 0).expect("merge failed");
        assert_eq!(outcome, MergeOutcome::Complete);
        // The merged values are the value fields of elements [0, n) of the
        // node stream, in order.
        (0..n).map(|i| streams.trees_a.get(i).value).collect()
    }

    #[test]
    fn single_tree_merge_sorts_bitonic_input_sequentially() {
        for log_n in 1..=9u32 {
            let n = 1usize << log_n;
            let input = workloads::bitonic(n.max(2), log_n as u64);
            let out = merge_full(n.max(2), &input, false);
            assert!(is_sorted(&out), "n={n}");
            assert!(is_permutation(&input, &out), "n={n}");
        }
    }

    #[test]
    fn single_tree_merge_sorts_bitonic_input_overlapped() {
        for log_n in 1..=9u32 {
            let n = 1usize << log_n;
            let input = workloads::bitonic(n.max(2), 50 + log_n as u64);
            let out = merge_full(n.max(2), &input, true);
            assert!(is_sorted(&out), "n={n}");
            assert!(is_permutation(&input, &out), "n={n}");
        }
    }

    #[test]
    fn overlapped_and_sequential_produce_identical_output() {
        for seed in 0..5u64 {
            let n = 256;
            let input = workloads::bitonic(n, seed);
            assert_eq!(merge_full(n, &input, false), merge_full(n, &input, true));
        }
    }

    #[test]
    fn stream_merge_matches_sequential_reference() {
        let n = 512;
        let input = workloads::bitonic(n, 42);
        let (expected, _) = crate::sequential::adaptive_bitonic_merge(
            &input,
            true,
            crate::sequential::MergeVariant::Simplified,
        );
        assert_eq!(merge_full(n, &input, true), expected);
    }

    #[test]
    fn multi_tree_level_merges_with_alternating_directions() {
        // Level j=3 of sorting n=32: four trees of 8 nodes each, sorted
        // ascending/descending alternately.
        let n = 32;
        let j = 3;
        let mut input = Vec::new();
        for t in 0..4 {
            let mut block = workloads::uniform(8, t as u64);
            // Each block must be bitonic: two sorted halves in opposite
            // directions.
            block[..4].sort();
            block[4..].sort_by(|a, b| b.cmp(a));
            input.extend(block);
        }
        let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
        let mut streams = make_streams(n, Layout::ZOrder);
        init_input_trees(&mut streams.trees_a, &input);
        merge_level(&mut proc, &mut streams, n, j, true, 0).unwrap();
        let merged: Vec<Value> = (0..n).map(|i| streams.trees_a.get(i).value).collect();
        for t in 0..4 {
            let block = &merged[t * 8..(t + 1) * 8];
            if t % 2 == 0 {
                assert!(is_sorted(block), "tree {t}");
            } else {
                assert!(is_sorted_descending(block), "tree {t}");
            }
            assert!(is_permutation(block, &input[t * 8..(t + 1) * 8]));
        }
    }

    #[test]
    fn truncated_merge_reports_group_roots() {
        let n = 64;
        let j = 6;
        let input = workloads::bitonic(n, 3);
        let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
        let mut streams = make_streams(n, Layout::ZOrder);
        init_input_trees(&mut streams.trees_a, &input);
        let outcome = merge_level(&mut proc, &mut streams, n, j, true, 4).unwrap();
        // Last executed stage is j−5 = 1; its phase-1 block starts at
        // element 2·(2^1·1) = 4.
        assert_eq!(outcome, MergeOutcome::Truncated { roots_start: 4 });
        // Level 4 with 4 skipped stages is skipped entirely.
        let outcome = merge_level(&mut proc, &mut streams, n, 4, true, 4).unwrap();
        assert_eq!(outcome, MergeOutcome::Skipped);
    }

    #[test]
    fn sequential_mode_issues_more_steps_than_overlapped() {
        let n = 256;
        let input = workloads::bitonic(n, 8);
        let run = |overlapped: bool| {
            let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
            let mut streams = make_streams(n, Layout::ZOrder);
            init_input_trees(&mut streams.trees_a, &input);
            merge_level(
                &mut proc,
                &mut streams,
                n,
                n.trailing_zeros(),
                overlapped,
                0,
            )
            .unwrap();
            proc.counters()
        };
        let seq = run(false);
        let ovl = run(true);
        // Same work, same comparisons, fewer steps.
        assert_eq!(seq.comparisons, ovl.comparisons);
        assert_eq!(seq.kernel_instances, ovl.kernel_instances);
        assert!(ovl.steps < seq.steps);
        // 2j − 1 steps plus one for the initialization.
        let j = n.trailing_zeros() as u64;
        assert_eq!(ovl.steps, 2 * j - 1 + 1);
        // ½j² + ½j phases plus one for the initialization.
        assert_eq!(seq.steps, (j * j + j) / 2 + 1);
    }

    #[test]
    fn merge_respects_row_wise_layout_too() {
        let n = 128;
        let input = workloads::bitonic(n, 15);
        let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
        let mut streams = make_streams(n, Layout::RowMajor { width: 16 });
        init_input_trees(&mut streams.trees_a, &input);
        merge_level(&mut proc, &mut streams, n, n.trailing_zeros(), true, 0).unwrap();
        let merged: Vec<Value> = (0..n).map(|i| streams.trees_a.get(i).value).collect();
        assert!(is_sorted(&merged));
        assert!(is_permutation(&input, &merged));
    }

    #[test]
    fn z_order_layout_has_better_cache_hit_rate_than_row_wise() {
        let n = 4096;
        let input = workloads::bitonic(n, 23);
        let run = |layout: Layout| {
            let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
            let mut streams = make_streams(n, layout);
            init_input_trees(&mut streams.trees_a, &input);
            merge_level(&mut proc, &mut streams, n, n.trailing_zeros(), true, 0).unwrap();
            proc.counters()
        };
        let z = run(Layout::ZOrder);
        let row = run(Layout::RowMajor { width: 2048 });
        assert!(
            z.cache.hit_rate() > row.cache.hit_rate(),
            "z-order {:.3} vs row-wise {:.3}",
            z.cache.hit_rate(),
            row.cache.hit_rate()
        );
        assert!(z.bytes_read < row.bytes_read);
    }
}
