//! GPU-ABiSort: adaptive bitonic sorting expressed as a stream program
//! (Sections 5–7 of the paper).
//!
//! The implementation follows the paper's layering:
//!
//! * [`layout_plan`] — *where* every phase of every merge stage writes its
//!   node pairs (Table 1), the partially-overlapped stage schedule of
//!   Section 5.4, and the generators for the layout figures (Figures 4–7);
//! * [`kernels`] — the kernel programs (Listings 3 and 4, plus the
//!   Section 7 kernels: local odd-even sort, tree build, in-order
//!   traversal, fixed 16-element bitonic merge) and the copy-back /
//!   initialization kernels required by the GPU restrictions of Section 6.1;
//! * [`merge`] — the `GPUABiMerge` sub-routine (Listing 5): one recursion
//!   level of the sort, executed either with sequential phases
//!   (`O(log² n)` stream operations per level) or with overlapped stages
//!   (`O(log n)` per level, Section 5.4);
//! * [`plan`] — the launch-graph planner: the sort's kernel launches
//!   recorded as an operator DAG over named buffers, partitioned into
//!   stages, cached per problem shape, and executed either eagerly or as
//!   fused worker-pool epochs (see `docs/PLANNER.md`);
//! * [`sort`] — the `GPUABiSort` main routine (Listing 2) plus the
//!   Section 7 optimizations, wrapped in the [`sort::GpuAbiSorter`] API.

pub mod kernels;
pub mod layout_plan;
pub mod merge;
pub mod plan;
pub mod sort;

pub use plan::{BufferId, BufferRef, Op, PlanBuffers, PlanKey, SortPlan};
pub use sort::{GpuAbiSorter, SegmentedRun, SortRun, TopKRun};
