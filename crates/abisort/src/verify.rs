//! Correctness checkers used by tests, property tests and the benchmark
//! harness.
//!
//! Every sorter in this repository is validated with the same two
//! predicates — the output must be *sorted* under the total order of
//! [`Value`] and must be a *permutation* of the input — plus the
//! bitonic-specific invariants ([`is_bitonic`], [`count_direction_changes`])
//! that the merge algorithms rely on.

use stream_arch::Value;

/// True if `values` is sorted ascending under the total order
/// (key, then id).
pub fn is_sorted(values: &[Value]) -> bool {
    values.windows(2).all(|w| w[0] <= w[1])
}

/// True if `values` is sorted descending under the total order.
pub fn is_sorted_descending(values: &[Value]) -> bool {
    values.windows(2).all(|w| w[0] >= w[1])
}

/// True if `a` is a permutation of `b` (same multiset of (key, id) pairs).
pub fn is_permutation(a: &[Value], b: &[Value]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let canon = |v: &[Value]| {
        let mut keys: Vec<(u32, u32)> = v.iter().map(|x| (x.key.to_bits(), x.id)).collect();
        keys.sort_unstable();
        keys
    };
    canon(a) == canon(b)
}

/// Number of *direction changes* in the circular sequence: positions `i`
/// (taken cyclically) where the comparison sign of `(a[i], a[i+1])` differs
/// from the sign at the previous non-equal comparison.
///
/// A sequence of distinct elements is bitonic — i.e. some rotation of it is
/// ascending-then-descending (Section 4.1) — if and only if the circular
/// sequence has at most two direction changes.
pub fn count_direction_changes(values: &[Value]) -> usize {
    let n = values.len();
    if n < 3 {
        return 0;
    }
    // Signs of all n circular comparisons, equal pairs skipped.
    let signs: Vec<i8> = (0..n)
        .filter_map(|i| match values[i].total_cmp(&values[(i + 1) % n]) {
            std::cmp::Ordering::Less => Some(-1i8),
            std::cmp::Ordering::Greater => Some(1),
            std::cmp::Ordering::Equal => None,
        })
        .collect();
    if signs.is_empty() {
        return 0;
    }
    (0..signs.len())
        .filter(|&i| signs[i] != signs[(i + 1) % signs.len()])
        .count()
}

/// True if the sequence is bitonic in the paper's sense: after some
/// rotation it is monotonically increasing then monotonically decreasing
/// (either part may be empty). Assumes distinct elements.
pub fn is_bitonic(values: &[Value]) -> bool {
    count_direction_changes(values) <= 2
}

/// Assert (returning a descriptive error string) that `output` is the
/// ascending sort of `input`. Used by the harness to fail loudly.
pub fn check_sorts(input: &[Value], output: &[Value]) -> Result<(), String> {
    if !is_sorted(output) {
        let bad = output
            .windows(2)
            .position(|w| w[0] > w[1])
            .unwrap_or_default();
        return Err(format!(
            "output is not sorted: positions {bad} and {} are out of order ({} > {})",
            bad + 1,
            output[bad],
            output[bad + 1]
        ));
    }
    if !is_permutation(input, output) {
        return Err("output is not a permutation of the input".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(keys: &[f32]) -> Vec<Value> {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| Value::new(k, i as u32))
            .collect()
    }

    #[test]
    fn sortedness_checks() {
        assert!(is_sorted(&vals(&[1.0, 2.0, 3.0])));
        assert!(!is_sorted(&vals(&[1.0, 3.0, 2.0])));
        assert!(is_sorted_descending(&vals(&[3.0, 2.0, 1.0])));
        assert!(is_sorted(&[]));
        assert!(is_sorted(&vals(&[1.0])));
        // Equal keys: ascending ids keep it sorted.
        assert!(is_sorted(&vals(&[1.0, 1.0])));
    }

    #[test]
    fn permutation_checks() {
        let a = vals(&[1.0, 2.0, 3.0]);
        let mut b = a.clone();
        b.reverse();
        assert!(is_permutation(&a, &b));
        assert!(!is_permutation(&a, &vals(&[1.0, 2.0])));
        // Same keys but different ids is not a permutation.
        let c = vec![Value::new(1.0, 9), Value::new(2.0, 1), Value::new(3.0, 2)];
        assert!(!is_permutation(&a, &c));
    }

    #[test]
    fn bitonic_checks() {
        assert!(is_bitonic(&vals(&[1.0, 3.0, 4.0, 2.0]))); // up then down
        assert!(is_bitonic(&vals(&[4.0, 2.0, 1.0, 3.0]))); // down then up (rotation)
        assert!(is_bitonic(&vals(&[1.0, 2.0, 3.0, 4.0]))); // monotonic
        assert!(is_bitonic(&vals(&[4.0, 3.0, 2.0, 1.0])));
        assert!(!is_bitonic(&vals(&[1.0, 3.0, 2.0, 4.0, 0.0, 5.0])));
        // The paper's Figure 1 example sequence is bitonic.
        let fig1 = vals(&[
            0.0, 2.0, 3.0, 5.0, 7.0, 10.0, 11.0, 13.0, 15.0, 14.0, 12.0, 9.0, 8.0, 6.0, 4.0, 1.0,
        ]);
        assert!(is_bitonic(&fig1));
    }

    #[test]
    fn direction_change_counts() {
        // The count is circular: a monotonic run changes direction twice
        // around the wrap, a zig-zag four times.
        assert_eq!(count_direction_changes(&vals(&[1.0, 2.0, 3.0])), 2);
        assert_eq!(count_direction_changes(&vals(&[1.0, 3.0, 2.0])), 2);
        assert_eq!(count_direction_changes(&vals(&[1.0, 3.0, 2.0, 4.0])), 4);
        assert_eq!(count_direction_changes(&vals(&[1.0, 2.0])), 0);
        // Truly identical elements (same key and id) produce no signs at all.
        let same = vec![Value::new(2.0, 5); 3];
        assert_eq!(count_direction_changes(&same), 0);
    }

    #[test]
    fn check_sorts_reports_problems() {
        let input = vals(&[3.0, 1.0, 2.0]);
        let sorted = vals(&[1.0, 2.0, 3.0]); // ids differ from input permutation
        let err = check_sorts(&input, &sorted).unwrap_err();
        assert!(err.contains("permutation"));

        let mut ok: Vec<Value> = input.clone();
        ok.sort();
        assert!(check_sorts(&input, &ok).is_ok());

        let unsorted = input.clone();
        let err = check_sorts(&input, &unsorted).unwrap_err();
        assert!(err.contains("not sorted"));
    }
}
