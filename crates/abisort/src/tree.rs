//! Bitonic trees (Section 4.1 of the paper).
//!
//! A bitonic sequence `a₀ … a_{n−1}` of power-of-two length is stored as a
//! fully balanced binary tree of `n − 1` nodes whose in-order traversal
//! yields `a₀ … a_{n−2}`, plus a separately kept *spare* node holding
//! `a_{n−1}`. The benefit is that a whole subtree (and with it a block of
//! `2^k − 1` consecutive sequence elements) can be exchanged with a single
//! pointer swap — the operation that makes the bitonic merge *adaptive*.
//!
//! [`BitonicTree`] stores the nodes of one or several such trees in a flat
//! array ("instead of real pointers we use indexes", Listing 1). The
//! *in-order storage* convention of Listing 2 is used throughout: the node
//! holding in-order element `i` initially sits at array position `i`, and
//! its children are found at the fixed offsets computed by
//! [`fixed_children`]. After adaptive merges have swapped child pointers the
//! array order no longer matches the in-order order; the logical sequence is
//! recovered by [`BitonicTree::in_order_of`].

use stream_arch::{Node, Value, NULL_INDEX};

/// The fixed child indices of the node at array position `index` in an
/// in-order-stored fully balanced tree (Listing 2):
///
/// ```text
/// left  = i − ((i+1) & !i) / 2
/// right = i + ((i+1) & !i) / 2
/// ```
///
/// `(i+1) & !i` isolates the lowest zero bit of `i`, i.e. `2^t` where `t`
/// is the number of trailing one bits — which is exactly the height of the
/// node above the leaf level, so the children sit `2^{t−1}` positions away.
/// Leaf positions (even `i`) map to themselves; their child indices are
/// never dereferenced.
///
/// The formula is valid for global indices too: adding a power-of-two base
/// offset that is larger than the tree does not change the trailing one
/// bits of the local index.
#[inline]
pub fn fixed_children(index: usize) -> (u32, u32) {
    let i = index as u64;
    let step = ((i + 1) & !i) / 2;
    ((i - step) as u32, (i + step) as u32)
}

/// Position of the root node of the `t`-th block of length `block_len`
/// (both in elements) in an in-order-stored tree.
#[inline]
pub fn block_root_index(t: usize, block_len: usize) -> usize {
    t * block_len + block_len / 2 - 1
}

/// Position of the spare node of the `t`-th block of length `block_len`.
#[inline]
pub fn block_spare_index(t: usize, block_len: usize) -> usize {
    (t + 1) * block_len - 1
}

/// A flat pool of bitonic-tree nodes covering a sequence of power-of-two
/// length `n`: array positions `0 ‥ n−2` form the tree, position `n−1` is
/// the spare node.
#[derive(Clone, Debug)]
pub struct BitonicTree {
    nodes: Vec<Node>,
    len: usize,
}

impl BitonicTree {
    /// Build the in-order-stored tree over `values`
    /// (`values.len()` must be a power of two ≥ 2).
    pub fn from_values(values: &[Value]) -> Self {
        let n = values.len();
        assert!(
            n >= 2 && n.is_power_of_two(),
            "sequence length must be a power of two >= 2"
        );
        let nodes = values
            .iter()
            .enumerate()
            .map(|(i, &value)| {
                if i == n - 1 {
                    Node::leaf(value)
                } else {
                    let (left, right) = fixed_children(i);
                    // Leaves point at themselves under the fixed formula;
                    // mark them with the sentinel instead.
                    if left as usize == i {
                        Node::leaf(value)
                    } else {
                        Node::new(value, left, right)
                    }
                }
            })
            .collect();
        BitonicTree { nodes, len: n }
    }

    /// Sequence length `n` covered by this pool.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the pool is empty (never the case for a constructed tree).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Array position of the root of the whole tree.
    pub fn root_index(&self) -> usize {
        self.len / 2 - 1
    }

    /// Array position of the spare node of the whole tree.
    pub fn spare_index(&self) -> usize {
        self.len - 1
    }

    /// Shared access to the node pool.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Mutable access to the node pool (used by the sequential merge).
    pub fn nodes_mut(&mut self) -> &mut [Node] {
        &mut self.nodes
    }

    /// Value stored at array position `i`.
    pub fn value_at(&self, i: usize) -> Value {
        self.nodes[i].value
    }

    /// The sequence represented by the subtree rooted at `root` followed by
    /// the value of `spare`: an in-order traversal following the (possibly
    /// swapped) child pointers.
    ///
    /// `height` is the number of tree levels below and including `root`
    /// (1 for a single leaf). The subtree then holds `2^height − 1` nodes
    /// and the returned sequence has `2^height` elements.
    pub fn in_order_of(&self, root: usize, spare: usize, height: u32) -> Vec<Value> {
        let mut out = Vec::with_capacity(1 << height);
        self.in_order_rec(root, height, &mut out);
        out.push(self.nodes[spare].value);
        out
    }

    fn in_order_rec(&self, node: usize, height: u32, out: &mut Vec<Value>) {
        let n = &self.nodes[node];
        if height <= 1 {
            out.push(n.value);
            return;
        }
        debug_assert_ne!(n.left, NULL_INDEX, "internal node with sentinel child");
        self.in_order_rec(n.left as usize, height - 1, out);
        out.push(n.value);
        self.in_order_rec(n.right as usize, height - 1, out);
    }

    /// The full sequence represented by the pool: in-order traversal of the
    /// whole tree followed by the spare value.
    pub fn to_sequence(&self) -> Vec<Value> {
        let height = self.len.trailing_zeros();
        self.in_order_of(self.root_index(), self.spare_index(), height)
    }

    /// Check the structural invariant of an in-order-stored pool *before*
    /// any merge has run: node at position `i` has the fixed children.
    pub fn has_fixed_structure(&self) -> bool {
        (0..self.len - 1).all(|i| {
            let (l, r) = fixed_children(i);
            let node = &self.nodes[i];
            if l as usize == i {
                node.left == NULL_INDEX && node.right == NULL_INDEX
            } else {
                node.left == l && node.right == r
            }
        })
    }

    /// Collect the set of array positions reachable from `root` (including
    /// `root`) given the subtree height. Used by tests to verify that
    /// pointer swaps never leak nodes across block boundaries.
    pub fn reachable_from(&self, root: usize, height: u32) -> Vec<usize> {
        let mut out = Vec::with_capacity((1 << height) - 1);
        self.reachable_rec(root, height, &mut out);
        out.sort_unstable();
        out
    }

    fn reachable_rec(&self, node: usize, height: u32, out: &mut Vec<usize>) {
        out.push(node);
        if height <= 1 {
            return;
        }
        let n = &self.nodes[node];
        self.reachable_rec(n.left as usize, height - 1, out);
        self.reachable_rec(n.right as usize, height - 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<Value> {
        (0..n).map(|i| Value::new(i as f32, i as u32)).collect()
    }

    #[test]
    fn fixed_children_formula_matches_known_tree() {
        // For n = 8 (positions 0..6 tree, 7 spare): root 3 has children 1,5;
        // 1 has 0,2; 5 has 4,6; leaves 0,2,4,6 point at themselves.
        assert_eq!(fixed_children(3), (1, 5));
        assert_eq!(fixed_children(1), (0, 2));
        assert_eq!(fixed_children(5), (4, 6));
        assert_eq!(fixed_children(0), (0, 0));
        assert_eq!(fixed_children(2), (2, 2));
        // Larger tree: root of n=16 at 7 has children 3 and 11.
        assert_eq!(fixed_children(7), (3, 11));
        assert_eq!(fixed_children(11), (9, 13));
    }

    #[test]
    fn fixed_children_valid_with_power_of_two_base_offset() {
        // The same structure must hold when indices are offset by n
        // (Listing 2 initialises the second half of the node stream).
        let n = 16usize;
        for local in 0..n - 1 {
            let (l, r) = fixed_children(local);
            let (gl, gr) = fixed_children(n + local);
            if l as usize == local {
                assert_eq!(gl as usize, n + local);
                assert_eq!(gr as usize, n + local);
            } else {
                assert_eq!(gl as usize, n + l as usize);
                assert_eq!(gr as usize, n + r as usize);
            }
        }
    }

    #[test]
    fn block_root_and_spare_positions() {
        // Level j=1 blocks of length 2: roots 0,2,4,..., spares 1,3,5,...
        assert_eq!(block_root_index(0, 2), 0);
        assert_eq!(block_spare_index(0, 2), 1);
        assert_eq!(block_root_index(3, 2), 6);
        // Level j=2 blocks of length 4: roots 1,5,..., spares 3,7,...
        assert_eq!(block_root_index(0, 4), 1);
        assert_eq!(block_spare_index(0, 4), 3);
        assert_eq!(block_root_index(1, 4), 5);
        assert_eq!(block_spare_index(1, 4), 7);
        // Whole tree of 16: root 7, spare 15.
        assert_eq!(block_root_index(0, 16), 7);
        assert_eq!(block_spare_index(0, 16), 15);
    }

    #[test]
    fn tree_from_values_has_in_order_traversal_equal_to_input() {
        for log_n in 1..=8u32 {
            let n = 1usize << log_n;
            let values = seq(n);
            let tree = BitonicTree::from_values(&values);
            assert_eq!(tree.len(), n);
            assert!(!tree.is_empty());
            assert!(tree.has_fixed_structure());
            assert_eq!(tree.to_sequence(), values, "n={n}");
        }
    }

    #[test]
    fn subtree_traversal_covers_blocks() {
        let n = 16usize;
        let tree = BitonicTree::from_values(&seq(n));
        // Level j=2: block 1 covers elements 4..8.
        let sub = tree.in_order_of(block_root_index(1, 4), block_spare_index(1, 4), 2);
        assert_eq!(sub, seq(16)[4..8].to_vec());
        // Level j=3: block 0 covers elements 0..8.
        let sub = tree.in_order_of(block_root_index(0, 8), block_spare_index(0, 8), 3);
        assert_eq!(sub, seq(16)[0..8].to_vec());
    }

    #[test]
    fn reachable_sets_are_the_block_positions() {
        let n = 32usize;
        let tree = BitonicTree::from_values(&seq(n));
        for j in 1..=5u32 {
            let block = 1usize << j;
            for t in 0..n / block {
                let root = block_root_index(t, block);
                let reach = tree.reachable_from(root, j);
                let expected: Vec<usize> = (t * block..(t + 1) * block - 1).collect();
                assert_eq!(reach, expected, "j={j} t={t}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = BitonicTree::from_values(&seq(6));
    }

    #[test]
    fn value_at_reads_array_position() {
        let tree = BitonicTree::from_values(&seq(8));
        assert_eq!(tree.value_at(5), Value::new(5.0, 5));
        assert_eq!(tree.root_index(), 3);
        assert_eq!(tree.spare_index(), 7);
        assert_eq!(tree.nodes().len(), 8);
    }
}
