//! Configuration of the GPU-ABiSort stream implementation.
//!
//! The knobs correspond to the design alternatives the paper evaluates or
//! describes:
//!
//! * **layout** — row-wise (Section 6.2.1) vs Z-order (Section 6.2.2)
//!   1D→2D mapping; the a/b split of Table 2;
//! * **overlapped steps** — sequential phase execution (`O(log³ n)` stream
//!   operations, Section 5.3 / Appendix A) vs partially overlapped stages
//!   (`O(log² n)` stream operations, Section 5.4);
//! * **local sort optimization** — replace recursion levels 1–3 with an
//!   8-element odd-even transition sort kernel plus a tree-build kernel
//!   (Section 7.1);
//! * **fixed merge optimization** — replace the last 4 stages of every
//!   merge with a non-adaptive 16-element bitonic merge (Section 7.2);
//! * **transfer accounting** — include the host↔GPU transfer of Section 8
//!   in the simulated time.

use serde::{Deserialize, Serialize};
use stream_arch::Layout;

/// Which 1D→2D stream layout to use (Section 6.2).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayoutChoice {
    /// Row-wise mapping with the given power-of-two row width
    /// (GPU-ABiSort variant (a) of Table 2).
    RowWise {
        /// Row width in elements (power of two; the paper's GPUs allow up
        /// to 2048 or 4096).
        width: u32,
    },
    /// Z-order / Morton mapping (variant (b) of Table 2, the default).
    #[default]
    ZOrder,
}

impl LayoutChoice {
    /// Convert to the stream-arch layout type.
    pub fn to_layout(self) -> Layout {
        match self {
            LayoutChoice::RowWise { width } => Layout::RowMajor { width },
            LayoutChoice::ZOrder => Layout::ZOrder,
        }
    }

    /// Name used in reports ("row-wise" / "z-order").
    pub fn name(&self) -> &'static str {
        match self {
            LayoutChoice::RowWise { .. } => "row-wise",
            LayoutChoice::ZOrder => "z-order",
        }
    }
}

/// Configuration of a GPU-ABiSort run.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SortConfig {
    /// 1D→2D stream layout.
    pub layout: LayoutChoice,
    /// Execute the merge stages partially overlapped (Section 5.4),
    /// reducing the number of stream operations per recursion level from
    /// `O(log² n)` to `O(log n)`.
    pub overlapped_steps: bool,
    /// Replace recursion levels 1–3 by the local odd-even sort of
    /// Section 7.1.
    pub local_sort_optimization: bool,
    /// Replace the last 4 stages of every merge by the fixed 16-element
    /// bitonic merge of Section 7.2.
    pub fixed_merge_optimization: bool,
    /// Charge the host↔device transfer of the input and output arrays
    /// (Section 8). Off by default, matching the paper's main timings
    /// ("the timings of the GPU approaches assume that the input data is
    /// given in GPU memory").
    pub include_transfer: bool,
}

impl Default for SortConfig {
    /// The configuration the paper's headline numbers use: Z-order layout,
    /// overlapped stages, both Section-7 optimizations, no transfer.
    fn default() -> Self {
        SortConfig {
            layout: LayoutChoice::ZOrder,
            overlapped_steps: true,
            local_sort_optimization: true,
            fixed_merge_optimization: true,
            include_transfer: false,
        }
    }
}

impl SortConfig {
    /// The paper's GPU-ABiSort variant (a): row-wise layout, everything
    /// else as in the default configuration.
    pub fn row_wise(width: u32) -> Self {
        SortConfig {
            layout: LayoutChoice::RowWise { width },
            ..SortConfig::default()
        }
    }

    /// The paper's GPU-ABiSort variant (b): Z-order layout (same as
    /// `default`).
    pub fn z_order() -> Self {
        SortConfig::default()
    }

    /// The unoptimized baseline of Appendix A: sequential phase execution,
    /// no small-input optimizations. Used by the stream-operation-count and
    /// ablation experiments.
    pub fn unoptimized() -> Self {
        SortConfig {
            layout: LayoutChoice::ZOrder,
            overlapped_steps: false,
            local_sort_optimization: false,
            fixed_merge_optimization: false,
            include_transfer: false,
        }
    }

    /// Builder-style: set the layout.
    pub fn with_layout(mut self, layout: LayoutChoice) -> Self {
        self.layout = layout;
        self
    }

    /// Builder-style: enable/disable overlapped stage execution.
    pub fn with_overlapped_steps(mut self, enabled: bool) -> Self {
        self.overlapped_steps = enabled;
        self
    }

    /// Builder-style: enable/disable the Section 7.1 local sort.
    pub fn with_local_sort(mut self, enabled: bool) -> Self {
        self.local_sort_optimization = enabled;
        self
    }

    /// Builder-style: enable/disable the Section 7.2 fixed merge.
    pub fn with_fixed_merge(mut self, enabled: bool) -> Self {
        self.fixed_merge_optimization = enabled;
        self
    }

    /// Builder-style: include host↔device transfer in the cost.
    pub fn with_transfer(mut self, enabled: bool) -> Self {
        self.include_transfer = enabled;
        self
    }

    /// Short human-readable description for reports.
    pub fn describe(&self) -> String {
        format!(
            "{}{}{}{}",
            self.layout.name(),
            if self.overlapped_steps {
                ", overlapped"
            } else {
                ", sequential-phases"
            },
            if self.local_sort_optimization {
                ", local-sort"
            } else {
                ""
            },
            if self.fixed_merge_optimization {
                ", fixed-merge"
            } else {
                ""
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_headline_configuration() {
        let c = SortConfig::default();
        assert_eq!(c.layout, LayoutChoice::ZOrder);
        assert!(c.overlapped_steps);
        assert!(c.local_sort_optimization);
        assert!(c.fixed_merge_optimization);
        assert!(!c.include_transfer);
    }

    #[test]
    fn builders_compose() {
        let c = SortConfig::unoptimized()
            .with_layout(LayoutChoice::RowWise { width: 1024 })
            .with_overlapped_steps(true)
            .with_local_sort(true)
            .with_fixed_merge(false)
            .with_transfer(true);
        assert_eq!(c.layout, LayoutChoice::RowWise { width: 1024 });
        assert!(c.overlapped_steps);
        assert!(c.local_sort_optimization);
        assert!(!c.fixed_merge_optimization);
        assert!(c.include_transfer);
    }

    #[test]
    fn layout_choice_maps_to_stream_arch_layout() {
        assert_eq!(LayoutChoice::ZOrder.to_layout(), Layout::ZOrder);
        assert_eq!(
            LayoutChoice::RowWise { width: 256 }.to_layout(),
            Layout::RowMajor { width: 256 }
        );
        assert_eq!(LayoutChoice::ZOrder.name(), "z-order");
        assert_eq!(LayoutChoice::RowWise { width: 2 }.name(), "row-wise");
    }

    #[test]
    fn describe_mentions_the_active_options() {
        let d = SortConfig::default().describe();
        assert!(d.contains("z-order"));
        assert!(d.contains("overlapped"));
        assert!(d.contains("local-sort"));
        let u = SortConfig::unoptimized().describe();
        assert!(u.contains("sequential-phases"));
        assert!(!u.contains("local-sort"));
    }
}
