//! # abisort — adaptive bitonic sorting, sequential and on stream architectures
//!
//! This crate is the core contribution of the reproduced paper
//! (Greß & Zachmann, *GPU-ABiSort: Optimal Parallel Sorting on Stream
//! Architectures*, IPDPS 2006):
//!
//! * [`sequential`] — the classic and simplified adaptive bitonic merge and
//!   the sequential `O(n log n)` sort (Section 4), used as reference and
//!   for the operation-count experiments;
//! * [`tree`] — bitonic trees stored as flat node pools (Listing 1/2);
//! * [`stream_sort`] — **GPU-ABiSort** itself: the sort expressed as a
//!   stream program over the [`stream_arch`] simulator, with the Table-1
//!   output-stream layout, the overlapped-stage `O(log² n)` schedule
//!   (Section 5.4), the 2D layouts of Section 6.2 and the small-input
//!   optimizations of Section 7;
//! * [`config`] — the configuration knobs (layout, overlapping,
//!   optimizations) used by the experiments and ablations;
//! * [`verify`] — sortedness / permutation / bitonicity checkers.
//!
//! ## Quick start
//!
//! ```
//! use abisort::{GpuAbiSorter, SortConfig};
//! use stream_arch::{GpuProfile, StreamProcessor, Value};
//!
//! let input: Vec<Value> = (0..1024u32)
//!     .rev()
//!     .map(|i| Value::new(i as f32, i))
//!     .collect();
//!
//! let mut processor = StreamProcessor::new(GpuProfile::geforce_7800());
//! let sorter = GpuAbiSorter::new(SortConfig::default());
//! let sorted = sorter.sort(&mut processor, &input).unwrap();
//!
//! assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod sequential;
pub mod stream_sort;
pub mod tree;
pub mod verify;

pub use config::{LayoutChoice, SortConfig};
pub use sequential::{adaptive_bitonic_merge, adaptive_bitonic_sort, MergeVariant, SortStats};
pub use stream_sort::sort::{GpuAbiSorter, SegmentedRun, SortRun, TopKRun};
pub use tree::BitonicTree;
