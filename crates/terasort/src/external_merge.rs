//! The CPU multi-way merge of the sorted runs (the out-of-core phase of the
//! hybrid pipeline).
//!
//! Runs are read in pages through the simulated disk, merged with a binary
//! min-heap over the run heads (full-key comparisons, counted explicitly),
//! and the merged output is written out in pages. This is the stage
//! GPUTeraSort keeps on the CPU — it is bandwidth-bound, and its cost is
//! what makes the run size / number-of-runs trade-off interesting.

use crate::disk::{DiskStats, FileId, SimulatedDisk};
use crate::record::WideRecord;
use baselines::CpuSortModel;

/// Configuration of the external merge.
#[derive(Copy, Clone, Debug)]
pub struct MergeConfig {
    /// Records read from each run per request (the per-run input buffer).
    pub page_records: usize,
    /// Records buffered before one output write request.
    pub output_page_records: usize,
    /// CPU cost model used to convert comparisons/moves into time.
    pub cpu_model: CpuSortModel,
}

impl Default for MergeConfig {
    fn default() -> Self {
        MergeConfig {
            page_records: 4096,
            output_page_records: 8192,
            cpu_model: CpuSortModel::athlon_64_4200(),
        }
    }
}

/// Cost breakdown of one external merge.
#[derive(Copy, Clone, Debug, Default)]
pub struct MergeStats {
    /// Records written to the output file.
    pub output_records: usize,
    /// Number of input runs merged.
    pub runs: usize,
    /// Full-key comparisons performed by the merge heap.
    pub comparisons: u64,
    /// Modelled CPU time of the merge in milliseconds.
    pub cpu_time_ms: f64,
    /// Disk traffic of this phase.
    pub io: DiskStats,
}

/// One run being consumed: its file, read position and in-memory page.
struct RunCursor {
    file: FileId,
    next_offset: usize,
    page: Vec<WideRecord>,
    page_pos: usize,
}

impl RunCursor {
    fn refill(&mut self, disk: &mut SimulatedDisk, page_records: usize) {
        self.page = disk.read(self.file, self.next_offset, page_records);
        self.next_offset += self.page.len();
        self.page_pos = 0;
    }

    fn head(&self) -> Option<WideRecord> {
        self.page.get(self.page_pos).copied()
    }

    fn advance(&mut self, disk: &mut SimulatedDisk, page_records: usize) {
        self.page_pos += 1;
        if self.page_pos >= self.page.len() {
            self.refill(disk, page_records);
        }
    }
}

/// A binary min-heap of `(record, run index)` entries with explicit
/// comparison counting (std's `BinaryHeap` hides the comparison count).
struct CountingHeap {
    entries: Vec<(WideRecord, usize)>,
    comparisons: u64,
}

impl CountingHeap {
    fn new() -> Self {
        CountingHeap {
            entries: Vec::new(),
            comparisons: 0,
        }
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn less(&mut self, a: usize, b: usize) -> bool {
        self.comparisons += 1;
        self.entries[a].0.full_cmp(&self.entries[b].0) == std::cmp::Ordering::Less
    }

    fn push(&mut self, entry: (WideRecord, usize)) {
        self.entries.push(entry);
        let mut child = self.entries.len() - 1;
        while child > 0 {
            let parent = (child - 1) / 2;
            if self.less(child, parent) {
                self.entries.swap(child, parent);
                child = parent;
            } else {
                break;
            }
        }
    }

    fn pop(&mut self) -> Option<(WideRecord, usize)> {
        if self.entries.is_empty() {
            return None;
        }
        let last = self.entries.len() - 1;
        self.entries.swap(0, last);
        let top = self.entries.pop();
        let mut parent = 0usize;
        loop {
            let left = 2 * parent + 1;
            let right = 2 * parent + 2;
            if left >= self.entries.len() {
                break;
            }
            let smaller = if right < self.entries.len() && self.less(right, left) {
                right
            } else {
                left
            };
            if self.less(smaller, parent) {
                self.entries.swap(smaller, parent);
                parent = smaller;
            } else {
                break;
            }
        }
        top
    }
}

/// Merge the sorted `runs` into `output`, returning the phase statistics.
pub fn merge_runs(
    disk: &mut SimulatedDisk,
    runs: &[FileId],
    output: FileId,
    config: &MergeConfig,
) -> MergeStats {
    assert!(config.page_records > 0 && config.output_page_records > 0);
    let io_before = disk.stats();
    let mut stats = MergeStats {
        runs: runs.len(),
        ..MergeStats::default()
    };

    let mut cursors: Vec<RunCursor> = runs
        .iter()
        .map(|&file| {
            let mut cursor = RunCursor {
                file,
                next_offset: 0,
                page: Vec::new(),
                page_pos: 0,
            };
            cursor.refill(disk, config.page_records);
            cursor
        })
        .collect();

    let mut heap = CountingHeap::new();
    for (i, cursor) in cursors.iter().enumerate() {
        if let Some(record) = cursor.head() {
            heap.push((record, i));
        }
    }

    let mut out_buffer: Vec<WideRecord> = Vec::with_capacity(config.output_page_records);
    while let Some((record, run_index)) = heap.pop() {
        out_buffer.push(record);
        stats.output_records += 1;
        if out_buffer.len() >= config.output_page_records {
            disk.append(output, &out_buffer);
            out_buffer.clear();
        }
        cursors[run_index].advance(disk, config.page_records);
        if let Some(next) = cursors[run_index].head() {
            heap.push((next, run_index));
        }
    }
    if !out_buffer.is_empty() {
        disk.append(output, &out_buffer);
    }

    stats.comparisons = heap.comparisons;
    // Each output record costs its heap comparisons plus one move through
    // the output buffer.
    stats.cpu_time_ms = (heap.comparisons as f64 * config.cpu_model.ns_per_comparison
        + stats.output_records as f64 * config.cpu_model.ns_per_move)
        / 1e6;
    stats.io = disk.stats().since(&io_before);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskProfile;
    use crate::record;

    /// Split `records` into `k` sorted runs written to disk.
    fn write_runs(disk: &mut SimulatedDisk, records: &[WideRecord], k: usize) -> Vec<FileId> {
        let per_run = records.len().div_ceil(k);
        records
            .chunks(per_run)
            .enumerate()
            .map(|(i, chunk)| {
                let mut sorted = chunk.to_vec();
                sorted.sort();
                let file = disk.create(&format!("run-{i}"));
                disk.append(file, &sorted);
                file
            })
            .collect()
    }

    #[test]
    fn merges_runs_into_a_fully_sorted_output() {
        let mut disk = SimulatedDisk::new(DiskProfile::raid_2006());
        let records = record::generate(10_000, 1);
        let runs = write_runs(&mut disk, &records, 7);
        let output = disk.create("output");
        let stats = merge_runs(&mut disk, &runs, output, &MergeConfig::default());
        let merged = disk.read_all(output);
        assert_eq!(stats.output_records, 10_000);
        assert_eq!(stats.runs, 7);
        assert!(record::is_sorted(&merged));
        assert!(record::is_permutation(&records, &merged));
    }

    #[test]
    fn single_run_passes_through_with_zero_comparisons() {
        let mut disk = SimulatedDisk::new(DiskProfile::ideal());
        let records = record::generate(500, 2);
        let runs = write_runs(&mut disk, &records, 1);
        let output = disk.create("output");
        let stats = merge_runs(&mut disk, &runs, output, &MergeConfig::default());
        assert_eq!(stats.comparisons, 0);
        assert!(record::is_sorted(&disk.read_all(output)));
    }

    #[test]
    fn comparison_count_is_about_n_log_k() {
        let mut disk = SimulatedDisk::new(DiskProfile::ideal());
        let n = 8192usize;
        let k = 16usize;
        let records = record::generate(n, 3);
        let runs = write_runs(&mut disk, &records, k);
        let output = disk.create("output");
        let stats = merge_runs(&mut disk, &runs, output, &MergeConfig::default());
        let n_log_k = (n as f64) * (k as f64).log2();
        assert!(
            stats.comparisons as f64 > 0.5 * n_log_k,
            "{}",
            stats.comparisons
        );
        assert!(
            stats.comparisons as f64 <= 2.5 * n_log_k,
            "{}",
            stats.comparisons
        );
    }

    #[test]
    fn paging_bounds_the_request_sizes_and_covers_all_data() {
        let mut disk = SimulatedDisk::new(DiskProfile::hdd_2006());
        let records = record::generate(4000, 4);
        let runs = write_runs(&mut disk, &records, 4);
        let output = disk.create("output");
        let before = disk.stats();
        let config = MergeConfig {
            page_records: 256,
            output_page_records: 512,
            ..Default::default()
        };
        let stats = merge_runs(&mut disk, &runs, output, &config);
        assert!(record::is_sorted(&disk.read_all(output)));
        // 4000 records in pages of ≤256 per run read, ≤512 per write.
        let delta = disk.stats().since(&before);
        assert!(stats.io.read_requests >= 16);
        assert_eq!(stats.io.bytes_read, 4000 * crate::record::RECORD_BYTES);
        assert_eq!(stats.io.bytes_written, 4000 * crate::record::RECORD_BYTES);
        // `since` in the assertion above already subtracted the final read;
        // sanity-check that the phase accounting matches the disk's delta
        // minus that verification read.
        assert!(delta.bytes_read >= stats.io.bytes_read);
    }

    #[test]
    fn merge_of_empty_run_list_produces_empty_output() {
        let mut disk = SimulatedDisk::new(DiskProfile::ideal());
        let output = disk.create("output");
        let stats = merge_runs(&mut disk, &[], output, &MergeConfig::default());
        assert_eq!(stats.output_records, 0);
        assert!(disk.is_empty(output));
    }

    #[test]
    fn counting_heap_pops_in_sorted_order() {
        let mut heap = CountingHeap::new();
        let records = record::generate(200, 9);
        for (i, r) in records.iter().enumerate() {
            heap.push((*r, i));
        }
        assert_eq!(heap.len(), 200);
        let mut popped = Vec::new();
        while let Some((r, _)) = heap.pop() {
            popped.push(r);
        }
        assert!(record::is_sorted(&popped));
        assert!(heap.comparisons > 0);
    }

    #[test]
    fn heavily_duplicated_keys_still_merge_correctly() {
        let mut disk = SimulatedDisk::new(DiskProfile::ideal());
        let records = record::generate_skewed(2000, 2, 5);
        let runs = write_runs(&mut disk, &records, 5);
        let output = disk.create("output");
        merge_runs(&mut disk, &runs, output, &MergeConfig::default());
        let merged = disk.read_all(output);
        assert!(record::is_sorted(&merged));
        assert!(record::is_permutation(&records, &merged));
    }
}
