//! A simulated disk with a seek + bandwidth cost model.
//!
//! GPUTeraSort reads and writes the database through dedicated reader and
//! writer stages using DMA; the cost that matters for the pipeline shape is
//! sequential bandwidth plus a per-request positioning overhead. This
//! module models exactly that: every request charges one seek plus
//! `bytes / bandwidth`, and the record contents are simply kept in host
//! memory (the substitution for real storage is recorded in DESIGN.md).

use crate::record::{WideRecord, RECORD_BYTES};
use serde::{Deserialize, Serialize};

/// Performance profile of the simulated storage.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiskProfile {
    /// Average positioning (seek + rotational) overhead per request, in ms.
    pub seek_ms: f64,
    /// Sequential bandwidth in MB/s.
    pub bandwidth_mb_s: f64,
}

impl DiskProfile {
    /// A single 2006-era SATA/SCSI disk: ~8 ms positioning, ~60 MB/s
    /// sequential bandwidth.
    pub fn hdd_2006() -> Self {
        DiskProfile {
            seek_ms: 8.0,
            bandwidth_mb_s: 60.0,
        }
    }

    /// A small RAID array of the kind the GPUTeraSort experiments used:
    /// same positioning overhead, ~200 MB/s aggregate bandwidth.
    pub fn raid_2006() -> Self {
        DiskProfile {
            seek_ms: 8.0,
            bandwidth_mb_s: 200.0,
        }
    }

    /// An idealized zero-latency, effectively infinite-bandwidth store, for
    /// isolating the compute part of the pipeline in experiments.
    pub fn ideal() -> Self {
        DiskProfile {
            seek_ms: 0.0,
            bandwidth_mb_s: f64::INFINITY,
        }
    }

    /// Time in milliseconds to transfer `bytes` in one request.
    pub fn request_ms(&self, bytes: u64) -> f64 {
        self.seek_ms + bytes as f64 / (self.bandwidth_mb_s * 1_000_000.0) * 1_000.0
    }
}

/// Accumulated I/O statistics of a [`SimulatedDisk`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DiskStats {
    /// Number of read requests.
    pub read_requests: u64,
    /// Number of write requests.
    pub write_requests: u64,
    /// Bytes read (at the on-disk record size).
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Total simulated I/O time in milliseconds.
    pub io_time_ms: f64,
}

impl DiskStats {
    /// Difference `self − earlier`, for measuring a phase.
    pub fn since(&self, earlier: &DiskStats) -> DiskStats {
        DiskStats {
            read_requests: self.read_requests - earlier.read_requests,
            write_requests: self.write_requests - earlier.write_requests,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            io_time_ms: self.io_time_ms - earlier.io_time_ms,
        }
    }
}

/// Handle to a file on the simulated disk.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct FileId(usize);

struct DiskFile {
    name: String,
    records: Vec<WideRecord>,
}

/// The simulated disk: named files of [`WideRecord`]s plus the cost model.
pub struct SimulatedDisk {
    profile: DiskProfile,
    files: Vec<DiskFile>,
    stats: DiskStats,
}

impl SimulatedDisk {
    /// Create an empty disk with the given performance profile.
    pub fn new(profile: DiskProfile) -> Self {
        SimulatedDisk {
            profile,
            files: Vec::new(),
            stats: DiskStats::default(),
        }
    }

    /// The disk's performance profile.
    pub fn profile(&self) -> DiskProfile {
        self.profile
    }

    /// Create an empty file and return its handle.
    pub fn create(&mut self, name: &str) -> FileId {
        self.files.push(DiskFile {
            name: name.to_string(),
            records: Vec::new(),
        });
        FileId(self.files.len() - 1)
    }

    /// Name the file was created with.
    pub fn name(&self, file: FileId) -> &str {
        &self.files[file.0].name
    }

    /// Number of records currently in `file`.
    pub fn len(&self, file: FileId) -> usize {
        self.files[file.0].records.len()
    }

    /// True if `file` holds no records.
    pub fn is_empty(&self, file: FileId) -> bool {
        self.len(file) == 0
    }

    /// Append `records` to `file` as one sequential write request.
    pub fn append(&mut self, file: FileId, records: &[WideRecord]) {
        if records.is_empty() {
            return;
        }
        let bytes = records.len() as u64 * RECORD_BYTES;
        self.stats.write_requests += 1;
        self.stats.bytes_written += bytes;
        self.stats.io_time_ms += self.profile.request_ms(bytes);
        self.files[file.0].records.extend_from_slice(records);
    }

    /// Read `len` records starting at `offset` as one request (clamped to
    /// the end of the file).
    pub fn read(&mut self, file: FileId, offset: usize, len: usize) -> Vec<WideRecord> {
        let records = &self.files[file.0].records;
        let end = (offset + len).min(records.len());
        let slice = &records[offset.min(records.len())..end];
        if !slice.is_empty() {
            let bytes = slice.len() as u64 * RECORD_BYTES;
            self.stats.read_requests += 1;
            self.stats.bytes_read += bytes;
            self.stats.io_time_ms += self.profile.request_ms(bytes);
        }
        slice.to_vec()
    }

    /// Read the whole file as one request.
    pub fn read_all(&mut self, file: FileId) -> Vec<WideRecord> {
        let len = self.len(file);
        self.read(file, 0, len)
    }

    /// Accumulated I/O statistics.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Reset the statistics (file contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = DiskStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;

    #[test]
    fn request_time_is_seek_plus_transfer() {
        let p = DiskProfile {
            seek_ms: 5.0,
            bandwidth_mb_s: 100.0,
        };
        // 10 MB at 100 MB/s = 100 ms, plus 5 ms seek.
        assert!((p.request_ms(10_000_000) - 105.0).abs() < 1e-9);
        assert_eq!(DiskProfile::ideal().request_ms(1 << 30), 0.0);
    }

    #[test]
    fn profiles_are_ordered_by_speed() {
        let hdd = DiskProfile::hdd_2006();
        let raid = DiskProfile::raid_2006();
        let bytes = 100 * 1024 * 1024;
        assert!(raid.request_ms(bytes) < hdd.request_ms(bytes));
    }

    #[test]
    fn append_and_read_round_trip() {
        let mut disk = SimulatedDisk::new(DiskProfile::hdd_2006());
        let file = disk.create("data");
        assert!(disk.is_empty(file));
        let records = record::generate(100, 1);
        disk.append(file, &records[..60]);
        disk.append(file, &records[60..]);
        assert_eq!(disk.len(file), 100);
        assert_eq!(disk.read_all(file), records);
        assert_eq!(disk.read(file, 90, 50).len(), 10);
        assert_eq!(disk.name(file), "data");
    }

    #[test]
    fn stats_account_requests_bytes_and_time() {
        let mut disk = SimulatedDisk::new(DiskProfile::hdd_2006());
        let file = disk.create("data");
        let records = record::generate(1000, 2);
        disk.append(file, &records);
        let _ = disk.read(file, 0, 500);
        let stats = disk.stats();
        assert_eq!(stats.write_requests, 1);
        assert_eq!(stats.read_requests, 1);
        assert_eq!(stats.bytes_written, 1000 * RECORD_BYTES);
        assert_eq!(stats.bytes_read, 500 * RECORD_BYTES);
        assert!(stats.io_time_ms > 0.0);
        let before = stats;
        let _ = disk.read(file, 0, 10);
        let delta = disk.stats().since(&before);
        assert_eq!(delta.read_requests, 1);
        assert_eq!(delta.bytes_read, 10 * RECORD_BYTES);
    }

    #[test]
    fn empty_requests_cost_nothing() {
        let mut disk = SimulatedDisk::new(DiskProfile::hdd_2006());
        let file = disk.create("data");
        disk.append(file, &[]);
        let _ = disk.read(file, 0, 10);
        assert_eq!(disk.stats(), DiskStats::default());
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut disk = SimulatedDisk::new(DiskProfile::raid_2006());
        let file = disk.create("data");
        disk.append(file, &record::generate(10, 3));
        disk.reset_stats();
        assert_eq!(disk.stats(), DiskStats::default());
        assert_eq!(disk.len(file), 10);
    }
}
