//! Checkpointed run manifests: crash recovery for the out-of-core path.
//!
//! The pipeline's natural checkpoint boundaries are the ones GPUTeraSort's
//! phase split defines: *after run formation* (every run is sorted and on
//! disk) and *after the merge* (the output is complete). This module
//! persists a [`Manifest`] at each boundary — run file names, record
//! counts, key ranges and CRC-32 checksums — together with the run/output
//! records themselves, so [`TeraSorter::sort_durable`] can resume at the
//! last completed level instead of re-sorting from scratch (the
//! [`SimulatedDisk`](crate::disk::SimulatedDisk) is in-memory, so the
//! checkpoint directory is the *only* thing that survives a process
//! crash).
//!
//! [`TeraSorter::sort_durable`]: crate::pipeline::TeraSorter::sort_durable
//!
//! ## On-disk layout
//!
//! The checkpoint directory holds one data file per run (`run-0000.dat`,
//! …), the merged output (`output.dat`) once it exists, and the manifest
//! itself. Data files are raw little-endian records, 18 bytes each
//! (10 key bytes + u64 payload handle). The manifest is a line-based text
//! file, written atomically (temp file + rename) and self-checksummed:
//!
//! ```text
//! terasort-manifest v1
//! stage runs|merged
//! records <total>
//! run <file> <records> <key-lo hex20> <key-hi hex20> <crc32 hex8>
//! ...
//! output <file> <records> <key-lo hex20> <key-hi hex20> <crc32 hex8>
//! checksum <crc32 hex8 of every preceding byte>
//! ```
//!
//! A crash mid-checkpoint leaves either the previous manifest (the rename
//! never happened — recovery redoes the interrupted level) or the new one
//! (it did — recovery skips the level). A manifest whose self-checksum or
//! whose data-file checksums do not verify is surfaced as a typed
//! [`ManifestError::Corrupt`], never silently replayed — the same
//! contract as the service WAL (`docs/DURABILITY.md`).

use crate::record::{WideRecord, KEY_BYTES};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod fault;

/// File name of the manifest inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Temp name the atomic manifest write goes through.
pub const MANIFEST_TEMP: &str = "MANIFEST.tmp";

/// Bytes per record in a checkpoint data file (10 key bytes + u64
/// payload handle, little-endian).
pub const DATA_RECORD_LEN: usize = KEY_BYTES + 8;

const HEADER_LINE: &str = "terasort-manifest v1";

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

// IEEE CRC-32, hand-rolled like the service WAL's (no crates.io in this
// build); terasort cannot depend on sortsvc — the dependency runs the
// other way — so the tables live here too. Slice-by-8, because this CRC
// runs over entire run files (megabytes per checkpoint), where the
// byte-at-a-time loop would be a measurable fraction of the sort itself.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
};

/// IEEE CRC-32 of `bytes` — the checksum in manifest lines and over data
/// files.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed failure of a checkpoint operation.
#[derive(Debug)]
pub enum ManifestError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// The manifest or a data file failed verification (bad self-checksum,
    /// bad data CRC, malformed line, missing file).
    Corrupt {
        /// What failed to verify.
        reason: String,
    },
    /// An armed [`fault::FaultPlan`] fired — the simulated crash used by
    /// the recovery tests.
    Injected(fault::FaultPoint),
    /// The underlying sort itself failed (run formation / in-core sort).
    Sort(stream_arch::StreamError),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            ManifestError::Corrupt { reason } => write!(f, "checkpoint corrupt: {reason}"),
            ManifestError::Injected(point) => {
                write!(f, "injected crash fault at {}", point.name())
            }
            ManifestError::Sort(e) => write!(f, "sort failed: {e}"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl From<io::Error> for ManifestError {
    fn from(e: io::Error) -> Self {
        ManifestError::Io(e)
    }
}

impl From<stream_arch::StreamError> for ManifestError {
    fn from(e: stream_arch::StreamError) -> Self {
        ManifestError::Sort(e)
    }
}

fn corrupt(reason: impl Into<String>) -> ManifestError {
    ManifestError::Corrupt {
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------------
// Manifest structure
// ---------------------------------------------------------------------------

/// Which pipeline level the checkpoint completes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Run formation is done: every run is sorted and checkpointed.
    Runs,
    /// The merge is done: the output file is checkpointed.
    Merged,
}

impl Stage {
    fn name(&self) -> &'static str {
        match self {
            Stage::Runs => "runs",
            Stage::Merged => "merged",
        }
    }
}

/// One checkpointed data file: a sorted run, or the merged output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunEntry {
    /// File name, relative to the checkpoint directory.
    pub file: String,
    /// Records in the file.
    pub records: usize,
    /// First (lowest) key in the file; zeros when empty.
    pub key_lo: [u8; KEY_BYTES],
    /// Last (highest) key in the file; zeros when empty.
    pub key_hi: [u8; KEY_BYTES],
    /// CRC-32 over the file's raw bytes.
    pub crc: u32,
}

/// A parsed (or about-to-be-written) checkpoint manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// The last *completed* pipeline level.
    pub stage: Stage,
    /// Total records in the input table.
    pub records: usize,
    /// The checkpointed runs, in formation order.
    pub runs: Vec<RunEntry>,
    /// The checkpointed merge output, once [`Stage::Merged`].
    pub output: Option<RunEntry>,
}

fn hex_key(key: &[u8; KEY_BYTES]) -> String {
    key.iter().map(|b| format!("{b:02x}")).collect()
}

fn parse_key(hex: &str) -> Result<[u8; KEY_BYTES], ManifestError> {
    if hex.len() != KEY_BYTES * 2 {
        return Err(corrupt(format!("key hex length {}", hex.len())));
    }
    let mut key = [0u8; KEY_BYTES];
    for (i, byte) in key.iter_mut().enumerate() {
        *byte = u8::from_str_radix(&hex[2 * i..2 * i + 2], 16)
            .map_err(|_| corrupt(format!("bad key hex {hex:?}")))?;
    }
    Ok(key)
}

fn parse_entry(line: &str, kind: &str) -> Result<RunEntry, ManifestError> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() != 5 {
        return Err(corrupt(format!(
            "{kind} line needs 5 fields, got {}",
            fields.len()
        )));
    }
    Ok(RunEntry {
        file: fields[0].to_string(),
        records: fields[1]
            .parse()
            .map_err(|_| corrupt(format!("bad record count {:?}", fields[1])))?,
        key_lo: parse_key(fields[2])?,
        key_hi: parse_key(fields[3])?,
        crc: u32::from_str_radix(fields[4], 16)
            .map_err(|_| corrupt(format!("bad crc {:?}", fields[4])))?,
    })
}

impl Manifest {
    /// Serialize to the self-checksummed text format.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER_LINE);
        out.push('\n');
        out.push_str(&format!("stage {}\n", self.stage.name()));
        out.push_str(&format!("records {}\n", self.records));
        for entry in &self.runs {
            out.push_str(&format!(
                "run {} {} {} {} {:08x}\n",
                entry.file,
                entry.records,
                hex_key(&entry.key_lo),
                hex_key(&entry.key_hi),
                entry.crc
            ));
        }
        if let Some(entry) = &self.output {
            out.push_str(&format!(
                "output {} {} {} {} {:08x}\n",
                entry.file,
                entry.records,
                hex_key(&entry.key_lo),
                hex_key(&entry.key_hi),
                entry.crc
            ));
        }
        out.push_str(&format!("checksum {:08x}\n", crc32(out.as_bytes())));
        out
    }

    /// Parse and verify the text format (the inverse of
    /// [`Manifest::encode`]). The self-checksum must match and the
    /// structure must be coherent (a `merged` stage needs an `output`
    /// line).
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        let body_end = text
            .rfind("checksum ")
            .ok_or_else(|| corrupt("missing checksum line"))?;
        // The tail must be exactly `checksum <8 hex>\n` — anything looser
        // would let a flip in the trailer itself go unnoticed.
        let claimed = text[body_end..]
            .strip_prefix("checksum ")
            .and_then(|rest| rest.strip_suffix('\n'))
            .filter(|h| h.len() == 8 && !h.contains(|c: char| c.is_whitespace()))
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| corrupt("malformed checksum line"))?;
        let actual = crc32(&text.as_bytes()[..body_end]);
        if claimed != actual {
            return Err(corrupt(format!(
                "self-checksum mismatch ({claimed:08x} recorded, {actual:08x} computed)"
            )));
        }

        let mut lines = text[..body_end].lines();
        if lines.next() != Some(HEADER_LINE) {
            return Err(corrupt("bad header line"));
        }
        let stage = match lines
            .next()
            .and_then(|l| l.strip_prefix("stage "))
            .ok_or_else(|| corrupt("missing stage line"))?
        {
            "runs" => Stage::Runs,
            "merged" => Stage::Merged,
            other => return Err(corrupt(format!("unknown stage {other:?}"))),
        };
        let records = lines
            .next()
            .and_then(|l| l.strip_prefix("records "))
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| corrupt("missing records line"))?;

        let mut runs = Vec::new();
        let mut output = None;
        for line in lines {
            if let Some(rest) = line.strip_prefix("run ") {
                if output.is_some() {
                    return Err(corrupt("run line after output line"));
                }
                runs.push(parse_entry(rest, "run")?);
            } else if let Some(rest) = line.strip_prefix("output ") {
                if output.is_some() {
                    return Err(corrupt("duplicate output line"));
                }
                output = Some(parse_entry(rest, "output")?);
            } else {
                return Err(corrupt(format!("unknown line {line:?}")));
            }
        }
        if stage == Stage::Merged && output.is_none() {
            return Err(corrupt("merged stage without an output line"));
        }
        Ok(Manifest {
            stage,
            records,
            runs,
            output,
        })
    }

    /// Atomically persist into `dir` (temp file + fsync + rename). A
    /// crash anywhere in here leaves either the previous manifest or this
    /// one — never a torn mix.
    pub fn save(&self, dir: &Path) -> Result<(), ManifestError> {
        let temp = dir.join(MANIFEST_TEMP);
        let bytes = self.encode().into_bytes();
        if fault::fire(fault::FaultPoint::TempWrite) {
            // A torn temp-file write: half the bytes, then the "crash".
            // Harmless by construction — the rename never happens.
            fs::write(&temp, &bytes[..bytes.len() / 2])?;
            return Err(ManifestError::Injected(fault::FaultPoint::TempWrite));
        }
        fs::write(&temp, &bytes)?;
        fs::File::open(&temp)?.sync_all()?;
        if fault::fire(fault::FaultPoint::Rename) {
            // Crash after the temp file is durable but before it becomes
            // the manifest: recovery still sees the previous level.
            return Err(ManifestError::Injected(fault::FaultPoint::Rename));
        }
        fs::rename(&temp, dir.join(MANIFEST_FILE))?;
        // Make the rename itself durable (directory metadata).
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Load and verify the manifest from `dir`. `Ok(None)` when no
    /// checkpoint exists yet; [`ManifestError::Corrupt`] when one exists
    /// but does not verify.
    pub fn load(dir: &Path) -> Result<Option<Manifest>, ManifestError> {
        let path = dir.join(MANIFEST_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Manifest::parse(&text).map(Some)
    }
}

// ---------------------------------------------------------------------------
// Data files
// ---------------------------------------------------------------------------

/// Checkpoint `records` into `dir/file` (raw 18-byte records) and return
/// its verified [`RunEntry`]. Sorted inputs yield a tight key range; the
/// caller is expected to pass runs/outputs, which are sorted.
pub fn write_records(
    dir: &Path,
    file: &str,
    records: &[WideRecord],
) -> Result<RunEntry, ManifestError> {
    let mut bytes = Vec::with_capacity(records.len() * DATA_RECORD_LEN);
    for r in records {
        bytes.extend_from_slice(&r.key);
        bytes.extend_from_slice(&r.payload.to_le_bytes());
    }
    let path = dir.join(file);
    if fault::fire(fault::FaultPoint::RunData) {
        // Torn data write. The manifest referencing this file has not
        // been written yet, so recovery never trusts the partial file.
        fs::write(&path, &bytes[..bytes.len() / 2])?;
        return Err(ManifestError::Injected(fault::FaultPoint::RunData));
    }
    fs::write(&path, &bytes)?;
    fs::File::open(&path)?.sync_all()?;
    let (key_lo, key_hi) = match (records.first(), records.last()) {
        (Some(first), Some(last)) => (first.key, last.key),
        _ => ([0u8; KEY_BYTES], [0u8; KEY_BYTES]),
    };
    Ok(RunEntry {
        file: file.to_string(),
        records: records.len(),
        key_lo,
        key_hi,
        crc: crc32(&bytes),
    })
}

/// Read and verify the data file `entry` describes (length, CRC). Any
/// mismatch is [`ManifestError::Corrupt`] — a checkpoint is never
/// partially trusted.
pub fn read_records(dir: &Path, entry: &RunEntry) -> Result<Vec<WideRecord>, ManifestError> {
    let path: PathBuf = dir.join(&entry.file);
    let bytes = fs::read(&path)
        .map_err(|e| corrupt(format!("data file {} unreadable: {e}", entry.file)))?;
    if bytes.len() != entry.records * DATA_RECORD_LEN {
        return Err(corrupt(format!(
            "data file {}: {} bytes, expected {}",
            entry.file,
            bytes.len(),
            entry.records * DATA_RECORD_LEN
        )));
    }
    if crc32(&bytes) != entry.crc {
        return Err(corrupt(format!(
            "data file {}: checksum mismatch",
            entry.file
        )));
    }
    Ok(bytes
        .chunks_exact(DATA_RECORD_LEN)
        .map(|c| {
            let mut key = [0u8; KEY_BYTES];
            key.copy_from_slice(&c[..KEY_BYTES]);
            let payload = u64::from_le_bytes(c[KEY_BYTES..].try_into().expect("8 bytes"));
            WideRecord::new(key, payload)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "terasort-manifest-{tag}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            fs::remove_dir_all(&self.0).ok();
        }
    }

    fn sample_manifest() -> Manifest {
        Manifest {
            stage: Stage::Runs,
            records: 100,
            runs: vec![
                RunEntry {
                    file: "run-0000.dat".into(),
                    records: 60,
                    key_lo: [1; KEY_BYTES],
                    key_hi: [9; KEY_BYTES],
                    crc: 0xDEAD_BEEF,
                },
                RunEntry {
                    file: "run-0001.dat".into(),
                    records: 40,
                    key_lo: [0; KEY_BYTES],
                    key_hi: [0xFF; KEY_BYTES],
                    crc: 7,
                },
            ],
            output: None,
        }
    }

    #[test]
    fn manifest_text_round_trips() {
        let m = sample_manifest();
        assert_eq!(Manifest::parse(&m.encode()).unwrap(), m);

        let merged = Manifest {
            stage: Stage::Merged,
            output: Some(RunEntry {
                file: "output.dat".into(),
                records: 100,
                key_lo: [0; KEY_BYTES],
                key_hi: [0xFF; KEY_BYTES],
                crc: 42,
            }),
            ..m
        };
        assert_eq!(Manifest::parse(&merged.encode()).unwrap(), merged);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let text = sample_manifest().encode();
        let bytes = text.as_bytes();
        for i in 0..bytes.len() {
            let mut flipped = bytes.to_vec();
            flipped[i] ^= 0x01;
            // Flipping may break UTF-8; both paths must reject, never
            // accept a modified manifest.
            if let Ok(s) = std::str::from_utf8(&flipped) {
                assert!(Manifest::parse(s).is_err(), "byte {i} flip went undetected");
            }
        }
    }

    #[test]
    fn merged_stage_requires_an_output_line() {
        let mut m = sample_manifest();
        m.stage = Stage::Merged;
        // Encode claims merged but carries no output entry; parse must
        // reject the structure even though the checksum matches.
        assert!(matches!(
            Manifest::parse(&m.encode()),
            Err(ManifestError::Corrupt { .. })
        ));
    }

    #[test]
    fn save_load_round_trips_and_missing_is_none() {
        let tmp = TempDir::new("saveload");
        assert!(Manifest::load(tmp.path()).unwrap().is_none());
        let m = sample_manifest();
        m.save(tmp.path()).unwrap();
        assert_eq!(Manifest::load(tmp.path()).unwrap(), Some(m.clone()));
        // Overwrite with a newer level; load sees the newest.
        let merged = Manifest {
            stage: Stage::Merged,
            output: Some(m.runs[0].clone()),
            ..m
        };
        merged.save(tmp.path()).unwrap();
        assert_eq!(Manifest::load(tmp.path()).unwrap(), Some(merged));
    }

    #[test]
    fn data_files_round_trip_and_verify() {
        let tmp = TempDir::new("data");
        let records = record::generate(500, 3);
        let entry = write_records(tmp.path(), "run-0000.dat", &records).unwrap();
        assert_eq!(entry.records, 500);
        assert_eq!(read_records(tmp.path(), &entry).unwrap(), records);

        // Truncation and bit flips are both typed corruption.
        let path = tmp.path().join(&entry.file);
        let mut bytes = fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 1);
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_records(tmp.path(), &entry),
            Err(ManifestError::Corrupt { .. })
        ));

        let records2 = record::generate(500, 3);
        let entry2 = write_records(tmp.path(), "run-0001.dat", &records2).unwrap();
        let path2 = tmp.path().join(&entry2.file);
        let mut bytes2 = fs::read(&path2).unwrap();
        bytes2[100] ^= 0xFF;
        fs::write(&path2, &bytes2).unwrap();
        assert!(matches!(
            read_records(tmp.path(), &entry2),
            Err(ManifestError::Corrupt { .. })
        ));
    }

    #[test]
    fn empty_record_sets_checkpoint_cleanly() {
        let tmp = TempDir::new("empty");
        let entry = write_records(tmp.path(), "output.dat", &[]).unwrap();
        assert_eq!(entry.records, 0);
        assert_eq!(entry.key_lo, [0u8; KEY_BYTES]);
        assert_eq!(read_records(tmp.path(), &entry).unwrap(), Vec::new());
    }
}
