//! # terasort — hybrid out-of-core sorting on top of GPU-ABiSort
//!
//! Section 2.2 of the reproduced paper describes how Govindaraju et al.
//! embedded GPU-based sorting into a **hybrid CPU/GPU pipeline**
//! (GPUTeraSort) "capable of processing large out-of-core databases and
//! wide sort keys", with a key-generator stage and a reorder stage on the
//! CPU plus reader/writer stages that move data between disk and memory,
//! and notes that "this technique should also be transferable to
//! alternative GPU-based sorting approaches". This crate performs that
//! transfer: the in-core sorting stage is the paper's own GPU-ABiSort
//! (running on the `stream-arch` simulator), wrapped in the out-of-core
//! machinery the database scenario needs.
//!
//! * [`record`] — wide database records (10-byte keys, 100-byte rows, as in
//!   the sort benchmarks GPUTeraSort targets) and their generators;
//! * [`disk`] — a simulated disk with a seek + bandwidth cost model, the
//!   stand-in for the SCSI/RAID storage of the original system;
//! * [`keygen`] — the key-generator stage: wide keys are condensed into the
//!   32-bit partial keys the GPU sorts, plus the CPU *reorder/fix-up* stage
//!   that resolves partial-key ties with full-key comparisons;
//! * [`run_formation`] — reads memory-sized chunks, sorts each with a
//!   configurable in-core sorter (GPU-ABiSort, the GPUSort bitonic network
//!   baseline, or CPU quicksort) and writes sorted runs back to disk;
//! * [`external_merge`] — the CPU multi-way merge of the runs;
//! * [`pipeline`] — the [`pipeline::TeraSorter`] driver that combines the
//!   stages and accounts time per phase, with or without I/O–compute
//!   overlap;
//! * [`manifest`] — checkpointed run manifests: [`pipeline::TeraSorter::sort_durable`]
//!   persists every sorted run and the merged output (with checksums and
//!   key ranges) at the pipeline's two phase boundaries, so a crashed sort
//!   resumes at the last completed level instead of re-sorting.
//!
//! ## Quick start
//!
//! ```
//! use terasort::{disk::{DiskProfile, SimulatedDisk}, record, pipeline::{TeraSorter, TeraSortConfig}};
//!
//! let mut disk = SimulatedDisk::new(DiskProfile::hdd_2006());
//! let input = disk.create("input");
//! disk.append(input, &record::generate(10_000, 42));
//!
//! let sorter = TeraSorter::new(TeraSortConfig { run_size: 4096, ..TeraSortConfig::default() });
//! let report = sorter.sort(&mut disk, input).unwrap();
//!
//! let sorted = disk.read_all(report.output);
//! assert!(sorted.windows(2).all(|w| w[0].key <= w[1].key));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod disk;
pub mod external_merge;
pub mod keygen;
pub mod manifest;
pub mod pipeline;
pub mod record;
pub mod run_formation;

pub use disk::{DiskProfile, DiskStats, FileId, SimulatedDisk};
pub use manifest::{Manifest, ManifestError, RunEntry, Stage};
pub use pipeline::{CoreSorter, DurableSortReport, TeraSortConfig, TeraSortReport, TeraSorter};
pub use record::WideRecord;
