//! Crash-fault injection for the checkpoint path.
//!
//! A much smaller sibling of `sortsvc::wal::fault`: the recovery tests
//! arm a one-shot [`FaultPlan`] at one of the defined checkpoint write
//! points, the pipeline "crashes" there (a typed
//! [`ManifestError::Injected`](super::ManifestError::Injected) unwinds
//! the call), and the test then re-runs [`sort_durable`] against the
//! same directory to prove the resume is byte-identical. Only the
//! stop-and-unwind mode lives here — the hard `kill -9` variant
//! exercises the service WAL, which shares the same temp-write/rename
//! discipline.
//!
//! [`sort_durable`]: crate::pipeline::TeraSorter::sort_durable

use std::sync::Mutex;

/// Defined crash points in the checkpoint write path.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultPoint {
    /// Mid-write of a run/output data file (a torn data file, no
    /// manifest referencing it yet).
    RunData,
    /// Mid-write of the manifest temp file (torn temp, rename never
    /// happens).
    TempWrite,
    /// After the temp file is durable, before the rename (previous
    /// manifest still in effect).
    Rename,
}

impl FaultPoint {
    /// Every defined point, for sweep tests.
    pub fn all() -> [FaultPoint; 3] {
        [
            FaultPoint::RunData,
            FaultPoint::TempWrite,
            FaultPoint::Rename,
        ]
    }

    /// Stable name for messages.
    pub fn name(&self) -> &'static str {
        match self {
            FaultPoint::RunData => "run-data",
            FaultPoint::TempWrite => "manifest-temp-write",
            FaultPoint::Rename => "manifest-rename",
        }
    }
}

/// A one-shot armed crash: fire at the `after`-th hit of `point`
/// (0 = the first).
#[derive(Copy, Clone, Debug)]
pub struct FaultPlan {
    /// Where to crash.
    pub point: FaultPoint,
    /// How many hits of `point` to let through first.
    pub after: u32,
}

static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// Arm a one-shot plan. Replaces any armed plan.
pub fn arm(plan: FaultPlan) {
    *PLAN.lock().unwrap_or_else(|p| p.into_inner()) = Some(plan);
}

/// Disarm whatever is armed (tests call this in cleanup paths).
pub fn disarm() {
    *PLAN.lock().unwrap_or_else(|p| p.into_inner()) = None;
}

/// Should the checkpoint path crash at `point` right now? One-shot:
/// returns `true` at most once per [`arm`].
pub(crate) fn fire(point: FaultPoint) -> bool {
    let mut guard = PLAN.lock().unwrap_or_else(|p| p.into_inner());
    match guard.as_mut() {
        Some(plan) if plan.point == point => {
            if plan.after == 0 {
                *guard = None;
                true
            } else {
                plan.after -= 1;
                false
            }
        }
        _ => false,
    }
}
