//! The key-generator and reorder (fix-up) stages of the hybrid pipeline.
//!
//! The GPU sorters operate on 32-bit float keys with 32-bit pointers
//! ([`Value`]); a database record has a wide (here: 10-byte) key. GPUTeraSort
//! solves this with two CPU stages around the GPU sort:
//!
//! * the **key generator** condenses each wide key into a partial key the
//!   GPU can sort — here the first three key bytes, encoded exactly into an
//!   `f32` (24 bits fit into the mantissa without rounding), with the
//!   record's position in the chunk as the pointer;
//! * the **reorder/fix-up** stage runs after the GPU sort: records whose
//!   partial keys tie are re-ordered by their full keys on the CPU. With
//!   uniformly distributed keys ties are rare and this stage is cheap; the
//!   skewed-key workloads exercise the expensive case.

use crate::record::WideRecord;
use stream_arch::Value;

/// Number of leading key bytes encoded into the partial key.
pub const PREFIX_BYTES: usize = 3;

/// Condense a wide key into the 32-bit float partial key sorted on the GPU.
///
/// The first three bytes are packed big-endian into an integer in
/// `[0, 2^24)`, which converts to `f32` exactly, so partial-key order equals
/// the lexicographic order of the three-byte prefix.
pub fn partial_key(record: &WideRecord) -> f32 {
    let prefix =
        ((record.key[0] as u32) << 16) | ((record.key[1] as u32) << 8) | record.key[2] as u32;
    prefix as f32
}

/// The key-generator stage: one [`Value`] per record, carrying the partial
/// key and the record's index within the chunk.
pub fn generate_keys(records: &[WideRecord]) -> Vec<Value> {
    assert!(
        records.len() <= u32::MAX as usize,
        "chunk too large for 32-bit record pointers"
    );
    records
        .iter()
        .enumerate()
        .map(|(i, r)| Value::new(partial_key(r), i as u32))
        .collect()
}

/// Statistics of one reorder/fix-up pass.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FixupStats {
    /// Number of maximal runs of equal partial keys that contained more
    /// than one record.
    pub tie_groups: u64,
    /// Number of records involved in those groups.
    pub tied_records: u64,
    /// Full-key comparisons spent resolving the ties.
    pub comparisons: u64,
}

/// The reorder stage: materialise the chunk in the order given by the
/// GPU-sorted partial keys and resolve partial-key ties by full-key
/// comparison.
///
/// `sorted_keys` must be the key-generator output of `records` after
/// sorting; the `id` of each entry indexes into `records`.
pub fn reorder(records: &[WideRecord], sorted_keys: &[Value]) -> (Vec<WideRecord>, FixupStats) {
    assert_eq!(
        records.len(),
        sorted_keys.len(),
        "key stream does not match the chunk"
    );
    let mut out: Vec<WideRecord> = sorted_keys.iter().map(|v| records[v.id as usize]).collect();
    let mut stats = FixupStats::default();

    // Walk maximal runs of equal partial keys and sort each by the full key.
    let mut start = 0usize;
    while start < sorted_keys.len() {
        let key = sorted_keys[start].key;
        let mut end = start + 1;
        while end < sorted_keys.len() && sorted_keys[end].key == key {
            end += 1;
        }
        if end - start > 1 {
            stats.tie_groups += 1;
            stats.tied_records += (end - start) as u64;
            let mut comparisons = 0u64;
            out[start..end].sort_by(|a, b| {
                comparisons += 1;
                a.full_cmp(b)
            });
            stats.comparisons += comparisons;
        }
        start = end;
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;

    #[test]
    fn partial_key_preserves_prefix_order() {
        let a = WideRecord::new([0, 0, 1, 255, 255, 0, 0, 0, 0, 0], 0);
        let b = WideRecord::new([0, 0, 2, 0, 0, 0, 0, 0, 0, 0], 1);
        let c = WideRecord::new([1, 0, 0, 0, 0, 0, 0, 0, 0, 0], 2);
        assert!(partial_key(&a) < partial_key(&b));
        assert!(partial_key(&b) < partial_key(&c));
    }

    #[test]
    fn partial_key_is_exact_for_all_prefixes() {
        // 2^24 distinct prefixes all map to distinct floats (spot-checked on
        // the boundaries and a stride).
        let make = |p: u32| {
            WideRecord::new(
                [
                    (p >> 16) as u8,
                    (p >> 8) as u8,
                    p as u8,
                    0,
                    0,
                    0,
                    0,
                    0,
                    0,
                    0,
                ],
                0,
            )
        };
        let mut last = -1.0f32;
        for p in (0u32..(1 << 24)).step_by(65_537).chain([(1 << 24) - 1]) {
            let k = partial_key(&make(p));
            assert!(k > last, "prefix {p} did not increase the key");
            assert_eq!(k as u32, p, "prefix {p} not represented exactly");
            last = k;
        }
    }

    #[test]
    fn generate_keys_indexes_the_chunk() {
        let records = record::generate(100, 1);
        let keys = generate_keys(&records);
        assert_eq!(keys.len(), 100);
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(key.id, i as u32);
            assert_eq!(key.key, partial_key(&records[i]));
        }
    }

    #[test]
    fn reorder_without_ties_is_a_pure_gather() {
        let records = record::generate(500, 2);
        let mut keys = generate_keys(&records);
        keys.sort();
        let (out, stats) = reorder(&records, &keys);
        assert!(record::is_sorted(&out));
        assert!(record::is_permutation(&records, &out));
        // Uniform 3-byte prefixes over 500 records: ties are possible but
        // the fix-up work must stay tiny.
        assert!(stats.tied_records <= 4, "{stats:?}");
    }

    #[test]
    fn reorder_resolves_heavy_ties_by_full_key() {
        let records = record::generate_skewed(400, 3, 7);
        let mut keys = generate_keys(&records);
        keys.sort();
        let (out, stats) = reorder(&records, &keys);
        assert!(record::is_sorted(&out), "ties not resolved");
        assert!(record::is_permutation(&records, &out));
        assert!(stats.tie_groups >= 1);
        assert!(stats.tie_groups <= 3);
        assert_eq!(stats.tied_records, 400);
        assert!(stats.comparisons > 0);
    }

    #[test]
    fn reorder_of_identical_prefixes_degenerates_to_a_cpu_sort() {
        // All records share one prefix: the GPU contributes nothing and the
        // fix-up stage sorts the whole chunk — the documented worst case.
        let records: Vec<WideRecord> = (0..64)
            .map(|i| {
                let mut key = [7u8, 7, 7, 0, 0, 0, 0, 0, 0, 0];
                key[3] = (63 - i) as u8;
                WideRecord::new(key, i as u64)
            })
            .collect();
        let mut keys = generate_keys(&records);
        keys.sort();
        let (out, stats) = reorder(&records, &keys);
        assert!(record::is_sorted(&out));
        assert_eq!(stats.tie_groups, 1);
        assert_eq!(stats.tied_records, 64);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn reorder_rejects_mismatched_lengths() {
        let records = record::generate(8, 1);
        let keys = generate_keys(&records[..4]);
        let _ = reorder(&records, &keys);
    }
}
