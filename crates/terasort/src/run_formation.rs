//! The run-formation phase: memory-sized chunks are read from disk, sorted
//! in core, and written back as sorted runs.
//!
//! The in-core sorter is pluggable so that the experiments can compare the
//! pipeline built on the paper's GPU-ABiSort against the same pipeline on
//! the GPUSort bitonic network (what GPUTeraSort actually used) and on a
//! pure CPU quicksort (no GPU at all). The GPU sorters run on the
//! `stream-arch` simulator and contribute their calibrated simulated time;
//! the CPU stages (key generation, tie fix-up, quicksort) are charged with
//! the comparison/move cost model of `baselines::CpuSortModel`.

use crate::disk::{DiskStats, FileId, SimulatedDisk};
use crate::keygen::{self, FixupStats};
use crate::record::WideRecord;
use abisort::{GpuAbiSorter, SortConfig};
use baselines::{CpuSortModel, CpuSorter, GpuSortBaseline};
use stream_arch::{GpuProfile, Result, StreamProcessor};

/// Nanoseconds charged per record for the key-generator stage (one gather
/// of the key prefix plus one packed write, on a 2006-class CPU).
pub const KEYGEN_NS_PER_RECORD: f64 = 15.0;

/// Which in-core sorter the run-formation phase uses.
#[derive(Clone, Debug)]
pub enum CoreSorter {
    /// The paper's GPU-ABiSort on the stream-processor simulator.
    GpuAbiSort(SortConfig),
    /// The GPUSort bitonic-network baseline on the same simulator (the
    /// sorter the original GPUTeraSort used).
    GpuBitonicNetwork,
    /// A plain CPU quicksort — the no-GPU reference pipeline.
    CpuQuicksort,
}

impl CoreSorter {
    /// Name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            CoreSorter::GpuAbiSort(_) => "gpu-abisort",
            CoreSorter::GpuBitonicNetwork => "gpusort-network",
            CoreSorter::CpuQuicksort => "cpu-quicksort",
        }
    }
}

impl Default for CoreSorter {
    fn default() -> Self {
        CoreSorter::GpuAbiSort(SortConfig::default())
    }
}

/// Configuration of the run-formation phase.
#[derive(Clone, Debug)]
pub struct RunFormationConfig {
    /// Records per run (the memory budget of the in-core sort).
    pub run_size: usize,
    /// The in-core sorter.
    pub core_sorter: CoreSorter,
    /// GPU profile used when the in-core sorter runs on the simulator.
    pub gpu_profile: GpuProfile,
    /// CPU cost model for the key-generator, fix-up and quicksort stages.
    pub cpu_model: CpuSortModel,
}

impl Default for RunFormationConfig {
    fn default() -> Self {
        RunFormationConfig {
            run_size: 1 << 15,
            core_sorter: CoreSorter::default(),
            gpu_profile: GpuProfile::geforce_7800(),
            cpu_model: CpuSortModel::athlon_64_4200(),
        }
    }
}

/// Cost breakdown of the run-formation phase.
#[derive(Clone, Debug, Default)]
pub struct RunFormationStats {
    /// Number of runs written.
    pub runs: usize,
    /// Total records processed.
    pub records: usize,
    /// Simulated GPU time of the in-core sorts (zero for the CPU sorter).
    pub gpu_time_ms: f64,
    /// Modelled CPU time (key generation + fix-up + CPU sort if selected).
    pub cpu_time_ms: f64,
    /// Disk traffic of this phase (chunk reads + run writes).
    pub io: DiskStats,
    /// Aggregated tie fix-up statistics.
    pub fixup: FixupStats,
    /// Stream operations launched on the simulator (zero for the CPU sorter).
    pub stream_ops: u64,
}

/// Read `input` chunk by chunk, sort each chunk in core, and write one
/// sorted run file per chunk. Returns the run file handles and the phase
/// statistics.
pub fn form_runs(
    disk: &mut SimulatedDisk,
    input: FileId,
    config: &RunFormationConfig,
) -> Result<(Vec<FileId>, RunFormationStats)> {
    assert!(config.run_size > 0, "run size must be positive");
    let total = disk.len(input);
    let io_before = disk.stats();
    let mut stats = RunFormationStats {
        records: total,
        ..RunFormationStats::default()
    };
    let mut runs = Vec::new();

    let mut offset = 0usize;
    while offset < total {
        let chunk = disk.read(input, offset, config.run_size);
        offset += chunk.len();

        let sorted = sort_chunk(&chunk, config, &mut stats)?;

        let run = disk.create(&format!("run-{}", runs.len()));
        disk.append(run, &sorted);
        runs.push(run);
        stats.runs += 1;
    }

    stats.io = disk.stats().since(&io_before);
    Ok((runs, stats))
}

/// Sort one in-memory chunk with the configured sorter, including key
/// generation and tie fix-up for the GPU paths.
fn sort_chunk(
    chunk: &[WideRecord],
    config: &RunFormationConfig,
    stats: &mut RunFormationStats,
) -> Result<Vec<WideRecord>> {
    match &config.core_sorter {
        CoreSorter::CpuQuicksort => {
            // The CPU sorts the wide keys directly — no key generation, no
            // fix-up, but every comparison touches ten bytes. The cost model
            // charges the same per-comparison time as for the Value
            // baseline, which slightly favours the CPU pipeline.
            let keys = keygen::generate_keys(chunk);
            let (_, cpu_stats) = CpuSorter.sort(&keys);
            let mut sorted = chunk.to_vec();
            sorted.sort_by(|a, b| a.full_cmp(b));
            stats.cpu_time_ms += config.cpu_model.time_ms(&cpu_stats);
            Ok(sorted)
        }
        CoreSorter::GpuAbiSort(sort_config) => {
            let keys = keygen::generate_keys(chunk);
            stats.cpu_time_ms += keygen_time_ms(chunk.len());
            let mut proc = StreamProcessor::new(config.gpu_profile.clone());
            let run = GpuAbiSorter::new(*sort_config).sort_run(&mut proc, &keys)?;
            stats.gpu_time_ms += run.sim_time.total_ms;
            stats.stream_ops += run.counters.launches;
            finish_gpu_chunk(chunk, &run.output, config, stats)
        }
        CoreSorter::GpuBitonicNetwork => {
            let keys = keygen::generate_keys(chunk);
            stats.cpu_time_ms += keygen_time_ms(chunk.len());
            let mut proc = StreamProcessor::new(config.gpu_profile.clone());
            let run = GpuSortBaseline::new().sort(&mut proc, &keys)?;
            stats.gpu_time_ms += run.sim_time.total_ms;
            stats.stream_ops += run.counters.launches;
            finish_gpu_chunk(chunk, &run.output, config, stats)
        }
    }
}

/// Shared tail of the GPU paths: reorder by the sorted partial keys and
/// charge the fix-up comparisons to the CPU.
fn finish_gpu_chunk(
    chunk: &[WideRecord],
    sorted_keys: &[stream_arch::Value],
    config: &RunFormationConfig,
    stats: &mut RunFormationStats,
) -> Result<Vec<WideRecord>> {
    let (sorted, fixup) = keygen::reorder(chunk, sorted_keys);
    stats.cpu_time_ms += fixup.comparisons as f64 * config.cpu_model.ns_per_comparison / 1e6;
    stats.fixup.tie_groups += fixup.tie_groups;
    stats.fixup.tied_records += fixup.tied_records;
    stats.fixup.comparisons += fixup.comparisons;
    Ok(sorted)
}

fn keygen_time_ms(records: usize) -> f64 {
    records as f64 * KEYGEN_NS_PER_RECORD / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskProfile;
    use crate::record;

    fn setup(n: usize, seed: u64) -> (SimulatedDisk, FileId, Vec<WideRecord>) {
        let mut disk = SimulatedDisk::new(DiskProfile::raid_2006());
        let input = disk.create("input");
        let records = record::generate(n, seed);
        disk.append(input, &records);
        (disk, input, records)
    }

    fn config_with(core_sorter: CoreSorter, run_size: usize) -> RunFormationConfig {
        RunFormationConfig {
            run_size,
            core_sorter,
            ..RunFormationConfig::default()
        }
    }

    #[test]
    fn forms_sorted_runs_that_partition_the_input() {
        let (mut disk, input, records) = setup(10_000, 1);
        let config = config_with(CoreSorter::default(), 4096);
        let (runs, stats) = form_runs(&mut disk, input, &config).unwrap();
        assert_eq!(runs.len(), 3); // 4096 + 4096 + 1808
        assert_eq!(stats.runs, 3);
        assert_eq!(stats.records, 10_000);

        let mut all = Vec::new();
        for &run in &runs {
            let run_records = disk.read_all(run);
            assert!(record::is_sorted(&run_records), "run not sorted");
            all.extend(run_records);
        }
        assert!(record::is_permutation(&records, &all));
    }

    #[test]
    fn all_core_sorters_produce_identically_sorted_runs() {
        let (_, _, records) = setup(3000, 5);
        let mut outputs = Vec::new();
        for sorter in [
            CoreSorter::GpuAbiSort(SortConfig::default()),
            CoreSorter::GpuBitonicNetwork,
            CoreSorter::CpuQuicksort,
        ] {
            let mut disk = SimulatedDisk::new(DiskProfile::ideal());
            let input = disk.create("input");
            disk.append(input, &records);
            let (runs, _) = form_runs(&mut disk, input, &config_with(sorter, 1024)).unwrap();
            let mut all = Vec::new();
            for &run in &runs {
                all.extend(disk.read_all(run));
            }
            outputs.push(all);
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[1], outputs[2]);
    }

    #[test]
    fn gpu_paths_charge_simulated_gpu_time_and_stream_ops() {
        let (mut disk, input, _) = setup(4096, 9);
        let (_, stats) =
            form_runs(&mut disk, input, &config_with(CoreSorter::default(), 2048)).unwrap();
        assert!(stats.gpu_time_ms > 0.0);
        assert!(stats.stream_ops > 0);
        assert!(stats.cpu_time_ms > 0.0); // key generation is never free

        let (mut disk, input, _) = setup(4096, 9);
        let (_, cpu_stats) = form_runs(
            &mut disk,
            input,
            &config_with(CoreSorter::CpuQuicksort, 2048),
        )
        .unwrap();
        assert_eq!(cpu_stats.gpu_time_ms, 0.0);
        assert_eq!(cpu_stats.stream_ops, 0);
        assert!(cpu_stats.cpu_time_ms > 0.0);
    }

    #[test]
    fn io_statistics_cover_reads_and_run_writes() {
        let (mut disk, input, _) = setup(5000, 3);
        let (_, stats) = form_runs(
            &mut disk,
            input,
            &config_with(CoreSorter::CpuQuicksort, 2000),
        )
        .unwrap();
        assert_eq!(stats.io.read_requests, 3);
        assert_eq!(stats.io.write_requests, 3);
        assert_eq!(stats.io.bytes_read, stats.io.bytes_written);
        assert!(stats.io.io_time_ms > 0.0);
    }

    #[test]
    fn skewed_keys_exercise_the_fixup_stage() {
        let mut disk = SimulatedDisk::new(DiskProfile::ideal());
        let input = disk.create("input");
        let records = record::generate_skewed(2048, 8, 17);
        disk.append(input, &records);
        let (runs, stats) =
            form_runs(&mut disk, input, &config_with(CoreSorter::default(), 1024)).unwrap();
        assert!(stats.fixup.tied_records > 0);
        assert!(stats.fixup.comparisons > 0);
        for &run in &runs {
            assert!(record::is_sorted(&disk.read_all(run)));
        }
    }

    #[test]
    fn empty_input_produces_no_runs() {
        let mut disk = SimulatedDisk::new(DiskProfile::hdd_2006());
        let input = disk.create("input");
        let (runs, stats) = form_runs(&mut disk, input, &RunFormationConfig::default()).unwrap();
        assert!(runs.is_empty());
        assert_eq!(stats.runs, 0);
        assert_eq!(stats.records, 0);
    }

    #[test]
    fn core_sorter_names() {
        assert_eq!(CoreSorter::default().name(), "gpu-abisort");
        assert_eq!(CoreSorter::GpuBitonicNetwork.name(), "gpusort-network");
        assert_eq!(CoreSorter::CpuQuicksort.name(), "cpu-quicksort");
    }
}
