//! The complete hybrid out-of-core sorting pipeline.
//!
//! [`TeraSorter`] chains the stages of Section 2.2's description of
//! GPUTeraSort — reader → key generator → in-core (GPU) sort → reorder →
//! writer for every run, followed by the CPU multi-way merge — and accounts
//! simulated time per phase. Disk I/O and GPU/CPU compute may be modelled
//! as overlapped (the pipelined execution with DMA the original system
//! uses) or strictly sequential, which is the knob the overlap experiment
//! turns.

use crate::disk::{FileId, SimulatedDisk};
use crate::external_merge::{self, MergeConfig};
use crate::keygen::FixupStats;
use crate::manifest::{self, Manifest, ManifestError, RunEntry, Stage};
use crate::run_formation::{self, RunFormationConfig};
use std::fs;
use std::path::Path;
use stream_arch::{GpuProfile, Result};

pub use crate::run_formation::CoreSorter;

/// Configuration of the whole pipeline.
#[derive(Clone, Debug)]
pub struct TeraSortConfig {
    /// Records per run (the in-core memory budget).
    pub run_size: usize,
    /// The in-core sorter used during run formation.
    pub core_sorter: CoreSorter,
    /// GPU profile for the simulator-backed sorters.
    pub gpu_profile: GpuProfile,
    /// Records per read request during the external merge.
    pub merge_page_records: usize,
    /// Model disk I/O as overlapped with compute (pipelined reader/writer
    /// stages with DMA) instead of strictly sequential.
    pub overlap_io: bool,
}

impl Default for TeraSortConfig {
    fn default() -> Self {
        TeraSortConfig {
            run_size: 1 << 15,
            core_sorter: CoreSorter::default(),
            gpu_profile: GpuProfile::geforce_7800(),
            merge_page_records: 4096,
            overlap_io: true,
        }
    }
}

/// Time breakdown of one pipeline phase.
#[derive(Copy, Clone, Debug, Default)]
pub struct PhaseTime {
    /// Disk I/O time of the phase in ms.
    pub io_ms: f64,
    /// Simulated GPU time of the phase in ms.
    pub gpu_ms: f64,
    /// Modelled CPU time of the phase in ms.
    pub cpu_ms: f64,
    /// Elapsed time of the phase under the configured overlap model.
    pub elapsed_ms: f64,
}

impl PhaseTime {
    fn new(io_ms: f64, gpu_ms: f64, cpu_ms: f64, overlap: bool) -> Self {
        let compute = gpu_ms + cpu_ms;
        let elapsed_ms = if overlap {
            io_ms.max(compute)
        } else {
            io_ms + compute
        };
        PhaseTime {
            io_ms,
            gpu_ms,
            cpu_ms,
            elapsed_ms,
        }
    }
}

/// The report of one complete out-of-core sort.
#[derive(Clone, Debug)]
pub struct TeraSortReport {
    /// Handle of the sorted output file.
    pub output: FileId,
    /// Total records sorted.
    pub records: usize,
    /// Number of intermediate runs.
    pub runs: usize,
    /// Name of the in-core sorter used.
    pub core_sorter: &'static str,
    /// Run-formation phase times.
    pub run_phase: PhaseTime,
    /// External-merge phase times.
    pub merge_phase: PhaseTime,
    /// Total elapsed time (run phase + merge phase).
    pub total_ms: f64,
    /// Tie fix-up statistics of the reorder stage.
    pub fixup: FixupStats,
    /// Full-key comparisons of the external merge.
    pub merge_comparisons: u64,
    /// Stream operations launched on the GPU simulator.
    pub stream_ops: u64,
}

/// The hybrid out-of-core sorter.
#[derive(Clone, Debug)]
pub struct TeraSorter {
    config: TeraSortConfig,
}

impl TeraSorter {
    /// Create a sorter with the given configuration.
    pub fn new(config: TeraSortConfig) -> Self {
        TeraSorter { config }
    }

    /// The sorter's configuration.
    pub fn config(&self) -> &TeraSortConfig {
        &self.config
    }

    /// Sort the records of `input` and write them to a new output file on
    /// the same disk, returning the handle and the phase accounting.
    pub fn sort(&self, disk: &mut SimulatedDisk, input: FileId) -> Result<TeraSortReport> {
        let run_config = RunFormationConfig {
            run_size: self.config.run_size,
            core_sorter: self.config.core_sorter.clone(),
            gpu_profile: self.config.gpu_profile.clone(),
            ..RunFormationConfig::default()
        };
        let (runs, run_stats) = run_formation::form_runs(disk, input, &run_config)?;

        let output = disk.create(&format!("{}-sorted", disk.name(input)));
        let merge_config = MergeConfig {
            page_records: self.config.merge_page_records,
            ..MergeConfig::default()
        };
        let merge_stats = external_merge::merge_runs(disk, &runs, output, &merge_config);

        let run_phase = PhaseTime::new(
            run_stats.io.io_time_ms,
            run_stats.gpu_time_ms,
            run_stats.cpu_time_ms,
            self.config.overlap_io,
        );
        let merge_phase = PhaseTime::new(
            merge_stats.io.io_time_ms,
            0.0,
            merge_stats.cpu_time_ms,
            self.config.overlap_io,
        );

        Ok(TeraSortReport {
            output,
            records: run_stats.records,
            runs: run_stats.runs,
            core_sorter: self.config.core_sorter.name(),
            run_phase,
            merge_phase,
            total_ms: run_phase.elapsed_ms + merge_phase.elapsed_ms,
            fixup: run_stats.fixup,
            merge_comparisons: merge_stats.comparisons,
            stream_ops: run_stats.stream_ops,
        })
    }

    /// Like [`TeraSorter::sort`], but checkpointed: every sorted run and
    /// the merged output are persisted (with checksums) into `dir` at the
    /// pipeline's two phase boundaries, together with an atomically
    /// updated [`Manifest`]. When `dir` already holds a checkpoint from a
    /// previous — possibly crashed — invocation, the sort *resumes* at the
    /// last completed level: a `merged` manifest reloads the output
    /// without any sorting, a `runs` manifest reloads the sorted runs and
    /// only merges. A checkpoint that fails verification is a typed
    /// [`ManifestError::Corrupt`], never silently (re)trusted.
    ///
    /// The [`SimulatedDisk`] is in-memory and does not survive a crash;
    /// the checkpoint directory is the durable copy, which is why run and
    /// output *data* is persisted alongside the manifest metadata.
    pub fn sort_durable(
        &self,
        disk: &mut SimulatedDisk,
        input: FileId,
        dir: impl AsRef<Path>,
    ) -> std::result::Result<DurableSortReport, ManifestError> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        match Manifest::load(dir)? {
            Some(m) if m.stage == Stage::Merged => {
                // The whole sort completed before the crash: reload the
                // verified output, no sorting at all.
                let entry = m.output.as_ref().ok_or_else(|| ManifestError::Corrupt {
                    reason: "merged manifest without output".into(),
                })?;
                let records = manifest::read_records(dir, entry)?;
                let output = disk.create(&format!("{}-sorted", disk.name(input)));
                disk.append(output, &records);
                Ok(DurableSortReport {
                    report: TeraSortReport {
                        output,
                        records: records.len(),
                        runs: m.runs.len(),
                        core_sorter: self.config.core_sorter.name(),
                        run_phase: PhaseTime::default(),
                        merge_phase: PhaseTime::default(),
                        total_ms: 0.0,
                        fixup: FixupStats::default(),
                        merge_comparisons: 0,
                        stream_ops: 0,
                    },
                    resumed_from: Some(Stage::Merged),
                    resumed_records: records.len(),
                })
            }
            Some(m) => {
                // Run formation completed: reload the verified runs and
                // resume at the merge level.
                let mut runs = Vec::with_capacity(m.runs.len());
                let mut resumed_records = 0usize;
                for entry in &m.runs {
                    let records = manifest::read_records(dir, entry)?;
                    resumed_records += records.len();
                    let file = disk.create(&entry.file);
                    disk.append(file, &records);
                    runs.push(file);
                }
                let (output, merge_phase, comparisons) =
                    self.merge_and_checkpoint(disk, input, &runs, m.records, m.runs.clone(), dir)?;
                Ok(DurableSortReport {
                    report: TeraSortReport {
                        output,
                        records: m.records,
                        runs: runs.len(),
                        core_sorter: self.config.core_sorter.name(),
                        run_phase: PhaseTime::default(),
                        merge_phase,
                        total_ms: merge_phase.elapsed_ms,
                        fixup: FixupStats::default(),
                        merge_comparisons: comparisons,
                        stream_ops: 0,
                    },
                    resumed_from: Some(Stage::Runs),
                    resumed_records,
                })
            }
            None => {
                // No checkpoint yet (or a crash before the first manifest
                // became visible): the full pipeline, checkpointing at
                // both boundaries.
                let run_config = RunFormationConfig {
                    run_size: self.config.run_size,
                    core_sorter: self.config.core_sorter.clone(),
                    gpu_profile: self.config.gpu_profile.clone(),
                    ..RunFormationConfig::default()
                };
                let (runs, run_stats) = run_formation::form_runs(disk, input, &run_config)?;

                let mut entries = Vec::with_capacity(runs.len());
                for (i, &run) in runs.iter().enumerate() {
                    let data = disk.read_all(run);
                    entries.push(manifest::write_records(
                        dir,
                        &format!("run-{i:04}.dat"),
                        &data,
                    )?);
                }
                Manifest {
                    stage: Stage::Runs,
                    records: run_stats.records,
                    runs: entries.clone(),
                    output: None,
                }
                .save(dir)?;

                let (output, merge_phase, comparisons) =
                    self.merge_and_checkpoint(disk, input, &runs, run_stats.records, entries, dir)?;
                let run_phase = PhaseTime::new(
                    run_stats.io.io_time_ms,
                    run_stats.gpu_time_ms,
                    run_stats.cpu_time_ms,
                    self.config.overlap_io,
                );
                Ok(DurableSortReport {
                    report: TeraSortReport {
                        output,
                        records: run_stats.records,
                        runs: run_stats.runs,
                        core_sorter: self.config.core_sorter.name(),
                        run_phase,
                        merge_phase,
                        total_ms: run_phase.elapsed_ms + merge_phase.elapsed_ms,
                        fixup: run_stats.fixup,
                        merge_comparisons: comparisons,
                        stream_ops: run_stats.stream_ops,
                    },
                    resumed_from: None,
                    resumed_records: 0,
                })
            }
        }
    }

    /// Merge `runs` into a fresh output file and checkpoint the result:
    /// `output.dat` plus a `merged`-stage manifest carrying the run
    /// entries forward. Shared by the fresh and the resumed-at-runs paths.
    fn merge_and_checkpoint(
        &self,
        disk: &mut SimulatedDisk,
        input: FileId,
        runs: &[FileId],
        records: usize,
        run_entries: Vec<RunEntry>,
        dir: &Path,
    ) -> std::result::Result<(FileId, PhaseTime, u64), ManifestError> {
        let output = disk.create(&format!("{}-sorted", disk.name(input)));
        let merge_config = MergeConfig {
            page_records: self.config.merge_page_records,
            ..MergeConfig::default()
        };
        let merge_stats = external_merge::merge_runs(disk, runs, output, &merge_config);

        let data = disk.read_all(output);
        let entry = manifest::write_records(dir, "output.dat", &data)?;
        Manifest {
            stage: Stage::Merged,
            records,
            runs: run_entries,
            output: Some(entry),
        }
        .save(dir)?;

        let merge_phase = PhaseTime::new(
            merge_stats.io.io_time_ms,
            0.0,
            merge_stats.cpu_time_ms,
            self.config.overlap_io,
        );
        Ok((output, merge_phase, merge_stats.comparisons))
    }
}

/// The report of one durable (checkpointed) out-of-core sort.
#[derive(Clone, Debug)]
pub struct DurableSortReport {
    /// The underlying pipeline report. Phase times cover only the work
    /// actually performed — a resumed sort reports zero for the levels it
    /// skipped.
    pub report: TeraSortReport,
    /// The checkpoint level this sort resumed from (`None`: it ran from
    /// scratch).
    pub resumed_from: Option<Stage>,
    /// Records reloaded from the checkpoint directory instead of being
    /// re-sorted.
    pub resumed_records: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskProfile;
    use crate::record;
    use abisort::SortConfig;

    fn setup(
        n: usize,
        seed: u64,
        profile: DiskProfile,
    ) -> (SimulatedDisk, FileId, Vec<record::WideRecord>) {
        let mut disk = SimulatedDisk::new(profile);
        let input = disk.create("table");
        let records = record::generate(n, seed);
        disk.append(input, &records);
        (disk, input, records)
    }

    fn small_config(core_sorter: CoreSorter) -> TeraSortConfig {
        TeraSortConfig {
            run_size: 2048,
            core_sorter,
            ..TeraSortConfig::default()
        }
    }

    #[test]
    fn end_to_end_sorts_an_out_of_core_table() {
        let (mut disk, input, records) = setup(9_500, 1, DiskProfile::raid_2006());
        let report = TeraSorter::new(small_config(CoreSorter::default()))
            .sort(&mut disk, input)
            .unwrap();
        assert_eq!(report.records, 9_500);
        assert_eq!(report.runs, 5);
        assert_eq!(report.core_sorter, "gpu-abisort");
        let sorted = disk.read_all(report.output);
        assert!(record::is_sorted(&sorted));
        assert!(record::is_permutation(&records, &sorted));
        assert!(report.total_ms > 0.0);
        assert!(report.stream_ops > 0);
    }

    #[test]
    fn all_core_sorters_produce_the_same_output() {
        let records = record::generate(6_000, 7);
        let mut outputs = Vec::new();
        for sorter in [
            CoreSorter::GpuAbiSort(SortConfig::default()),
            CoreSorter::GpuBitonicNetwork,
            CoreSorter::CpuQuicksort,
        ] {
            let mut disk = SimulatedDisk::new(DiskProfile::ideal());
            let input = disk.create("table");
            disk.append(input, &records);
            let report = TeraSorter::new(small_config(sorter))
                .sort(&mut disk, input)
                .unwrap();
            outputs.push(disk.read_all(report.output));
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[1], outputs[2]);
    }

    #[test]
    fn overlapping_io_never_increases_the_elapsed_time() {
        let records = record::generate(8_192, 3);
        let mut totals = Vec::new();
        for overlap in [false, true] {
            let mut disk = SimulatedDisk::new(DiskProfile::hdd_2006());
            let input = disk.create("table");
            disk.append(input, &records);
            let config = TeraSortConfig {
                overlap_io: overlap,
                ..small_config(CoreSorter::default())
            };
            let report = TeraSorter::new(config).sort(&mut disk, input).unwrap();
            totals.push(report.total_ms);
        }
        assert!(totals[1] < totals[0], "overlap {totals:?}");
    }

    #[test]
    fn phase_times_compose_io_gpu_and_cpu() {
        let (mut disk, input, _) = setup(4_096, 5, DiskProfile::hdd_2006());
        let config = TeraSortConfig {
            overlap_io: false,
            ..small_config(CoreSorter::default())
        };
        let report = TeraSorter::new(config).sort(&mut disk, input).unwrap();
        let p = report.run_phase;
        assert!(p.io_ms > 0.0 && p.gpu_ms > 0.0 && p.cpu_ms > 0.0);
        assert!((p.elapsed_ms - (p.io_ms + p.gpu_ms + p.cpu_ms)).abs() < 1e-9);
        let m = report.merge_phase;
        assert_eq!(m.gpu_ms, 0.0);
        assert!(m.io_ms > 0.0 && m.cpu_ms > 0.0);
        assert!((report.total_ms - (p.elapsed_ms + m.elapsed_ms)).abs() < 1e-9);
    }

    #[test]
    fn overlapped_phase_elapsed_is_the_maximum_of_io_and_compute() {
        let (mut disk, input, _) = setup(4_096, 5, DiskProfile::hdd_2006());
        let report = TeraSorter::new(small_config(CoreSorter::default()))
            .sort(&mut disk, input)
            .unwrap();
        let p = report.run_phase;
        assert!((p.elapsed_ms - p.io_ms.max(p.gpu_ms + p.cpu_ms)).abs() < 1e-9);
    }

    #[test]
    fn single_run_input_skips_real_merging() {
        let (mut disk, input, records) = setup(1_000, 9, DiskProfile::raid_2006());
        let config = TeraSortConfig {
            run_size: 4_096,
            ..small_config(CoreSorter::default())
        };
        let report = TeraSorter::new(config).sort(&mut disk, input).unwrap();
        assert_eq!(report.runs, 1);
        assert_eq!(report.merge_comparisons, 0);
        let sorted = disk.read_all(report.output);
        assert!(record::is_sorted(&sorted));
        assert!(record::is_permutation(&records, &sorted));
    }

    #[test]
    fn empty_input_produces_an_empty_output() {
        let mut disk = SimulatedDisk::new(DiskProfile::ideal());
        let input = disk.create("table");
        let report = TeraSorter::new(TeraSortConfig::default())
            .sort(&mut disk, input)
            .unwrap();
        assert_eq!(report.records, 0);
        assert!(disk.is_empty(report.output));
    }

    #[test]
    fn skewed_keys_are_sorted_correctly_and_exercise_fixup() {
        let mut disk = SimulatedDisk::new(DiskProfile::ideal());
        let input = disk.create("table");
        let records = record::generate_skewed(5_000, 6, 11);
        disk.append(input, &records);
        let report = TeraSorter::new(small_config(CoreSorter::default()))
            .sort(&mut disk, input)
            .unwrap();
        assert!(report.fixup.tied_records > 0);
        let sorted = disk.read_all(report.output);
        assert!(record::is_sorted(&sorted));
        assert!(record::is_permutation(&records, &sorted));
    }

    use crate::manifest::fault;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "terasort-pipeline-{tag}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            fs::remove_dir_all(&self.0).ok();
        }
    }

    // The fault plan is process-global; every durable test serializes on
    // this lock so an armed plan can only fire in the test that armed it.
    fn fault_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    #[test]
    fn durable_sort_matches_plain_and_resumes_from_merged() {
        let _guard = fault_lock().lock().unwrap_or_else(|p| p.into_inner());
        let (mut disk, input, _) = setup(9_500, 1, DiskProfile::raid_2006());
        let sorter = TeraSorter::new(small_config(CoreSorter::default()));
        let plain = sorter.sort(&mut disk, input).unwrap();
        let reference = disk.read_all(plain.output);

        let tmp = TempDir::new("durable");
        let (mut disk2, input2, _) = setup(9_500, 1, DiskProfile::raid_2006());
        let durable = sorter.sort_durable(&mut disk2, input2, tmp.path()).unwrap();
        assert_eq!(durable.resumed_from, None);
        assert_eq!(disk2.read_all(durable.report.output), reference);
        let m = Manifest::load(tmp.path()).unwrap().unwrap();
        assert_eq!(m.stage, Stage::Merged);
        assert_eq!(m.runs.len(), 5);

        // A second invocation resumes from the merged checkpoint and does
        // no sorting at all — the reloaded output is still byte-identical.
        let (mut disk3, input3, _) = setup(9_500, 1, DiskProfile::raid_2006());
        let resumed = sorter.sort_durable(&mut disk3, input3, tmp.path()).unwrap();
        assert_eq!(resumed.resumed_from, Some(Stage::Merged));
        assert_eq!(resumed.resumed_records, 9_500);
        assert_eq!(resumed.report.stream_ops, 0);
        assert_eq!(disk3.read_all(resumed.report.output), reference);
    }

    #[test]
    fn crash_at_each_fault_point_then_resume_is_byte_identical() {
        let _guard = fault_lock().lock().unwrap_or_else(|p| p.into_inner());
        let records = record::generate(9_500, 17);
        let sorter = TeraSorter::new(small_config(CoreSorter::default()));
        let reference = {
            let mut disk = SimulatedDisk::new(DiskProfile::ideal());
            let input = disk.create("table");
            disk.append(input, &records);
            let report = sorter.sort(&mut disk, input).unwrap();
            disk.read_all(report.output)
        };

        // 9 500 records at run_size 2048 form 5 runs, so the checkpoint
        // write sequence is: run data hits 0–4, the runs-stage manifest
        // (temp-write hit 0, rename hit 0), output data (run-data hit 5),
        // the merged-stage manifest (temp-write hit 1, rename hit 1).
        let cases = [
            (fault::FaultPoint::RunData, 0, None),
            (fault::FaultPoint::RunData, 4, None),
            (fault::FaultPoint::TempWrite, 0, None),
            (fault::FaultPoint::Rename, 0, None),
            (fault::FaultPoint::RunData, 5, Some(Stage::Runs)),
            (fault::FaultPoint::TempWrite, 1, Some(Stage::Runs)),
            (fault::FaultPoint::Rename, 1, Some(Stage::Runs)),
        ];
        for (point, after, expect_resume) in cases {
            let tmp = TempDir::new("crash");
            fault::arm(fault::FaultPlan { point, after });
            let mut disk = SimulatedDisk::new(DiskProfile::ideal());
            let input = disk.create("table");
            disk.append(input, &records);
            let err = sorter
                .sort_durable(&mut disk, input, tmp.path())
                .unwrap_err();
            assert!(
                matches!(err, ManifestError::Injected(p) if p == point),
                "{point:?}/{after}: {err}"
            );
            fault::disarm();

            // "Restart": the in-memory disk died with the process; only
            // the checkpoint directory survives.
            let mut disk = SimulatedDisk::new(DiskProfile::ideal());
            let input = disk.create("table");
            disk.append(input, &records);
            let durable = sorter.sort_durable(&mut disk, input, tmp.path()).unwrap();
            assert_eq!(durable.resumed_from, expect_resume, "{point:?}/{after}");
            assert_eq!(
                disk.read_all(durable.report.output),
                reference,
                "resume after {point:?}/{after} diverged"
            );
        }
    }

    #[test]
    fn corrupted_checkpoint_data_is_a_typed_error_never_replayed() {
        let _guard = fault_lock().lock().unwrap_or_else(|p| p.into_inner());
        let tmp = TempDir::new("corrupt");
        let (mut disk, input, _) = setup(3_000, 5, DiskProfile::ideal());
        let sorter = TeraSorter::new(small_config(CoreSorter::default()));
        sorter.sort_durable(&mut disk, input, tmp.path()).unwrap();

        let path = tmp.path().join("output.dat");
        let mut bytes = fs::read(&path).unwrap();
        bytes[1000] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let (mut disk2, input2, _) = setup(3_000, 5, DiskProfile::ideal());
        assert!(matches!(
            sorter.sort_durable(&mut disk2, input2, tmp.path()),
            Err(ManifestError::Corrupt { .. })
        ));
    }

    #[test]
    fn empty_input_checkpoints_and_resumes_cleanly() {
        let _guard = fault_lock().lock().unwrap_or_else(|p| p.into_inner());
        let tmp = TempDir::new("emptydur");
        let sorter = TeraSorter::new(TeraSortConfig::default());
        let mut disk = SimulatedDisk::new(DiskProfile::ideal());
        let input = disk.create("table");
        let durable = sorter.sort_durable(&mut disk, input, tmp.path()).unwrap();
        assert_eq!(durable.report.records, 0);
        assert!(disk.is_empty(durable.report.output));

        let mut disk2 = SimulatedDisk::new(DiskProfile::ideal());
        let input2 = disk2.create("table");
        let resumed = sorter.sort_durable(&mut disk2, input2, tmp.path()).unwrap();
        assert_eq!(resumed.resumed_from, Some(Stage::Merged));
        assert!(disk2.is_empty(resumed.report.output));
    }

    #[test]
    fn faster_disks_reduce_io_time_but_not_gpu_time() {
        let records = record::generate(8_192, 21);
        let mut reports = Vec::new();
        for profile in [DiskProfile::hdd_2006(), DiskProfile::raid_2006()] {
            let mut disk = SimulatedDisk::new(profile);
            let input = disk.create("table");
            disk.append(input, &records);
            reports.push(
                TeraSorter::new(small_config(CoreSorter::default()))
                    .sort(&mut disk, input)
                    .unwrap(),
            );
        }
        assert!(reports[1].run_phase.io_ms < reports[0].run_phase.io_ms);
        // The GPU work is identical; its simulated time may wobble slightly
        // because the parallel executor's cache simulation depends on the
        // interleaving of the worker threads.
        let (a, b) = (reports[0].run_phase.gpu_ms, reports[1].run_phase.gpu_ms);
        assert!((a - b).abs() / a.max(b) < 0.05, "gpu {a} vs {b}");
    }
}
