//! Wide database records.
//!
//! GPUTeraSort's target workload (and the sort benchmarks it competes in)
//! uses records of roughly 100 bytes with a 10-byte key. The GPU cannot
//! sort such keys directly — its sorters work on 32-bit float keys with a
//! 32-bit pointer payload — which is exactly why the hybrid pipeline has a
//! key-generator and a reorder stage. [`WideRecord`] is that record type;
//! only the key and an 8-byte payload handle are materialised, but the
//! disk model charges the full on-disk record size.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;

/// Length of the wide sort key in bytes (sort-benchmark convention).
pub const KEY_BYTES: usize = 10;

/// On-disk size of one record in bytes (key + row payload); used by the
/// disk cost model.
pub const RECORD_BYTES: u64 = 100;

/// A wide record: a 10-byte binary sort key plus a payload handle standing
/// in for the rest of the row.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct WideRecord {
    /// The wide sort key, compared lexicographically byte by byte.
    pub key: [u8; KEY_BYTES],
    /// Handle to the row contents (unique per record in generated data).
    pub payload: u64,
}

impl WideRecord {
    /// Create a record from a key and payload handle.
    pub fn new(key: [u8; KEY_BYTES], payload: u64) -> Self {
        WideRecord { key, payload }
    }

    /// Full-key comparison (lexicographic over all ten key bytes, payload as
    /// a tie breaker so generated data always has a strict total order).
    pub fn full_cmp(&self, other: &Self) -> Ordering {
        self.key
            .cmp(&other.key)
            .then(self.payload.cmp(&other.payload))
    }
}

impl PartialOrd for WideRecord {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WideRecord {
    fn cmp(&self, other: &Self) -> Ordering {
        self.full_cmp(other)
    }
}

/// Generate `n` records with uniformly random keys and unique payloads.
pub fn generate(n: usize, seed: u64) -> Vec<WideRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mut key = [0u8; KEY_BYTES];
            rng.fill(&mut key[..]);
            WideRecord::new(key, i as u64)
        })
        .collect()
}

/// Generate `n` records whose keys collide heavily in the leading bytes
/// (only `distinct_prefixes` different 3-byte prefixes), stressing the
/// reorder/fix-up stage of the pipeline.
pub fn generate_skewed(n: usize, distinct_prefixes: u32, seed: u64) -> Vec<WideRecord> {
    assert!(distinct_prefixes > 0, "need at least one prefix");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let prefix = rng.gen_range(0..distinct_prefixes);
            let mut key = [0u8; KEY_BYTES];
            key[0] = (prefix >> 16) as u8;
            key[1] = (prefix >> 8) as u8;
            key[2] = prefix as u8;
            rng.fill(&mut key[3..]);
            WideRecord::new(key, i as u64)
        })
        .collect()
}

/// True if `records` is sorted ascending by the full wide key.
pub fn is_sorted(records: &[WideRecord]) -> bool {
    records
        .windows(2)
        .all(|w| w[0].full_cmp(&w[1]) != Ordering::Greater)
}

/// True if `a` and `b` contain the same multiset of records.
pub fn is_permutation(a: &[WideRecord], b: &[WideRecord]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut a: Vec<_> = a.to_vec();
    let mut b: Vec<_> = b.to_vec();
    a.sort();
    b.sort();
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_records_have_unique_payloads() {
        let records = generate(1000, 1);
        let mut payloads: Vec<_> = records.iter().map(|r| r.payload).collect();
        payloads.sort_unstable();
        payloads.dedup();
        assert_eq!(payloads.len(), 1000);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(generate(64, 7), generate(64, 7));
        assert_ne!(generate(64, 7), generate(64, 8));
    }

    #[test]
    fn full_cmp_is_lexicographic_then_payload() {
        let a = WideRecord::new([0, 0, 1, 0, 0, 0, 0, 0, 0, 0], 5);
        let b = WideRecord::new([0, 0, 2, 0, 0, 0, 0, 0, 0, 0], 1);
        assert_eq!(a.full_cmp(&b), Ordering::Less);
        let c = WideRecord::new(a.key, 9);
        assert_eq!(a.full_cmp(&c), Ordering::Less);
        assert_eq!(a.full_cmp(&a), Ordering::Equal);
        assert!(a < b);
    }

    #[test]
    fn skewed_generation_limits_prefixes() {
        let records = generate_skewed(500, 4, 3);
        let mut prefixes: Vec<[u8; 3]> = records
            .iter()
            .map(|r| [r.key[0], r.key[1], r.key[2]])
            .collect();
        prefixes.sort_unstable();
        prefixes.dedup();
        assert!(prefixes.len() <= 4);
    }

    #[test]
    fn sortedness_and_permutation_helpers() {
        let mut records = generate(200, 11);
        assert!(is_permutation(&records, &records));
        records.sort();
        assert!(is_sorted(&records));
        let mut broken = records.clone();
        broken.swap(0, 199);
        assert!(!is_sorted(&broken));
        assert!(is_permutation(&records, &broken));
        assert!(!is_permutation(&records, &records[1..]));
    }
}
