//! The periodic balanced sorting network (Dowd, Perl, Rudolph & Saks),
//! used by Govindaraju et al.'s 2005 GPU sorter (`[GRM05]` in Section 2.2).
//!
//! The network consists of `log n` identical *periods*; each period has
//! `log n` steps, and in step `t` (1-based) every element is compared with
//! its mirror position inside its `n / 2^{t−1}`-sized block. `log² n` steps
//! and `O(n log² n)` work in total — the same asymptotics as the bitonic
//! network, with a particularly regular (and therefore GPU-friendly)
//! structure.

use crate::network::{run_network_padded, NetworkRun, Role};
use stream_arch::{Layout, Result, StreamProcessor, Value};

/// The periodic balanced sorting network baseline.
#[derive(Copy, Clone, Debug)]
pub struct PeriodicBalancedSort {
    layout: Layout,
}

impl Default for PeriodicBalancedSort {
    fn default() -> Self {
        PeriodicBalancedSort {
            layout: Layout::ZOrder,
        }
    }
}

impl PeriodicBalancedSort {
    /// Create the baseline with the cache-friendly Z-order layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of network steps for `n` (a power of two): `log² n`.
    pub fn passes_for(n: usize) -> usize {
        let log_n = n.trailing_zeros() as usize;
        log_n * log_n
    }

    /// Sort ascending on the given stream processor.
    pub fn sort(&self, proc: &mut StreamProcessor, values: &[Value]) -> Result<NetworkRun> {
        let n = values.len().next_power_of_two().max(2);
        let log_n = n.trailing_zeros() as usize;
        run_network_padded(
            proc,
            values,
            self.layout,
            Self::passes_for,
            move |pass, i| {
                let step = pass % log_n; // step within the current period
                balanced_role(n, step, i)
            },
        )
    }
}

/// The role of element `i` in step `step` (0-based) of one period of the
/// balanced merging network: compare with the mirror position within the
/// current block of size `n / 2^step`.
fn balanced_role(n: usize, step: usize, i: usize) -> Role {
    let block = n >> step;
    if block < 2 {
        return Role::Copy;
    }
    let base = (i / block) * block;
    let partner = base + (block - 1 - (i - base));
    if partner == i {
        return Role::Copy;
    }
    if i < partner {
        Role::KeepMin { partner }
    } else {
        Role::KeepMax { partner }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::default_processor;

    #[test]
    fn balanced_role_mirrors_within_blocks() {
        // n = 8, step 0: blocks of 8, mirror pairs (0,7) (1,6) (2,5) (3,4).
        assert_eq!(balanced_role(8, 0, 0), Role::KeepMin { partner: 7 });
        assert_eq!(balanced_role(8, 0, 7), Role::KeepMax { partner: 0 });
        assert_eq!(balanced_role(8, 0, 3), Role::KeepMin { partner: 4 });
        // Step 1: blocks of 4 → (0,3) (1,2) (4,7) (5,6).
        assert_eq!(balanced_role(8, 1, 5), Role::KeepMin { partner: 6 });
        // Step 2: blocks of 2 → adjacent pairs.
        assert_eq!(balanced_role(8, 2, 6), Role::KeepMin { partner: 7 });
    }

    #[test]
    fn sorts_random_inputs_of_various_sizes() {
        for &n in &[2usize, 4, 16, 100, 1000, 2048] {
            let input = workloads::uniform(n, n as u64);
            let mut proc = default_processor();
            let run = PeriodicBalancedSort::new().sort(&mut proc, &input).unwrap();
            let mut expected = input.clone();
            expected.sort();
            assert_eq!(run.output, expected, "n={n}");
        }
    }

    #[test]
    fn sorts_adversarial_inputs() {
        for dist in workloads::Distribution::all_for_data_dependence() {
            let input = workloads::generate(dist, 256, 9);
            let mut proc = default_processor();
            let run = PeriodicBalancedSort::new().sort(&mut proc, &input).unwrap();
            let mut expected = input.clone();
            expected.sort();
            assert_eq!(run.output, expected, "{}", dist.name());
        }
    }

    #[test]
    fn pass_count_is_log_squared() {
        assert_eq!(PeriodicBalancedSort::passes_for(1 << 10), 100);
        let n = 1024usize;
        let input = workloads::uniform(n, 2);
        let mut proc = default_processor();
        let run = PeriodicBalancedSort::new().sort(&mut proc, &input).unwrap();
        assert_eq!(run.passes, 100);
        // More steps than the bitonic network (log² n vs log n (log n+1)/2):
        // the paper's Section 2.2 ordering of the related GPU sorters.
        assert!(run.passes > crate::gpusort::GpuSortBaseline::passes_for(n));
    }
}
