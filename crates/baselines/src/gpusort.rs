//! GPUSort: the bitonic sorting network baseline (Govindaraju et al. 2005,
//! `[GRHM05]` in the paper).
//!
//! The paper's main GPU comparator is a cache-optimized implementation of
//! Batcher's bitonic sorting network: data independent, `log n (log n+1)/2`
//! network steps, `O(n log² n)` comparisons. We run the same network on the
//! stream simulator, one stream operation per step.
//!
//! **Substitution note.** The original GPUSort achieves its cache
//! efficiency with a row-wise layout split into `B×B` tiles processed
//! consecutively (footnote 1 of the paper). Our simulator's texture cache
//! rewards 2D-local access patterns the same way, but we expose the choice
//! of layout directly: the default [`GpuSortBaseline`] uses the Z-order
//! layout (cache-friendly, like the tiled original on its best-case
//! hardware), and [`GpuSortBaseline::row_wise`] models the untiled
//! worst case. This preserves what the comparison in Tables 2 and 3 is
//! about — network work versus adaptive work on the same machine — without
//! guessing the tile parameter the paper itself calls hard to choose.

use crate::network::{run_network_padded, NetworkRun, Role};
use stream_arch::{Layout, Result, StreamProcessor, Value};

/// The bitonic sorting network baseline ("GPUSort").
#[derive(Copy, Clone, Debug)]
pub struct GpuSortBaseline {
    layout: Layout,
}

impl Default for GpuSortBaseline {
    fn default() -> Self {
        GpuSortBaseline {
            layout: Layout::ZOrder,
        }
    }
}

impl GpuSortBaseline {
    /// The cache-optimized variant (Z-order layout).
    pub fn new() -> Self {
        Self::default()
    }

    /// The non-tiled, row-wise variant (used by the ablation experiments).
    pub fn row_wise(width: u32) -> Self {
        GpuSortBaseline {
            layout: Layout::RowMajor { width },
        }
    }

    /// Number of network steps for `n` (a power of two):
    /// `log n · (log n + 1) / 2`.
    pub fn passes_for(n: usize) -> usize {
        let log_n = n.trailing_zeros() as usize;
        log_n * (log_n + 1) / 2
    }

    /// Sort ascending on the given stream processor.
    pub fn sort(&self, proc: &mut StreamProcessor, values: &[Value]) -> Result<NetworkRun> {
        run_network_padded(proc, values, self.layout, Self::passes_for, |pass, i| {
            let n = values.len().next_power_of_two();
            bitonic_role(n, pass, i)
        })
    }
}

/// The (block, distance) pair of the `pass`-th step of the bitonic sorting
/// network for `n` elements: blocks double from 2 to n, and within each
/// block size the compare distance halves from `block/2` to 1.
fn pass_parameters(pass: usize) -> (usize, usize) {
    // Find k (1-based block exponent) such that pass falls into its group
    // of k steps: groups have sizes 1, 2, 3, …
    let mut k = 1usize;
    let mut consumed = 0usize;
    while consumed + k <= pass {
        consumed += k;
        k += 1;
    }
    let step_in_group = pass - consumed; // 0-based within the group
    let block = 1usize << k;
    let distance = block >> (1 + step_in_group);
    (block, distance)
}

/// The role of element `i` in the `pass`-th step of the bitonic sorting
/// network of size `n` (ascending overall).
fn bitonic_role(n: usize, pass: usize, i: usize) -> Role {
    let (block, distance) = pass_parameters(pass);
    debug_assert!(block <= n);
    let partner = i ^ distance;
    if partner >= n {
        return Role::Copy;
    }
    // The block's sort direction alternates so that pairs of sorted blocks
    // form bitonic sequences for the next block size.
    let ascending = (i & block) == 0;
    if (i < partner) == ascending {
        Role::KeepMin { partner }
    } else {
        Role::KeepMax { partner }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::default_processor;
    use workloads::Distribution;

    #[test]
    fn pass_parameters_follow_the_standard_schedule() {
        // n = 8: passes (block, distance) =
        // (2,1), (4,2), (4,1), (8,4), (8,2), (8,1)
        let expected = [(2, 1), (4, 2), (4, 1), (8, 4), (8, 2), (8, 1)];
        for (pass, &e) in expected.iter().enumerate() {
            assert_eq!(pass_parameters(pass), e, "pass {pass}");
        }
        assert_eq!(GpuSortBaseline::passes_for(8), 6);
        assert_eq!(GpuSortBaseline::passes_for(1 << 20), 210);
    }

    #[test]
    fn sorts_random_inputs_of_various_sizes() {
        for &n in &[2usize, 4, 16, 100, 1000, 4096] {
            let input = workloads::uniform(n, n as u64);
            let mut proc = default_processor();
            let run = GpuSortBaseline::new().sort(&mut proc, &input).unwrap();
            let mut expected = input.clone();
            expected.sort();
            assert_eq!(run.output, expected, "n={n}");
        }
    }

    #[test]
    fn sorts_adversarial_distributions() {
        for dist in Distribution::all_for_data_dependence() {
            let input = workloads::generate(dist, 512, 3);
            let mut proc = default_processor();
            let run = GpuSortBaseline::new().sort(&mut proc, &input).unwrap();
            let mut expected = input.clone();
            expected.sort();
            assert_eq!(run.output, expected, "{}", dist.name());
        }
    }

    #[test]
    fn work_is_n_log_squared_n() {
        let n = 4096usize;
        let input = workloads::uniform(n, 1);
        let mut proc = default_processor();
        let run = GpuSortBaseline::new().sort(&mut proc, &input).unwrap();
        let log_n = 12u64;
        // Every pass compares every element once (n/2 comparator pairs →
        // n per-element comparisons in our per-output-element counting).
        assert_eq!(run.passes as u64, log_n * (log_n + 1) / 2);
        assert_eq!(run.counters.comparisons, run.passes as u64 * n as u64);
    }

    #[test]
    fn comparison_count_is_data_independent() {
        let n = 2048;
        let mut counts = std::collections::HashSet::new();
        for dist in Distribution::all_for_data_dependence() {
            let input = workloads::generate(dist, n, 5);
            let mut proc = default_processor();
            let run = GpuSortBaseline::new().sort(&mut proc, &input).unwrap();
            counts.insert(run.counters.comparisons);
        }
        assert_eq!(counts.len(), 1);
    }

    #[test]
    fn row_wise_variant_sorts_but_reads_more_memory() {
        // Large enough that the working set exceeds the simulated texture
        // cache, so the layout difference shows up in the read traffic.
        let n = 1 << 16;
        let input = workloads::uniform(n, 9);
        let mut proc = default_processor();
        let z = GpuSortBaseline::new().sort(&mut proc, &input).unwrap();
        let mut proc = default_processor();
        let row = GpuSortBaseline::row_wise(2048)
            .sort(&mut proc, &input)
            .unwrap();
        assert_eq!(z.output, row.output);
        assert!(z.counters.bytes_read <= row.counters.bytes_read);
    }
}
