//! The sequential CPU baseline: an introsort-style quicksort standing in
//! for "the C++ STL sort function (an optimized quick sort
//! implementation)" the paper measures on an AMD Athlon-XP 3000+ (Table 2)
//! and an Athlon-64 4200+ (Table 3).
//!
//! Two artefacts matter for the reproduction:
//!
//! 1. the *algorithm* — quicksort with median-of-three pivoting, insertion
//!    sort for small ranges and a heapsort depth fallback, so that the
//!    comparison count (and therefore the running time) is data dependent,
//!    which is what produces the timing ranges ("530 – 716 ms") of the
//!    paper's tables;
//! 2. the *time model* — [`CpuSortModel`] converts a measured comparison
//!    count into milliseconds on the paper's CPUs, calibrated so that a
//!    uniform-random 2²⁰-pair sort lands inside the paper's reported
//!    bracket.

use stream_arch::Value;

/// Statistics of one CPU sort run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CpuSortStats {
    /// Key comparisons performed.
    pub comparisons: u64,
    /// Element moves (swaps and insertion shifts).
    pub moves: u64,
    /// Number of heapsort fallbacks taken (0 for well-behaved inputs).
    pub heapsort_fallbacks: u64,
}

/// The sequential quicksort baseline.
#[derive(Copy, Clone, Debug, Default)]
pub struct CpuSorter;

const INSERTION_THRESHOLD: usize = 16;

impl CpuSorter {
    /// Sort ascending, returning the sorted copy and the operation counts.
    pub fn sort(&self, values: &[Value]) -> (Vec<Value>, CpuSortStats) {
        let mut data = values.to_vec();
        let mut stats = CpuSortStats::default();
        if data.len() > 1 {
            let depth_limit = 2 * (usize::BITS - data.len().leading_zeros());
            introsort(&mut data, depth_limit, &mut stats);
        }
        (data, stats)
    }

    /// Sort a slice in place (no statistics).
    pub fn sort_in_place(&self, values: &mut [Value]) {
        let mut stats = CpuSortStats::default();
        if values.len() > 1 {
            let depth_limit = 2 * (usize::BITS - values.len().leading_zeros());
            introsort(values, depth_limit, &mut stats);
        }
    }
}

fn introsort(data: &mut [Value], depth_limit: u32, stats: &mut CpuSortStats) {
    if data.len() <= INSERTION_THRESHOLD {
        insertion_sort(data, stats);
        return;
    }
    if depth_limit == 0 {
        heapsort(data, stats);
        stats.heapsort_fallbacks += 1;
        return;
    }
    let pivot_index = partition(data, stats);
    let (lo, hi) = data.split_at_mut(pivot_index);
    introsort(lo, depth_limit - 1, stats);
    introsort(&mut hi[1..], depth_limit - 1, stats);
}

/// Median-of-three pivot selection followed by Hoare-style partitioning
/// around the chosen pivot (placed at the end during the scan).
fn partition(data: &mut [Value], stats: &mut CpuSortStats) -> usize {
    let len = data.len();
    let mid = len / 2;
    // Median of three: order data[0], data[mid], data[len-1].
    stats.comparisons += 3;
    if data[mid] < data[0] {
        data.swap(mid, 0);
        stats.moves += 1;
    }
    if data[len - 1] < data[0] {
        data.swap(len - 1, 0);
        stats.moves += 1;
    }
    if data[len - 1] < data[mid] {
        data.swap(len - 1, mid);
        stats.moves += 1;
    }
    // Use the median (now at mid) as pivot; park it just before the end.
    data.swap(mid, len - 2);
    stats.moves += 1;
    let pivot = data[len - 2];

    let mut i = 0usize;
    for j in 0..len - 2 {
        stats.comparisons += 1;
        if data[j] < pivot {
            data.swap(i, j);
            stats.moves += 1;
            i += 1;
        }
    }
    data.swap(i, len - 2);
    stats.moves += 1;
    i
}

fn insertion_sort(data: &mut [Value], stats: &mut CpuSortStats) {
    for i in 1..data.len() {
        let v = data[i];
        let mut j = i;
        while j > 0 {
            stats.comparisons += 1;
            if data[j - 1] > v {
                data[j] = data[j - 1];
                stats.moves += 1;
                j -= 1;
            } else {
                break;
            }
        }
        data[j] = v;
    }
}

fn heapsort(data: &mut [Value], stats: &mut CpuSortStats) {
    let n = data.len();
    for start in (0..n / 2).rev() {
        sift_down(data, start, n, stats);
    }
    for end in (1..n).rev() {
        data.swap(0, end);
        stats.moves += 1;
        sift_down(data, 0, end, stats);
    }
}

fn sift_down(data: &mut [Value], mut root: usize, end: usize, stats: &mut CpuSortStats) {
    loop {
        let mut child = 2 * root + 1;
        if child >= end {
            return;
        }
        if child + 1 < end {
            stats.comparisons += 1;
            if data[child] < data[child + 1] {
                child += 1;
            }
        }
        stats.comparisons += 1;
        if data[root] < data[child] {
            data.swap(root, child);
            stats.moves += 1;
            root = child;
        } else {
            return;
        }
    }
}

/// Converts CPU-sort operation counts into milliseconds on the paper's CPU
/// systems.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CpuSortModel {
    /// Name of the modelled CPU.
    pub name: &'static str,
    /// Cost of one comparison (including the associated bookkeeping and
    /// average memory behaviour) in nanoseconds.
    pub ns_per_comparison: f64,
    /// Cost of one element move in nanoseconds.
    pub ns_per_move: f64,
}

impl CpuSortModel {
    /// The Table 2 system: AMD Athlon-XP 3000+. Calibrated so that sorting
    /// 2²⁰ uniform-random value/pointer pairs lands inside the paper's
    /// 530 – 716 ms bracket.
    pub fn athlon_xp_3000() -> Self {
        CpuSortModel {
            name: "Athlon-XP 3000+ (simulated)",
            ns_per_comparison: 22.0,
            ns_per_move: 8.0,
        }
    }

    /// The Table 3 system: AMD Athlon-64 4200+. Calibrated against the
    /// paper's 418 – 477 ms bracket for 2²⁰ pairs.
    pub fn athlon_64_4200() -> Self {
        CpuSortModel {
            name: "Athlon-64 4200+ (simulated)",
            ns_per_comparison: 16.0,
            ns_per_move: 6.0,
        }
    }

    /// Simulated running time in milliseconds for the given statistics.
    pub fn time_ms(&self, stats: &CpuSortStats) -> f64 {
        (stats.comparisons as f64 * self.ns_per_comparison + stats.moves as f64 * self.ns_per_move)
            / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Distribution;

    fn check(values: &[Value]) -> CpuSortStats {
        let (out, stats) = CpuSorter.sort(values);
        let mut expected = values.to_vec();
        expected.sort();
        assert_eq!(out, expected);
        stats
    }

    #[test]
    fn sorts_random_inputs() {
        for &n in &[0usize, 1, 2, 15, 16, 17, 100, 1000, 65536] {
            check(&workloads::uniform(n, n as u64));
        }
    }

    #[test]
    fn sorts_adversarial_inputs() {
        for dist in [
            Distribution::Sorted,
            Distribution::Reverse,
            Distribution::Constant,
            Distribution::FewDistinct { distinct: 3 },
            Distribution::OrganPipe,
            Distribution::NearlySorted { swaps: 10 },
        ] {
            check(&workloads::generate(dist, 4000, 1));
        }
    }

    #[test]
    fn in_place_matches_copying_sort() {
        let input = workloads::uniform(1000, 3);
        let (copy, _) = CpuSorter.sort(&input);
        let mut in_place = input.clone();
        CpuSorter.sort_in_place(&mut in_place);
        assert_eq!(copy, in_place);
    }

    #[test]
    fn comparison_count_is_data_dependent() {
        // This data dependence is what creates the CPU timing ranges of
        // Tables 2 and 3.
        let n = 1 << 14;
        let uniform = check(&workloads::uniform(n, 7));
        let sorted = check(&workloads::generate(Distribution::Sorted, n, 7));
        let few = check(&workloads::generate(
            Distribution::FewDistinct { distinct: 4 },
            n,
            7,
        ));
        assert_ne!(uniform.comparisons, sorted.comparisons);
        assert_ne!(uniform.comparisons, few.comparisons);
    }

    #[test]
    fn comparison_count_is_n_log_n_ish_for_uniform_input() {
        let n = 1usize << 16;
        let stats = check(&workloads::uniform(n, 5));
        let n_log_n = (n as f64) * (n as f64).log2();
        let ratio = stats.comparisons as f64 / n_log_n;
        assert!((0.8..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn time_model_reproduces_the_paper_brackets() {
        // Sorting 2^20 uniform pairs: 530 – 716 ms on the Athlon-XP system
        // (Table 2), 418 – 477 ms on the Athlon-64 system (Table 3). Allow
        // a generous band around the brackets — the shape experiments only
        // need the right magnitude and ordering.
        let n = 1usize << 20;
        let (_, stats) = CpuSorter.sort(&workloads::uniform(n, 11));
        let xp = CpuSortModel::athlon_xp_3000().time_ms(&stats);
        let a64 = CpuSortModel::athlon_64_4200().time_ms(&stats);
        assert!((450.0..850.0).contains(&xp), "Athlon-XP model: {xp:.0} ms");
        assert!(
            (330.0..600.0).contains(&a64),
            "Athlon-64 model: {a64:.0} ms"
        );
        assert!(a64 < xp);
    }

    #[test]
    fn heapsort_fallback_keeps_quadratic_inputs_fast() {
        // A constant input repeatedly picks equal pivots; the depth limit
        // must keep the sort from going quadratic.
        let n = 1 << 14;
        let stats = check(&workloads::generate(Distribution::Constant, n, 0));
        assert!(stats.comparisons < 40 * (n as u64) * 14);
    }
}
