//! # baselines — the comparison sorters of the GPU-ABiSort evaluation
//!
//! The paper compares GPU-ABiSort against two baselines (Section 8):
//!
//! * **CPU sort** — "the C++ STL sort function (an optimized quick sort
//!   implementation)" running sequentially on the host CPU. [`cpu`]
//!   provides an introsort-style quicksort plus a calibrated time model for
//!   the paper's Athlon-XP and Athlon-64 systems, so the data-dependent
//!   timing *ranges* of Tables 2 and 3 can be reproduced.
//! * **GPUSort** — Govindaraju et al.'s cache-efficient bitonic sorting
//!   network. [`gpusort`] implements the bitonic sorting network on the
//!   same [`stream_arch`] simulator GPU-ABiSort runs on, which preserves
//!   the comparison the paper makes: `O(n log² n)` network work versus
//!   `O(n log n)` adaptive work on the same machine.
//!
//! Two further related-work comparators are included for the
//! work-complexity experiments: Batcher's odd-even merge sort network
//! ([`oems`], the Kipfer et al. GPU sorter) and the periodic balanced
//! sorting network ([`pbsn`], the Govindaraju et al. 2005 sorter).
//!
//! All stream-architecture baselines share the per-pass compare-exchange
//! executor in [`network`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cpu;
pub mod gpusort;
pub mod network;
pub mod oems;
pub mod pbsn;

pub use cpu::{CpuSortModel, CpuSorter};
pub use gpusort::GpuSortBaseline;
pub use network::NetworkRun;
pub use oems::OddEvenMergeSort;
pub use pbsn::PeriodicBalancedSort;
