//! Batcher's odd-even merge sort network (the Kipfer et al. `[KSW04]` /
//! `[KW05]` GPU sorter cited in Section 2.2).
//!
//! Like the bitonic network it is data independent with
//! `log n (log n + 1)/2` steps and `O(n log² n)` work, but it uses slightly
//! fewer comparators per step. It serves as an additional point in the
//! work-complexity experiment (E13).

use crate::network::{run_network_padded, NetworkRun, Role};
use stream_arch::{Layout, Result, StreamProcessor, Value};

/// The odd-even merge sort network baseline.
#[derive(Copy, Clone, Debug)]
pub struct OddEvenMergeSort {
    layout: Layout,
}

impl Default for OddEvenMergeSort {
    fn default() -> Self {
        OddEvenMergeSort {
            layout: Layout::ZOrder,
        }
    }
}

impl OddEvenMergeSort {
    /// Create the baseline with the cache-friendly Z-order layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of network steps for `n` (a power of two).
    pub fn passes_for(n: usize) -> usize {
        let log_n = n.trailing_zeros() as usize;
        log_n * (log_n + 1) / 2
    }

    /// Sort ascending on the given stream processor.
    pub fn sort(&self, proc: &mut StreamProcessor, values: &[Value]) -> Result<NetworkRun> {
        let n = values.len().next_power_of_two().max(2);
        run_network_padded(
            proc,
            values,
            self.layout,
            Self::passes_for,
            move |pass, i| odd_even_role(n, pass, i),
        )
    }
}

/// The (p, k) parameters of the `pass`-th step: `p` doubles from 1 to n/2,
/// and for each `p`, `k` halves from `p` down to 1.
fn pass_parameters(pass: usize) -> (usize, usize) {
    let mut group = 1usize; // group index ⇒ p = 2^(group−1), group has `group` steps
    let mut consumed = 0usize;
    while consumed + group <= pass {
        consumed += group;
        group += 1;
    }
    let p = 1usize << (group - 1);
    let k = p >> (pass - consumed);
    (p, k)
}

/// The role of element `i` in the `pass`-th step of Batcher's odd-even
/// merge sort of `n` elements (classic iterative formulation: for each
/// `(p, k)`, compare-exchange `(x, x + k)` for all `x` whose offset within
/// a `2k` window lies in `[k mod p, k mod p + k)` and whose partner lies in
/// the same `2p`-aligned block).
fn odd_even_role(n: usize, pass: usize, i: usize) -> Role {
    let (p, k) = pass_parameters(pass);
    let j0 = k % p;
    let window = 2 * k;
    let offset = i % window;

    let is_lower = offset >= j0 && offset < j0 + k;
    if is_lower {
        let partner = i + k;
        if partner < n && i / (2 * p) == partner / (2 * p) {
            return Role::KeepMin { partner };
        }
        return Role::Copy;
    }
    // Upper end of a comparator?
    if i >= k {
        let lower = i - k;
        let lower_offset = lower % window;
        if lower_offset >= j0 && lower_offset < j0 + k && lower / (2 * p) == i / (2 * p) {
            return Role::KeepMax { partner: lower };
        }
    }
    Role::Copy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::default_processor;

    /// Reference implementation: run the classic triple loop directly on a
    /// host array.
    fn reference_sort(values: &[Value]) -> Vec<Value> {
        let n = values.len();
        let mut a = values.to_vec();
        let mut p = 1;
        while p < n {
            let mut k = p;
            while k >= 1 {
                let j0 = k % p;
                let mut j = j0;
                while j + k < n {
                    for i in 0..k {
                        let x = i + j;
                        let y = i + j + k;
                        if y < n && x / (2 * p) == y / (2 * p) && a[x] > a[y] {
                            a.swap(x, y);
                        }
                    }
                    j += 2 * k;
                }
                k /= 2;
            }
            p *= 2;
        }
        a
    }

    #[test]
    fn pass_parameters_enumerate_p_and_k() {
        // n = 8: (1,1), (2,2), (2,1), (4,4), (4,2), (4,1)
        let expected = [(1, 1), (2, 2), (2, 1), (4, 4), (4, 2), (4, 1)];
        for (pass, &e) in expected.iter().enumerate() {
            assert_eq!(pass_parameters(pass), e, "pass {pass}");
        }
    }

    #[test]
    fn reference_implementation_sorts() {
        for &n in &[2usize, 8, 16, 64, 256] {
            let input = workloads::uniform(n, n as u64);
            let mut expected = input.clone();
            expected.sort();
            assert_eq!(reference_sort(&input), expected, "n={n}");
        }
    }

    #[test]
    fn stream_network_matches_reference_and_std_sort() {
        for &n in &[2usize, 4, 16, 128, 1024] {
            let input = workloads::uniform(n, 3 + n as u64);
            let mut proc = default_processor();
            let run = OddEvenMergeSort::new().sort(&mut proc, &input).unwrap();
            let mut expected = input.clone();
            expected.sort();
            assert_eq!(run.output, expected, "n={n}");
            assert_eq!(run.output, reference_sort(&input), "n={n}");
        }
    }

    #[test]
    fn sorts_non_power_of_two_lengths() {
        for &n in &[3usize, 100, 777] {
            let input = workloads::uniform(n, n as u64);
            let mut proc = default_processor();
            let run = OddEvenMergeSort::new().sort(&mut proc, &input).unwrap();
            let mut expected = input.clone();
            expected.sort();
            assert_eq!(run.output, expected, "n={n}");
        }
    }

    #[test]
    fn uses_fewer_comparisons_than_the_bitonic_network() {
        let n = 2048;
        let input = workloads::uniform(n, 1);
        let mut proc = default_processor();
        let oems = OddEvenMergeSort::new().sort(&mut proc, &input).unwrap();
        let mut proc = default_processor();
        let bitonic = crate::gpusort::GpuSortBaseline::new()
            .sort(&mut proc, &input)
            .unwrap();
        assert_eq!(oems.passes, bitonic.passes);
        assert!(oems.counters.comparisons < bitonic.counters.comparisons);
    }
}
