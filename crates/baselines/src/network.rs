//! Shared infrastructure for sorting-network baselines on the stream
//! simulator.
//!
//! A comparator network is executed as one stream operation per network
//! *step* (the way every GPU sorting-network implementation the paper cites
//! works, e.g. Purcell et al. 2003, Kipfer et al. 2004, Govindaraju et al.
//! 2005): each kernel instance owns one output element, reads its own
//! element linearly, gathers its comparator partner, and writes the minimum
//! or maximum depending on its role in the compare-exchange. The element
//! streams are ping-ponged because input and output must be distinct
//! (Section 6.1).
//!
//! Because sorting networks are data independent, the pass structure is a
//! pure function of the element index — [`run_network`] takes that function
//! and handles the ping-pong, cost accounting and result read-back.

use stream_arch::{
    Counters, GatherView, GpuProfile, Layout, ReadView, Result, SimTime, Stream, StreamProcessor,
    Value, WriteView,
};

/// The role of one element in one network step.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Role {
    /// Compare with `partner` and keep the minimum.
    KeepMin {
        /// The comparator partner's element index.
        partner: usize,
    },
    /// Compare with `partner` and keep the maximum.
    KeepMax {
        /// The comparator partner's element index.
        partner: usize,
    },
    /// Not part of any comparator in this step; copy the element through.
    Copy,
}

/// Result of running a sorting network on the stream simulator.
#[derive(Clone, Debug)]
pub struct NetworkRun {
    /// The sorted output.
    pub output: Vec<Value>,
    /// Event counters of the run.
    pub counters: Counters,
    /// Simulated running time under the processor's profile.
    pub sim_time: SimTime,
    /// Host wall-clock time of the run.
    pub wall_time: std::time::Duration,
    /// Number of network steps (stream operations) executed.
    pub passes: usize,
}

/// Execute a comparator network described by `role(pass, element) -> Role`
/// over `passes` steps.
///
/// The input length must be a power of two (all the networks implemented
/// here are defined for power-of-two sizes; callers pad like the paper's
/// GPU implementations do).
pub fn run_network<F>(
    proc: &mut StreamProcessor,
    values: &[Value],
    layout: Layout,
    passes: usize,
    role: F,
) -> Result<NetworkRun>
where
    F: Fn(usize, usize) -> Role + Sync,
{
    let started = std::time::Instant::now();
    proc.reset();
    let n = values.len();
    assert!(
        n.is_power_of_two(),
        "network sorters require a power-of-two length"
    );
    proc.check_stream_size::<Value>(n)?;

    let mut current = Stream::from_vec("network-a", values.to_vec(), layout);
    let mut next: Stream<Value> = Stream::new("network-b", n, layout);

    for pass in 0..passes {
        {
            proc.check_distinct_io(
                &[(current.id(), current.name())],
                &[(next.id(), next.name())],
            )?;
            let own = ReadView::contiguous(&current, 0, n, 1)?;
            let gather = GatherView::new(&current);
            let out = WriteView::contiguous(&mut next, 0, n, 1)?;
            let role = &role;
            proc.launch("network-pass", n, |ctx| {
                let i = ctx.instance_index();
                let mine = own.get(ctx, 0);
                let result = match role(pass, i) {
                    Role::Copy => mine,
                    Role::KeepMin { partner } => {
                        let other = gather.gather(ctx, partner);
                        ctx.count_comparisons(1);
                        if other < mine {
                            other
                        } else {
                            mine
                        }
                    }
                    Role::KeepMax { partner } => {
                        let other = gather.gather(ctx, partner);
                        ctx.count_comparisons(1);
                        if other > mine {
                            other
                        } else {
                            mine
                        }
                    }
                };
                out.set(ctx, 0, result);
            })?;
        }
        proc.record_step();
        std::mem::swap(&mut current, &mut next);
    }

    Ok(NetworkRun {
        output: current.as_slice().to_vec(),
        counters: proc.counters(),
        sim_time: proc.simulated_time(),
        wall_time: started.elapsed(),
        passes,
    })
}

/// Pad to a power of two with maximum-key sentinels, run the network, and cut the
/// sentinels off again. Used by the public sorter types.
pub fn run_network_padded<F>(
    proc: &mut StreamProcessor,
    values: &[Value],
    layout: Layout,
    passes_for: impl Fn(usize) -> usize,
    role: F,
) -> Result<NetworkRun>
where
    F: Fn(usize, usize) -> Role + Sync,
{
    let original = values.len();
    if original <= 1 {
        proc.reset();
        return Ok(NetworkRun {
            output: values.to_vec(),
            counters: proc.counters(),
            sim_time: proc.simulated_time(),
            wall_time: std::time::Duration::ZERO,
            passes: 0,
        });
    }
    let n = original.next_power_of_two();
    let mut padded = values.to_vec();
    for i in 0..(n - original) {
        padded.push(Value::padding_sentinel(i));
    }
    let mut run = run_network(proc, &padded, layout, passes_for(n), role)?;
    run.output.truncate(original);
    Ok(run)
}

/// Convenience: a processor with the default GeForce 7800 profile, used by
/// doc examples and tests.
pub fn default_processor() -> StreamProcessor {
    StreamProcessor::new(GpuProfile::geforce_7800())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial "network": one pass of adjacent compare-exchanges.
    fn adjacent_role(_pass: usize, i: usize) -> Role {
        if i.is_multiple_of(2) {
            Role::KeepMin { partner: i + 1 }
        } else {
            Role::KeepMax { partner: i - 1 }
        }
    }

    #[test]
    fn single_pass_compare_exchange_works() {
        let input = vec![
            Value::new(4.0, 0),
            Value::new(1.0, 1),
            Value::new(2.0, 2),
            Value::new(3.0, 3),
        ];
        let mut proc = default_processor();
        let run = run_network(&mut proc, &input, Layout::Linear, 1, adjacent_role).unwrap();
        let keys: Vec<f32> = run.output.iter().map(|v| v.key).collect();
        assert_eq!(keys, vec![1.0, 4.0, 2.0, 3.0]);
        assert_eq!(run.passes, 1);
        assert_eq!(run.counters.launches, 1);
        assert_eq!(run.counters.kernel_instances, 4);
        assert_eq!(run.counters.comparisons, 4);
    }

    #[test]
    fn copy_role_passes_elements_through() {
        let input = workloads::uniform(8, 1);
        let mut proc = default_processor();
        let run = run_network(&mut proc, &input, Layout::Linear, 3, |_, _| Role::Copy).unwrap();
        assert_eq!(run.output, input);
        assert_eq!(run.counters.comparisons, 0);
        assert_eq!(run.counters.launches, 3);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_is_rejected_by_the_core_runner() {
        let input = workloads::uniform(6, 0);
        let mut proc = default_processor();
        let _ = run_network(&mut proc, &input, Layout::Linear, 1, adjacent_role);
    }

    #[test]
    fn padded_runner_handles_arbitrary_lengths_and_tiny_inputs() {
        let input = workloads::uniform(5, 2);
        let mut proc = default_processor();
        let run =
            run_network_padded(&mut proc, &input, Layout::Linear, |_| 1, adjacent_role).unwrap();
        assert_eq!(run.output.len(), 5);

        let single = vec![Value::new(1.0, 0)];
        let run =
            run_network_padded(&mut proc, &single, Layout::Linear, |_| 1, adjacent_role).unwrap();
        assert_eq!(run.output, single);
        assert_eq!(run.passes, 0);
    }
}
