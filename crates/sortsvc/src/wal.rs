//! # `sortsvc::wal` — append-only, checksummed write-ahead job log
//!
//! The service's admission queue, tenant queues and coalescer batches are
//! purely in-memory: a crash loses every queued and in-flight job. This
//! module makes admission durable. Every admitted job is appended to an
//! on-disk log *before* it is enqueued, and every delivered outcome
//! (result or typed reject) is appended *after* the reply is sent, so a
//! restarted server can replay exactly the jobs that were admitted but
//! never answered.
//!
//! The record format deliberately reuses the codec discipline of
//! [`crate::net::frame`]: magic bytes, an explicit version, a strict-zero
//! reserved word, a length prefix — plus one thing frames do not need, a
//! CRC-32 over the payload, because a log tail (unlike a TCP stream) can
//! be torn mid-record by a crash. Each record is
//!
//! ```text
//! offset  size  field
//!      0     4  magic "ABWL"
//!      4     1  version (1)
//!      5     1  record type (1 = ADMITTED, 2 = COMPLETED, 3 = REJECTED)
//!      6     2  reserved, must be zero (u16 LE)
//!      8     4  payload length (u32 LE)
//!     12     4  CRC-32 (IEEE) of the payload (u32 LE)
//!     16     —  payload
//! ```
//!
//! The log is a directory of segments `wal-00000000.log`,
//! `wal-00000001.log`, … — appends go to the highest-numbered segment and
//! roll over at [`WalConfig::segment_max_bytes`]. Because acknowledgements
//! are appended after their admissions, a prefix of sealed segments whose
//! admitted jobs have all been acknowledged carries no recoverable state
//! and is deleted (compaction). Recovery tolerates the acknowledgement
//! records such a deletion strands in later segments: an ack for an
//! unknown job id is skipped, never an error.
//!
//! Crash consistency (see `docs/DURABILITY.md` for the full state
//! machine): on [`Wal::open`], every segment is scanned in order and
//! verified record by record. A parse failure in the *last* segment is a
//! torn tail — the file is physically truncated at the failure offset and
//! the prefix before it is replayed. A parse failure in any earlier
//! segment is real corruption and surfaces as a typed
//! [`WalError::Corrupt`]; nothing is ever replayed from a record whose
//! checksum does not match.
//!
//! ```
//! use sortsvc::wal::{AdmittedJob, Wal, WalConfig};
//!
//! let dir = std::env::temp_dir().join(format!("wal-doc-{}", std::process::id()));
//! let mut wal = Wal::open(&dir, WalConfig::default())?.wal;
//! wal.append_admitted(&AdmittedJob {
//!     job_id: 1,
//!     tenant: 0,
//!     arrival_ms: 0.0,
//!     hint: None,
//!     values: workloads::uniform(16, 7),
//! })?;
//! drop(wal);
//!
//! // A reopen replays the admitted-but-unacknowledged job.
//! let recovery = Wal::open(&dir, WalConfig::default())?;
//! assert_eq!(recovery.pending.len(), 1);
//! assert_eq!(recovery.stats.recovered_jobs, 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), sortsvc::wal::WalError>(())
//! ```

use crate::job::{JobId, RejectReason, TenantId};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::path::{Path, PathBuf};
use stream_arch::Value;
use workloads::Distribution;

pub mod fault;

/// Magic bytes opening every WAL record.
pub const WAL_MAGIC: [u8; 4] = *b"ABWL";

/// Version byte of the record format this module writes and accepts.
pub const WAL_VERSION: u8 = 1;

/// Fixed size of the record header preceding every payload.
pub const RECORD_HEADER_LEN: usize = 16;

/// Upper bound on a record payload (matches the frame layer's default
/// frame cap); a length prefix beyond this is treated as corruption.
pub const MAX_PAYLOAD_LEN: usize = 64 << 20;

const TYPE_ADMITTED: u8 = 1;
const TYPE_COMPLETED: u8 = 2;
const TYPE_REJECTED: u8 = 3;

const REASON_QUEUE_FULL: u8 = 1;
const REASON_MEMORY_PRESSURE: u8 = 2;

/// Bytes per value/pointer record in an `ADMITTED` payload (f32 key
/// bits then u32 id, both little-endian — the same raw coding as the
/// wire's `RAW_LE`).
const VALUE_LEN: usize = 8;

/// Fixed prefix of an `ADMITTED` payload before the hint name and values:
/// job id (8) + tenant (4) + arrival-time bits (8) + hint length (1).
const ADMIT_PREFIX_LEN: usize = 21;

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

/// IEEE CRC-32 lookup tables (reflected polynomial `0xEDB8_8320`), built
/// at compile time — the build has no crates.io access, so the checksum is
/// hand-rolled here. Eight tables, not one: the append path checksums
/// every job's payload, so the WAL uses the slice-by-8 formulation
/// (process 8 input bytes per iteration through 8 precomputed tables)
/// instead of the byte-at-a-time loop, which is what keeps the durability
/// overhead inside its E23 budget. Table 0 alone is the classic
/// byte-at-a-time table; table `t` maps a byte to its CRC contribution
/// from `t` positions further back.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
};

/// IEEE CRC-32 of `bytes` — the checksum carried in every record header.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// A job admission as recorded in — and recovered from — the log: the
/// full input needed to re-run the job after a crash.
#[derive(Clone, Debug, PartialEq)]
pub struct AdmittedJob {
    /// Log-wide unique id of the admission (the server assigns these from
    /// a global counter; wire echo ids are only per-connection unique).
    pub job_id: JobId,
    /// The submitting tenant.
    pub tenant: TenantId,
    /// Simulated arrival time of the job in milliseconds.
    pub arrival_ms: f64,
    /// Optional distribution hint, persisted by its stable
    /// [`Distribution::name`] and re-parsed on replay.
    pub hint: Option<Distribution>,
    /// The records to sort.
    pub values: Vec<Value>,
}

/// One event in the log.
#[derive(Clone, Debug, PartialEq)]
pub enum WalEvent {
    /// A job passed admission and is about to be enqueued.
    Admitted(AdmittedJob),
    /// The job's result was delivered to the client.
    Completed {
        /// The acknowledged job's log-wide id.
        job_id: JobId,
    },
    /// The job was turned away with a typed reject after admission (the
    /// service-level backpressure path; wire-level rejects never reach
    /// the log because nothing was admitted).
    Rejected {
        /// The rejected job's log-wide id.
        job_id: JobId,
        /// Why the service rejected it.
        reason: RejectReason,
    },
}

impl WalEvent {
    /// The log-wide job id the event is about.
    pub fn job_id(&self) -> JobId {
        match self {
            WalEvent::Admitted(job) => job.job_id,
            WalEvent::Completed { job_id } | WalEvent::Rejected { job_id, .. } => *job_id,
        }
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed failure of a WAL operation.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A record in a *sealed* (non-last) segment failed verification.
    /// Unlike a torn tail this cannot be explained by a crash mid-append,
    /// so it is surfaced instead of silently truncated.
    Corrupt {
        /// Index of the corrupt segment.
        segment: u64,
        /// Byte offset of the first bad record within the segment.
        offset: u64,
        /// Human-readable description of the verification failure.
        reason: String,
    },
    /// An armed [`fault::FaultPlan`] fired in [`fault::FaultMode::Stop`]
    /// mode — the in-process simulated crash used by the recovery tests.
    Injected(fault::FaultPoint),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal I/O error: {e}"),
            WalError::Corrupt {
                segment,
                offset,
                reason,
            } => write!(
                f,
                "wal segment {segment} corrupt at offset {offset}: {reason}"
            ),
            WalError::Injected(point) => write!(f, "injected crash fault at {}", point.name()),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// When the log file is fsynced.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append. Power-loss durable per record; far too
    /// slow for the hot path (a device sync per job).
    Always,
    /// fsync when a segment seals at rotation, on [`Wal::sync`] (the
    /// server calls it on graceful drain), and after a torn-tail
    /// truncation. Appends between those points survive a process crash
    /// (`kill -9` — the page cache is the kernel's) but not a power
    /// loss. The default, and what keeps WAL overhead inside the E23
    /// budget.
    OnRotate,
}

/// Configuration of a [`Wal`].
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Rotate to a new segment once the current one would exceed this
    /// many bytes (default 4 MiB).
    pub segment_max_bytes: u64,
    /// The fsync policy (default [`FsyncPolicy::OnRotate`]).
    pub fsync: FsyncPolicy,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_max_bytes: 4 << 20,
            fsync: FsyncPolicy::OnRotate,
        }
    }
}

// ---------------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------------

/// Encode one event as a complete record (header + payload).
pub fn encode_event(event: &WalEvent) -> Vec<u8> {
    let mut out = Vec::new();
    encode_event_into(&mut out, event);
    out
}

/// Encode one event as a complete record into `out` (cleared first). The
/// append path reuses one scratch buffer through this, so a hot append
/// touches the payload bytes exactly once (encode) plus the checksum pass
/// — no per-record allocation, no intermediate payload copy.
pub fn encode_event_into(out: &mut Vec<u8>, event: &WalEvent) {
    out.clear();
    let kind = match event {
        WalEvent::Admitted(_) => TYPE_ADMITTED,
        WalEvent::Completed { .. } => TYPE_COMPLETED,
        WalEvent::Rejected { .. } => TYPE_REJECTED,
    };
    out.extend_from_slice(&WAL_MAGIC);
    out.push(WAL_VERSION);
    out.push(kind);
    out.extend_from_slice(&0u16.to_le_bytes());
    // Payload length and CRC are patched in once the payload is encoded.
    out.extend_from_slice(&[0u8; 8]);
    match event {
        WalEvent::Admitted(job) => {
            let hint_name = job.hint.as_ref().map(|h| h.name()).unwrap_or_default();
            debug_assert!(hint_name.len() <= u8::MAX as usize);
            out.reserve(ADMIT_PREFIX_LEN + hint_name.len() + job.values.len() * VALUE_LEN);
            out.extend_from_slice(&job.job_id.to_le_bytes());
            out.extend_from_slice(&job.tenant.to_le_bytes());
            out.extend_from_slice(&job.arrival_ms.to_bits().to_le_bytes());
            out.push(hint_name.len() as u8);
            out.extend_from_slice(hint_name.as_bytes());
            for v in &job.values {
                let mut pair = [0u8; VALUE_LEN];
                pair[..4].copy_from_slice(&v.key.to_bits().to_le_bytes());
                pair[4..].copy_from_slice(&v.id.to_le_bytes());
                out.extend_from_slice(&pair);
            }
        }
        WalEvent::Completed { job_id } => out.extend_from_slice(&job_id.to_le_bytes()),
        WalEvent::Rejected { job_id, reason } => {
            out.extend_from_slice(&job_id.to_le_bytes());
            out.push(match reason {
                RejectReason::QueueFull => REASON_QUEUE_FULL,
                RejectReason::MemoryPressure => REASON_MEMORY_PRESSURE,
            });
        }
    }
    let payload_len = (out.len() - RECORD_HEADER_LEN) as u32;
    out[8..12].copy_from_slice(&payload_len.to_le_bytes());
    let crc = crc32(&out[RECORD_HEADER_LEN..]);
    out[12..16].copy_from_slice(&crc.to_le_bytes());
}

/// Parse the record at the start of `bytes`. Returns the event and the
/// total record length, or a description of why the bytes are not a valid
/// record (the caller decides whether that means a torn tail or real
/// corruption).
fn parse_record(bytes: &[u8]) -> Result<(WalEvent, usize), String> {
    if bytes.len() < RECORD_HEADER_LEN {
        return Err(format!(
            "truncated header ({} of {RECORD_HEADER_LEN} bytes)",
            bytes.len()
        ));
    }
    if bytes[0..4] != WAL_MAGIC {
        return Err(format!("bad magic {:02x?}", &bytes[0..4]));
    }
    if bytes[4] != WAL_VERSION {
        return Err(format!("unsupported version {}", bytes[4]));
    }
    let kind = bytes[5];
    let reserved = u16::from_le_bytes([bytes[6], bytes[7]]);
    if reserved != 0 {
        return Err(format!("non-zero reserved word {reserved:#06x}"));
    }
    let len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    if len > MAX_PAYLOAD_LEN {
        return Err(format!("payload length {len} exceeds {MAX_PAYLOAD_LEN}"));
    }
    if bytes.len() - RECORD_HEADER_LEN < len {
        return Err(format!(
            "truncated payload ({} of {len} bytes)",
            bytes.len() - RECORD_HEADER_LEN
        ));
    }
    let crc = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    let payload = &bytes[RECORD_HEADER_LEN..RECORD_HEADER_LEN + len];
    if crc32(payload) != crc {
        return Err("payload checksum mismatch".into());
    }
    let event = decode_payload(kind, payload)?;
    Ok((event, RECORD_HEADER_LEN + len))
}

/// Decode a checksum-verified payload.
fn decode_payload(kind: u8, payload: &[u8]) -> Result<WalEvent, String> {
    let le_u64 = |b: &[u8]| u64::from_le_bytes(b.try_into().expect("8-byte slice"));
    match kind {
        TYPE_ADMITTED => {
            if payload.len() < ADMIT_PREFIX_LEN {
                return Err(format!(
                    "ADMITTED payload too short ({} bytes)",
                    payload.len()
                ));
            }
            let job_id = le_u64(&payload[0..8]);
            let tenant = u32::from_le_bytes(payload[8..12].try_into().expect("4-byte slice"));
            let arrival_ms = f64::from_bits(le_u64(&payload[12..20]));
            let hint_len = payload[20] as usize;
            if payload.len() < ADMIT_PREFIX_LEN + hint_len {
                return Err(format!(
                    "hint name truncated ({} of {hint_len} bytes)",
                    payload.len() - ADMIT_PREFIX_LEN
                ));
            }
            let hint = if hint_len == 0 {
                None
            } else {
                let name =
                    std::str::from_utf8(&payload[ADMIT_PREFIX_LEN..ADMIT_PREFIX_LEN + hint_len])
                        .map_err(|_| "hint name is not UTF-8".to_string())?;
                Some(
                    name.parse::<Distribution>()
                        .map_err(|e| format!("unknown hint {name:?}: {e}"))?,
                )
            };
            let rest = &payload[ADMIT_PREFIX_LEN + hint_len..];
            if !rest.len().is_multiple_of(VALUE_LEN) {
                return Err(format!(
                    "value section length {} is not a multiple of {VALUE_LEN}",
                    rest.len()
                ));
            }
            let values = rest
                .chunks_exact(VALUE_LEN)
                .map(|c| {
                    Value::new(
                        f32::from_bits(u32::from_le_bytes(c[0..4].try_into().expect("4 bytes"))),
                        u32::from_le_bytes(c[4..8].try_into().expect("4 bytes")),
                    )
                })
                .collect();
            Ok(WalEvent::Admitted(AdmittedJob {
                job_id,
                tenant,
                arrival_ms,
                hint,
                values,
            }))
        }
        TYPE_COMPLETED => {
            if payload.len() != 8 {
                return Err(format!(
                    "COMPLETED payload must be 8 bytes, got {}",
                    payload.len()
                ));
            }
            Ok(WalEvent::Completed {
                job_id: le_u64(payload),
            })
        }
        TYPE_REJECTED => {
            if payload.len() != 9 {
                return Err(format!(
                    "REJECTED payload must be 9 bytes, got {}",
                    payload.len()
                ));
            }
            let reason = match payload[8] {
                REASON_QUEUE_FULL => RejectReason::QueueFull,
                REASON_MEMORY_PRESSURE => RejectReason::MemoryPressure,
                other => return Err(format!("unknown reject reason {other}")),
            };
            Ok(WalEvent::Rejected {
                job_id: le_u64(&payload[0..8]),
                reason,
            })
        }
        other => Err(format!("unknown record type {other}")),
    }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// Counters describing what a [`Wal::open`] replay found; the server
/// copies them into [`crate::ServiceMetrics`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Jobs that were admitted but never acknowledged — the jobs the
    /// caller must re-run.
    pub recovered_jobs: u64,
    /// Total bytes of valid records replayed across all segments.
    pub replayed_bytes: u64,
    /// Bytes physically truncated from the last segment's torn tail
    /// (zero after a clean shutdown).
    pub torn_tail_truncated: u64,
    /// Segment files scanned.
    pub segments_scanned: u64,
}

/// What [`Wal::open`] returns: the live log (positioned to append after
/// the last valid record) plus everything the replay recovered.
pub struct Recovery {
    /// The opened log, ready for appends.
    pub wal: Wal,
    /// Admitted-but-unacknowledged jobs, in admission (log) order.
    pub pending: Vec<AdmittedJob>,
    /// Replay counters.
    pub stats: RecoveryStats,
}

// ---------------------------------------------------------------------------
// The log
// ---------------------------------------------------------------------------

/// The append-only job log. See the module docs for the format and the
/// crash-consistency contract.
pub struct Wal {
    dir: PathBuf,
    config: WalConfig,
    file: File,
    /// Index of the segment currently receiving appends.
    segment: u64,
    /// Bytes already in the current segment.
    segment_bytes: u64,
    /// Indices of every segment file on disk (including the current one).
    segments: BTreeSet<u64>,
    /// Unacknowledged admitted jobs, grouped by admitting segment —
    /// drives prefix compaction.
    open_jobs: BTreeMap<u64, HashSet<JobId>>,
    /// Admitting segment of each open job.
    job_segment: HashMap<JobId, u64>,
    /// Sealed segments deleted by compaction over this log's lifetime.
    compacted_segments: u64,
    /// Reusable record-encoding buffer (see [`encode_event_into`]).
    scratch: Vec<u8>,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:08}.log"))
}

impl Wal {
    /// Open (creating if necessary) the log in `dir`, replay every
    /// segment, truncate a torn tail, and return the live log plus the
    /// recovered state. Replay is idempotent: running it twice without
    /// intervening appends yields the same pending set.
    pub fn open(dir: impl AsRef<Path>, config: WalConfig) -> Result<Recovery, WalError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        let mut segments = BTreeSet::new();
        for entry in fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(index) = name
                .strip_prefix("wal-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                segments.insert(index);
            }
        }

        let mut stats = RecoveryStats::default();
        // Pending admissions in log order; acknowledged entries become
        // tombstones so the survivors keep their admission order.
        let mut pending: Vec<Option<AdmittedJob>> = Vec::new();
        let mut index_of: HashMap<JobId, (usize, u64)> = HashMap::new();

        let indices: Vec<u64> = segments.iter().copied().collect();
        for (i, &index) in indices.iter().enumerate() {
            let path = segment_path(&dir, index);
            let bytes = fs::read(&path)?;
            stats.segments_scanned += 1;
            let is_last = i + 1 == indices.len();

            let mut offset = 0usize;
            while offset < bytes.len() {
                match parse_record(&bytes[offset..]) {
                    Ok((event, record_len)) => {
                        stats.replayed_bytes += record_len as u64;
                        match event {
                            WalEvent::Admitted(job) => {
                                let slot = pending.len();
                                index_of.insert(job.job_id, (slot, index));
                                pending.push(Some(job));
                            }
                            WalEvent::Completed { job_id } | WalEvent::Rejected { job_id, .. } => {
                                // An ack whose admission lives in a
                                // compacted (deleted) segment is simply
                                // unknown here — skip it.
                                if let Some((slot, _)) = index_of.remove(&job_id) {
                                    pending[slot] = None;
                                }
                            }
                        }
                        offset += record_len;
                    }
                    Err(reason) => {
                        if is_last {
                            let file = OpenOptions::new().write(true).open(&path)?;
                            file.set_len(offset as u64)?;
                            file.sync_all()?;
                            stats.torn_tail_truncated += (bytes.len() - offset) as u64;
                            break;
                        }
                        return Err(WalError::Corrupt {
                            segment: index,
                            offset: offset as u64,
                            reason,
                        });
                    }
                }
            }
        }

        let segment = indices.last().copied().unwrap_or(0);
        let path = segment_path(&dir, segment);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let segment_bytes = file.metadata()?.len();
        segments.insert(segment);

        let mut open_jobs: BTreeMap<u64, HashSet<JobId>> = BTreeMap::new();
        let mut job_segment = HashMap::new();
        for (&job_id, &(_, seg)) in &index_of {
            open_jobs.entry(seg).or_default().insert(job_id);
            job_segment.insert(job_id, seg);
        }

        let pending: Vec<AdmittedJob> = pending.into_iter().flatten().collect();
        stats.recovered_jobs = pending.len() as u64;

        Ok(Recovery {
            wal: Wal {
                dir,
                config,
                file,
                segment,
                segment_bytes,
                segments,
                open_jobs,
                job_segment,
                compacted_segments: 0,
                scratch: Vec::new(),
            },
            pending,
            stats,
        })
    }

    /// Directory the log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of segment files currently on disk.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Sealed segments deleted by compaction since this log was opened.
    pub fn compacted_segments(&self) -> u64 {
        self.compacted_segments
    }

    /// Admitted jobs not yet acknowledged.
    pub fn open_jobs(&self) -> usize {
        self.job_segment.len()
    }

    /// Append an admission record. Call this *before* enqueueing the job,
    /// so a crash between the append and the enqueue replays the job
    /// instead of losing it.
    pub fn append_admitted(&mut self, job: &AdmittedJob) -> Result<(), WalError> {
        self.append_event(&WalEvent::Admitted(job.clone()))
    }

    /// Append a completion record. Call this *after* the result was
    /// delivered; a crash between delivery and this append makes the job
    /// replay once more (at-least-once), never lose an acknowledged
    /// outcome's durability.
    pub fn append_completed(&mut self, job_id: JobId) -> Result<(), WalError> {
        self.append_event(&WalEvent::Completed { job_id })
    }

    /// Append a service-level rejection record (the job will not be
    /// replayed).
    pub fn append_rejected(&mut self, job_id: JobId, reason: RejectReason) -> Result<(), WalError> {
        self.append_event(&WalEvent::Rejected { job_id, reason })
    }

    /// fsync the current segment — a durability point under
    /// [`FsyncPolicy::OnRotate`] (the server calls this on graceful
    /// drain).
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_all()?;
        Ok(())
    }

    fn append_event(&mut self, event: &WalEvent) -> Result<(), WalError> {
        // Encode into the reusable scratch buffer (taken, not borrowed, so
        // `self` stays free for rotation and the write below). Error paths
        // leave an empty scratch behind — the next append just re-grows it.
        let mut bytes = std::mem::take(&mut self.scratch);
        encode_event_into(&mut bytes, event);
        if self.segment_bytes > 0
            && self.segment_bytes + bytes.len() as u64 > self.config.segment_max_bytes
        {
            self.rotate()?;
        }

        let (prefix_point, full_point) = match event {
            WalEvent::Admitted(_) => (fault::FaultPoint::AdmitPrefix, fault::FaultPoint::AdmitFull),
            _ => (fault::FaultPoint::AckPrefix, fault::FaultPoint::AckFull),
        };
        if let Some((mode, marker)) = fault::fire(prefix_point) {
            // A torn write: only a prefix of the record reaches the file.
            use std::io::Write;
            self.file.write_all(&bytes[..bytes.len() / 2])?;
            let _ = self.file.sync_all();
            return Err(fault::execute(prefix_point, mode, marker));
        }

        {
            use std::io::Write;
            self.file.write_all(&bytes)?;
        }
        if matches!(self.config.fsync, FsyncPolicy::Always) {
            self.file.sync_all()?;
        }
        if let Some((mode, marker)) = fault::fire(full_point) {
            // The record is fully on disk but the caller never learns of
            // it — the crash-after-write case.
            let _ = self.file.sync_all();
            return Err(fault::execute(full_point, mode, marker));
        }
        self.segment_bytes += bytes.len() as u64;
        self.scratch = bytes;

        match event {
            WalEvent::Admitted(job) => {
                self.open_jobs
                    .entry(self.segment)
                    .or_default()
                    .insert(job.job_id);
                self.job_segment.insert(job.job_id, self.segment);
            }
            WalEvent::Completed { job_id } | WalEvent::Rejected { job_id, .. } => {
                if let Some(seg) = self.job_segment.remove(job_id) {
                    if let Some(set) = self.open_jobs.get_mut(&seg) {
                        set.remove(job_id);
                        if set.is_empty() {
                            self.open_jobs.remove(&seg);
                        }
                    }
                }
                self.compact()?;
            }
        }
        Ok(())
    }

    /// Seal the current segment (fsync) and start the next one.
    fn rotate(&mut self) -> Result<(), WalError> {
        self.file.sync_all()?;
        self.segment += 1;
        self.file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.dir, self.segment))?;
        self.segment_bytes = 0;
        self.segments.insert(self.segment);
        Ok(())
    }

    /// Delete the longest prefix of sealed segments in which every
    /// admitted job has been acknowledged. Acks recorded in *later*
    /// segments for jobs admitted in the deleted prefix become strays;
    /// recovery skips acks for unknown job ids, so this is safe.
    fn compact(&mut self) -> Result<(), WalError> {
        let floor = self
            .open_jobs
            .keys()
            .next()
            .copied()
            .unwrap_or(self.segment)
            .min(self.segment);
        let deletable: Vec<u64> = self.segments.range(..floor).copied().collect();
        for index in deletable {
            if let Some((mode, marker)) = fault::fire(fault::FaultPoint::CompactUnlink) {
                return Err(fault::execute(
                    fault::FaultPoint::CompactUnlink,
                    mode,
                    marker,
                ));
            }
            fs::remove_file(segment_path(&self.dir, index))?;
            self.segments.remove(&index);
            self.compacted_segments += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Serializes tests that arm the global fault plan.
    fn fault_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        match LOCK.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "sortsvc-wal-{tag}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            fs::remove_dir_all(&self.0).ok();
        }
    }

    fn job(id: JobId, n: usize) -> AdmittedJob {
        AdmittedJob {
            job_id: id,
            tenant: (id % 3) as TenantId,
            arrival_ms: id as f64 * 0.25,
            hint: match id % 3 {
                0 => None,
                1 => Some(Distribution::Uniform),
                _ => Some(Distribution::NearlySorted { swaps: 64 }),
            },
            values: workloads::uniform(n, id),
        }
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 check: crc32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn events_round_trip_through_the_codec() {
        for event in [
            WalEvent::Admitted(job(7, 33)),
            WalEvent::Admitted(AdmittedJob {
                job_id: 1,
                tenant: 9,
                arrival_ms: -1.5,
                hint: Some(Distribution::FewDistinct { distinct: 5 }),
                values: Vec::new(),
            }),
            WalEvent::Completed { job_id: 42 },
            WalEvent::Rejected {
                job_id: 3,
                reason: RejectReason::MemoryPressure,
            },
        ] {
            let bytes = encode_event(&event);
            let (decoded, len) = parse_record(&bytes).expect("valid record");
            assert_eq!(decoded, event);
            assert_eq!(len, bytes.len());
        }
    }

    #[test]
    fn reopen_replays_only_unacknowledged_admissions() {
        let tmp = TempDir::new("replay");
        let mut wal = Wal::open(tmp.path(), WalConfig::default()).unwrap().wal;
        wal.append_admitted(&job(1, 8)).unwrap();
        wal.append_admitted(&job(2, 8)).unwrap();
        wal.append_admitted(&job(3, 8)).unwrap();
        wal.append_completed(1).unwrap();
        wal.append_rejected(3, RejectReason::QueueFull).unwrap();
        drop(wal);

        let recovery = Wal::open(tmp.path(), WalConfig::default()).unwrap();
        assert_eq!(recovery.pending.len(), 1);
        assert_eq!(recovery.pending[0], job(2, 8));
        assert_eq!(recovery.stats.recovered_jobs, 1);
        assert_eq!(recovery.stats.torn_tail_truncated, 0);
        assert!(recovery.stats.replayed_bytes > 0);
    }

    #[test]
    fn torn_tail_is_truncated_and_never_replayed() {
        let tmp = TempDir::new("torn");
        let mut wal = Wal::open(tmp.path(), WalConfig::default()).unwrap().wal;
        wal.append_admitted(&job(1, 16)).unwrap();
        wal.append_admitted(&job(2, 16)).unwrap();
        drop(wal);

        // Tear the tail: append half of a third record.
        let path = segment_path(tmp.path(), 0);
        let clean_len = fs::metadata(&path).unwrap().len();
        let torn = encode_event(&WalEvent::Admitted(job(3, 16)));
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        fs::write(&path, &bytes).unwrap();

        let recovery = Wal::open(tmp.path(), WalConfig::default()).unwrap();
        assert_eq!(recovery.pending.len(), 2);
        assert_eq!(recovery.stats.torn_tail_truncated, (torn.len() / 2) as u64);
        assert_eq!(fs::metadata(&path).unwrap().len(), clean_len);

        // A second open sees a clean log — truncation is physical.
        let again = Wal::open(tmp.path(), WalConfig::default()).unwrap();
        assert_eq!(again.pending.len(), 2);
        assert_eq!(again.stats.torn_tail_truncated, 0);
    }

    #[test]
    fn appends_continue_cleanly_after_a_torn_tail() {
        let tmp = TempDir::new("resume");
        let mut wal = Wal::open(tmp.path(), WalConfig::default()).unwrap().wal;
        wal.append_admitted(&job(1, 8)).unwrap();
        drop(wal);
        let path = segment_path(tmp.path(), 0);
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"garbage");
        fs::write(&path, &bytes).unwrap();

        let mut wal = Wal::open(tmp.path(), WalConfig::default()).unwrap().wal;
        wal.append_admitted(&job(2, 8)).unwrap();
        drop(wal);

        let recovery = Wal::open(tmp.path(), WalConfig::default()).unwrap();
        let ids: Vec<JobId> = recovery.pending.iter().map(|j| j.job_id).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn corruption_in_a_sealed_segment_is_a_typed_error() {
        let tmp = TempDir::new("sealed");
        let config = WalConfig {
            segment_max_bytes: 64,
            ..WalConfig::default()
        };
        let mut wal = Wal::open(tmp.path(), config.clone()).unwrap().wal;
        for id in 1..=4 {
            wal.append_admitted(&job(id, 16)).unwrap();
        }
        assert!(wal.segment_count() > 1, "rotation must have happened");
        drop(wal);

        // Flip a payload byte in the FIRST (sealed) segment.
        let path = segment_path(tmp.path(), 0);
        let mut bytes = fs::read(&path).unwrap();
        let mid = RECORD_HEADER_LEN + 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        match Wal::open(tmp.path(), config) {
            Err(WalError::Corrupt { segment: 0, .. }) => {}
            Err(other) => panic!("expected Corrupt in segment 0, got {other:?}"),
            Ok(_) => panic!("expected Corrupt in segment 0, got a clean open"),
        }
    }

    #[test]
    fn rotation_and_prefix_compaction_bound_the_log() {
        let tmp = TempDir::new("compact");
        let config = WalConfig {
            segment_max_bytes: 256,
            ..WalConfig::default()
        };
        let mut wal = Wal::open(tmp.path(), config.clone()).unwrap().wal;
        for id in 0..40 {
            wal.append_admitted(&job(id, 16)).unwrap();
            wal.append_completed(id).unwrap();
        }
        assert!(wal.compacted_segments() > 0, "prefix compaction must fire");
        assert!(
            wal.segment_count() <= 3,
            "fully-acked log must stay bounded, got {} segments",
            wal.segment_count()
        );
        assert_eq!(wal.open_jobs(), 0);
        drop(wal);

        // Recovery over the compacted log: stray acks for jobs whose
        // admissions were deleted with the prefix are skipped.
        let recovery = Wal::open(tmp.path(), config).unwrap();
        assert!(recovery.pending.is_empty());
    }

    #[test]
    fn open_jobs_pin_their_segment_against_compaction() {
        let tmp = TempDir::new("pin");
        let config = WalConfig {
            segment_max_bytes: 256,
            ..WalConfig::default()
        };
        let mut wal = Wal::open(tmp.path(), config.clone()).unwrap().wal;
        wal.append_admitted(&job(0, 16)).unwrap(); // never acked
        for id in 1..30 {
            wal.append_admitted(&job(id, 16)).unwrap();
            wal.append_completed(id).unwrap();
        }
        assert_eq!(wal.compacted_segments(), 0, "segment 0 holds an open job");
        drop(wal);

        let recovery = Wal::open(tmp.path(), config).unwrap();
        assert_eq!(recovery.pending.len(), 1);
        assert_eq!(recovery.pending[0].job_id, 0);
    }

    #[test]
    fn fsync_always_policy_appends_and_recovers() {
        let tmp = TempDir::new("fsync");
        let config = WalConfig {
            fsync: FsyncPolicy::Always,
            ..WalConfig::default()
        };
        let mut wal = Wal::open(tmp.path(), config.clone()).unwrap().wal;
        wal.append_admitted(&job(5, 4)).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let recovery = Wal::open(tmp.path(), config).unwrap();
        assert_eq!(recovery.pending.len(), 1);
    }

    #[test]
    fn injected_stop_fault_tears_the_write_and_recovery_truncates_it() {
        let _guard = fault_lock();
        let tmp = TempDir::new("fault");
        let mut wal = Wal::open(tmp.path(), WalConfig::default()).unwrap().wal;
        wal.append_admitted(&job(1, 8)).unwrap();

        fault::arm(fault::FaultPlan {
            point: fault::FaultPoint::AdmitPrefix,
            after: 0,
            mode: fault::FaultMode::Stop,
            marker: None,
        });
        match wal.append_admitted(&job(2, 8)) {
            Err(WalError::Injected(fault::FaultPoint::AdmitPrefix)) => {}
            other => panic!("expected injected fault, got {other:?}"),
        }
        fault::disarm();
        drop(wal);

        let recovery = Wal::open(tmp.path(), WalConfig::default()).unwrap();
        assert_eq!(recovery.pending.len(), 1, "torn admission must not replay");
        assert_eq!(recovery.pending[0].job_id, 1);
        assert!(recovery.stats.torn_tail_truncated > 0);
    }

    #[test]
    fn injected_full_write_fault_still_replays_the_record() {
        let _guard = fault_lock();
        let tmp = TempDir::new("fault-full");
        let mut wal = Wal::open(tmp.path(), WalConfig::default()).unwrap().wal;

        fault::arm(fault::FaultPlan {
            point: fault::FaultPoint::AdmitFull,
            after: 0,
            mode: fault::FaultMode::Stop,
            marker: None,
        });
        assert!(wal.append_admitted(&job(9, 8)).is_err());
        fault::disarm();
        drop(wal);

        // The record was fully written before the simulated crash, so
        // recovery replays it — the at-least-once side of the contract.
        let recovery = Wal::open(tmp.path(), WalConfig::default()).unwrap();
        assert_eq!(recovery.pending.len(), 1);
        assert_eq!(recovery.pending[0].job_id, 9);
        assert_eq!(recovery.stats.torn_tail_truncated, 0);
    }

    #[test]
    fn fault_plans_fire_at_the_requested_occurrence() {
        let _guard = fault_lock();
        let tmp = TempDir::new("fault-after");
        let mut wal = Wal::open(tmp.path(), WalConfig::default()).unwrap().wal;
        fault::arm(fault::FaultPlan {
            point: fault::FaultPoint::AdmitFull,
            after: 2,
            mode: fault::FaultMode::Stop,
            marker: None,
        });
        assert!(wal.append_admitted(&job(1, 4)).is_ok());
        assert!(wal.append_admitted(&job(2, 4)).is_ok());
        assert!(wal.append_admitted(&job(3, 4)).is_err());
        fault::disarm();
    }
}
