//! The buffering wire client: batched submission, pipelined outstanding
//! jobs, and per-job futures-by-polling.
//!
//! [`SortClient`] encodes each submission into an in-memory buffer and
//! only touches the socket when the buffer crosses the configured
//! thresholds (or on an explicit [`SortClient::flush`]), so a burst of
//! small jobs costs one `write` instead of one syscall each — the wire
//! analogue of the service's own job coalescing. Responses are read by a
//! background thread and parked under their job id; the [`JobTicket`]
//! returned per submission is a future-by-polling over that mailbox
//! ([`JobTicket::poll`] / [`JobTicket::wait_timeout`]), which is what
//! lets one client keep many jobs outstanding at once.

use super::error::ErrorCode;
use super::frame::{
    Frame, FramePoll, FrameReader, FrameType, PayloadEncoding, RejectPayload, ResultPayload,
    StatsPayload, SubmitPayload,
};
use super::lock;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};
use stream_arch::Value;

/// Configuration of a [`SortClient`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Tenant id stamped on submissions (the service's fairness key).
    pub tenant: u32,
    /// Payload encoding used for submissions ([`PayloadEncoding::RawLe`]
    /// by default; the server mirrors it in results).
    pub encoding: PayloadEncoding,
    /// Auto-flush after this many buffered submissions.
    pub flush_jobs: usize,
    /// Auto-flush when the submission buffer reaches this many bytes.
    pub flush_bytes: usize,
    /// Maximum frame payload length the client will read.
    pub max_frame_bytes: u32,
    /// Socket read timeout of the response thread — the granularity at
    /// which it notices the client shutting down.
    pub read_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            tenant: 0,
            encoding: PayloadEncoding::RawLe,
            flush_jobs: 32,
            flush_bytes: 1 << 20,
            max_frame_bytes: 64 << 20,
            read_timeout: Duration::from_millis(5),
        }
    }
}

/// Builder-style setters (the workspace-wide `with_*` convention).
///
/// ```
/// use sortsvc::net::{ClientConfig, PayloadEncoding};
///
/// let config = ClientConfig::default()
///     .with_tenant(7)
///     .with_encoding(PayloadEncoding::Json);
/// assert_eq!(config.tenant, 7);
/// ```
impl ClientConfig {
    /// Set the tenant id stamped on submissions.
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Set the payload encoding.
    pub fn with_encoding(mut self, encoding: PayloadEncoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Set the job-count auto-flush threshold.
    pub fn with_flush_jobs(mut self, jobs: usize) -> Self {
        self.flush_jobs = jobs;
        self
    }

    /// Set the byte-size auto-flush threshold.
    pub fn with_flush_bytes(mut self, bytes: usize) -> Self {
        self.flush_bytes = bytes;
        self
    }

    /// Set the maximum frame payload the client will read.
    pub fn with_max_frame_bytes(mut self, bytes: u32) -> Self {
        self.max_frame_bytes = bytes;
        self
    }

    /// Set the response thread's socket read timeout.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }
}

/// The server's answer to one job.
#[derive(Clone, Debug, PartialEq)]
pub enum JobReply {
    /// The job completed; these are the sorted records.
    Sorted(Vec<Value>),
    /// The job was turned away.
    Rejected {
        /// Why (see [`ErrorCode`]; `code.is_retryable()` tells whether
        /// resubmitting can help).
        code: ErrorCode,
        /// Advisory back-off before a retry, milliseconds (0 = no hint).
        retry_after_ms: u32,
    },
}

impl JobReply {
    /// The sorted records, if the job completed.
    pub fn sorted(self) -> Option<Vec<Value>> {
        match self {
            JobReply::Sorted(values) => Some(values),
            JobReply::Rejected { .. } => None,
        }
    }

    /// True when the job was rejected.
    pub fn is_rejected(&self) -> bool {
        matches!(self, JobReply::Rejected { .. })
    }
}

/// State shared between the client handle and its response thread.
struct ClientShared {
    /// Parked replies by job id, filled by the response thread.
    replies: Mutex<HashMap<u64, JobReply>>,
    /// Signalled whenever a reply is parked or the connection dies.
    ready: Condvar,
    /// Set when the connection is finished (client drop, server goodbye,
    /// fatal protocol error, I/O error).
    closed: AtomicBool,
    /// Why the connection died, when it died abnormally.
    fatal: Mutex<Option<String>>,
    /// `PONG` frames received (see [`SortClient::ping`]).
    pongs: AtomicU64,
    /// The latest unclaimed `STATS` response (see [`SortClient::stats`]).
    stats: Mutex<Option<String>>,
}

impl ClientShared {
    fn die(&self, reason: Option<String>) {
        if let Some(msg) = reason {
            lock(&self.fatal).get_or_insert(msg);
        }
        self.closed.store(true, Ordering::SeqCst);
        let _guard = lock(&self.replies);
        self.ready.notify_all();
    }

    fn closed_error(&self) -> io::Error {
        let msg = lock(&self.fatal)
            .clone()
            .unwrap_or_else(|| "connection closed".into());
        io::Error::new(io::ErrorKind::ConnectionAborted, msg)
    }
}

/// A handle to one outstanding job: a future-by-polling over the client's
/// reply mailbox.
pub struct JobTicket {
    shared: Arc<ClientShared>,
    job_id: u64,
}

impl JobTicket {
    /// The wire job id this ticket tracks.
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// Take the reply if it has arrived (non-blocking). Returns `None`
    /// while the job is still outstanding.
    pub fn poll(&self) -> Option<JobReply> {
        lock(&self.shared.replies).remove(&self.job_id)
    }

    /// Block until the reply arrives, the connection dies, or `timeout`
    /// elapses. Remember to [`SortClient::flush`] first — a buffered
    /// submission the server never saw cannot be answered.
    ///
    /// **Deadline guarantee**: the wait is condvar-driven, not a poll
    /// loop. Every iteration recomputes the remaining time and parks for
    /// at most that long, and a parked reply (or connection death)
    /// notifies the condvar, so the call returns as soon as its answer
    /// exists. On timeout the overshoot is bounded by scheduler wake-up
    /// latency alone — it never rounds up to a fixed poll interval such
    /// as [`ClientConfig::read_timeout`] (which bounds how fast the
    /// *response thread* notices shutdown, not this wait).
    pub fn wait_timeout(&self, timeout: Duration) -> io::Result<JobReply> {
        let deadline = Instant::now() + timeout;
        let mut replies = lock(&self.shared.replies);
        loop {
            if let Some(reply) = replies.remove(&self.job_id) {
                return Ok(reply);
            }
            if self.shared.closed.load(Ordering::SeqCst) {
                return Err(self.shared.closed_error());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("no reply for job {} within {timeout:?}", self.job_id),
                ));
            }
            replies = match self.shared.ready.wait_timeout(replies, deadline - now) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }
}

/// The typed counterpart of [`JobReply`]: decoded keys or a rejection.
#[derive(Clone, Debug, PartialEq)]
pub enum TypedReply<K: crate::keys::SortKey> {
    /// The job completed; the sorted keys with duplicate multiplicities
    /// restored.
    Sorted(Vec<K>),
    /// The job was turned away (same semantics as
    /// [`JobReply::Rejected`]).
    Rejected {
        /// Why the server refused the job.
        code: ErrorCode,
        /// Advisory back-off before a retry, milliseconds (0 = no hint).
        retry_after_ms: u32,
    },
}

impl<K: crate::keys::SortKey> TypedReply<K> {
    /// The sorted keys, if the job completed.
    pub fn sorted(self) -> Option<Vec<K>> {
        match self {
            TypedReply::Sorted(keys) => Some(keys),
            TypedReply::Rejected { .. } => None,
        }
    }
}

/// A [`JobTicket`] for a typed submission: holds the duplicate
/// multiplicities recorded at encode time so the wire reply can be
/// decoded back into the caller's key domain.
pub struct TypedTicket<K: crate::keys::SortKey> {
    ticket: JobTicket,
    batch: crate::keys::EncodedBatch<K>,
}

impl<K: crate::keys::SortKey> TypedTicket<K> {
    /// The wire job id of the submission.
    pub fn job_id(&self) -> u64 {
        self.ticket.job_id()
    }

    /// Non-blocking: the decoded reply if the server has answered.
    pub fn poll(&self) -> Option<TypedReply<K>> {
        self.ticket.poll().map(|r| self.decode(r))
    }

    /// Block until the reply arrives (or `timeout` passes / the
    /// connection dies) and decode it.
    pub fn wait_timeout(&self, timeout: Duration) -> io::Result<TypedReply<K>> {
        Ok(self.decode(self.ticket.wait_timeout(timeout)?))
    }

    fn decode(&self, reply: JobReply) -> TypedReply<K> {
        match reply {
            JobReply::Sorted(values) => TypedReply::Sorted(self.batch.decode_sorted(&values)),
            JobReply::Rejected {
                code,
                retry_after_ms,
            } => TypedReply::Rejected {
                code,
                retry_after_ms,
            },
        }
    }
}

/// A buffering client for the framed-TCP sorting protocol.
///
/// ```no_run
/// use sortsvc::net::SortClient;
/// use std::time::Duration;
///
/// let mut client = SortClient::connect("127.0.0.1:7600")?;
/// let ticket = client.submit(workloads::uniform(1024, 7))?;
/// client.flush()?;
/// let sorted = ticket
///     .wait_timeout(Duration::from_secs(10))?
///     .sorted()
///     .expect("not rejected");
/// assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct SortClient {
    stream: TcpStream,
    shared: Arc<ClientShared>,
    buf: Vec<u8>,
    buffered_jobs: usize,
    next_job_id: u64,
    config: ClientConfig,
    reader: Option<JoinHandle<()>>,
}

impl SortClient {
    /// Connect with the default [`ClientConfig`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<SortClient> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect with an explicit configuration.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<SortClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        read_half.set_read_timeout(Some(config.read_timeout))?;
        let shared = Arc::new(ClientShared {
            replies: Mutex::new(HashMap::new()),
            ready: Condvar::new(),
            closed: AtomicBool::new(false),
            fatal: Mutex::new(None),
            pongs: AtomicU64::new(0),
            stats: Mutex::new(None),
        });
        let reader = {
            let shared = shared.clone();
            let limit = config.max_frame_bytes;
            thread::spawn(move || response_loop(read_half, shared, limit))
        };
        Ok(SortClient {
            stream,
            shared,
            buf: Vec::new(),
            buffered_jobs: 0,
            next_job_id: 0,
            config,
            reader: Some(reader),
        })
    }

    /// Submit one job under the configured tenant and encoding. The
    /// submission is *buffered*; it reaches the server on auto-flush
    /// (see [`ClientConfig::flush_jobs`] / [`ClientConfig::flush_bytes`])
    /// or an explicit [`SortClient::flush`].
    pub fn submit(&mut self, values: Vec<Value>) -> io::Result<JobTicket> {
        let (tenant, encoding) = (self.config.tenant, self.config.encoding);
        self.submit_with(values, tenant, encoding)
    }

    /// Submit one job with an explicit tenant and encoding.
    pub fn submit_with(
        &mut self,
        values: Vec<Value>,
        tenant: u32,
        encoding: PayloadEncoding,
    ) -> io::Result<JobTicket> {
        if self.shared.closed.load(Ordering::SeqCst) {
            return Err(self.shared.closed_error());
        }
        let job_id = self.next_job_id;
        let payload = SubmitPayload {
            job_id,
            tenant,
            encoding,
            values,
        }
        .encode()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        self.next_job_id += 1;
        Frame::new(FrameType::Submit, payload).encode_into(&mut self.buf);
        self.buffered_jobs += 1;
        if self.buffered_jobs >= self.config.flush_jobs || self.buf.len() >= self.config.flush_bytes
        {
            self.flush()?;
        }
        Ok(JobTicket {
            shared: self.shared.clone(),
            job_id,
        })
    }

    /// Submit typed keys over the wire. The order-preserving encodings
    /// ride the existing SUBMIT frame as raw [`Value`] bit patterns —
    /// [`PayloadEncoding::RawLe`] is forced regardless of the configured
    /// default, because the NaN-keyed values typed codecs produce only
    /// survive a bit-exact encoding. Duplicate keys are deduplicated
    /// before transmission (the engines need distinct elements) and
    /// re-expanded when the reply is decoded by
    /// [`TypedTicket::wait_timeout`].
    pub fn submit_keys<K: crate::keys::SortKey>(
        &mut self,
        keys: &[K],
    ) -> io::Result<TypedTicket<K>> {
        let mut batch = crate::keys::EncodedBatch::new(keys);
        let values = batch.take_values();
        let tenant = self.config.tenant;
        let ticket = self.submit_with(values, tenant, PayloadEncoding::RawLe)?;
        Ok(TypedTicket { ticket, batch })
    }

    /// Write every buffered submission to the socket.
    pub fn flush(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.stream.write_all(&self.buf)?;
        self.stream.flush()?;
        self.buf.clear();
        self.buffered_jobs = 0;
        Ok(())
    }

    /// Submissions buffered but not yet written.
    pub fn buffered_jobs(&self) -> usize {
        self.buffered_jobs
    }

    /// Send a `PING` (flushing first, to preserve frame order). The pong
    /// is counted asynchronously; see [`SortClient::pongs`].
    pub fn ping(&mut self) -> io::Result<()> {
        self.flush()?;
        self.stream
            .write_all(&Frame::new(FrameType::Ping, Vec::new()).encode())
    }

    /// `PONG` frames received so far.
    pub fn pongs(&self) -> u64 {
        self.shared.pongs.load(Ordering::SeqCst)
    }

    /// Ask the server for a [`ServerStats`](crate::ServerStats) snapshot
    /// over the wire (a `STATS` round trip) and parse the JSON answer.
    ///
    /// The snapshot carries the full stats surface — wire counters plus
    /// the aggregate service metrics with their streaming-histogram
    /// summaries — so a live client can watch percentiles move without
    /// any side channel to the server process:
    ///
    /// ```
    /// use sortsvc::net::{ServerConfig, SortClient, SortServer};
    /// use std::time::Duration;
    ///
    /// let mut config = ServerConfig::default();
    /// config.service.device_slots = 1;
    /// let server = SortServer::start("127.0.0.1:0", config)?;
    /// let mut client = SortClient::connect(server.local_addr())?;
    ///
    /// let ticket = client.submit(workloads::uniform(256, 9))?;
    /// client.flush()?;
    /// ticket.wait_timeout(Duration::from_secs(30))?;
    ///
    /// let stats = client.stats()?;
    /// let completed = stats
    ///     .get("service")
    ///     .and_then(|s| s.get("jobs_completed"))
    ///     .and_then(|v| v.as_f64());
    /// assert_eq!(completed, Some(1.0));
    /// # Ok::<(), std::io::Error>(())
    /// ```
    ///
    /// Keep at most one `STATS` request outstanding per client: replies
    /// carry no correlation id, so a second concurrent request could
    /// claim the first one's answer.
    pub fn stats(&mut self) -> io::Result<serde_json::Value> {
        self.stats_timeout(Duration::from_secs(30))
    }

    /// [`SortClient::stats`] with an explicit reply deadline.
    pub fn stats_timeout(&mut self, timeout: Duration) -> io::Result<serde_json::Value> {
        if self.shared.closed.load(Ordering::SeqCst) {
            return Err(self.shared.closed_error());
        }
        // Flush first so the snapshot reflects every submission already
        // handed to this client, then send the empty STATS request.
        self.flush()?;
        self.stream
            .write_all(&Frame::new(FrameType::Stats, Vec::new()).encode())?;
        let deadline = Instant::now() + timeout;
        let mut replies = lock(&self.shared.replies);
        loop {
            if let Some(json) = lock(&self.shared.stats).take() {
                drop(replies);
                return serde_json::from_str(&json).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("malformed STATS JSON from server: {e}"),
                    )
                });
            }
            if self.shared.closed.load(Ordering::SeqCst) {
                return Err(self.shared.closed_error());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("no STATS reply within {timeout:?}"),
                ));
            }
            replies = match self.shared.ready.wait_timeout(replies, deadline - now) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// Flush, announce `GOODBYE` and tear the connection down. Dropping
    /// the client does the same, minus the error reporting.
    pub fn close(mut self) -> io::Result<()> {
        self.flush()?;
        Ok(())
    }
}

impl Drop for SortClient {
    fn drop(&mut self) {
        let _ = self.flush();
        let _ = self
            .stream
            .write_all(&Frame::new(FrameType::Goodbye, Vec::new()).encode());
        self.shared.die(None);
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

/// The background response thread: decode frames, park replies, record
/// why the connection ended.
fn response_loop(mut stream: TcpStream, shared: Arc<ClientShared>, max_frame_bytes: u32) {
    let mut frames = FrameReader::new(max_frame_bytes);
    let reason = loop {
        if shared.closed.load(Ordering::Relaxed) {
            break None;
        }
        match frames.poll(&mut stream) {
            Ok(FramePoll::Frame(frame)) => match dispatch_reply(frame, &shared) {
                Ok(()) => continue,
                Err(reason) => break Some(reason),
            },
            Ok(FramePoll::WouldBlock) => continue,
            Ok(FramePoll::Eof) => break Some("server closed the connection".into()),
            Err(err) => break Some(format!("frame decode failed: {err}")),
        }
    };
    shared.die(reason);
}

/// Handle one server frame. `Err` carries the reason the connection is
/// now over.
fn dispatch_reply(frame: Frame, shared: &ClientShared) -> Result<(), String> {
    match frame.frame_type {
        FrameType::Result => {
            let payload = ResultPayload::decode(&frame.payload)
                .map_err(|e| format!("malformed RESULT from server: {e}"))?;
            park(shared, payload.job_id, JobReply::Sorted(payload.values));
            Ok(())
        }
        FrameType::Reject => {
            let payload = RejectPayload::decode(&frame.payload)
                .map_err(|e| format!("malformed REJECT from server: {e}"))?;
            park(
                shared,
                payload.job_id,
                JobReply::Rejected {
                    code: payload.code,
                    retry_after_ms: payload.retry_after_ms,
                },
            );
            Ok(())
        }
        FrameType::Pong => {
            shared.pongs.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
        FrameType::Stats => {
            let payload = StatsPayload::decode(&frame.payload)
                .map_err(|e| format!("malformed STATS from server: {e}"))?;
            *lock(&shared.stats) = Some(payload.json);
            // Same lost-wakeup discipline as `die()`: take the condvar's
            // mutex so a waiter is either before its mailbox check (and
            // will see the value) or already parked (and gets notified).
            let _guard = lock(&shared.replies);
            shared.ready.notify_all();
            Ok(())
        }
        // Version-1 servers never ping; tolerate it anyway.
        FrameType::Ping => Ok(()),
        FrameType::Goodbye => Err("server said goodbye".into()),
        FrameType::Error => Err(match super::frame::ErrorPayload::decode(&frame.payload) {
            Ok(p) => format!("server reported {}: {}", p.code, p.message),
            Err(_) => "server reported an unreadable error".into(),
        }),
        FrameType::Submit => Err("server sent a client-only SUBMIT frame".into()),
    }
}

fn park(shared: &ClientShared, job_id: u64, reply: JobReply) {
    lock(&shared.replies).insert(job_id, reply);
    shared.ready.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bare_shared() -> Arc<ClientShared> {
        Arc::new(ClientShared {
            replies: Mutex::new(HashMap::new()),
            ready: Condvar::new(),
            closed: AtomicBool::new(false),
            fatal: Mutex::new(None),
            pongs: AtomicU64::new(0),
            stats: Mutex::new(None),
        })
    }

    /// Regression for the deadline guarantee documented on
    /// [`JobTicket::wait_timeout`]: the wait must track its *own*
    /// remaining time, not round up to a poll interval.
    #[test]
    fn wait_timeout_tracks_its_own_deadline() {
        let shared = bare_shared();
        let ticket = JobTicket {
            shared: shared.clone(),
            job_id: 7,
        };

        // A 2 ms timeout with no reply must come back as TimedOut with an
        // overshoot far below any fixed poll interval (generous bound for
        // loaded CI machines; the failure mode this pins would add the
        // full interval per parked iteration).
        let started = Instant::now();
        let err = ticket
            .wait_timeout(Duration::from_millis(2))
            .expect_err("no reply was parked");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(
            started.elapsed() < Duration::from_millis(500),
            "timeout overshot by {:?}",
            started.elapsed()
        );

        // A reply parked mid-wait wakes the waiter immediately — the call
        // must not sleep anywhere near its (long) deadline.
        let parker = {
            let shared = shared.clone();
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(20));
                park(&shared, 7, JobReply::Sorted(Vec::new()));
            })
        };
        let started = Instant::now();
        let reply = ticket
            .wait_timeout(Duration::from_secs(60))
            .expect("parked reply");
        assert_eq!(reply, JobReply::Sorted(Vec::new()));
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "condvar wake-up took {:?}",
            started.elapsed()
        );
        parker.join().unwrap();
    }
}
