//! # `sortsvc::net` — the framed-TCP front-end of the sorting service
//!
//! Everything below is hand-rolled on `std::net` (no crates.io): a
//! length-prefixed binary [`frame`] layer, a threaded [`server`] that
//! feeds wire submissions into the existing admission →
//! tenant-fair-queue → coalescer → pooled-engine pipeline, a buffering
//! [`client`], and the typed [`error`] codes that map the service's
//! backpressure onto the wire. The byte-level contract — frame layout,
//! state machine, error codes, versioning — is specified normatively in
//! `docs/PROTOCOL.md`; this module is its reference implementation.
//!
//! The layering mirrors the in-process service:
//!
//! | wire concept | in-process concept |
//! |---|---|
//! | `SUBMIT` frame | [`crate::SortJob`] |
//! | `RESULT` frame | [`crate::JobResult`] output |
//! | `REJECT` frame + [`ErrorCode`] | [`crate::RejectReason`] |
//! | client submission buffering | service job coalescing |
//! | `retry_after_ms` hint | admission backpressure |
//!
//! ## A complete round trip
//!
//! ```
//! use sortsvc::net::{ServerConfig, SortClient, SortServer};
//! use std::time::Duration;
//!
//! // Tiny service profile so the doctest calibrates fast.
//! let mut config = ServerConfig::default();
//! config.service.device_slots = 1;
//!
//! let server = SortServer::start("127.0.0.1:0", config)?;
//! let mut client = SortClient::connect(server.local_addr())?;
//!
//! let ticket = client.submit(workloads::uniform(256, 42))?;
//! client.flush()?;
//! let sorted = ticket
//!     .wait_timeout(Duration::from_secs(30))?
//!     .sorted()
//!     .expect("a 256-element job is not rejected by an idle server");
//! assert_eq!(sorted.len(), 256);
//! assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
//!
//! drop(client);
//! let stats = server.shutdown();
//! assert_eq!(stats.service.jobs_completed, 1);
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod client;
pub mod error;
pub mod frame;
pub mod retry;
pub mod server;

pub use client::{ClientConfig, JobReply, JobTicket, SortClient, TypedReply, TypedTicket};
pub use error::ErrorCode;
pub use frame::{
    ErrorPayload, Frame, FrameError, FramePoll, FrameReader, FrameType, PayloadEncoding,
    PayloadError, RejectPayload, ResultPayload, StatsPayload, SubmitPayload, HEADER_LEN,
    JOB_HEADER_LEN, MAGIC, PROTOCOL_VERSION, RAW_RECORD_LEN,
};
pub use retry::{RetryPolicy, RetryStats, RetryingClient};
pub use server::{ServerConfig, ServerStats, SortServer};

use std::sync::{Mutex, MutexGuard};

/// Lock a mutex, riding over poisoning: a panicked holder cannot leave
/// these single-field states (a write half, a stats struct, a reply map)
/// half-updated in a way that matters more than serving on.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}
