//! Reconnect-and-resubmit on top of [`SortClient`]: capped exponential
//! backoff with deterministic jitter, honoring the server's
//! `retry_after_ms` hints and [`ErrorCode::is_retryable`](super::ErrorCode::is_retryable).
//!
//! [`SortClient`] is deliberately dumb about failure: a dropped
//! connection, a server `GOODBYE` (drain) or a retryable reject all
//! surface as errors and the tickets die with the connection. This module
//! adds the client-side half of the durability story — a
//! [`RetryingClient`] that owns the failure loop:
//!
//! * a **retryable reject** (`QUEUE_FULL`, `MEMORY_PRESSURE`,
//!   `SERVER_BUSY` — see [`ErrorCode::is_retryable`](super::ErrorCode::is_retryable)) waits out the
//!   larger of the server's `retry_after_ms` hint and its own jittered
//!   exponential backoff, then resubmits on the same connection;
//! * a **dead connection** (connect failure, I/O error, server
//!   `GOODBYE`) reconnects — rotating through every resolved address, so
//!   a drained server's traffic can fail over to a sibling — and
//!   resubmits;
//! * a **non-retryable reject** (malformed, too large, internal) and a
//!   **reply timeout** are returned to the caller: resubmitting cannot
//!   help the former, and blindly resubmitting after a timeout could run
//!   the job twice on a healthy-but-slow server.
//!
//! Jitter is deterministic (a [`RetryPolicy::jitter_seed`]-keyed hash of
//! the attempt number), so tests and repro runs see identical schedules
//! while distinct clients (distinct seeds) still spread their retries.

use super::client::{ClientConfig, JobReply, SortClient};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::thread;
use std::time::Duration;
use stream_arch::Value;

/// Backoff and give-up policy of a [`RetryingClient`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// First-retry backoff (default 10 ms); attempt `k` backs off
    /// `base · 2^k`, jittered.
    pub base: Duration,
    /// Upper bound on any single backoff (default 2 s).
    pub cap: Duration,
    /// Attempts per job before giving up (default 8). The first try
    /// counts, so `max_attempts: 1` means "never retry".
    pub max_attempts: u32,
    /// How long to wait for each attempt's reply (default 60 s).
    pub reply_timeout: Duration,
    /// Seed of the deterministic jitter. Give distinct clients distinct
    /// seeds so their retry schedules decorrelate.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_secs(2),
            max_attempts: 8,
            reply_timeout: Duration::from_secs(60),
            jitter_seed: 0x5EED,
        }
    }
}

/// Builder-style setters (the workspace-wide `with_*` convention).
///
/// ```
/// use sortsvc::net::RetryPolicy;
/// use std::time::Duration;
///
/// let policy = RetryPolicy::default()
///     .with_max_attempts(3)
///     .with_base(Duration::from_millis(5));
/// assert_eq!(policy.max_attempts, 3);
/// ```
impl RetryPolicy {
    /// Set the first-retry backoff.
    pub fn with_base(mut self, base: Duration) -> Self {
        self.base = base;
        self
    }

    /// Set the backoff cap.
    pub fn with_cap(mut self, cap: Duration) -> Self {
        self.cap = cap;
        self
    }

    /// Set the attempts per job before giving up.
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts;
        self
    }

    /// Set the per-attempt reply timeout.
    pub fn with_reply_timeout(mut self, timeout: Duration) -> Self {
        self.reply_timeout = timeout;
        self
    }

    /// Set the deterministic jitter seed.
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (0-based) when the server
    /// hinted `retry_after_ms` (0 = no hint): the jittered, capped
    /// exponential backoff, floored at the hint — the hint is a promise
    /// that retrying sooner is pointless, so jitter never undercuts it.
    pub fn delay(&self, attempt: u32, retry_after_ms: u32) -> Duration {
        let backoff = self
            .base
            .checked_mul(1u32 << attempt.min(16))
            .unwrap_or(self.cap)
            .min(self.cap);
        let jittered = backoff.mul_f64(jitter_factor(self.jitter_seed, attempt));
        jittered.max(Duration::from_millis(u64::from(retry_after_ms)))
    }
}

/// Deterministic jitter in `[0.5, 1.0)`: a splitmix64-style hash of
/// `(seed, attempt)` mapped onto the upper half of the unit interval
/// (full-range jitter could collapse a backoff to ~zero and hammer a
/// recovering server).
fn jitter_factor(seed: u64, attempt: u32) -> f64 {
    let mut z = seed ^ (u64::from(attempt) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    0.5 + (z >> 11) as f64 / (1u64 << 53) as f64 * 0.5
}

/// Counters describing what the failure loop has done so far.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Successful (re)connections, including the first.
    pub connects: u64,
    /// Reconnections forced by a dead connection.
    pub reconnects: u64,
    /// Submissions beyond each job's first attempt.
    pub resubmits: u64,
    /// Retryable rejects waited out.
    pub rejects_retried: u64,
}

/// A [`SortClient`] wrapped in the reconnect-and-resubmit loop described
/// in the module docs. One job at a time: [`RetryingClient::sort`] owns
/// the submission until it has a result or a final error.
pub struct RetryingClient {
    addrs: Vec<SocketAddr>,
    /// Index into `addrs` of the *next* connection attempt.
    next_addr: usize,
    config: ClientConfig,
    policy: RetryPolicy,
    client: Option<SortClient>,
    stats: RetryStats,
}

/// How one attempt ended, internally.
enum Attempt {
    Done(Vec<Value>),
    /// Retry after a backoff; `reconnect` says whether the connection
    /// must be rebuilt first.
    Retry {
        reconnect: bool,
        retry_after_ms: u32,
        error: io::Error,
    },
    Fatal(io::Error),
}

impl RetryingClient {
    /// Resolve `addr` and build a client with default config and policy.
    /// Resolution may yield several addresses (e.g. a drained primary and
    /// its sibling); reconnects rotate through all of them.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<RetryingClient> {
        Self::connect_with(addr, ClientConfig::default(), RetryPolicy::default())
    }

    /// [`RetryingClient::connect`] with explicit config and policy. The
    /// first TCP connection is lazy — it happens on the first
    /// [`RetryingClient::sort`] — so constructing a client before its
    /// server is up is fine.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
        policy: RetryPolicy,
    ) -> io::Result<RetryingClient> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ));
        }
        Ok(RetryingClient {
            addrs,
            next_addr: 0,
            config,
            policy,
            client: None,
            stats: RetryStats::default(),
        })
    }

    /// The failure-loop counters so far.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// The policy the failure loop runs under.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Sort `values` remotely, retrying per the [`RetryPolicy`]. Returns
    /// the sorted records, or the *last* error once the policy gives up
    /// (or immediately for non-retryable rejects and reply timeouts).
    pub fn sort(&mut self, values: Vec<Value>) -> io::Result<Vec<Value>> {
        let mut last_error: Option<io::Error> = None;
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                self.stats.resubmits += 1;
            }
            match self.try_once(&values) {
                Attempt::Done(sorted) => return Ok(sorted),
                Attempt::Fatal(err) => return Err(err),
                Attempt::Retry {
                    reconnect,
                    retry_after_ms,
                    error,
                } => {
                    if reconnect {
                        self.client = None;
                        self.stats.reconnects += 1;
                    } else {
                        self.stats.rejects_retried += 1;
                    }
                    last_error = Some(error);
                    // No sleep after the final attempt — we are about to
                    // give up, not retry.
                    if attempt + 1 < self.policy.max_attempts {
                        thread::sleep(self.policy.delay(attempt, retry_after_ms));
                    }
                }
            }
        }
        Err(last_error.unwrap_or_else(|| io::Error::other("retry policy allows zero attempts")))
    }

    /// One submit → flush → wait round trip, classifying every failure.
    fn try_once(&mut self, values: &[Value]) -> Attempt {
        let client = match self.ensure_connected() {
            Ok(c) => c,
            Err(err) => {
                return Attempt::Retry {
                    reconnect: true,
                    retry_after_ms: 0,
                    error: err,
                }
            }
        };
        let connection_lost = |error: io::Error| Attempt::Retry {
            reconnect: true,
            retry_after_ms: 0,
            error,
        };
        let ticket = match client.submit(values.to_vec()) {
            Ok(t) => t,
            Err(err) => return connection_lost(err),
        };
        if let Err(err) = client.flush() {
            return connection_lost(err);
        }
        match ticket.wait_timeout(self.policy.reply_timeout) {
            Ok(JobReply::Sorted(sorted)) => Attempt::Done(sorted),
            Ok(JobReply::Rejected {
                code,
                retry_after_ms,
            }) => {
                let error = io::Error::other(format!("server rejected the job: {code}"));
                if code.is_retryable() {
                    Attempt::Retry {
                        reconnect: false,
                        retry_after_ms,
                        error,
                    }
                } else {
                    Attempt::Fatal(error)
                }
            }
            // A timeout on a live connection is ambiguous — the job may
            // still complete — so resubmitting risks running it twice.
            // Hand the decision back to the caller.
            Err(err) if err.kind() == io::ErrorKind::TimedOut => Attempt::Fatal(err),
            Err(err) => connection_lost(err),
        }
    }

    /// Connect (to the next address in rotation) if not connected.
    fn ensure_connected(&mut self) -> io::Result<&mut SortClient> {
        if self.client.is_none() {
            let addr = self.addrs[self.next_addr % self.addrs.len()];
            self.next_addr = (self.next_addr + 1) % self.addrs.len();
            let client = SortClient::connect_with(addr, self.config.clone())?;
            self.stats.connects += 1;
            self.client = Some(client);
        }
        Ok(self.client.as_mut().expect("just connected"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{ServerConfig, SortServer};

    fn small_server(max_pending: usize) -> SortServer {
        let mut config = ServerConfig::default();
        config.service.device_slots = 1;
        config.max_pending_jobs = max_pending;
        SortServer::start("127.0.0.1:0", config).expect("bind loopback")
    }

    fn fast_policy(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(10),
            max_attempts,
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn delay_is_capped_jittered_and_honors_hints() {
        let policy = RetryPolicy::default();
        for attempt in 0..40 {
            let d = policy.delay(attempt, 0);
            assert!(d <= policy.cap, "attempt {attempt}: {d:?} above cap");
            assert!(
                d >= policy.base / 2,
                "attempt {attempt}: {d:?} under the jitter floor"
            );
            // Deterministic: same policy, same attempt, same delay.
            assert_eq!(d, policy.delay(attempt, 0));
        }
        // Early backoffs are small; the hint floors them.
        assert!(policy.delay(0, 0) < Duration::from_millis(500));
        assert!(policy.delay(0, 500) >= Duration::from_millis(500));
        // The hint floors even the cap.
        assert!(policy.delay(30, 5_000) >= Duration::from_secs(5));
    }

    #[test]
    fn jitter_stays_in_the_upper_half_and_varies() {
        let mut distinct = std::collections::HashSet::new();
        for attempt in 0..64 {
            let f = jitter_factor(7, attempt);
            assert!((0.5..1.0).contains(&f), "factor {f} out of range");
            distinct.insert(f.to_bits());
        }
        assert!(distinct.len() > 32, "jitter must actually vary");
    }

    #[test]
    fn sorts_through_a_healthy_server() {
        let server = small_server(1024);
        let mut client = RetryingClient::connect(server.local_addr()).expect("resolve");
        let sorted = client.sort(workloads::uniform(512, 11)).expect("sorted");
        assert_eq!(sorted.len(), 512);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(client.stats().connects, 1);
        assert_eq!(client.stats().resubmits, 0);
    }

    #[test]
    fn gives_up_after_max_attempts_of_connection_refusal() {
        // Bind-then-drop frees a port nothing listens on; connecting to
        // it is refused immediately (no firewalled-port hang).
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr")
        };
        let mut client =
            RetryingClient::connect_with(addr, ClientConfig::default(), fast_policy(3))
                .expect("resolve");
        let err = client
            .sort(workloads::uniform(8, 1))
            .expect_err("no server");
        assert_ne!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(client.stats().reconnects, 3, "every attempt reconnects");
        assert_eq!(client.stats().resubmits, 2, "attempts beyond the first");
    }

    #[test]
    fn fails_over_to_a_sibling_after_a_drain() {
        let primary = small_server(1024);
        let sibling = small_server(1024);
        let addrs = [primary.local_addr(), sibling.local_addr()];
        let mut client =
            RetryingClient::connect_with(&addrs[..], ClientConfig::default(), fast_policy(8))
                .expect("resolve");

        // First job lands on the primary.
        assert_eq!(
            client.sort(workloads::uniform(64, 3)).expect("ok").len(),
            64
        );
        assert_eq!(client.stats().connects, 1);

        // Drain the primary: it answers in-flight work, says GOODBYE and
        // goes away. The next job must fail over and still come back
        // sorted — the reconnect-and-resubmit contract.
        let stats = primary.drain();
        assert_eq!(stats.service.jobs_completed, 1);
        let sorted = client.sort(workloads::uniform(128, 4)).expect("failover");
        assert_eq!(sorted.len(), 128);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        assert!(client.stats().reconnects >= 1, "must have reconnected");

        let sibling_stats = sibling.shutdown();
        assert_eq!(sibling_stats.service.jobs_completed, 1);
    }
}
