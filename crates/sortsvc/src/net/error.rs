//! Typed wire error codes and their mapping onto the service's
//! [`RejectReason`] backpressure.
//!
//! The in-process service signals overload by *returning* a
//! [`RejectReason`]; the wire front-end turns that into a `REJECT` frame
//! carrying one of these codes plus a `retry_after_ms` hint, so an
//! overloaded server degrades gracefully — clients get a typed, retryable
//! answer instead of a dropped connection. The normative code table lives
//! in `docs/PROTOCOL.md` § Error codes.
//!
//! ```
//! use sortsvc::net::ErrorCode;
//! use sortsvc::RejectReason;
//!
//! assert_eq!(ErrorCode::from(RejectReason::QueueFull), ErrorCode::QueueFull);
//! assert!(ErrorCode::QueueFull.is_retryable());
//! assert!(!ErrorCode::QueueFull.is_connection_fatal());
//! assert!(ErrorCode::BadMagic.is_connection_fatal());
//! ```

use crate::job::RejectReason;
use std::fmt;

/// Error codes of protocol version 1.
///
/// Codes below 100 are **per-job**: they arrive in a `REJECT` frame, the
/// connection survives, and — for the retryable ones — the job may be
/// resubmitted after the advisory `retry_after_ms`. Codes at or above 100
/// are **connection-fatal**: they arrive in an `ERROR` frame and the
/// sender closes the connection, because the byte stream can no longer be
/// trusted to be in sync.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ErrorCode {
    /// The admission queue already holds its configured maximum number of
    /// jobs ([`RejectReason::QueueFull`]). Retryable.
    QueueFull = 1,
    /// Admitting the job would exceed the service's bounded in-flight
    /// memory ([`RejectReason::MemoryPressure`]). Retryable.
    MemoryPressure = 2,
    /// The server's wire-level submission queue is full — backpressure
    /// applied before the job ever reached the service. Retryable.
    ServerBusy = 3,
    /// The job's payload did not decode (bad record section, unknown
    /// reserved bits, …). Not retryable: the same bytes will fail again.
    MalformedPayload = 4,
    /// The submission named a payload encoding this server does not
    /// support.
    UnsupportedEncoding = 5,
    /// The job carries more records than the server accepts per job.
    JobTooLarge = 6,
    /// The service failed internally while executing the job's batch.
    Internal = 7,

    /// Frame-layer violation: the magic bytes were wrong.
    BadMagic = 100,
    /// Frame-layer violation: unsupported protocol version.
    BadVersion = 101,
    /// Frame-layer violation: length prefix beyond the receiver's bound.
    FrameOversized = 102,
    /// Frame-layer violation: anything else that desynchronises the
    /// stream (unknown frame type, non-zero reserved word, truncation,
    /// a frame type that is invalid in the current direction).
    BadFrame = 103,
}

impl ErrorCode {
    /// Decode a wire code.
    pub fn from_wire(code: u16) -> Option<ErrorCode> {
        match code {
            1 => Some(ErrorCode::QueueFull),
            2 => Some(ErrorCode::MemoryPressure),
            3 => Some(ErrorCode::ServerBusy),
            4 => Some(ErrorCode::MalformedPayload),
            5 => Some(ErrorCode::UnsupportedEncoding),
            6 => Some(ErrorCode::JobTooLarge),
            7 => Some(ErrorCode::Internal),
            100 => Some(ErrorCode::BadMagic),
            101 => Some(ErrorCode::BadVersion),
            102 => Some(ErrorCode::FrameOversized),
            103 => Some(ErrorCode::BadFrame),
            _ => None,
        }
    }

    /// True for codes that end the connection (`ERROR` frame codes).
    pub fn is_connection_fatal(&self) -> bool {
        (*self as u16) >= 100
    }

    /// True when resubmitting the same job later can succeed — the
    /// overload codes. Malformed or oversized jobs fail deterministically
    /// and must not be retried.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ErrorCode::QueueFull | ErrorCode::MemoryPressure | ErrorCode::ServerBusy
        )
    }

    /// Short stable name (matches the table in `docs/PROTOCOL.md`).
    pub fn name(&self) -> &'static str {
        match self {
            ErrorCode::QueueFull => "QUEUE_FULL",
            ErrorCode::MemoryPressure => "MEMORY_PRESSURE",
            ErrorCode::ServerBusy => "SERVER_BUSY",
            ErrorCode::MalformedPayload => "MALFORMED_PAYLOAD",
            ErrorCode::UnsupportedEncoding => "UNSUPPORTED_ENCODING",
            ErrorCode::JobTooLarge => "JOB_TOO_LARGE",
            ErrorCode::Internal => "INTERNAL",
            ErrorCode::BadMagic => "BAD_MAGIC",
            ErrorCode::BadVersion => "BAD_VERSION",
            ErrorCode::FrameOversized => "FRAME_OVERSIZED",
            ErrorCode::BadFrame => "BAD_FRAME",
        }
    }
}

impl From<RejectReason> for ErrorCode {
    /// The wire image of the service's admission backpressure.
    fn from(reason: RejectReason) -> ErrorCode {
        match reason {
            RejectReason::QueueFull => ErrorCode::QueueFull,
            RejectReason::MemoryPressure => ErrorCode::MemoryPressure,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), *self as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_code_round_trips_through_the_wire() {
        for code in [
            ErrorCode::QueueFull,
            ErrorCode::MemoryPressure,
            ErrorCode::ServerBusy,
            ErrorCode::MalformedPayload,
            ErrorCode::UnsupportedEncoding,
            ErrorCode::JobTooLarge,
            ErrorCode::Internal,
            ErrorCode::BadMagic,
            ErrorCode::BadVersion,
            ErrorCode::FrameOversized,
            ErrorCode::BadFrame,
        ] {
            assert_eq!(ErrorCode::from_wire(code as u16), Some(code));
        }
        assert_eq!(ErrorCode::from_wire(0), None);
        assert_eq!(ErrorCode::from_wire(999), None);
    }

    #[test]
    fn reject_reasons_map_onto_wire_codes() {
        assert_eq!(
            ErrorCode::from(RejectReason::QueueFull),
            ErrorCode::QueueFull
        );
        assert_eq!(
            ErrorCode::from(RejectReason::MemoryPressure),
            ErrorCode::MemoryPressure
        );
    }

    #[test]
    fn fatality_and_retryability_split_the_code_space() {
        assert!(!ErrorCode::QueueFull.is_connection_fatal());
        assert!(!ErrorCode::MalformedPayload.is_connection_fatal());
        assert!(ErrorCode::BadMagic.is_connection_fatal());
        assert!(ErrorCode::BadFrame.is_connection_fatal());
        assert!(ErrorCode::ServerBusy.is_retryable());
        assert!(!ErrorCode::MalformedPayload.is_retryable());
        assert!(!ErrorCode::BadVersion.is_retryable());
    }
}
