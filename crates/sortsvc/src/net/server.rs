//! The framed-TCP server front-end: an accept loop, one reader thread per
//! connection, and a dispatcher thread that micro-batches wire submissions
//! into [`SortService::process`] runs.
//!
//! The server is the bridge between the wire protocol (`docs/PROTOCOL.md`)
//! and the in-process pipeline: every well-formed `SUBMIT` frame becomes a
//! [`SortJob`] stamped with its wall-clock arrival time and flows through
//! the existing admission → tenant-fair-queue → coalescer → pooled-engine
//! path. Responses stream back per job id over the submitting connection
//! (`RESULT` on completion, `REJECT` with a typed [`ErrorCode`] and a
//! `retry_after_ms` hint on backpressure).
//!
//! Overload never drops a connection. Three layers of backpressure each
//! produce a typed, retryable answer:
//!
//! 1. **Wire level** — when more than [`ServerConfig::max_pending_jobs`]
//!    submissions are in flight, new jobs are rejected with
//!    [`ErrorCode::ServerBusy`] before they reach the service.
//! 2. **Admission control** — the service's own [`crate::RejectReason`]
//!    ([`ErrorCode::QueueFull`] / [`ErrorCode::MemoryPressure`]) are
//!    forwarded as `REJECT` frames.
//! 3. **Per-job validation** — malformed payloads, unknown encodings and
//!    oversized jobs are rejected individually; only frame-layer
//!    violations (bad magic, wrong version, oversized length prefix) are
//!    connection-fatal, because the byte stream can no longer be trusted.
//!
//! Observability is built in on two axes: any client can ask for a
//! [`ServerStats`] snapshot over the wire with an empty `STATS` frame
//! (answered as UTF-8 JSON), and [`ServerConfig::trace_path`] turns on the
//! process-wide [`stream_arch::telemetry`] sink for the server's lifetime,
//! exporting a Chrome `trace_event` JSON file at shutdown. Hot-path wire
//! counters (frames, connections, rejects) are relaxed atomics so the
//! per-frame path never contends on the service-aggregate mutex.

use super::error::ErrorCode;
use super::frame::{
    ErrorPayload, Frame, FramePoll, FrameReader, FrameType, PayloadEncoding, RejectPayload,
    ResultPayload, StatsPayload, SubmitPayload, HEADER_LEN, JOB_HEADER_LEN,
};
use super::lock;
use crate::job::SortJob;
use crate::metrics::{ratio, ServiceMetrics};
use crate::service::{ServiceConfig, ServiceReport, SortService};
use crate::wal::{self, AdmittedJob, Wal, WalConfig};
use serde::Serialize;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, Weak};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};
use stream_arch::telemetry::{self, LogHistogram, TraceSink};
use stream_arch::Value;

/// Configuration of a [`SortServer`].
///
/// ```
/// use sortsvc::net::ServerConfig;
///
/// let mut config = ServerConfig::default();
/// config.service.device_slots = 4;       // the in-process pipeline knobs
/// config.max_pending_jobs = 64;          // wire-level backpressure bound
/// assert!(config.max_batch_jobs > 0);
/// ```
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Configuration of the in-process [`SortService`] the server feeds.
    pub service: ServiceConfig,
    /// Wall-clock window the dispatcher holds a micro-batch open after its
    /// first submission, waiting for more jobs to coalesce with.
    pub batch_window: Duration,
    /// Maximum submissions per micro-batch (a batch closes early when it
    /// fills).
    pub max_batch_jobs: usize,
    /// Wire-level backpressure bound: submissions accepted but not yet
    /// answered. Beyond it new jobs get [`ErrorCode::ServerBusy`].
    pub max_pending_jobs: usize,
    /// Maximum frame payload length the server will read (the
    /// [`FrameReader`] bound; larger length prefixes are connection-fatal).
    pub max_frame_bytes: u32,
    /// Maximum records per job; larger jobs get [`ErrorCode::JobTooLarge`].
    pub max_job_elements: usize,
    /// Socket read timeout of the reader threads — the granularity at
    /// which they notice a shutdown request.
    pub read_timeout: Duration,
    /// Base advisory back-off returned in `retry_after_ms` with retryable
    /// rejects ([`ErrorCode::MemoryPressure`] hints twice this, since
    /// memory drains slower than queue slots).
    pub retry_after: Duration,
    /// When set, the server enables the process-wide
    /// [`stream_arch::telemetry`] sink for its lifetime and writes the
    /// collected spans as Chrome `trace_event` JSON to this path at
    /// shutdown (loadable in `chrome://tracing` / Perfetto). `None` (the
    /// default) leaves tracing untouched: the only per-frame cost is one
    /// relaxed atomic load.
    pub trace_path: Option<PathBuf>,
    /// When set, turns on the durability tier: a [`Wal`] in this
    /// directory records every admitted job before it is enqueued and
    /// every delivered outcome after its reply is sent, and on start the
    /// log is replayed (see [`SortService::recover`]) *before* the
    /// listener accepts traffic. `None` (the default) keeps durability
    /// entirely off the hot path — no extra I/O, no extra locking.
    pub durability_dir: Option<PathBuf>,
    /// WAL tuning (segment size, fsync policy) used when
    /// [`ServerConfig::durability_dir`] is set.
    pub wal: WalConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            service: ServiceConfig::default(),
            batch_window: Duration::from_millis(1),
            max_batch_jobs: 256,
            max_pending_jobs: 1024,
            max_frame_bytes: 64 << 20,
            max_job_elements: 1 << 22,
            read_timeout: Duration::from_millis(5),
            retry_after: Duration::from_millis(10),
            trace_path: None,
            durability_dir: None,
            wal: WalConfig::default(),
        }
    }
}

/// Builder-style setters (the workspace-wide `with_*` convention).
///
/// ```
/// use sortsvc::net::ServerConfig;
///
/// let config = ServerConfig::default()
///     .with_max_pending_jobs(64)
///     .with_max_batch_jobs(16);
/// assert_eq!(config.max_pending_jobs, 64);
/// ```
impl ServerConfig {
    /// Set the in-process service configuration.
    pub fn with_service(mut self, service: ServiceConfig) -> Self {
        self.service = service;
        self
    }

    /// Set the micro-batch window.
    pub fn with_batch_window(mut self, window: Duration) -> Self {
        self.batch_window = window;
        self
    }

    /// Set the maximum submissions per micro-batch.
    pub fn with_max_batch_jobs(mut self, jobs: usize) -> Self {
        self.max_batch_jobs = jobs;
        self
    }

    /// Set the wire-level backpressure bound.
    pub fn with_max_pending_jobs(mut self, jobs: usize) -> Self {
        self.max_pending_jobs = jobs;
        self
    }

    /// Set the maximum records per job.
    pub fn with_max_job_elements(mut self, elements: usize) -> Self {
        self.max_job_elements = elements;
        self
    }

    /// Enable Chrome-trace export to `path` at shutdown.
    pub fn with_trace_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_path = Some(path.into());
        self
    }

    /// Enable the durability tier in `dir`.
    pub fn with_durability_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durability_dir = Some(dir.into());
        self
    }

    /// Set the WAL tuning used with [`ServerConfig::durability_dir`].
    pub fn with_wal(mut self, wal: WalConfig) -> Self {
        self.wal = wal;
        self
    }
}

/// A point-in-time snapshot of a running server.
#[derive(Clone, Debug, Serialize)]
pub struct ServerStats {
    /// Connections accepted since start.
    pub connections_accepted: u64,
    /// Connections currently open.
    pub connections_open: u64,
    /// Peak simultaneous connections.
    pub peak_connections: u64,
    /// Frames received (all types).
    pub frames_received: u64,
    /// Frames sent (all types).
    pub frames_sent: u64,
    /// Jobs rejected before reaching the service (busy, malformed, too
    /// large, unsupported encoding).
    pub wire_rejects: u64,
    /// Connection-fatal protocol violations answered with `ERROR`.
    pub fatal_errors: u64,
    /// Micro-batches the dispatcher ran through the service.
    pub micro_batches: u64,
    /// Aggregate service metrics over every micro-batch: job/batch/engine
    /// counters and simulated makespan are summed, latency/queue/execution
    /// distributions are merged streaming histograms (so percentiles stay
    /// exact-to-bucket no matter how many jobs the server has seen),
    /// occupancy stays capacity-weighted. `jobs_submitted` /
    /// `jobs_rejected` include the wire-level rejects, so
    /// `submitted = completed + rejected` holds for the server exactly as
    /// it does for one in-process run.
    pub service: ServiceMetrics,
}

/// What one reader thread hands the dispatcher per accepted `SUBMIT`.
struct Submission {
    writer: Arc<ConnWriter>,
    job_id: u64,
    tenant: u32,
    encoding: PayloadEncoding,
    values: Vec<Value>,
    received: Instant,
    /// Log-wide WAL id of the admission record, when durability is on —
    /// the id the dispatcher acknowledges after the reply goes out.
    wal_id: Option<u64>,
}

/// The write half of one connection. Reader threads (rejects, pongs) and
/// the dispatcher (results) share it behind a mutex, so response frames
/// never interleave mid-frame.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    shared: Arc<Shared>,
}

impl ConnWriter {
    /// Send one frame, best effort: a peer that vanished mid-response is
    /// the peer's problem, not the server's.
    fn send(&self, frame_type: FrameType, payload: Vec<u8>) {
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        Frame::new(frame_type, payload).encode_into(&mut bytes);
        if lock(&self.stream).write_all(&bytes).is_ok() {
            self.shared.wire.frames_sent.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn close(&self) {
        let _ = lock(&self.stream).shutdown(Shutdown::Both);
    }
}

/// Per-frame wire counters. These are bumped on every frame of every
/// connection, so they are relaxed atomics rather than fields behind the
/// [`StatsInner`] mutex: a reader thread never blocks on another
/// connection's counter bump (or on a concurrent [`Shared::snapshot`])
/// just to note that a frame went by. Each counter is independently
/// monotone; a snapshot is a set of individually-exact values, not a
/// cross-counter transaction — the same guarantee the old mutex gave
/// anyone who read stats while traffic was in flight.
#[derive(Default)]
struct WireStats {
    connections_accepted: AtomicU64,
    connections_open: AtomicU64,
    peak_connections: AtomicU64,
    frames_received: AtomicU64,
    frames_sent: AtomicU64,
    wire_rejects: AtomicU64,
    fatal_errors: AtomicU64,
}

impl WireStats {
    fn connection_opened(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
        let open = self.connections_open.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_connections.fetch_max(open, Ordering::Relaxed);
    }
}

/// State shared by every server thread.
struct Shared {
    stop: AtomicBool,
    /// Set by [`SortServer::drain`]: new submissions are turned away with
    /// [`ErrorCode::ServerBusy`] while in-flight ones finish.
    draining: AtomicBool,
    pending: AtomicUsize,
    wire: WireStats,
    stats: Mutex<StatsInner>,
    device_slots: usize,
    policy_crossover: u64,
    /// Wall-clock origin of the server's arrival timeline.
    started: Instant,
    /// The write-ahead log, when [`ServerConfig::durability_dir`] is set.
    /// Reader threads append admissions, the dispatcher appends
    /// acknowledgements; the mutex keeps records whole.
    wal: Option<Mutex<Wal>>,
    /// Next log-wide WAL job id (wire echo ids are only per-connection
    /// unique, so the log mints its own).
    wal_seq: AtomicU64,
    /// What startup recovery found, surfaced through every snapshot.
    recovery: wal::RecoveryStats,
    /// Write halves of live connections, so a drain can say GOODBYE to
    /// everyone. Dead entries are pruned on each accept.
    writers: Mutex<Vec<Weak<ConnWriter>>>,
}

impl Shared {
    /// Fold into the service-aggregate side of the stats. Only the
    /// dispatcher calls this (once per micro-batch), so the mutex is off
    /// the per-frame path entirely — see [`WireStats`].
    fn stat<R>(&self, f: impl FnOnce(&mut StatsInner) -> R) -> R {
        f(&mut lock(&self.stats))
    }

    fn snapshot(&self) -> ServerStats {
        let s = lock(&self.stats);
        let wire_rejects = self.wire.wire_rejects.load(Ordering::Relaxed);
        let service = ServiceMetrics {
            jobs_submitted: s.jobs_submitted + wire_rejects as usize,
            jobs_completed: s.jobs_completed,
            jobs_rejected: s.jobs_rejected + wire_rejects as usize,
            batches: s.service_batches,
            elements_sorted: s.elements_sorted,
            makespan_ms: s.makespan_ms,
            throughput_jobs_per_s: ratio(s.jobs_completed as f64, s.makespan_ms / 1e3),
            throughput_kelems_per_s: ratio(s.elements_sorted as f64 / 1e3, s.makespan_ms / 1e3),
            latency_mean_ms: s.latency_hist.mean(),
            latency_p50_ms: s.latency_hist.quantile(0.5),
            latency_p99_ms: s.latency_hist.quantile(0.99),
            queue_mean_ms: s.queue_hist.mean(),
            mean_batch_occupancy: ratio(s.occupancy_weight, s.capacity_total),
            mean_jobs_per_batch: ratio(s.batch_jobs as f64, s.service_batches as f64),
            cpu_jobs: s.cpu_jobs,
            gpu_jobs: s.gpu_jobs,
            sharded_jobs: s.sharded_jobs,
            tera_jobs: s.tera_jobs,
            topk_jobs: s.topk_jobs,
            orderby_jobs: s.orderby_jobs,
            percentile_jobs: s.percentile_jobs,
            sharded_batches: s.sharded_batches,
            shard_skew_max: s.shard_skew_max,
            device_busy_ms: s.device_busy_ms,
            device_utilization: ratio(s.device_busy_ms, self.device_slots as f64 * s.makespan_ms),
            wall_ms: s.wall_ms,
            policy_crossover: self.policy_crossover,
            recovered_jobs: self.recovery.recovered_jobs,
            replayed_bytes: self.recovery.replayed_bytes,
            torn_tail_truncated: self.recovery.torn_tail_truncated,
            latency: s.latency_hist.summary(),
            queue_wait: s.queue_hist.summary(),
            execution: s.exec_hist.summary(),
        };
        ServerStats {
            connections_accepted: self.wire.connections_accepted.load(Ordering::Relaxed),
            connections_open: self.wire.connections_open.load(Ordering::Relaxed),
            peak_connections: self.wire.peak_connections.load(Ordering::Relaxed),
            frames_received: self.wire.frames_received.load(Ordering::Relaxed),
            frames_sent: self.wire.frames_sent.load(Ordering::Relaxed),
            wire_rejects,
            fatal_errors: self.wire.fatal_errors.load(Ordering::Relaxed),
            micro_batches: s.micro_batches,
            service,
        }
    }
}

/// Service-level aggregates across micro-batch runs, folded in by the
/// dispatcher once per batch. Per-frame wire counters live in
/// [`WireStats`] instead.
#[derive(Default)]
struct StatsInner {
    micro_batches: u64,
    jobs_submitted: usize,
    jobs_completed: usize,
    jobs_rejected: usize,
    service_batches: usize,
    batch_jobs: u64,
    elements_sorted: u64,
    makespan_ms: f64,
    device_busy_ms: f64,
    wall_ms: f64,
    occupancy_weight: f64,
    capacity_total: f64,
    cpu_jobs: usize,
    gpu_jobs: usize,
    sharded_jobs: usize,
    tera_jobs: usize,
    topk_jobs: usize,
    orderby_jobs: usize,
    percentile_jobs: usize,
    sharded_batches: usize,
    shard_skew_max: f64,
    // Streaming distributions over every completed job. Unlike the
    // materialized sample vector they replaced, these are O(buckets) no
    // matter how long the server runs, and merging micro-batches is
    // lossless (bucket counts add).
    latency_hist: LogHistogram,
    queue_hist: LogHistogram,
    exec_hist: LogHistogram,
}

impl StatsInner {
    /// Fold one service run into the aggregates.
    fn merge_run(&mut self, report: &ServiceReport) {
        let m = &report.metrics;
        self.micro_batches += 1;
        self.jobs_submitted += m.jobs_submitted;
        self.jobs_completed += m.jobs_completed;
        self.jobs_rejected += m.jobs_rejected;
        self.service_batches += m.batches;
        self.elements_sorted += m.elements_sorted;
        self.makespan_ms += m.makespan_ms;
        self.device_busy_ms += m.device_busy_ms;
        self.wall_ms += m.wall_ms;
        self.cpu_jobs += m.cpu_jobs;
        self.gpu_jobs += m.gpu_jobs;
        self.sharded_jobs += m.sharded_jobs;
        self.tera_jobs += m.tera_jobs;
        self.topk_jobs += m.topk_jobs;
        self.orderby_jobs += m.orderby_jobs;
        self.percentile_jobs += m.percentile_jobs;
        self.sharded_batches += m.sharded_batches;
        self.shard_skew_max = self.shard_skew_max.max(m.shard_skew_max);
        for b in &report.batches {
            self.occupancy_weight += b.occupancy * b.capacity as f64;
            self.capacity_total += b.capacity as f64;
            self.batch_jobs += b.jobs as u64;
        }
        // Re-record the per-job samples rather than merging the report's
        // summaries: bucketing is deterministic, so the server's
        // histograms are byte-for-byte what one big run over the same
        // samples would produce — which is what makes a `STATS` snapshot
        // agree exactly with the per-run [`ServiceMetrics`] rollup.
        for r in &report.results {
            self.latency_hist.record(r.latency_ms);
            self.queue_hist.record(r.queue_ms);
            self.exec_hist.record(r.latency_ms - r.queue_ms);
        }
    }
}

/// The framed-TCP sorting server.
///
/// [`SortServer::start`] binds, calibrates a [`SortService`] and spawns
/// the thread ensemble; the handle only *observes* ([`SortServer::stats`])
/// and *stops* ([`SortServer::shutdown`], also run on drop). Shutdown is
/// graceful: accepted submissions still in the dispatcher queue are
/// processed and answered before the threads exit.
pub struct SortServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
    submit_tx: Option<Sender<Submission>>,
    trace_path: Option<PathBuf>,
}

impl SortServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving, calibrating a fresh [`SortService`] from
    /// [`ServerConfig::service`].
    pub fn start(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<SortServer> {
        let service = SortService::new(config.service.clone());
        Self::start_with(addr, config, service)
    }

    /// Bind `addr` and start serving with an already built service (lets
    /// tests share one policy calibration across servers).
    pub fn start_with(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        service: SortService,
    ) -> io::Result<SortServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let trace_path = config.trace_path.clone();
        if trace_path.is_some() {
            TraceSink::global().set_enabled(true);
        }

        // Durability: replay the log *before* the listener accepts
        // traffic, so every job a previous process life admitted but
        // never answered is re-run (and acknowledged) ahead of new work.
        let mut stats_inner = StatsInner::default();
        let mut wal_state = None;
        let mut recovery = wal::RecoveryStats::default();
        if let Some(dir) = &config.durability_dir {
            let recovered = service
                .recover(dir, config.wal.clone())
                .map_err(|e| io::Error::other(format!("wal recovery failed: {e}")))?;
            if recovered.report.metrics.jobs_submitted > 0 {
                stats_inner.merge_run(&recovered.report);
            }
            recovery = recovered.stats;
            wal_state = Some(Mutex::new(recovered.wal));
        }

        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
            wire: WireStats::default(),
            stats: Mutex::new(stats_inner),
            device_slots: service.config().device_slots,
            policy_crossover: service.policy().crossover() as u64,
            started: Instant::now(),
            wal: wal_state,
            wal_seq: AtomicU64::new(1),
            recovery,
            writers: Mutex::new(Vec::new()),
        });
        let (tx, rx) = mpsc::channel::<Submission>();

        let dispatcher = {
            let config = config.clone();
            let shared = shared.clone();
            let started = shared.started;
            thread::spawn(move || dispatcher_loop(rx, service, config, shared, started))
        };
        let accept = {
            let tx = tx.clone();
            let shared = shared.clone();
            thread::spawn(move || accept_loop(listener, tx, config, shared))
        };

        Ok(SortServer {
            local_addr,
            shared,
            accept: Some(accept),
            dispatcher: Some(dispatcher),
            submit_tx: Some(tx),
            trace_path,
        })
    }

    /// The address the server is listening on (resolves the ephemeral
    /// port of a `"127.0.0.1:0"` bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time stats snapshot.
    pub fn stats(&self) -> ServerStats {
        self.shared.snapshot()
    }

    /// Stop accepting, drain the dispatcher queue, join every thread and
    /// return the final stats.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop();
        self.shared.snapshot()
    }

    /// Graceful drain: stop admitting (new submissions get a retryable
    /// [`ErrorCode::ServerBusy`]), let every in-flight job finish and be
    /// answered, fsync the write-ahead log, send `GOODBYE` on every live
    /// connection, then shut down and return the final stats.
    ///
    /// This is the clean-handoff half of the durability contract: after
    /// `drain` returns, the log on disk contains an acknowledgement for
    /// every job any client got an answer for, so the next process life
    /// recovers nothing (see `docs/DURABILITY.md`).
    pub fn drain(mut self) -> ServerStats {
        self.shared.draining.store(true, Ordering::SeqCst);
        while self.shared.pending.load(Ordering::SeqCst) > 0 {
            thread::sleep(Duration::from_millis(2));
        }
        if let Some(wal) = &self.shared.wal {
            if let Err(err) = lock(wal).sync() {
                eprintln!("sortsvc: wal fsync on drain failed: {err}");
            }
        }
        for weak in lock(&self.shared.writers).drain(..) {
            if let Some(writer) = weak.upgrade() {
                writer.send(FrameType::Goodbye, Vec::new());
            }
        }
        self.stop();
        self.shared.snapshot()
    }

    fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // With the accept thread and every reader gone, dropping the last
        // sender disconnects the channel; the dispatcher drains what is
        // queued, answers it, and exits.
        drop(self.submit_tx.take());
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        if let Some(path) = self.trace_path.take() {
            // Every thread has joined, so the sink holds the complete
            // span set. Export failures are reported, not fatal: the
            // server already shut down cleanly.
            let sink = TraceSink::global();
            sink.set_enabled(false);
            let json = telemetry::chrome_trace_json(&sink.take_events());
            if let Err(err) = std::fs::write(&path, json) {
                eprintln!("sortsvc: failed to write trace {}: {err}", path.display());
            }
        }
    }
}

impl Drop for SortServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Accept connections until asked to stop, then join the reader threads.
fn accept_loop(
    listener: TcpListener,
    tx: Sender<Submission>,
    config: ServerConfig,
    shared: Arc<Shared>,
) {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(config.read_timeout));
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                shared.wire.connection_opened();
                let writer = Arc::new(ConnWriter {
                    stream: Mutex::new(write_half),
                    shared: shared.clone(),
                });
                {
                    let mut writers = lock(&shared.writers);
                    writers.retain(|w| w.strong_count() > 0);
                    writers.push(Arc::downgrade(&writer));
                }
                let tx = tx.clone();
                let config = config.clone();
                let shared = shared.clone();
                readers.push(thread::spawn(move || {
                    reader_loop(stream, writer, tx, config, shared)
                }));
            }
            // Nonblocking accept: idle-sleep and re-check the stop flag.
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
    for h in readers {
        let _ = h.join();
    }
}

/// One connection's read loop: decode frames, answer protocol traffic,
/// forward submissions.
fn reader_loop(
    mut stream: TcpStream,
    writer: Arc<ConnWriter>,
    tx: Sender<Submission>,
    config: ServerConfig,
    shared: Arc<Shared>,
) {
    let mut frames = FrameReader::new(config.max_frame_bytes);
    while !shared.stop.load(Ordering::Relaxed) {
        match frames.poll(&mut stream) {
            Ok(FramePoll::Frame(frame)) => {
                shared.wire.frames_received.fetch_add(1, Ordering::Relaxed);
                if !handle_frame(frame, &writer, &tx, &config, &shared) {
                    break;
                }
            }
            Ok(FramePoll::WouldBlock) => continue,
            Ok(FramePoll::Eof) => break,
            Err(err) => {
                // The stream is out of sync: say why, then hang up.
                writer.send(
                    FrameType::Error,
                    ErrorPayload {
                        code: err.error_code(),
                        message: err.to_string(),
                    }
                    .encode(),
                );
                shared.wire.fatal_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }
    writer.close();
    shared.wire.connections_open.fetch_sub(1, Ordering::Relaxed);
}

/// Dispatch one client frame. Returns `false` when the connection should
/// close.
fn handle_frame(
    frame: Frame,
    writer: &Arc<ConnWriter>,
    tx: &Sender<Submission>,
    config: &ServerConfig,
    shared: &Arc<Shared>,
) -> bool {
    match frame.frame_type {
        FrameType::Submit => {
            handle_submit(frame.payload, writer, tx, config, shared);
            true
        }
        FrameType::Ping => {
            writer.send(FrameType::Pong, frame.payload);
            true
        }
        // An unsolicited PONG is harmless; ignore it.
        FrameType::Pong => true,
        FrameType::Stats => {
            if !frame.payload.is_empty() {
                // A non-empty STATS request means the peer speaks a
                // different dialect; don't guess at the rest of the
                // stream.
                writer.send(
                    FrameType::Error,
                    ErrorPayload {
                        code: ErrorCode::BadFrame,
                        message: "STATS request payload must be empty".into(),
                    }
                    .encode(),
                );
                shared.wire.fatal_errors.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            let payload = StatsPayload {
                json: serde_json::to_string(&shared.snapshot()).expect("stats serialize"),
            };
            writer.send(FrameType::Stats, payload.encode());
            true
        }
        FrameType::Goodbye => false,
        // The peer declared the connection broken; nothing left to say.
        FrameType::Error => false,
        // Server-to-client frame types are invalid in this direction.
        FrameType::Result | FrameType::Reject => {
            writer.send(
                FrameType::Error,
                ErrorPayload {
                    code: ErrorCode::BadFrame,
                    message: "RESULT/REJECT are server-to-client frames".into(),
                }
                .encode(),
            );
            shared.wire.fatal_errors.fetch_add(1, Ordering::Relaxed);
            false
        }
    }
}

/// Validate one submission and either queue it or reject it in place.
fn handle_submit(
    payload: Vec<u8>,
    writer: &Arc<ConnWriter>,
    tx: &Sender<Submission>,
    config: &ServerConfig,
    shared: &Arc<Shared>,
) {
    // The job id lives in the first 8 payload bytes, so it is recoverable
    // (for the echo in the reject) even when the rest is malformed.
    let echo_id = payload
        .get(0..8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
        .unwrap_or(0);
    if payload.len() >= JOB_HEADER_LEN && PayloadEncoding::from_wire(payload[12]).is_none() {
        reject(writer, shared, echo_id, ErrorCode::UnsupportedEncoding, 0);
        return;
    }
    let decode_started = telemetry::enabled().then(Instant::now);
    let mut submit = match SubmitPayload::decode(&payload) {
        Ok(s) => s,
        Err(_) => {
            reject(writer, shared, echo_id, ErrorCode::MalformedPayload, 0);
            return;
        }
    };
    if let Some(started) = decode_started {
        telemetry::record_host_span(
            "wire",
            "submit-decode",
            started,
            &[("bytes", payload.len() as f64)],
        );
    }
    if submit.values.len() > config.max_job_elements {
        reject(writer, shared, submit.job_id, ErrorCode::JobTooLarge, 0);
        return;
    }
    // A draining server turns new work away with the same retryable
    // answer as a saturated one; clients with back-off find the restarted
    // process (or a sibling) on their next attempt.
    if shared.draining.load(Ordering::SeqCst) {
        let hint = retry_hint_ms(config, ErrorCode::ServerBusy);
        reject(writer, shared, submit.job_id, ErrorCode::ServerBusy, hint);
        return;
    }
    // Wire-level backpressure: bound the submissions in flight before the
    // service's own admission control ever sees them.
    let admitted = shared
        .pending
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < config.max_pending_jobs).then_some(n + 1)
        })
        .is_ok();
    if !admitted {
        let hint = retry_hint_ms(config, ErrorCode::ServerBusy);
        reject(writer, shared, submit.job_id, ErrorCode::ServerBusy, hint);
        return;
    }
    let received = Instant::now();
    // Durability: the admission record must be in the log *before* the
    // job can reach the dispatcher — a crash after this append replays
    // the job, a crash before it means the client never got an answer
    // and retries. Wire-level rejects above never touch the log because
    // nothing was admitted.
    let mut wal_id = None;
    if let Some(wal) = &shared.wal {
        let id = shared.wal_seq.fetch_add(1, Ordering::Relaxed);
        let record = AdmittedJob {
            job_id: id,
            tenant: submit.tenant,
            arrival_ms: received.duration_since(shared.started).as_secs_f64() * 1e3,
            hint: None,
            values: std::mem::take(&mut submit.values),
        };
        let appended = lock(wal).append_admitted(&record);
        submit.values = record.values;
        if let Err(err) = appended {
            // The job was never admitted durably, so it must not run:
            // answer with a non-retryable Internal and undo the pending
            // reservation.
            eprintln!("sortsvc: wal admission append failed: {err}");
            shared.pending.fetch_sub(1, Ordering::SeqCst);
            reject(writer, shared, submit.job_id, ErrorCode::Internal, 0);
            return;
        }
        wal_id = Some(id);
    }
    let submission = Submission {
        writer: writer.clone(),
        job_id: submit.job_id,
        tenant: submit.tenant,
        encoding: submit.encoding,
        values: submit.values,
        received,
        wal_id,
    };
    if tx.send(submission).is_err() {
        // The dispatcher is gone (shutdown race): still answer.
        shared.pending.fetch_sub(1, Ordering::SeqCst);
        let hint = retry_hint_ms(config, ErrorCode::ServerBusy);
        reject(writer, shared, echo_id, ErrorCode::ServerBusy, hint);
    }
}

fn reject(writer: &ConnWriter, shared: &Shared, job_id: u64, code: ErrorCode, retry_after_ms: u32) {
    shared.wire.wire_rejects.fetch_add(1, Ordering::Relaxed);
    writer.send(
        FrameType::Reject,
        RejectPayload {
            job_id,
            code,
            retry_after_ms,
        }
        .encode(),
    );
}

/// The advisory back-off sent with a retryable reject.
fn retry_hint_ms(config: &ServerConfig, code: ErrorCode) -> u32 {
    // `as_millis` is u128; a plain `as u32` cast would silently wrap a
    // large configured back-off (e.g. 2^32 ms ≈ 49.7 days → 0). Saturate
    // at the wire field's maximum instead.
    let base = u32::try_from(config.retry_after.as_millis())
        .unwrap_or(u32::MAX)
        .max(1);
    match code {
        ErrorCode::QueueFull | ErrorCode::ServerBusy => base,
        // In-flight memory drains slower than queue slots.
        ErrorCode::MemoryPressure => base.saturating_mul(2),
        _ => 0,
    }
}

/// Collect submissions into wall-clock micro-batches and run each through
/// the service.
fn dispatcher_loop(
    rx: Receiver<Submission>,
    service: SortService,
    config: ServerConfig,
    shared: Arc<Shared>,
    started: Instant,
) {
    loop {
        let first = match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(s) => s,
            Err(RecvTimeoutError::Timeout) => continue,
            // Every sender dropped and the queue is drained: shutdown.
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let deadline = Instant::now() + config.batch_window;
        let mut batch = vec![first];
        while batch.len() < config.max_batch_jobs {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(s) => batch.push(s),
                Err(_) => break,
            }
        }
        run_batch(&service, &config, &shared, started, batch);
    }
}

/// Run one micro-batch through the service and fan the answers back out
/// to the submitting connections.
fn run_batch(
    service: &SortService,
    config: &ServerConfig,
    shared: &Shared,
    started: Instant,
    mut batch: Vec<Submission>,
) {
    let n = batch.len();
    let _batch_span =
        telemetry::host_span("service", "micro-batch").map(|s| s.arg("jobs", n as f64));
    // Service job ids are batch positions, so each verdict maps back to
    // its wire submission by index; arrival times are wall-clock
    // milliseconds since server start, which preserves arrival order for
    // the admission queue and fairness machinery.
    let jobs: Vec<SortJob> = batch
        .iter_mut()
        .enumerate()
        .map(|(i, sub)| SortJob {
            id: i as u64,
            tenant: sub.tenant,
            arrival_ms: sub.received.duration_since(started).as_secs_f64() * 1e3,
            values: std::mem::take(&mut sub.values),
            hint: None,
            // The SUBMIT payload carries no kind; wire jobs are plain
            // sorts (typed clients encode/decode around them).
            kind: crate::job::JobKind::Sort,
        })
        .collect();

    match service.process(jobs) {
        Ok(report) => {
            shared.stat(|s| s.merge_run(&report));
            for (id, reason) in &report.rejected {
                let sub = &batch[*id as usize];
                let code = ErrorCode::from(*reason);
                sub.writer.send(
                    FrameType::Reject,
                    RejectPayload {
                        job_id: sub.job_id,
                        code,
                        retry_after_ms: retry_hint_ms(config, code),
                    }
                    .encode(),
                );
            }
            let mut completed_wal_ids = Vec::new();
            for result in report.results {
                let sub = &batch[result.id as usize];
                if let Some(id) = sub.wal_id {
                    completed_wal_ids.push(id);
                }
                let reply = ResultPayload {
                    job_id: sub.job_id,
                    encoding: sub.encoding,
                    values: result.output,
                };
                match reply.encode() {
                    Ok(payload) => sub.writer.send(FrameType::Result, payload),
                    // Unreachable in practice: a result mirrors its
                    // submission's encoding, and anything JSON cannot
                    // carry could not have been submitted as JSON.
                    Err(_) => sub.writer.send(
                        FrameType::Reject,
                        RejectPayload {
                            job_id: sub.job_id,
                            code: ErrorCode::Internal,
                            retry_after_ms: 0,
                        }
                        .encode(),
                    ),
                }
            }
            // Durability: acknowledgements go in *after* the replies are
            // on the wire, so a crash in between replays the job once
            // more (at-least-once) instead of losing an admitted job. An
            // append failure here is logged, not fatal — the worst case
            // is the same at-least-once replay.
            if let Some(wal_mutex) = &shared.wal {
                let mut wal = lock(wal_mutex);
                for (id, reason) in &report.rejected {
                    if let Some(wal_id) = batch[*id as usize].wal_id {
                        if let Err(err) = wal.append_rejected(wal_id, *reason) {
                            eprintln!("sortsvc: wal ack append failed: {err}");
                        }
                    }
                }
                for wal_id in completed_wal_ids {
                    if let Err(err) = wal.append_completed(wal_id) {
                        eprintln!("sortsvc: wal ack append failed: {err}");
                    }
                }
            }
        }
        Err(_) => {
            // The whole batch failed inside the engine: answer every job
            // so no client hangs, and count them as submitted + rejected.
            // Their WAL admissions stay unacknowledged on purpose — a
            // durability-enabled restart replays them (at-least-once).
            shared.stat(|s| {
                s.jobs_submitted += n;
                s.jobs_rejected += n;
            });
            for sub in &batch {
                sub.writer.send(
                    FrameType::Reject,
                    RejectPayload {
                        job_id: sub.job_id,
                        code: ErrorCode::Internal,
                        retry_after_ms: 0,
                    }
                    .encode(),
                );
            }
        }
    }
    // Wall-clock wire residency: SUBMIT accepted → answer written. One
    // span per job, closing exactly when its reply has gone out.
    if telemetry::enabled() {
        for sub in &batch {
            telemetry::record_host_span(
                "wire",
                "job-residency",
                sub.received,
                &[("job", sub.job_id as f64)],
            );
        }
    }
    shared.pending.fetch_sub(n, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config_with_retry_after(d: Duration) -> ServerConfig {
        ServerConfig {
            retry_after: d,
            ..ServerConfig::default()
        }
    }

    /// Regression: `retry_after.as_millis()` is u128 — a back-off at or
    /// beyond 2^32 ms used to wrap to a tiny (or zero) hint via `as u32`.
    #[test]
    fn retry_hint_saturates_instead_of_wrapping() {
        // 2^32 ms wrapped to exactly 0 under the old cast, which `.max(1)`
        // then turned into a 1 ms hint for a ~49.7-day configured back-off.
        let wrap = config_with_retry_after(Duration::from_millis(1u64 << 32));
        assert_eq!(retry_hint_ms(&wrap, ErrorCode::QueueFull), u32::MAX);
        assert_eq!(retry_hint_ms(&wrap, ErrorCode::ServerBusy), u32::MAX);
        // The 2x memory-pressure hint must saturate too, even when the
        // base itself fits in u32.
        let big = config_with_retry_after(Duration::from_millis(u64::from(u32::MAX)));
        assert_eq!(retry_hint_ms(&big, ErrorCode::MemoryPressure), u32::MAX);
    }

    #[test]
    fn retry_hint_small_values_unchanged() {
        let c = config_with_retry_after(Duration::from_millis(10));
        assert_eq!(retry_hint_ms(&c, ErrorCode::QueueFull), 10);
        assert_eq!(retry_hint_ms(&c, ErrorCode::MemoryPressure), 20);
        assert_eq!(retry_hint_ms(&c, ErrorCode::JobTooLarge), 0);
        // A sub-millisecond duration still advertises a non-zero hint.
        let zero = config_with_retry_after(Duration::from_micros(10));
        assert_eq!(retry_hint_ms(&zero, ErrorCode::QueueFull), 1);
    }
}
