//! The length-prefixed binary frame layer of the `sortsvc` wire protocol.
//!
//! Everything on the wire is a *frame*: a fixed 12-byte header (magic,
//! version, frame type, reserved word, payload length) followed by
//! `payload length` bytes of payload. The byte-level layout, the
//! request/response state machine and the versioning rules are specified
//! normatively in `docs/PROTOCOL.md`; this module is the reference
//! implementation both the server and the client use, and the codec tests
//! in `crates/sortsvc/tests/net_frame.rs` cite the spec section by
//! section.
//!
//! Decoding is strict: a wrong magic, an unsupported version, a non-zero
//! reserved word, an unknown frame type or a length prefix beyond the
//! configured bound each produce a typed [`FrameError`] — never a panic,
//! and never an allocation sized by attacker-controlled input (the payload
//! buffer is only grown after the length prefix has been validated).
//!
//! ```
//! use sortsvc::net::{Frame, FrameReader, FramePoll, FrameType};
//!
//! let frame = Frame::new(FrameType::Ping, Vec::new());
//! let bytes = frame.encode();
//! assert_eq!(&bytes[..4], b"ABSR"); // the protocol magic
//!
//! let mut reader = FrameReader::new(1024);
//! let mut cursor = std::io::Cursor::new(bytes);
//! match reader.poll(&mut cursor).unwrap() {
//!     FramePoll::Frame(f) => assert_eq!(f.frame_type, FrameType::Ping),
//!     other => panic!("expected a frame, got {other:?}"),
//! }
//! ```

use super::error::ErrorCode;
use std::fmt;
use std::io::Read;
use stream_arch::Value;

/// The four magic bytes opening every frame: `ABSR` (**A**daptive
/// **B**itonic **S**o**R**t).
pub const MAGIC: [u8; 4] = *b"ABSR";

/// The protocol version this implementation speaks (see `docs/PROTOCOL.md`
/// § Versioning).
pub const PROTOCOL_VERSION: u8 = 1;

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 12;

/// Size of the fixed per-job header inside `SUBMIT` / `RESULT` / `REJECT`
/// payloads.
pub const JOB_HEADER_LEN: usize = 16;

/// Bytes of one encoded record under the `RAW_LE` payload encoding.
pub const RAW_RECORD_LEN: usize = 8;

/// Frame types of protocol version 1 (`docs/PROTOCOL.md` § Frame types).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Client → server: submit one sort job.
    Submit = 0x01,
    /// Server → client: the sorted records of one completed job.
    Result = 0x02,
    /// Server → client: one job was turned away (typed code + retry hint).
    Reject = 0x03,
    /// Either direction: liveness probe.
    Ping = 0x04,
    /// Either direction: response to [`FrameType::Ping`].
    Pong = 0x05,
    /// Either direction: clean connection shutdown announcement.
    Goodbye = 0x06,
    /// Client → server: request a stats snapshot (empty payload);
    /// server → client: the snapshot as UTF-8 JSON (see [`StatsPayload`]).
    /// Added within version 1 per the `docs/PROTOCOL.md` § Versioning
    /// rules: receivers that predate it reject it with a typed
    /// `UNKNOWN_TYPE` error rather than misparsing.
    Stats = 0x07,
    /// Either direction: connection-fatal protocol error; the sender
    /// closes the connection after this frame.
    Error = 0x7F,
}

impl FrameType {
    /// Decode a wire byte into a frame type.
    pub fn from_wire(byte: u8) -> Option<FrameType> {
        match byte {
            0x01 => Some(FrameType::Submit),
            0x02 => Some(FrameType::Result),
            0x03 => Some(FrameType::Reject),
            0x04 => Some(FrameType::Ping),
            0x05 => Some(FrameType::Pong),
            0x06 => Some(FrameType::Goodbye),
            0x07 => Some(FrameType::Stats),
            0x7F => Some(FrameType::Error),
            _ => None,
        }
    }
}

/// How the records inside a `SUBMIT` / `RESULT` payload are encoded.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum PayloadEncoding {
    /// 8 bytes per record, little endian: `f32` key bit pattern, then
    /// `u32` id. Carries every possible key, including NaN payloads.
    RawLe = 0,
    /// A UTF-8 JSON array of `{"k": <number>, "id": <integer>}` objects.
    /// Only finite keys are representable (JSON has no NaN/∞ literals).
    Json = 1,
}

impl PayloadEncoding {
    /// Decode a wire byte into an encoding.
    pub fn from_wire(byte: u8) -> Option<PayloadEncoding> {
        match byte {
            0 => Some(PayloadEncoding::RawLe),
            1 => Some(PayloadEncoding::Json),
            _ => None,
        }
    }

    /// Human-readable name (`raw-le` / `json`).
    pub fn name(&self) -> &'static str {
        match self {
            PayloadEncoding::RawLe => "raw-le",
            PayloadEncoding::Json => "json",
        }
    }
}

/// A decoded frame: type plus raw payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// What kind of frame this is.
    pub frame_type: FrameType,
    /// The payload bytes (interpretation depends on `frame_type`).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Build a frame from a type and payload.
    pub fn new(frame_type: FrameType, payload: Vec<u8>) -> Self {
        Frame {
            frame_type,
            payload,
        }
    }

    /// Encode header + payload into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        self.encode_into(&mut out);
        out
    }

    /// Append header + payload to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC);
        out.push(PROTOCOL_VERSION);
        out.push(self.frame_type as u8);
        out.extend_from_slice(&0u16.to_le_bytes()); // reserved, must be zero
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
    }
}

/// A typed frame-layer decode error (`docs/PROTOCOL.md` § Error handling).
///
/// Every variant except [`FrameError::Io`] means the byte stream violated
/// the protocol; the connection cannot be resynchronised and must be
/// closed after an `ERROR` frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The stream ended in the middle of a frame.
    Truncated,
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte was not [`PROTOCOL_VERSION`].
    BadVersion(u8),
    /// The reserved header word was not zero.
    BadReserved(u16),
    /// The frame-type byte named no known frame type.
    UnknownType(u8),
    /// The length prefix exceeded the receiver's configured bound. The
    /// payload is *not* read (or allocated) in this case.
    Oversized {
        /// The length the header claimed.
        len: u32,
        /// The receiver's configured maximum payload length.
        limit: u32,
    },
    /// An I/O error other than a read timeout.
    Io(std::io::ErrorKind),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?} (expected {MAGIC:02x?})"),
            FrameError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (speaking {PROTOCOL_VERSION})"
                )
            }
            FrameError::BadReserved(r) => write!(f, "non-zero reserved header word {r:#06x}"),
            FrameError::UnknownType(t) => write!(f, "unknown frame type {t:#04x}"),
            FrameError::Oversized { len, limit } => {
                write!(
                    f,
                    "payload length {len} exceeds the configured bound {limit}"
                )
            }
            FrameError::Io(kind) => write!(f, "I/O error: {kind:?}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// The `ERROR`-frame code a receiver should send back for this
    /// violation before closing the connection.
    pub fn error_code(&self) -> ErrorCode {
        match self {
            FrameError::BadMagic(_) => ErrorCode::BadMagic,
            FrameError::BadVersion(_) => ErrorCode::BadVersion,
            FrameError::Oversized { .. } => ErrorCode::FrameOversized,
            _ => ErrorCode::BadFrame,
        }
    }
}

/// The outcome of one [`FrameReader::poll`] call.
#[derive(Debug, PartialEq, Eq)]
pub enum FramePoll {
    /// A complete frame was decoded.
    Frame(Frame),
    /// The underlying reader has no bytes right now (read timeout /
    /// `WouldBlock`); call `poll` again later. Any partial frame bytes
    /// already read are retained, so polling across timeouts never loses
    /// stream synchronisation.
    WouldBlock,
    /// The stream ended cleanly on a frame boundary.
    Eof,
}

/// An incremental frame decoder over any [`Read`].
///
/// The reader buffers partial input internally, so it is safe to drive
/// from a socket with a read timeout: a timeout mid-frame simply returns
/// [`FramePoll::WouldBlock`] and the next `poll` resumes where the stream
/// paused. Header fields are validated as soon as the 12 header bytes are
/// available — an oversized length prefix is rejected *before* any payload
/// is read or allocated.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    limit: u32,
}

impl FrameReader {
    /// Create a reader enforcing `max_payload_len` on the length prefix.
    pub fn new(max_payload_len: u32) -> Self {
        FrameReader {
            buf: Vec::new(),
            limit: max_payload_len,
        }
    }

    /// Validate the buffered header and return the payload length.
    fn header_payload_len(&self) -> Result<usize, FrameError> {
        let h = &self.buf[..HEADER_LEN];
        if h[..4] != MAGIC {
            return Err(FrameError::BadMagic([h[0], h[1], h[2], h[3]]));
        }
        if h[4] != PROTOCOL_VERSION {
            return Err(FrameError::BadVersion(h[4]));
        }
        FrameType::from_wire(h[5]).ok_or(FrameError::UnknownType(h[5]))?;
        let reserved = u16::from_le_bytes([h[6], h[7]]);
        if reserved != 0 {
            return Err(FrameError::BadReserved(reserved));
        }
        let len = u32::from_le_bytes([h[8], h[9], h[10], h[11]]);
        if len > self.limit {
            return Err(FrameError::Oversized {
                len,
                limit: self.limit,
            });
        }
        Ok(len as usize)
    }

    /// Try to decode the next frame from `r`.
    pub fn poll(&mut self, r: &mut impl Read) -> Result<FramePoll, FrameError> {
        loop {
            if self.buf.len() >= HEADER_LEN {
                let payload_len = self.header_payload_len()?;
                let total = HEADER_LEN + payload_len;
                if self.buf.len() >= total {
                    let frame_type = FrameType::from_wire(self.buf[5]).expect("validated above");
                    let payload = self.buf[HEADER_LEN..total].to_vec();
                    self.buf.drain(..total);
                    return Ok(FramePoll::Frame(Frame {
                        frame_type,
                        payload,
                    }));
                }
            }
            let mut chunk = [0u8; 4096];
            match r.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(FramePoll::Eof)
                    } else {
                        Err(FrameError::Truncated)
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => match e.kind() {
                    std::io::ErrorKind::Interrupted => continue,
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                        return Ok(FramePoll::WouldBlock)
                    }
                    kind => return Err(FrameError::Io(kind)),
                },
            }
        }
    }
}

/// A typed payload-layer decode error: the frame itself was well formed,
/// but its payload was not. Payload errors are per-job — the connection
/// survives and the offending job is rejected with
/// [`ErrorCode::MalformedPayload`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PayloadError(pub &'static str);

impl fmt::Display for PayloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed payload: {}", self.0)
    }
}

impl std::error::Error for PayloadError {}

/// The payload of a [`FrameType::Submit`] frame: one sort job.
#[derive(Clone, Debug, PartialEq)]
pub struct SubmitPayload {
    /// Client-chosen job id, echoed verbatim in the response. Must be
    /// unique among the connection's outstanding jobs.
    pub job_id: u64,
    /// Tenant the job belongs to (the service's fairness key).
    pub tenant: u32,
    /// How `values` are encoded on the wire.
    pub encoding: PayloadEncoding,
    /// The records to sort.
    pub values: Vec<Value>,
}

impl SubmitPayload {
    /// Encode into payload bytes (job header + records).
    pub fn encode(&self) -> Result<Vec<u8>, PayloadError> {
        let mut out = Vec::with_capacity(JOB_HEADER_LEN + self.values.len() * RAW_RECORD_LEN);
        out.extend_from_slice(&self.job_id.to_le_bytes());
        out.extend_from_slice(&self.tenant.to_le_bytes());
        out.push(self.encoding as u8);
        out.extend_from_slice(&[0u8; 3]); // reserved, must be zero
        encode_values(self.encoding, &self.values, &mut out)?;
        Ok(out)
    }

    /// Decode from payload bytes.
    pub fn decode(bytes: &[u8]) -> Result<SubmitPayload, PayloadError> {
        if bytes.len() < JOB_HEADER_LEN {
            return Err(PayloadError("submit payload shorter than its job header"));
        }
        let job_id = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
        let tenant = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let encoding = PayloadEncoding::from_wire(bytes[12])
            .ok_or(PayloadError("unknown payload encoding"))?;
        if bytes[13..16] != [0u8; 3] {
            return Err(PayloadError("non-zero reserved bytes in the job header"));
        }
        let values = decode_values(encoding, &bytes[JOB_HEADER_LEN..])?;
        Ok(SubmitPayload {
            job_id,
            tenant,
            encoding,
            values,
        })
    }
}

/// The payload of a [`FrameType::Result`] frame: one completed job.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultPayload {
    /// The client's job id, echoed from the submission.
    pub job_id: u64,
    /// How `values` are encoded (the server mirrors the submission's
    /// encoding).
    pub encoding: PayloadEncoding,
    /// The sorted records.
    pub values: Vec<Value>,
}

impl ResultPayload {
    /// Encode into payload bytes (job header + records).
    pub fn encode(&self) -> Result<Vec<u8>, PayloadError> {
        let mut out = Vec::with_capacity(JOB_HEADER_LEN + self.values.len() * RAW_RECORD_LEN);
        out.extend_from_slice(&self.job_id.to_le_bytes());
        out.push(self.encoding as u8);
        out.extend_from_slice(&[0u8; 7]); // reserved, must be zero
        encode_values(self.encoding, &self.values, &mut out)?;
        Ok(out)
    }

    /// Decode from payload bytes.
    pub fn decode(bytes: &[u8]) -> Result<ResultPayload, PayloadError> {
        if bytes.len() < JOB_HEADER_LEN {
            return Err(PayloadError("result payload shorter than its job header"));
        }
        let job_id = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
        let encoding =
            PayloadEncoding::from_wire(bytes[8]).ok_or(PayloadError("unknown payload encoding"))?;
        if bytes[9..16] != [0u8; 7] {
            return Err(PayloadError("non-zero reserved bytes in the job header"));
        }
        let values = decode_values(encoding, &bytes[JOB_HEADER_LEN..])?;
        Ok(ResultPayload {
            job_id,
            encoding,
            values,
        })
    }
}

/// The payload of a [`FrameType::Reject`] frame: one job turned away.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RejectPayload {
    /// The client's job id, echoed from the submission.
    pub job_id: u64,
    /// Why the job was rejected.
    pub code: ErrorCode,
    /// Advisory back-off hint in milliseconds (0 = no hint; retrying a
    /// [`ErrorCode::MalformedPayload`] reject is pointless at any delay).
    pub retry_after_ms: u32,
}

impl RejectPayload {
    /// Encode into payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(JOB_HEADER_LEN);
        out.extend_from_slice(&self.job_id.to_le_bytes());
        out.extend_from_slice(&(self.code as u16).to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // reserved, must be zero
        out.extend_from_slice(&self.retry_after_ms.to_le_bytes());
        out
    }

    /// Decode from payload bytes.
    pub fn decode(bytes: &[u8]) -> Result<RejectPayload, PayloadError> {
        if bytes.len() != JOB_HEADER_LEN {
            return Err(PayloadError("reject payload must be exactly 16 bytes"));
        }
        let job_id = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
        let code_raw = u16::from_le_bytes([bytes[8], bytes[9]]);
        let code = ErrorCode::from_wire(code_raw).ok_or(PayloadError("unknown error code"))?;
        if bytes[10..12] != [0u8; 2] {
            return Err(PayloadError(
                "non-zero reserved bytes in the reject payload",
            ));
        }
        let retry_after_ms = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        Ok(RejectPayload {
            job_id,
            code,
            retry_after_ms,
        })
    }
}

/// The payload of a [`FrameType::Error`] frame: a connection-fatal
/// protocol violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorPayload {
    /// What went wrong.
    pub code: ErrorCode,
    /// Optional human-readable diagnostic (UTF-8; may be empty).
    pub message: String,
}

impl ErrorPayload {
    /// Encode into payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.message.len());
        out.extend_from_slice(&(self.code as u16).to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // reserved, must be zero
        out.extend_from_slice(self.message.as_bytes());
        out
    }

    /// Decode from payload bytes.
    pub fn decode(bytes: &[u8]) -> Result<ErrorPayload, PayloadError> {
        if bytes.len() < 4 {
            return Err(PayloadError("error payload shorter than its header"));
        }
        let code_raw = u16::from_le_bytes([bytes[0], bytes[1]]);
        let code = ErrorCode::from_wire(code_raw).ok_or(PayloadError("unknown error code"))?;
        if bytes[2..4] != [0u8; 2] {
            return Err(PayloadError("non-zero reserved bytes in the error payload"));
        }
        let message = std::str::from_utf8(&bytes[4..])
            .map_err(|_| PayloadError("error message is not valid UTF-8"))?
            .to_string();
        Ok(ErrorPayload { code, message })
    }
}

/// The payload of a server→client [`FrameType::Stats`] frame: a
/// [`ServerStats`](crate::ServerStats) snapshot serialized as UTF-8 JSON.
/// (The client→server request direction carries an *empty* payload and
/// does not use this struct.)
///
/// JSON rather than a fixed binary layout because the snapshot is a
/// diagnostic surface, not a data plane: fields may be added within
/// protocol version 1, and clients should read it with a tolerant JSON
/// parser instead of pinning offsets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsPayload {
    /// The snapshot as a JSON document.
    pub json: String,
}

impl StatsPayload {
    /// Encode into payload bytes (the UTF-8 bytes of the document).
    pub fn encode(&self) -> Vec<u8> {
        self.json.clone().into_bytes()
    }

    /// Decode from payload bytes.
    pub fn decode(bytes: &[u8]) -> Result<StatsPayload, PayloadError> {
        if bytes.is_empty() {
            return Err(PayloadError("stats response payload is empty"));
        }
        let json = std::str::from_utf8(bytes)
            .map_err(|_| PayloadError("stats payload is not valid UTF-8"))?
            .to_string();
        Ok(StatsPayload { json })
    }
}

/// Append the records in the chosen encoding.
pub fn encode_values(
    encoding: PayloadEncoding,
    values: &[Value],
    out: &mut Vec<u8>,
) -> Result<(), PayloadError> {
    match encoding {
        PayloadEncoding::RawLe => {
            out.reserve(values.len() * RAW_RECORD_LEN);
            for v in values {
                out.extend_from_slice(&v.key.to_bits().to_le_bytes());
                out.extend_from_slice(&v.id.to_le_bytes());
            }
            Ok(())
        }
        PayloadEncoding::Json => {
            let mut text = String::with_capacity(2 + values.len() * 16);
            text.push('[');
            for (i, v) in values.iter().enumerate() {
                if !v.key.is_finite() {
                    return Err(PayloadError(
                        "JSON encoding cannot carry non-finite keys; use RAW_LE",
                    ));
                }
                if i > 0 {
                    text.push(',');
                }
                // `f32::Display` emits the shortest decimal that uniquely
                // identifies the value, so the parse on the far side
                // recovers the exact bit pattern.
                text.push_str(&format!("{{\"k\":{},\"id\":{}}}", v.key, v.id));
            }
            text.push(']');
            out.extend_from_slice(text.as_bytes());
            Ok(())
        }
    }
}

/// Decode the records in the chosen encoding.
pub fn decode_values(encoding: PayloadEncoding, bytes: &[u8]) -> Result<Vec<Value>, PayloadError> {
    match encoding {
        PayloadEncoding::RawLe => {
            if !bytes.len().is_multiple_of(RAW_RECORD_LEN) {
                return Err(PayloadError(
                    "RAW_LE record section is not a multiple of 8 bytes",
                ));
            }
            Ok(bytes
                .chunks_exact(RAW_RECORD_LEN)
                .map(|c| {
                    Value::new(
                        f32::from_bits(u32::from_le_bytes(c[0..4].try_into().expect("4 bytes"))),
                        u32::from_le_bytes(c[4..8].try_into().expect("4 bytes")),
                    )
                })
                .collect())
        }
        PayloadEncoding::Json => {
            let text = std::str::from_utf8(bytes)
                .map_err(|_| PayloadError("JSON record section is not valid UTF-8"))?;
            let doc = serde_json::from_str(text)
                .map_err(|_| PayloadError("JSON record section does not parse"))?;
            let items = doc
                .as_array()
                .ok_or(PayloadError("JSON record section is not an array"))?;
            let mut values = Vec::with_capacity(items.len());
            for item in items {
                let key = item
                    .get("k")
                    .and_then(|v| v.as_f64())
                    .ok_or(PayloadError("JSON record lacks a numeric \"k\""))?;
                let id = item
                    .get("id")
                    .and_then(|v| v.as_f64())
                    .ok_or(PayloadError("JSON record lacks a numeric \"id\""))?;
                if id.fract() != 0.0 || !(0.0..=u32::MAX as f64).contains(&id) {
                    return Err(PayloadError("JSON record id is not a u32"));
                }
                values.push(Value::new(key as f32, id as u32));
            }
            Ok(values)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn poll_one(bytes: &[u8], limit: u32) -> Result<FramePoll, FrameError> {
        FrameReader::new(limit).poll(&mut Cursor::new(bytes))
    }

    #[test]
    fn frame_round_trips_through_the_reader() {
        let frame = Frame::new(FrameType::Submit, vec![1, 2, 3, 4, 5]);
        let bytes = frame.encode();
        assert_eq!(bytes.len(), HEADER_LEN + 5);
        match poll_one(&bytes, 1024).unwrap() {
            FramePoll::Frame(f) => assert_eq!(f, frame),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn reader_handles_split_delivery_and_back_to_back_frames() {
        let a = Frame::new(FrameType::Ping, Vec::new());
        let b = Frame::new(FrameType::Submit, vec![9; 37]);
        let mut bytes = a.encode();
        bytes.extend_from_slice(&b.encode());

        // Deliver one byte at a time through a reader that sees timeouts
        // between bytes.
        struct Trickle<'a>(&'a [u8], usize, bool);
        impl Read for Trickle<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.2 {
                    self.2 = false;
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                self.2 = true;
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let mut r = Trickle(&bytes, 0, false);
        let mut reader = FrameReader::new(1024);
        let mut frames = Vec::new();
        loop {
            match reader.poll(&mut r).unwrap() {
                FramePoll::Frame(f) => frames.push(f),
                FramePoll::WouldBlock => continue,
                FramePoll::Eof => break,
            }
        }
        assert_eq!(frames, vec![a, b]);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_payload_read() {
        let mut bytes = Frame::new(FrameType::Submit, Vec::new()).encode();
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            poll_one(&bytes, 1 << 20),
            Err(FrameError::Oversized {
                len: u32::MAX,
                limit: 1 << 20
            })
        );
    }

    #[test]
    fn submit_payload_round_trips_both_encodings() {
        for encoding in [PayloadEncoding::RawLe, PayloadEncoding::Json] {
            let payload = SubmitPayload {
                job_id: 42,
                tenant: 7,
                encoding,
                values: vec![Value::new(1.5, 0), Value::new(-2.25, 1)],
            };
            let decoded = SubmitPayload::decode(&payload.encode().unwrap()).unwrap();
            assert_eq!(decoded, payload);
        }
    }

    #[test]
    fn json_encoding_refuses_non_finite_keys() {
        let err = encode_values(
            PayloadEncoding::Json,
            &[Value::new(f32::NAN, 0)],
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.0.contains("non-finite"));
        // RAW_LE carries the same value exactly.
        let mut raw = Vec::new();
        encode_values(PayloadEncoding::RawLe, &[Value::new(f32::NAN, 3)], &mut raw).unwrap();
        let back = decode_values(PayloadEncoding::RawLe, &raw).unwrap();
        assert_eq!(back[0].key.to_bits(), f32::NAN.to_bits());
        assert_eq!(back[0].id, 3);
    }

    #[test]
    fn reject_payload_round_trips() {
        let payload = RejectPayload {
            job_id: 9,
            code: ErrorCode::QueueFull,
            retry_after_ms: 12,
        };
        assert_eq!(RejectPayload::decode(&payload.encode()).unwrap(), payload);
    }

    #[test]
    fn error_payload_round_trips() {
        let payload = ErrorPayload {
            code: ErrorCode::BadMagic,
            message: "expected ABSR".into(),
        };
        assert_eq!(ErrorPayload::decode(&payload.encode()).unwrap(), payload);
    }
}
