//! Admission control and per-tenant fair queueing.
//!
//! The service bounds what it takes on: a maximum number of queued jobs
//! and a maximum amount of in-flight memory (queued plus scheduled but
//! unfinished). Jobs beyond either bound are rejected at submission —
//! backpressure instead of unbounded buffering.
//!
//! Admitted jobs park in per-tenant FIFO queues. Batch formation drains
//! them **round-robin across tenants**, so one tenant flooding the service
//! delays its own backlog, not everyone else's.

use crate::job::{RejectReason, SortJob, TenantId};
use std::collections::{BTreeMap, VecDeque};

/// Per-tenant FIFO queues with round-robin fair draining.
#[derive(Default)]
pub struct TenantQueues {
    queues: BTreeMap<TenantId, VecDeque<SortJob>>,
    /// Round-robin order over tenants that currently have queued jobs.
    rotation: VecDeque<TenantId>,
    jobs: usize,
    bytes: usize,
}

impl TenantQueues {
    /// An empty queue set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued jobs across all tenants.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Total queued bytes across all tenants.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// True if no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.jobs == 0
    }

    /// Earliest arrival time among queued jobs (the batch-window anchor).
    pub fn oldest_arrival_ms(&self) -> Option<f64> {
        self.queues
            .values()
            .filter_map(|q| q.front())
            .map(|j| j.arrival_ms)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Enqueue a job at the back of its tenant's FIFO.
    pub fn push(&mut self, job: SortJob) {
        self.jobs += 1;
        self.bytes += job.bytes();
        let queue = self.queues.entry(job.tenant).or_default();
        if queue.is_empty() {
            self.rotation.push_back(job.tenant);
        }
        queue.push_back(job);
    }

    /// Dequeue round-robin: the front job of the tenant whose turn it is,
    /// then rotate to the next tenant.
    pub fn pop_fair(&mut self) -> Option<SortJob> {
        let tenant = self.rotation.pop_front()?;
        let queue = self.queues.get_mut(&tenant).expect("rotation entry");
        let job = queue.pop_front().expect("non-empty rotation entry");
        if !queue.is_empty() {
            self.rotation.push_back(tenant);
        }
        self.jobs -= 1;
        self.bytes -= job.bytes();
        Some(job)
    }
}

/// The admission controller: rejects submissions that would exceed the
/// queue-depth or in-flight-memory bounds.
///
/// "In flight" covers queued bytes plus the bytes of scheduled batches
/// whose *estimated* completion lies in the future — the controller cannot
/// see actual durations at admission time, exactly like a real server.
pub struct AdmissionController {
    max_inflight_bytes: usize,
    max_queued_jobs: usize,
    /// (estimated completion sim-time ms, bytes) of scheduled batches.
    scheduled: Vec<(f64, usize)>,
}

impl AdmissionController {
    /// Create a controller with the given bounds.
    pub fn new(max_inflight_bytes: usize, max_queued_jobs: usize) -> Self {
        AdmissionController {
            max_inflight_bytes,
            max_queued_jobs,
            scheduled: Vec::new(),
        }
    }

    /// Bytes of scheduled-but-unfinished batches as of `now_ms`.
    pub fn scheduled_bytes(&mut self, now_ms: f64) -> usize {
        self.scheduled.retain(|&(done_ms, _)| done_ms > now_ms);
        self.scheduled.iter().map(|&(_, b)| b).sum()
    }

    /// Decide whether a job arriving at `now_ms` may be admitted, given the
    /// current totals across all queues.
    pub fn admit(
        &mut self,
        now_ms: f64,
        job: &SortJob,
        queued_jobs: usize,
        queued_bytes: usize,
    ) -> Result<(), RejectReason> {
        if queued_jobs >= self.max_queued_jobs {
            return Err(RejectReason::QueueFull);
        }
        let inflight = self.scheduled_bytes(now_ms) + queued_bytes;
        if inflight + job.bytes() > self.max_inflight_bytes {
            return Err(RejectReason::MemoryPressure);
        }
        Ok(())
    }

    /// Record a scheduled batch so its memory stays accounted until its
    /// estimated completion.
    pub fn on_scheduled(&mut self, est_completion_ms: f64, bytes: usize) {
        if bytes > 0 {
            self.scheduled.push((est_completion_ms, bytes));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, tenant: TenantId, len: usize) -> SortJob {
        SortJob::new(id, tenant, workloads::uniform(len, id))
    }

    #[test]
    fn pop_fair_round_robins_across_tenants() {
        let mut q = TenantQueues::new();
        // Tenant 0 floods; tenant 1 submits two jobs afterwards.
        for i in 0..4 {
            q.push(job(i, 0, 4));
        }
        q.push(job(10, 1, 4));
        q.push(job(11, 1, 4));
        let order: Vec<(TenantId, u64)> = std::iter::from_fn(|| q.pop_fair())
            .map(|j| (j.tenant, j.id))
            .collect();
        assert_eq!(
            order,
            vec![(0, 0), (1, 10), (0, 1), (1, 11), (0, 2), (0, 3)],
            "round-robin must interleave the flooded tenant with the light one"
        );
        assert!(q.is_empty());
        assert_eq!(q.bytes(), 0);
    }

    #[test]
    fn pops_are_fifo_within_a_tenant() {
        let mut q = TenantQueues::new();
        q.push(job(1, 3, 2));
        q.push(job(2, 3, 2));
        assert_eq!(q.pop_fair().unwrap().id, 1);
        assert_eq!(q.pop_fair().unwrap().id, 2);
        assert!(q.pop_fair().is_none());
    }

    #[test]
    fn oldest_arrival_tracks_the_queue_front() {
        let mut q = TenantQueues::new();
        assert_eq!(q.oldest_arrival_ms(), None);
        q.push(job(1, 0, 2).arriving_at(5.0));
        q.push(job(2, 1, 2).arriving_at(3.0));
        assert_eq!(q.oldest_arrival_ms(), Some(3.0));
        // Pop both (rotation starts at tenant 0).
        q.pop_fair();
        assert_eq!(q.oldest_arrival_ms(), Some(3.0));
        q.pop_fair();
        assert_eq!(q.oldest_arrival_ms(), None);
    }

    #[test]
    fn queue_depth_bound_rejects() {
        let mut admission = AdmissionController::new(usize::MAX, 2);
        let mut q = TenantQueues::new();
        for i in 0..2 {
            let j = job(i, 0, 4);
            assert!(admission.admit(0.0, &j, q.jobs(), q.bytes()).is_ok());
            q.push(j);
        }
        assert_eq!(
            admission.admit(0.0, &job(9, 1, 4), q.jobs(), q.bytes()),
            Err(RejectReason::QueueFull)
        );
    }

    #[test]
    fn memory_bound_counts_queued_and_scheduled_bytes() {
        let mut admission = AdmissionController::new(100, usize::MAX);
        // 64 bytes scheduled until t = 10.
        admission.on_scheduled(10.0, 64);
        let eight = job(1, 0, 8); // 64 bytes
        assert_eq!(
            admission.admit(5.0, &eight, 0, 0),
            Err(RejectReason::MemoryPressure)
        );
        // After the scheduled batch's estimated completion the memory is
        // free again.
        assert!(admission.admit(10.5, &eight, 0, 0).is_ok());
    }
}
