//! Admission control and per-tenant fair queueing.
//!
//! The service bounds what it takes on: a maximum number of queued jobs
//! and a maximum amount of in-flight memory (queued plus scheduled but
//! unfinished). Jobs beyond either bound are rejected at submission —
//! backpressure instead of unbounded buffering.
//!
//! Admitted jobs park in per-tenant FIFO queues. Batch formation drains
//! them **round-robin across tenants**, so one tenant flooding the service
//! delays its own backlog, not everyone else's.

use crate::job::{RejectReason, SortJob, TenantId};
use std::collections::{BTreeMap, VecDeque};

/// Per-tenant FIFO queues with round-robin fair draining.
#[derive(Default)]
pub struct TenantQueues {
    queues: BTreeMap<TenantId, VecDeque<SortJob>>,
    /// Round-robin order over tenants that currently have queued jobs.
    rotation: VecDeque<TenantId>,
    jobs: usize,
    bytes: usize,
    /// Cached minimum `arrival_ms` over all queue fronts. The planner polls
    /// [`oldest_arrival_ms`](TenantQueues::oldest_arrival_ms) on every
    /// arrival while sizing the batch window, so the getter must not scan
    /// all tenants each time. Maintained incrementally: folded on `push`
    /// (a push only creates a new front when its queue was empty),
    /// recomputed on `pop_fair` only when the popped job carried the
    /// cached minimum.
    oldest: Option<f64>,
}

impl TenantQueues {
    /// An empty queue set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued jobs across all tenants.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Total queued bytes across all tenants.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// True if no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.jobs == 0
    }

    /// Earliest arrival time among queued jobs (the batch-window anchor).
    ///
    /// O(1): returns the incrementally maintained cache rather than
    /// scanning every tenant's queue front per call.
    pub fn oldest_arrival_ms(&self) -> Option<f64> {
        self.oldest
    }

    /// Enqueue a job at the back of its tenant's FIFO.
    pub fn push(&mut self, job: SortJob) {
        self.jobs += 1;
        self.bytes += job.bytes();
        let arrival = job.arrival_ms;
        let queue = self.queues.entry(job.tenant).or_default();
        if queue.is_empty() {
            self.rotation.push_back(job.tenant);
            // The job becomes a queue front: fold it into the cached min.
            self.oldest = Some(match self.oldest {
                Some(o) => o.min(arrival),
                None => arrival,
            });
        }
        queue.push_back(job);
    }

    /// Dequeue round-robin: the front job of the tenant whose turn it is,
    /// then rotate to the next tenant.
    pub fn pop_fair(&mut self) -> Option<SortJob> {
        let tenant = self.rotation.pop_front()?;
        let queue = self.queues.get_mut(&tenant).expect("rotation entry");
        let job = queue.pop_front().expect("non-empty rotation entry");
        if !queue.is_empty() {
            self.rotation.push_back(tenant);
        }
        let new_front = queue.front().map(|j| j.arrival_ms);
        self.jobs -= 1;
        self.bytes -= job.bytes();
        match self.oldest {
            // Popped the cached minimum (or a tie): recompute over the
            // remaining fronts. This is the only O(tenants) path, and it
            // runs at most once per pop of the globally oldest job.
            Some(o) if job.arrival_ms <= o => self.oldest = self.scan_oldest(),
            // Popped a non-minimal front: the min can only change if the
            // job revealed behind it arrived even earlier (arrivals within
            // a tenant are not required to be monotone).
            Some(o) => {
                if let Some(f) = new_front {
                    if f < o {
                        self.oldest = Some(f);
                    }
                }
            }
            None => {}
        }
        Some(job)
    }

    /// Full scan over queue fronts; the slow path behind the cache.
    fn scan_oldest(&self) -> Option<f64> {
        self.queues
            .values()
            .filter_map(|q| q.front())
            .map(|j| j.arrival_ms)
            .min_by(|a, b| a.total_cmp(b))
    }
}

/// The admission controller: rejects submissions that would exceed the
/// queue-depth or in-flight-memory bounds.
///
/// "In flight" covers queued bytes plus the bytes of scheduled batches
/// whose *estimated* completion lies in the future — the controller cannot
/// see actual durations at admission time, exactly like a real server.
pub struct AdmissionController {
    max_inflight_bytes: usize,
    max_queued_jobs: usize,
    /// (estimated completion sim-time ms, bytes) of scheduled batches.
    scheduled: Vec<(f64, usize)>,
    /// Running sum of the `bytes` column of `scheduled`, maintained on
    /// insert and prune so admission never re-sums the list.
    scheduled_total: usize,
}

impl AdmissionController {
    /// Create a controller with the given bounds.
    pub fn new(max_inflight_bytes: usize, max_queued_jobs: usize) -> Self {
        AdmissionController {
            max_inflight_bytes,
            max_queued_jobs,
            scheduled: Vec::new(),
            scheduled_total: 0,
        }
    }

    /// Drop scheduled batches whose estimated completion is at or before
    /// `now_ms`, releasing their bytes from the in-flight total.
    ///
    /// Pruning is an explicit operation: [`scheduled_bytes`] is a pure
    /// getter and [`admit`] prunes once up front, so the in-flight total
    /// is O(1) to read no matter how many batches are outstanding.
    ///
    /// [`scheduled_bytes`]: AdmissionController::scheduled_bytes
    /// [`admit`]: AdmissionController::admit
    pub fn prune(&mut self, now_ms: f64) {
        let total = &mut self.scheduled_total;
        self.scheduled.retain(|&(done_ms, bytes)| {
            let live = done_ms > now_ms;
            if !live {
                *total -= bytes;
            }
            live
        });
    }

    /// Bytes of scheduled-but-unfinished batches as of the last
    /// [`prune`](AdmissionController::prune). A pure getter — call
    /// `prune(now_ms)` first if completions may have elapsed.
    pub fn scheduled_bytes(&self) -> usize {
        self.scheduled_total
    }

    /// Decide whether a job arriving at `now_ms` may be admitted, given the
    /// current totals across all queues.
    pub fn admit(
        &mut self,
        now_ms: f64,
        job: &SortJob,
        queued_jobs: usize,
        queued_bytes: usize,
    ) -> Result<(), RejectReason> {
        if queued_jobs >= self.max_queued_jobs {
            return Err(RejectReason::QueueFull);
        }
        self.prune(now_ms);
        let inflight = self.scheduled_bytes() + queued_bytes;
        if inflight + job.bytes() > self.max_inflight_bytes {
            return Err(RejectReason::MemoryPressure);
        }
        Ok(())
    }

    /// Record a scheduled batch so its memory stays accounted until its
    /// estimated completion.
    pub fn on_scheduled(&mut self, est_completion_ms: f64, bytes: usize) {
        if bytes > 0 {
            self.scheduled.push((est_completion_ms, bytes));
            self.scheduled_total += bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, tenant: TenantId, len: usize) -> SortJob {
        SortJob::new(id, tenant, workloads::uniform(len, id))
    }

    #[test]
    fn pop_fair_round_robins_across_tenants() {
        let mut q = TenantQueues::new();
        // Tenant 0 floods; tenant 1 submits two jobs afterwards.
        for i in 0..4 {
            q.push(job(i, 0, 4));
        }
        q.push(job(10, 1, 4));
        q.push(job(11, 1, 4));
        let order: Vec<(TenantId, u64)> = std::iter::from_fn(|| q.pop_fair())
            .map(|j| (j.tenant, j.id))
            .collect();
        assert_eq!(
            order,
            vec![(0, 0), (1, 10), (0, 1), (1, 11), (0, 2), (0, 3)],
            "round-robin must interleave the flooded tenant with the light one"
        );
        assert!(q.is_empty());
        assert_eq!(q.bytes(), 0);
    }

    #[test]
    fn pops_are_fifo_within_a_tenant() {
        let mut q = TenantQueues::new();
        q.push(job(1, 3, 2));
        q.push(job(2, 3, 2));
        assert_eq!(q.pop_fair().unwrap().id, 1);
        assert_eq!(q.pop_fair().unwrap().id, 2);
        assert!(q.pop_fair().is_none());
    }

    #[test]
    fn oldest_arrival_tracks_the_queue_front() {
        let mut q = TenantQueues::new();
        assert_eq!(q.oldest_arrival_ms(), None);
        q.push(job(1, 0, 2).arriving_at(5.0));
        q.push(job(2, 1, 2).arriving_at(3.0));
        assert_eq!(q.oldest_arrival_ms(), Some(3.0));
        // Pop both (rotation starts at tenant 0).
        q.pop_fair();
        assert_eq!(q.oldest_arrival_ms(), Some(3.0));
        q.pop_fair();
        assert_eq!(q.oldest_arrival_ms(), None);
    }

    #[test]
    fn oldest_arrival_cache_matches_scan_across_many_tenants() {
        // 64 tenants, 4 jobs each, with arrival times deliberately
        // non-monotone within a tenant so the pop path has to handle a
        // revealed front that undercuts the cached minimum.
        let mut q = TenantQueues::new();
        let mut id = 0;
        for tenant in 0..64u32 {
            for k in 0..4 {
                let arrival = ((tenant as u64 * 37 + k * 13 + id) % 97) as f64;
                q.push(job(id, tenant as TenantId, 2).arriving_at(arrival));
                id += 1;
            }
        }
        // Drain fully, checking the O(1) cache against a fresh scan at
        // every step.
        while !q.is_empty() {
            assert_eq!(
                q.oldest_arrival_ms(),
                q.scan_oldest(),
                "cached min must track the queue fronts"
            );
            q.pop_fair();
        }
        assert_eq!(q.oldest_arrival_ms(), None);
    }

    #[test]
    fn scheduled_bytes_is_a_pure_getter_with_explicit_pruning() {
        let mut admission = AdmissionController::new(usize::MAX, usize::MAX);
        admission.on_scheduled(10.0, 64);
        admission.on_scheduled(20.0, 32);
        // The getter never mutates: repeated calls agree without a prune.
        assert_eq!(admission.scheduled_bytes(), 96);
        assert_eq!(admission.scheduled_bytes(), 96);
        // Pruning at t=15 releases only the first batch.
        admission.prune(15.0);
        assert_eq!(admission.scheduled_bytes(), 32);
        // A batch completing exactly at `now` is no longer in flight.
        admission.prune(20.0);
        assert_eq!(admission.scheduled_bytes(), 0);
    }

    #[test]
    fn queue_depth_bound_rejects() {
        let mut admission = AdmissionController::new(usize::MAX, 2);
        let mut q = TenantQueues::new();
        for i in 0..2 {
            let j = job(i, 0, 4);
            assert!(admission.admit(0.0, &j, q.jobs(), q.bytes()).is_ok());
            q.push(j);
        }
        assert_eq!(
            admission.admit(0.0, &job(9, 1, 4), q.jobs(), q.bytes()),
            Err(RejectReason::QueueFull)
        );
    }

    #[test]
    fn memory_bound_counts_queued_and_scheduled_bytes() {
        let mut admission = AdmissionController::new(100, usize::MAX);
        // 64 bytes scheduled until t = 10.
        admission.on_scheduled(10.0, 64);
        let eight = job(1, 0, 8); // 64 bytes
        assert_eq!(
            admission.admit(5.0, &eight, 0, 0),
            Err(RejectReason::MemoryPressure)
        );
        // After the scheduled batch's estimated completion the memory is
        // free again.
        assert!(admission.admit(10.5, &eight, 0, 0).is_ok());
    }
}
