//! Service-level metrics: throughput, latency percentiles, batch
//! occupancy, engine mix and device utilization.

use serde::Serialize;
use stream_arch::telemetry::HistogramSummary;

/// Aggregate metrics of one service run. All times are simulated
/// milliseconds unless the field name says otherwise.
///
/// Every service run reports one of these (and the networked
/// [`ServerStats`](crate::ServerStats) embeds an aggregate across its
/// micro-batches):
///
/// ```
/// use sortsvc::{ServiceConfig, SortJob, SortService};
///
/// let service = SortService::new(ServiceConfig::default());
/// let jobs = SortJob::from_requests(
///     workloads::RequestMix::small_job_heavy(20).generate(7),
/// );
/// let report = service.process(jobs).unwrap();
///
/// let m = &report.metrics;
/// assert_eq!(m.jobs_submitted, m.jobs_completed + m.jobs_rejected);
/// assert!(m.latency_p99_ms >= m.latency_p50_ms);
/// assert!(m.throughput_kelems_per_s.is_finite());
/// ```
#[derive(Clone, Debug, Default, Serialize)]
pub struct ServiceMetrics {
    /// Jobs submitted (admitted + rejected).
    pub jobs_submitted: usize,
    /// Jobs that completed.
    pub jobs_completed: usize,
    /// Jobs rejected by admission control.
    pub jobs_rejected: usize,
    /// Batches executed.
    pub batches: usize,
    /// Real elements sorted (excluding padding).
    pub elements_sorted: u64,
    /// First arrival → last completion, simulated.
    pub makespan_ms: f64,
    /// Completed jobs per simulated second.
    pub throughput_jobs_per_s: f64,
    /// Thousand elements per simulated second.
    pub throughput_kelems_per_s: f64,
    /// Mean end-to-end latency.
    pub latency_mean_ms: f64,
    /// Median end-to-end latency.
    pub latency_p50_ms: f64,
    /// 99th-percentile end-to-end latency.
    pub latency_p99_ms: f64,
    /// Mean time jobs spent queued/coalescing before their batch started.
    pub queue_mean_ms: f64,
    /// Capacity-weighted mean batch occupancy (real / padded elements).
    pub mean_batch_occupancy: f64,
    /// Mean number of jobs per batch.
    pub mean_jobs_per_batch: f64,
    /// Jobs executed by the CPU quicksort engine.
    pub cpu_jobs: usize,
    /// Jobs executed by the batched GPU-ABiSort engine.
    pub gpu_jobs: usize,
    /// Jobs executed by the multi-device sharded engine.
    pub sharded_jobs: usize,
    /// Jobs executed by the out-of-core terasort engine.
    pub tera_jobs: usize,
    /// Top-k query jobs completed (early-exit bitonic recursion).
    pub topk_jobs: usize,
    /// Order-by jobs completed (typed permutation sorts).
    pub orderby_jobs: usize,
    /// Percentile query jobs completed (histogram pass, no sort).
    pub percentile_jobs: usize,
    /// Batches that spread over several device slots.
    pub sharded_batches: usize,
    /// Worst splitter skew observed across sharded batches (largest
    /// splitter-directed shard relative to the ideal `n/p`; 0.0 when no
    /// batch was sharded).
    pub shard_skew_max: f64,
    /// Total simulated busy time across device slots.
    pub device_busy_ms: f64,
    /// `device_busy_ms / (slots × makespan)` — mean slot utilization.
    pub device_utilization: f64,
    /// Total host wall-clock execution time across batches.
    pub wall_ms: f64,
    /// The policy's calibrated single-job CPU/GPU crossover, for
    /// visibility in reports (`u64::MAX` ⇒ never GPU).
    pub policy_crossover: u64,
    /// Jobs replayed from the write-ahead log on startup — admitted by a
    /// previous process life but never acknowledged (zero when the run
    /// had no durability directory or recovered a clean log).
    pub recovered_jobs: u64,
    /// Bytes of valid WAL records replayed during startup recovery.
    pub replayed_bytes: u64,
    /// Bytes truncated from the WAL's torn tail during startup recovery
    /// (a partial record written by the crashed process).
    pub torn_tail_truncated: u64,
    /// Streaming-histogram summary of end-to-end latency (the source of
    /// `latency_p50_ms` / `latency_p99_ms`, plus count/p90/max).
    pub latency: HistogramSummary,
    /// Per-stage histogram: time jobs spent queued/coalescing before
    /// their batch started (the source of `queue_mean_ms`).
    pub queue_wait: HistogramSummary,
    /// Per-stage histogram: batch execution time per job (`latency −
    /// queue wait`).
    pub execution: HistogramSummary,
}

/// Nearest-rank percentile of an **already sorted** slice; 0 for empty
/// input. `q` in `[0, 1]`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// `num / den`, forced to a finite `0.0` when the denominator is zero (or
/// so small the quotient overflows). Every rate/ratio metric goes through
/// this so a run that admits zero jobs — or completes only zero-duration
/// work — reports `0.0` instead of `NaN`/`∞`, which would poison JSON
/// reports and downstream aggregation.
pub fn ratio(num: f64, den: f64) -> f64 {
    let q = num / den;
    if q.is_finite() {
        q
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.5), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn ratio_is_finite_for_degenerate_denominators() {
        assert_eq!(ratio(10.0, 4.0), 2.5);
        assert_eq!(ratio(0.0, 0.0), 0.0);
        assert_eq!(ratio(5.0, 0.0), 0.0);
        assert_eq!(ratio(f64::MAX, 0.5), 0.0); // overflows to ∞ → clamped
        assert_eq!(ratio(0.0, 3.0), 0.0);
    }

    #[test]
    fn metrics_serialize_to_json() {
        let m = ServiceMetrics {
            jobs_submitted: 3,
            latency_p99_ms: 1.5,
            ..ServiceMetrics::default()
        };
        let json = serde_json::to_string(&m).unwrap();
        assert!(json.contains("\"jobs_submitted\": 3"));
        assert!(json.contains("latency_p99_ms"));
    }
}
