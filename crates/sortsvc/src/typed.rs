//! The typed submission surface: sort anything with a [`SortKey`] codec.
//!
//! [`TypedSortClient`] is the redesigned front door of the service. Where
//! [`crate::SortService`] speaks raw [`Value`] records, the typed client
//! accepts domain keys — floats, signed integers, composite tuples,
//! bounded strings — encodes them through the order-preserving codecs in
//! [`crate::keys`], runs them through the same admission → coalescer →
//! engine pipeline, and decodes the results back into the caller's
//! domain. On top of plain sorts it exposes the query kinds of
//! [`JobKind`]:
//!
//! * [`TypedSortClient::submit_keys`] — a full typed sort;
//! * [`TypedSortClient::submit_top_k`] — the `k` smallest keys via the
//!   early-exit bitonic recursion (strictly fewer kernel steps than a
//!   full sort for small `k`);
//! * [`TypedSortClient::submit_percentiles`] — approximate quantiles from
//!   a histogram pass, no sort at all;
//! * [`TypedSortClient::order_by`] — the row permutation that sorts one
//!   column of a [`workloads::ColumnBatch`].
//!
//! Duplicate keys are legal everywhere: the adaptive bitonic engines
//! require *distinct* elements (Section 4 of the paper), so the client
//! dedups duplicate encodings on the way in ([`EncodedBatch`]) and
//! re-expands multiplicities on the way out.

use crate::job::{JobKind, SortJob};
use crate::keys::{key_to_value, value_to_key, EncodedBatch, SortKey};
use crate::metrics::ServiceMetrics;
use crate::policy::Engine;
use crate::service::{ServiceConfig, SortService};
use stream_arch::{Result, StreamElement, StreamError, Value};
use workloads::{Column, ColumnBatch};

/// Per-submission metadata the typed surface reports alongside the
/// decoded keys.
#[derive(Clone, Debug)]
pub struct TypedReport {
    /// What the job computed.
    pub kind: JobKind,
    /// Which engine executed it.
    pub engine: Engine,
    /// Simulated end-to-end latency of the job.
    pub latency_ms: f64,
    /// Distinct encoded keys the engines actually sorted.
    pub distinct: usize,
    /// Keys submitted (including duplicates).
    pub total: usize,
    /// Full metrics of the service run that carried the job.
    pub metrics: ServiceMetrics,
}

/// The decoded outcome of one typed submission.
#[derive(Clone, Debug)]
pub struct TypedResult<K: SortKey> {
    /// The decoded keys: the full sorted multiset for a sort, the `k`
    /// smallest for a top-k, one approximate key per quantile for a
    /// percentile query.
    pub keys: Vec<K>,
    /// Submission metadata.
    pub report: TypedReport,
}

/// The outcome of an order-by query: a row permutation, not key data.
#[derive(Clone, Debug)]
pub struct OrderByResult {
    /// Row indices in ascending key order: `permutation[0]` is the row
    /// with the smallest key. Applying it to every column of the batch
    /// yields the table sorted by the queried column.
    pub permutation: Vec<u32>,
    /// Submission metadata.
    pub report: TypedReport,
}

/// The typed front door of the sorting service.
///
/// ```
/// use sortsvc::{ServiceConfig, TypedSortClient};
///
/// let client = TypedSortClient::new(ServiceConfig::default());
/// let result = client
///     .submit_keys(&[3.5f32, f32::NAN, -0.0, 0.0, -3.5])
///     .unwrap();
/// // IEEE total order: -3.5 < -0.0 < 0.0 < 3.5 < NaN.
/// assert_eq!(&result.keys[..3], &[-3.5, -0.0, 0.0]);
/// assert_eq!(result.keys[3], 3.5);
/// assert!(result.keys[4].is_nan());
/// ```
pub struct TypedSortClient {
    service: SortService,
}

impl TypedSortClient {
    /// Build a client around a freshly calibrated service.
    pub fn new(config: ServiceConfig) -> Self {
        TypedSortClient {
            service: SortService::new(config),
        }
    }

    /// Build a client around an existing service (shares its calibration).
    pub fn with_service(service: SortService) -> Self {
        TypedSortClient { service }
    }

    /// The underlying service.
    pub fn service(&self) -> &SortService {
        &self.service
    }

    /// Sort typed keys ascending in their native order. Returns the full
    /// multiset — duplicates come back with their multiplicities.
    pub fn submit_keys<K: SortKey>(&self, keys: &[K]) -> Result<TypedResult<K>> {
        let mut batch = EncodedBatch::new(keys);
        let (distinct, total) = (batch.distinct(), batch.total());
        let job = SortJob::new(0, 0, batch.take_values());
        let (output, report) = self.run_solo(job, distinct, total)?;
        Ok(TypedResult {
            keys: batch.decode_sorted(&output),
            report,
        })
    }

    /// The `k` smallest keys, ascending (with duplicate multiplicities;
    /// `k` is clamped to the input length). On the GPU engine this stops
    /// the bitonic recursion early instead of sorting everything.
    pub fn submit_top_k<K: SortKey>(&self, keys: &[K], k: usize) -> Result<TypedResult<K>> {
        let k = k.min(keys.len());
        let mut batch = EncodedBatch::new(keys);
        let (distinct, total) = (batch.distinct(), batch.total());
        // k distinct encodings always expand to >= k keys, so the device
        // never fetches more candidates than the answer needs.
        let device_k = batch.distinct_for_top_k(k);
        let job = SortJob::new(0, 0, batch.take_values()).with_kind(JobKind::TopK(device_k));
        let (output, report) = self.run_solo(job, distinct, total)?;
        Ok(TypedResult {
            keys: batch.decode_prefix(&output, k),
            report,
        })
    }

    /// Approximate quantiles (`0 < q <= 1`) of the typed keys, one
    /// decoded key per requested quantile, served from a streaming
    /// histogram over the encodings — no sort happens. The answer's
    /// encoding is within the histogram's bucket resolution (~1.6%
    /// relative error on the encoded value) of the exact quantile.
    pub fn submit_percentiles<K: SortKey>(
        &self,
        keys: &[K],
        quantiles: &[f64],
    ) -> Result<TypedResult<K>> {
        // No engine sorts anything, so duplicates go straight through —
        // the histogram wants the true multiset.
        let values: Vec<Value> = keys.iter().map(key_to_value).collect();
        let total = values.len();
        let job = SortJob::new(0, 0, values).with_kind(JobKind::Percentile(quantiles.to_vec()));
        let (output, report) = self.run_solo(job, total, total)?;
        Ok(TypedResult {
            keys: output.iter().map(value_to_key).collect(),
            report,
        })
    }

    /// The row permutation sorting `batch` by the named column
    /// (ascending, ties broken by row index — a stable order-by).
    pub fn order_by(&self, batch: &ColumnBatch, column: &str) -> Result<OrderByResult> {
        let col = batch
            .column(column)
            .ok_or_else(|| StreamError::IrregularAccessPattern {
                detail: format!("order-by column {column:?} not in batch"),
            })?;
        match col {
            Column::F32(keys) => order_by(&self.service, keys),
            Column::I32(keys) => order_by(&self.service, keys),
            Column::U32(keys) => order_by(&self.service, keys),
        }
    }

    /// Run one job through the service and unpack its single result.
    fn run_solo(
        &self,
        job: SortJob,
        distinct: usize,
        total: usize,
    ) -> Result<(Vec<Value>, TypedReport)> {
        let kind = job.kind.clone();
        let len = job.len();
        let report = self.service.process(vec![job])?;
        let result = match report.results.into_iter().next() {
            Some(r) => r,
            // A solo job is only ever turned away for memory pressure;
            // surface that as the nearest stream-capacity error.
            None => {
                return Err(StreamError::StreamTooLarge {
                    elements: len,
                    max_elements: self.service.config().max_inflight_bytes / Value::BYTES,
                })
            }
        };
        debug_assert_eq!(result.kind, kind);
        Ok((
            result.output,
            TypedReport {
                kind,
                engine: result.engine,
                latency_ms: result.latency_ms,
                distinct,
                total,
                metrics: report.metrics,
            },
        ))
    }
}

/// The permutation core of the order-by path, usable with any 32-bit-or-
/// narrower [`SortKey`]: each row becomes the composite key
/// `(key, row index)` — the codec packs the key into the high bits and
/// the index into the low bits, so the encodings are all distinct (no
/// dedup pass) and ties sort stably by row. The returned report counts
/// the submission as one [`JobKind::OrderBy`] job.
pub fn order_by<K: SortKey>(service: &SortService, keys: &[K]) -> Result<OrderByResult> {
    assert!(
        keys.len() <= u32::MAX as usize,
        "order-by rows must fit a u32 index"
    );
    let values: Vec<Value> = keys
        .iter()
        .enumerate()
        .map(|(row, k)| key_to_value(&(*k, row as u32)))
        .collect();
    let total = values.len();
    let job = SortJob::new(0, 0, values).with_kind(JobKind::OrderBy);
    let len = job.len();
    let report = service.process(vec![job])?;
    let result = match report.results.into_iter().next() {
        Some(r) => r,
        None => {
            return Err(StreamError::StreamTooLarge {
                elements: len,
                max_elements: service.config().max_inflight_bytes / Value::BYTES,
            })
        }
    };
    let permutation = result
        .output
        .iter()
        .map(|v| value_to_key::<(K, u32)>(v).1)
        .collect();
    Ok(OrderByResult {
        permutation,
        report: TypedReport {
            kind: JobKind::OrderBy,
            engine: result.engine,
            latency_ms: result.latency_ms,
            distinct: total,
            total,
            metrics: report.metrics,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::StrKey;

    fn client() -> TypedSortClient {
        TypedSortClient::new(ServiceConfig::default())
    }

    #[test]
    fn typed_sort_handles_duplicates_and_special_floats() {
        let client = client();
        let keys = [2.5f32, f32::NAN, 2.5, -0.0, 0.0, f32::NEG_INFINITY, 2.5];
        let result = client.submit_keys(&keys).unwrap();
        assert_eq!(result.keys.len(), keys.len());
        assert!(result.keys[0] == f32::NEG_INFINITY);
        // total_cmp order, NaN last, duplicates preserved.
        let mut expected = keys.to_vec();
        expected.sort_by(|a, b| a.total_cmp(b));
        let cmp: Vec<u32> = result.keys.iter().map(|k| k.to_bits()).collect();
        let exp: Vec<u32> = expected.iter().map(|k| k.to_bits()).collect();
        assert_eq!(cmp, exp);
        assert_eq!(result.report.total, 7);
        assert_eq!(result.report.distinct, 5);
        assert_eq!(result.report.kind, JobKind::Sort);
    }

    #[test]
    fn typed_top_k_returns_the_k_smallest_signed_ints() {
        let client = client();
        let keys: Vec<i64> = (0..500)
            .map(|i| ((i * 2_654_435_761_u64 as i64) % 1000) - 500)
            .collect();
        let mut expected = keys.clone();
        expected.sort_unstable();
        expected.truncate(10);
        let result = client.submit_top_k(&keys, 10).unwrap();
        assert_eq!(result.keys, expected);
        assert_eq!(result.report.kind, JobKind::TopK(10));
        assert_eq!(result.report.metrics.topk_jobs, 1);
    }

    #[test]
    fn typed_percentiles_come_from_the_histogram() {
        let client = client();
        let keys: Vec<u32> = (1..=10_000).collect();
        let result = client.submit_percentiles(&keys, &[0.1, 0.5, 0.9]).unwrap();
        assert_eq!(result.keys.len(), 3);
        for (q, &approx) in [0.1f64, 0.5, 0.9].iter().zip(&result.keys) {
            let exact = q * 10_000.0;
            assert!(
                (approx as f64 - exact).abs() <= 0.05 * exact,
                "q={q}: {approx} vs {exact}"
            );
        }
        assert_eq!(result.report.metrics.percentile_jobs, 1);
        assert_eq!(result.report.engine, Engine::CpuQuicksort);
    }

    #[test]
    fn order_by_returns_a_stable_permutation_per_column() {
        let client = client();
        let batch = ColumnBatch::generate(300, 17);
        for column in ["price", "delta", "ts"] {
            let result = client.order_by(&batch, column).unwrap();
            let perm = &result.permutation;
            // It is a permutation...
            let mut seen = perm.clone();
            seen.sort_unstable();
            assert_eq!(seen, (0..300).collect::<Vec<u32>>(), "{column}");
            // ...that sorts the column stably.
            match batch.column(column).unwrap() {
                Column::F32(v) => assert_stable_sorted(perm, v, |a, b| a.total_cmp(b)),
                Column::I32(v) => assert_stable_sorted(perm, v, |a, b| a.cmp(b)),
                Column::U32(v) => assert_stable_sorted(perm, v, |a, b| a.cmp(b)),
            }
            assert_eq!(result.report.metrics.orderby_jobs, 1);
        }
        assert!(client.order_by(&batch, "nope").is_err());
    }

    fn assert_stable_sorted<T: Copy>(
        perm: &[u32],
        col: &[T],
        cmp: impl Fn(&T, &T) -> std::cmp::Ordering,
    ) {
        for w in perm.windows(2) {
            let (a, b) = (w[0], w[1]);
            let ord = cmp(&col[a as usize], &col[b as usize]);
            assert!(
                ord == std::cmp::Ordering::Less || (ord == std::cmp::Ordering::Equal && a < b),
                "rows {a},{b} out of order"
            );
        }
    }

    #[test]
    fn typed_strings_sort_lexicographically() {
        let client = client();
        let words = ["pear", "apple", "", "zz", "apples!", "Apple"];
        let keys: Vec<StrKey> = words.iter().map(|w| StrKey::new(w).unwrap()).collect();
        let result = client.submit_keys(&keys).unwrap();
        let sorted: Vec<&str> = result.keys.iter().map(|k| k.as_str()).collect();
        let mut expected = words.to_vec();
        expected.sort_unstable();
        assert_eq!(sorted, expected);
    }
}
