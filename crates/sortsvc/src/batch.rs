//! Batch formation and execution.
//!
//! The coalescer concatenates many small jobs into one *segmented* device
//! submission: each job gets a power-of-two segment padded with
//! [`Value::padding_sentinel`]s, the segment count is padded to a power of
//! two with all-sentinel dummy segments, the whole buffer is sorted with
//! [`GpuAbiSorter::sort_segments_run`] (one set of stream operations for
//! the entire batch), and the per-job results are split back out and
//! truncated. The results are byte-identical to sorting every job alone —
//! sorted output is unique under the total order — which the workspace's
//! property tests assert.

use crate::job::{JobKind, SortJob};
use crate::keys::{encoded_to_record, encoded_to_value, record_to_encoded, value_to_encoded};
use crate::policy::{Engine, SortPolicy};
use crate::shard::ShardedSorter;
use abisort::GpuAbiSorter;
use baselines::{CpuSortModel, CpuSorter};
use stream_arch::{Counters, LogHistogram, Result, StreamProcessor, Value};
use terasort::{SimulatedDisk, TeraSortConfig, TeraSorter, WideRecord};

/// Smallest segment the coalescer uses. 16 keeps the Section 7
/// optimizations (8-element local sort, 16-element fixed merge) applicable
/// to every batch.
pub const MIN_SEGMENT: usize = 16;

/// The padded segment a job of `len` elements occupies.
pub fn segment_for(len: usize) -> usize {
    len.next_power_of_two().max(MIN_SEGMENT)
}

/// A planned batch: jobs, engine, device slot and timing estimates.
#[derive(Clone, Debug)]
pub struct BatchPlan {
    /// Batch id (formation order).
    pub id: usize,
    /// Primary device slot the batch is pinned to.
    pub slot: usize,
    /// Additional slots reserved by a multi-device (sharded) batch; empty
    /// for every single-slot engine.
    pub extra_slots: Vec<usize>,
    /// The engine the policy selected.
    pub engine: Engine,
    /// Simulated time at which the batch was closed (earliest start).
    pub ready_ms: f64,
    /// Estimated duration used for scheduling and admission.
    pub est_ms: f64,
    /// Per-job segment length (power of two, ≥ [`MIN_SEGMENT`]).
    pub segment_len: usize,
    /// Padded segment count (power of two, ≥ number of jobs).
    pub segments: usize,
    /// The coalesced jobs.
    pub jobs: Vec<SortJob>,
}

impl BatchPlan {
    /// All device slots the batch occupies (primary first).
    pub fn slots(&self) -> impl Iterator<Item = usize> + '_ {
        std::iter::once(self.slot).chain(self.extra_slots.iter().copied())
    }

    /// Number of device slots the batch occupies.
    pub fn slot_count(&self) -> usize {
        1 + self.extra_slots.len()
    }

    /// Padded device capacity of the batch in elements.
    pub fn capacity(&self) -> usize {
        self.segment_len * self.segments
    }

    /// Real elements carried by the batch.
    pub fn elements(&self) -> usize {
        self.jobs.iter().map(SortJob::len).sum()
    }

    /// Total bytes of the batch's jobs.
    pub fn bytes(&self) -> usize {
        self.jobs.iter().map(SortJob::bytes).sum()
    }

    /// Fraction of the padded capacity carrying real elements — the
    /// batch-occupancy service metric.
    pub fn occupancy(&self) -> f64 {
        if self.capacity() == 0 {
            0.0
        } else {
            self.elements() as f64 / self.capacity() as f64
        }
    }
}

/// Incremental capacity bookkeeping while a batch fills.
#[derive(Default)]
pub struct BatchBuilder {
    jobs: Vec<SortJob>,
    segment_len: usize,
}

impl BatchBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Jobs currently collected.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if no jobs are collected.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Add a job.
    pub fn push(&mut self, job: SortJob) {
        self.segment_len = self.segment_len.max(segment_for(job.len()));
        self.jobs.push(job);
    }

    /// Take the collected jobs and their segmented layout, leaving the
    /// builder empty.
    pub fn take(&mut self) -> (Vec<SortJob>, usize, usize) {
        let jobs = std::mem::take(&mut self.jobs);
        let segment_len = self.segment_len;
        self.segment_len = 0;
        let segments = jobs.len().next_power_of_two();
        (jobs, segment_len, segments)
    }
}

/// What executing one batch produced.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// The batch id this outcome belongs to.
    pub id: usize,
    /// Simulated duration of the batch on its engine.
    pub duration_ms: f64,
    /// Host wall-clock execution time.
    pub wall_ms: f64,
    /// Stream-processor counters (zero for CPU/terasort batches).
    pub counters: Counters,
    /// Shards a sharded batch actually spread over (0 for every other
    /// engine).
    pub shards: usize,
    /// Splitter skew of a sharded batch (0.0 for every other engine).
    pub shard_skew: f64,
    /// Per-job sorted outputs, aligned with `BatchPlan::jobs`.
    pub outputs: Vec<Vec<Value>>,
}

/// Execute a batch on its selected engine. GPU batches run on the pooled
/// `proc`; the processor's counters are taken (and reset) afterwards so the
/// next batch on the same slot starts clean. Terasort batches run against
/// a fresh simulated disk with the policy's [`terasort::DiskProfile`]. A sharded
/// batch that ended up with a single reserved slot degenerates to one
/// shard on `proc`.
pub fn execute(
    plan: &BatchPlan,
    proc: &mut StreamProcessor,
    sorter: &GpuAbiSorter,
    sharder: &ShardedSorter,
    policy: &SortPolicy,
    tera: &TeraSortConfig,
) -> Result<BatchOutcome> {
    if let Some(outcome) = execute_query(plan, proc, sorter, policy, tera)? {
        return Ok(outcome);
    }
    if plan.engine == Engine::ShardedGpu {
        return execute_sharded(plan, std::slice::from_mut(proc), sharder);
    }
    let started = std::time::Instant::now();
    let (duration_ms, counters, outputs) = match plan.engine {
        Engine::GpuAbiSort => execute_gpu(plan, proc, sorter)?,
        Engine::CpuQuicksort => execute_cpu(plan, policy.cpu_model()),
        Engine::TeraSort => execute_tera(plan, tera, policy)?,
        Engine::ShardedGpu => unreachable!("handled above"),
    };
    Ok(BatchOutcome {
        id: plan.id,
        duration_ms,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        counters,
        shards: 0,
        shard_skew: 0.0,
        outputs,
    })
}

/// Execute the solo query kinds (top-k, percentile) that bypass the plain
/// segmented sort. Returns `None` for sort/order-by plans (and for
/// coalesced multi-job batches, which by construction carry only
/// coalescing kinds), which fall through to the engine dispatch in
/// [`execute`].
fn execute_query(
    plan: &BatchPlan,
    proc: &mut StreamProcessor,
    sorter: &GpuAbiSorter,
    policy: &SortPolicy,
    tera: &TeraSortConfig,
) -> Result<Option<BatchOutcome>> {
    let kind = match plan.jobs.as_slice() {
        [job] => job.kind.clone(),
        _ => return Ok(None),
    };
    let started = std::time::Instant::now();
    let (duration_ms, counters, outputs) = match kind {
        JobKind::Sort | JobKind::OrderBy => return Ok(None),
        JobKind::TopK(k) => execute_top_k(plan, proc, sorter, policy, tera, k)?,
        JobKind::Percentile(qs) => execute_percentile(plan, policy, &qs),
    };
    Ok(Some(BatchOutcome {
        id: plan.id,
        duration_ms,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        counters,
        shards: 0,
        shard_skew: 0.0,
        outputs,
    }))
}

/// Top-k execution. On the GPU engine the bitonic recursion stops early
/// via [`GpuAbiSorter::top_k_run`] — strictly fewer kernel steps than a
/// full sort whenever `2 * k.next_power_of_two() < n` (asserted by the
/// abisort tests). Any other engine the planner picked (e.g. terasort for
/// an out-of-core job) sorts fully and truncates.
fn execute_top_k(
    plan: &BatchPlan,
    proc: &mut StreamProcessor,
    sorter: &GpuAbiSorter,
    policy: &SortPolicy,
    tera: &TeraSortConfig,
    k: usize,
) -> Result<(f64, Counters, Vec<Vec<Value>>)> {
    let job = &plan.jobs[0];
    match plan.engine {
        Engine::GpuAbiSort | Engine::ShardedGpu => {
            let run = sorter.top_k_run(proc, &job.values, k)?;
            let counters = proc.take_counters();
            Ok((run.sim_time.total_ms, counters, vec![run.output]))
        }
        Engine::CpuQuicksort => {
            let (duration_ms, counters, mut outputs) = execute_cpu(plan, policy.cpu_model());
            outputs[0].truncate(k);
            Ok((duration_ms, counters, outputs))
        }
        Engine::TeraSort => {
            let (duration_ms, counters, mut outputs) = execute_tera(plan, tera, policy)?;
            outputs[0].truncate(k);
            Ok((duration_ms, counters, outputs))
        }
    }
}

/// Percentile execution: one streaming pass folds the encoded keys into a
/// [`LogHistogram`], then each requested quantile decodes back into the
/// `Value` domain through [`encoded_to_value`]. No engine sorts anything;
/// the simulated duration is the policy's linear scan estimate.
fn execute_percentile(
    plan: &BatchPlan,
    policy: &SortPolicy,
    quantiles: &[f64],
) -> (f64, Counters, Vec<Vec<Value>>) {
    let job = &plan.jobs[0];
    let mut hist = LogHistogram::new();
    for v in &job.values {
        hist.record(value_to_encoded(v) as f64);
    }
    let output = quantiles
        .iter()
        .map(|&q| encoded_to_value(hist.quantile(q) as u64))
        .collect();
    (policy.est_scan_ms(job.len()), Counters::new(), vec![output])
}

/// Execute a sharded batch over the pooled processors backing its reserved
/// slots (one shard per processor). Sharded batches are always solo jobs —
/// the coalescer never routes a multi-job batch here.
pub fn execute_sharded(
    plan: &BatchPlan,
    procs: &mut [StreamProcessor],
    sharder: &ShardedSorter,
) -> Result<BatchOutcome> {
    debug_assert_eq!(plan.engine, Engine::ShardedGpu);
    // Hard invariant (not a debug assert): the finalize loop zips jobs
    // against outputs, so a multi-job sharded plan would silently drop
    // every job after the first instead of failing loudly.
    assert_eq!(plan.jobs.len(), 1, "sharded batches carry exactly one job");
    let job = &plan.jobs[0];
    let run = sharder.sort_run(procs, &job.values)?;
    Ok(BatchOutcome {
        id: plan.id,
        duration_ms: run.sim_ms,
        wall_ms: run.wall_time.as_secs_f64() * 1e3,
        counters: run.counters,
        shards: run.shards,
        shard_skew: run.skew,
        outputs: vec![run.output],
    })
}

fn execute_gpu(
    plan: &BatchPlan,
    proc: &mut StreamProcessor,
    sorter: &GpuAbiSorter,
) -> Result<(f64, Counters, Vec<Vec<Value>>)> {
    let m = plan.segment_len;
    // The packed device buffer comes from the pooled processor's arena, so
    // a long service run reuses one allocation per capacity class instead
    // of mallocing per batch.
    let mut packed = proc.arena().take_capacity::<Value>(plan.capacity());
    let mut pad = 0usize;
    for job in &plan.jobs {
        packed.extend_from_slice(&job.values);
        for _ in job.len()..m {
            packed.push(Value::padding_sentinel(pad));
            pad += 1;
        }
    }
    // Dummy segments padding the count to a power of two.
    while packed.len() < plan.capacity() {
        packed.push(Value::padding_sentinel(pad));
        pad += 1;
    }

    let run = sorter.sort_segments_run(proc, &packed, m)?;
    // Leave the pooled processor clean for the next batch on this slot.
    let counters = proc.take_counters();

    let outputs = plan
        .jobs
        .iter()
        .enumerate()
        .map(|(t, job)| run.output[t * m..t * m + job.len()].to_vec())
        .collect();
    proc.arena().put_vec(packed);
    Ok((run.sim_time.total_ms, counters, outputs))
}

fn execute_cpu(plan: &BatchPlan, cpu_model: &CpuSortModel) -> (f64, Counters, Vec<Vec<Value>>) {
    let mut duration_ms = 0.0;
    let outputs = plan
        .jobs
        .iter()
        .map(|job| {
            let (sorted, stats) = CpuSorter.sort(&job.values);
            duration_ms += cpu_model.time_ms(&stats);
            sorted
        })
        .collect();
    (duration_ms, Counters::new(), outputs)
}

fn execute_tera(
    plan: &BatchPlan,
    tera: &TeraSortConfig,
    policy: &SortPolicy,
) -> Result<(f64, Counters, Vec<Vec<Value>>)> {
    let mut duration_ms = 0.0;
    let mut outputs = Vec::with_capacity(plan.jobs.len());
    for job in &plan.jobs {
        if job.len() <= 1 {
            outputs.push(job.values.clone());
            continue;
        }
        let mut disk = SimulatedDisk::new(*policy.tera_disk());
        let input = disk.create(&format!("job-{}", job.id));
        let records: Vec<WideRecord> = job
            .values
            .iter()
            .map(|v| encoded_to_record(value_to_encoded(v), v.id as u64))
            .collect();
        disk.append(input, &records);
        let report = TeraSorter::new(tera.clone()).sort(&mut disk, input)?;
        duration_ms += report.total_ms;
        outputs.push(
            disk.read_all(report.output)
                .iter()
                .map(|r| encoded_to_value(record_to_encoded(r)))
                .collect(),
        );
    }
    Ok((duration_ms, Counters::new(), outputs))
}

/// Embed a [`Value`] into a [`WideRecord`] whose wide key preserves the
/// total order. Superseded by the codec layer: this is exactly
/// [`crate::keys::encoded_to_record`] over [`crate::keys::value_to_encoded`]
/// (the sign-flip trick now lives in the `f32` [`crate::keys::SortKey`]
/// impl), kept as a shim for one release so downstream code migrates.
#[deprecated(note = "use sortsvc::keys::{value_to_encoded, encoded_to_record}")]
pub fn value_to_record(v: &Value) -> WideRecord {
    encoded_to_record(value_to_encoded(v), v.id as u64)
}

/// Invert [`value_to_record`]. Superseded by
/// [`crate::keys::record_to_encoded`] + [`crate::keys::encoded_to_value`].
#[deprecated(note = "use sortsvc::keys::{record_to_encoded, encoded_to_value}")]
pub fn record_to_value(r: &WideRecord) -> Value {
    encoded_to_value(record_to_encoded(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyConfig;
    use abisort::SortConfig;
    use std::sync::OnceLock;
    use stream_arch::GpuProfile;

    fn shared_policy() -> &'static SortPolicy {
        static POLICY: OnceLock<SortPolicy> = OnceLock::new();
        POLICY.get_or_init(|| {
            SortPolicy::calibrate(
                &GpuProfile::geforce_7800(),
                &SortConfig::default(),
                &PolicyConfig::default(),
            )
        })
    }

    fn plan(jobs: Vec<SortJob>, engine: Engine) -> BatchPlan {
        let mut builder = BatchBuilder::new();
        for job in jobs {
            builder.push(job);
        }
        let (jobs, segment_len, segments) = builder.take();
        BatchPlan {
            id: 0,
            slot: 0,
            extra_slots: Vec::new(),
            engine,
            ready_ms: 0.0,
            est_ms: 0.0,
            segment_len,
            segments,
            jobs,
        }
    }

    fn reference(job: &SortJob) -> Vec<Value> {
        let mut v = job.values.clone();
        v.sort();
        v
    }

    fn check_engine(engine: Engine) {
        let jobs: Vec<SortJob> = [(0usize, 17u64), (1, 1), (100, 2), (257, 3), (64, 4)]
            .iter()
            .enumerate()
            .map(|(i, &(n, seed))| {
                SortJob::new(i as u64, i as u32 % 2, workloads::uniform(n, seed))
            })
            .collect();
        let expected: Vec<Vec<Value>> = jobs.iter().map(reference).collect();
        let plan = plan(jobs, engine);
        let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
        let out = execute(
            &plan,
            &mut proc,
            &GpuAbiSorter::new(SortConfig::default()),
            &ShardedSorter::default(),
            shared_policy(),
            &TeraSortConfig {
                run_size: 128,
                ..TeraSortConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.outputs, expected, "{}", engine.name());
        assert!(out.duration_ms >= 0.0);
    }

    #[test]
    fn gpu_batch_outputs_match_per_job_sorts() {
        check_engine(Engine::GpuAbiSort);
    }

    #[test]
    fn cpu_batch_outputs_match_per_job_sorts() {
        check_engine(Engine::CpuQuicksort);
    }

    #[test]
    fn terasort_batch_outputs_match_per_job_sorts() {
        check_engine(Engine::TeraSort);
    }

    #[test]
    fn sharded_batch_matches_the_reference_on_one_and_many_slots() {
        let job = SortJob::new(0, 0, workloads::uniform(5000, 8));
        let expected = reference(&job);
        let plan = plan(vec![job], Engine::ShardedGpu);
        let sharder = ShardedSorter::default();

        // Multi-slot execution (the normal sharded path).
        let mut pool: Vec<StreamProcessor> = (0..4)
            .map(|_| StreamProcessor::new(GpuProfile::geforce_7800()))
            .collect();
        let multi = execute_sharded(&plan, &mut pool, &sharder).unwrap();
        assert_eq!(multi.outputs, vec![expected.clone()]);
        assert_eq!(multi.shards, 4);
        assert!(multi.shard_skew >= 1.0);

        // Degenerate single-slot execution through the generic entry point.
        let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
        let single = execute(
            &plan,
            &mut proc,
            &GpuAbiSorter::new(SortConfig::default()),
            &sharder,
            shared_policy(),
            &TeraSortConfig::default(),
        )
        .unwrap();
        assert_eq!(single.outputs, vec![expected]);
        assert_eq!(single.shards, 1);
        assert!(single.duration_ms > 0.0 && multi.duration_ms > 0.0);
    }

    #[test]
    fn gpu_execution_leaves_the_pooled_processor_clean() {
        let jobs = vec![SortJob::new(0, 0, workloads::uniform(64, 5))];
        let plan = plan(jobs, Engine::GpuAbiSort);
        let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
        let out = execute(
            &plan,
            &mut proc,
            &GpuAbiSorter::new(SortConfig::default()),
            &ShardedSorter::default(),
            shared_policy(),
            &TeraSortConfig::default(),
        )
        .unwrap();
        assert!(out.counters.launches > 0);
        assert_eq!(proc.counters(), Counters::new(), "no metric bleed");
    }

    #[test]
    fn builder_layout_accounts_for_padding() {
        let mut b = BatchBuilder::new();
        b.push(SortJob::new(0, 0, workloads::uniform(100, 0))); // pads to 128
        b.push(SortJob::new(1, 0, workloads::uniform(20, 1)));
        b.push(SortJob::new(2, 0, workloads::uniform(20, 2)));
        assert_eq!(b.len(), 3);
        // The largest job sets the segment; three jobs pad to four
        // segments.
        let (jobs, segment_len, segments) = b.take();
        assert_eq!((jobs.len(), segment_len, segments), (3, 128, 4));
        assert!(b.is_empty());
    }

    #[test]
    fn segment_for_clamps_to_the_minimum() {
        assert_eq!(segment_for(0), MIN_SEGMENT);
        assert_eq!(segment_for(1), MIN_SEGMENT);
        assert_eq!(segment_for(16), 16);
        assert_eq!(segment_for(17), 32);
        assert_eq!(segment_for(1000), 1024);
    }

    #[test]
    fn wide_record_conversion_preserves_the_total_order() {
        let mut values = workloads::uniform(256, 9);
        values.push(Value::new(f32::NEG_INFINITY, 300));
        values.push(Value::new(-0.0, 301));
        values.push(Value::new(0.0, 302));
        values.push(Value::new(f32::INFINITY, 303));
        let mut by_value = values.clone();
        by_value.sort();
        let mut by_record: Vec<WideRecord> = values
            .iter()
            .map(|v| encoded_to_record(value_to_encoded(v), v.id as u64))
            .collect();
        by_record.sort();
        let back: Vec<Value> = by_record
            .iter()
            .map(|r| encoded_to_value(record_to_encoded(r)))
            .collect();
        assert_eq!(back, by_value);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_the_codec_layer_bit_for_bit() {
        let mut values = workloads::uniform(128, 11);
        values.push(Value::new(f32::NEG_INFINITY, 200));
        values.push(Value::new(-0.0, 201));
        values.push(Value::new(0.0, 202));
        for v in &values {
            let via_keys = encoded_to_record(value_to_encoded(v), v.id as u64);
            assert_eq!(value_to_record(v), via_keys);
            assert_eq!(record_to_value(&via_keys), *v);
        }
    }

    #[test]
    fn top_k_plan_returns_the_k_smallest_on_gpu_and_fallback_engines() {
        let k = 7;
        for engine in [Engine::GpuAbiSort, Engine::CpuQuicksort, Engine::TeraSort] {
            let job = SortJob::new(0, 0, workloads::uniform(300, 13))
                .with_kind(crate::job::JobKind::TopK(k));
            let mut expected = job.values.clone();
            expected.sort();
            expected.truncate(k);
            let plan = plan(vec![job], engine);
            let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
            let out = execute(
                &plan,
                &mut proc,
                &GpuAbiSorter::new(SortConfig::default()),
                &ShardedSorter::default(),
                shared_policy(),
                &TeraSortConfig {
                    run_size: 128,
                    ..TeraSortConfig::default()
                },
            )
            .unwrap();
            assert_eq!(out.outputs, vec![expected.clone()], "{}", engine.name());
        }
    }

    #[test]
    fn percentile_plan_answers_from_the_histogram_without_sorting() {
        let job = SortJob::new(0, 0, workloads::uniform(4096, 21))
            .with_kind(crate::job::JobKind::Percentile(vec![0.25, 0.5, 0.99]));
        let mut sorted = job.values.clone();
        sorted.sort();
        let plan = plan(vec![job], Engine::CpuQuicksort);
        let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
        let out = execute(
            &plan,
            &mut proc,
            &GpuAbiSorter::new(SortConfig::default()),
            &ShardedSorter::default(),
            shared_policy(),
            &TeraSortConfig::default(),
        )
        .unwrap();
        assert_eq!(out.counters.launches, 0, "no device work");
        let answers = &out.outputs[0];
        assert_eq!(answers.len(), 3);
        // The log-histogram is approximate: each answer must land within
        // its bucket's relative-error bound of the exact quantile key.
        for (&q, approx) in [0.25, 0.5, 0.99].iter().zip(answers) {
            let exact = sorted[((q * sorted.len() as f64).ceil() as usize).max(1) - 1];
            let e = value_to_encoded(&exact) as f64;
            let a = value_to_encoded(approx) as f64;
            assert!(
                (a - e).abs() <= 0.05 * e.abs().max(1.0),
                "q={q}: approx {a} too far from exact {e}"
            );
        }
    }
}
