//! The engine-selection policy and its calibration.
//!
//! Section 8 of the paper establishes that *which* sorter wins is a
//! function of problem size: the CPU quicksort beats the GPU below roughly
//! 32k keys (stream-operation launch overhead dominates small problems),
//! GPU-ABiSort wins above, and out-of-core problems need the hybrid
//! terasort pipeline. [`SortPolicy`] lifts that observation into the
//! serving layer: at construction it *measures* the simulator under the
//! service's [`GpuProfile`] with a few small probe sorts, fits the launch
//! overhead / per-element work decomposition the paper's cost model is
//! built from, and derives
//!
//! * a CPU/GPU **crossover size** for single jobs,
//! * a **batched-launch estimate** `est_gpu_batch_ms(segment_len,
//!   segments)` that charges the stream operations of sorting *one*
//!   segment regardless of the segment count (the amortization
//!   [`abisort::GpuAbiSorter::sort_segments_run`] realises), and
//! * a data-dependence adjustment for the CPU estimate from the job's
//!   distribution hint (the E10 experiment: quicksort's running time is
//!   data dependent, the GPU's is not).

use abisort::{GpuAbiSorter, SortConfig};
use baselines::{CpuSortModel, CpuSorter};
use stream_arch::{DeviceLink, GpuProfile, StreamElement, StreamProcessor, Value};
use terasort::DiskProfile;
use workloads::Distribution;

/// The sorting engines the service can dispatch a batch to.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The sequential CPU quicksort baseline (`baselines::CpuSorter`).
    CpuQuicksort,
    /// GPU-ABiSort on the stream-processor simulator, batched via
    /// segmented launches.
    GpuAbiSort,
    /// One large sort spread over several device slots
    /// ([`crate::ShardedSorter`]): splitter partition, concurrent shard
    /// sorts, tournament p-way recombination.
    ShardedGpu,
    /// The hybrid out-of-core pipeline (`terasort`).
    TeraSort,
}

impl Engine {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::CpuQuicksort => "cpu-quicksort",
            Engine::GpuAbiSort => "gpu-abisort",
            Engine::ShardedGpu => "sharded-gpu",
            Engine::TeraSort => "terasort",
        }
    }
}

/// Configuration of the policy calibration.
#[derive(Clone, Debug)]
pub struct PolicyConfig {
    /// CPU time model used for the quicksort engine estimates.
    pub cpu_model: CpuSortModel,
    /// Jobs at or above this size are routed to the out-of-core pipeline.
    /// The default (`usize::MAX`) disables the route; the service clamps it
    /// to what fits a device stream.
    pub out_of_core_threshold: usize,
    /// Force the CPU/GPU crossover instead of calibrating it (useful for
    /// experiments: `Some(0)` sends everything to the GPU).
    pub crossover_override: Option<usize>,
    /// log₂ of the three GPU probe-sort sizes (must be distinct and ≥ 5).
    pub probe_log_sizes: [u32; 3],
    /// log₂ of the CPU probe-sort size.
    pub cpu_probe_log_size: u32,
    /// Disk profile of the out-of-core engine (used both to execute
    /// terasort batches and to estimate their duration).
    pub tera_disk: DiskProfile,
    /// Device slots a sharded submission may spread over. `1` (the
    /// default) disables the [`Engine::ShardedGpu`] route; the service
    /// sets this to its slot count when sharding is enabled.
    pub shard_slots: usize,
    /// Force the sharded minimum size instead of calibrating it
    /// (`Some(0)` shards everything the size rules allow — the knob the
    /// sharded property tests and scaling experiments use).
    pub sharded_min_override: Option<usize>,
    /// Inter-device link charged for shard recombination. `None` derives a
    /// host-staged link from the calibration profile's bus.
    pub device_link: Option<DeviceLink>,
    /// Sustained host-memory bandwidth in GB/s charged for the sharded
    /// engine's streaming partition pass.
    pub host_bandwidth_gbs: f64,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            cpu_model: CpuSortModel::athlon_64_4200(),
            out_of_core_threshold: usize::MAX,
            crossover_override: None,
            probe_log_sizes: [6, 8, 10],
            cpu_probe_log_size: 12,
            tera_disk: DiskProfile::hdd_2006(),
            shard_slots: 1,
            sharded_min_override: None,
            device_link: None,
            host_bandwidth_gbs: 3.2,
        }
    }
}

/// The calibrated policy.
///
/// ```
/// use abisort::SortConfig;
/// use sortsvc::{PolicyConfig, SortPolicy};
/// use stream_arch::GpuProfile;
///
/// let policy = SortPolicy::calibrate(
///     &GpuProfile::geforce_7800(),
///     &SortConfig::default(),
///     &PolicyConfig::default(),
/// );
/// // Probe sorts fit the launch-overhead/per-element decomposition and
/// // derive the paper's Section-8 crossover: CPU quicksort below it,
/// // GPU-ABiSort above.
/// assert!(policy.crossover() > 0);
/// assert!(policy.est_cpu_ms(100, None) < policy.est_cpu_ms(100_000, None));
/// ```
#[derive(Clone, Debug)]
pub struct SortPolicy {
    cpu_model: CpuSortModel,
    /// ms of launch overhead charged per stream operation.
    op_overhead_ms: f64,
    /// Coefficients of the fitted stream-operation count
    /// `steps(L) ≈ s0 + s1·L + s2·L²` for a sort whose independently
    /// sorted blocks have `2^L` elements (quadratic in `L` under the
    /// overlapped schedule of Section 5.4).
    steps_fit: [f64; 3],
    /// Fitted per-element body cost: `body_ms ≈ w · n · L²`.
    work_ms_per_elem_l2: f64,
    /// Fitted CPU cost: `cpu_ms ≈ c · n · log₂ n` for uniform input.
    cpu_ms_per_elem_log: f64,
    /// Single-job CPU/GPU crossover size (elements).
    crossover: usize,
    /// True when the crossover was forced by configuration: engine
    /// selection then uses the size rule alone instead of the estimates.
    crossover_forced: bool,
    /// Jobs at or above this size go out of core.
    out_of_core_threshold: usize,
    /// Disk profile of the out-of-core engine.
    tera_disk: DiskProfile,
    /// Device slots a sharded submission spreads over (1 ⇒ disabled).
    shard_slots: usize,
    /// Jobs at or above this size route to [`Engine::ShardedGpu`]
    /// (`usize::MAX` ⇒ never).
    sharded_min: usize,
    /// The inter-device link sharded estimates and executions charge.
    device_link: DeviceLink,
    /// Host-memory bandwidth (GB/s) of the sharded partition pass.
    host_bandwidth_gbs: f64,
}

impl SortPolicy {
    /// Calibrate a policy for `profile` by running probe sorts on a scratch
    /// [`StreamProcessor`]. Deterministic: probes use fixed seeds.
    pub fn calibrate(profile: &GpuProfile, sort_config: &SortConfig, cfg: &PolicyConfig) -> Self {
        assert!(
            cfg.probe_log_sizes.windows(2).all(|w| w[0] < w[1]),
            "probe_log_sizes must be strictly increasing (distinct sizes \
             are required by the quadratic fit, ascending order by the \
             per-element coefficient)"
        );
        let mut proc = StreamProcessor::new(profile.clone());
        let sorter = GpuAbiSorter::new(*sort_config);

        // --- GPU probes: decompose sim time into overhead and body -------
        let op_overhead_ms = profile.op_overhead_us / 1_000.0;
        let mut points = [[0.0f64; 2]; 3]; // (L, steps)
        let mut work_samples = Vec::new();
        for (slot, &log_n) in cfg.probe_log_sizes.iter().enumerate() {
            let n = 1usize << log_n;
            let input = workloads::uniform(n, 0xC0FFEE + log_n as u64);
            let run = sorter
                .sort_run(&mut proc, &input)
                .expect("policy calibration probe sort failed");
            let steps = run.counters.effective_ops(profile.multi_block_substreams) as f64;
            points[slot] = [log_n as f64, steps];
            let body_ms = (run.sim_time.total_ms - steps * op_overhead_ms).max(1e-9);
            work_samples.push(body_ms / (n as f64 * (log_n as f64).powi(2)));
        }
        let steps_fit = fit_quadratic(points);
        // The largest probe dominates: it has the best signal-to-noise on
        // the per-element term.
        let work_ms_per_elem_l2 = *work_samples.last().expect("at least one probe");

        // --- CPU probe ---------------------------------------------------
        let cpu_n = 1usize << cfg.cpu_probe_log_size;
        let (_, stats) = CpuSorter.sort(&workloads::uniform(cpu_n, 0xBEEF));
        let cpu_ms = cfg.cpu_model.time_ms(&stats);
        let cpu_ms_per_elem_log = cpu_ms / (cpu_n as f64 * cfg.cpu_probe_log_size as f64);

        let mut policy = SortPolicy {
            cpu_model: cfg.cpu_model,
            op_overhead_ms,
            steps_fit,
            work_ms_per_elem_l2,
            cpu_ms_per_elem_log,
            crossover: 0,
            crossover_forced: cfg.crossover_override.is_some(),
            out_of_core_threshold: cfg.out_of_core_threshold,
            tera_disk: cfg.tera_disk,
            shard_slots: cfg.shard_slots.max(1),
            sharded_min: usize::MAX,
            device_link: cfg
                .device_link
                .unwrap_or(DeviceLink::host_staged(profile.bus)),
            host_bandwidth_gbs: cfg.host_bandwidth_gbs,
        };
        policy.crossover = match cfg.crossover_override {
            Some(n) => n,
            None => policy.search_crossover(),
        };
        policy.sharded_min = match cfg.sharded_min_override {
            Some(n) => n,
            None => policy.search_sharded_min(),
        };
        policy
    }

    /// Smallest power of two where the estimated single-job GPU time drops
    /// below the estimated CPU time.
    fn search_crossover(&self) -> usize {
        let mut n = 16usize;
        while n <= (1 << 24) {
            if self.est_gpu_batch_ms(n, 1) <= self.est_cpu_ms(n, None) {
                return n;
            }
            n *= 2;
        }
        usize::MAX
    }

    /// Smallest power of two where sharding a job over the configured slot
    /// count beats the single-device submission *and* the device already
    /// beats the CPU (sharding a CPU-regime job only adds hops). Below the
    /// returned size the partition/transfer/merge overhead eats the
    /// parallel speed-up.
    fn search_sharded_min(&self) -> usize {
        if self.shard_slots < 2 {
            return usize::MAX;
        }
        let mut n = 1usize << 12;
        while n <= (1 << 26) {
            if self.est_sharded_ms(n) < self.est_gpu_batch_ms(n, 1)
                && self.est_gpu_batch_ms(n, 1) < self.est_cpu_ms(n, None)
            {
                return n;
            }
            n *= 2;
        }
        usize::MAX
    }

    /// The CPU time model backing the quicksort engine.
    pub fn cpu_model(&self) -> &CpuSortModel {
        &self.cpu_model
    }

    /// The calibrated single-job CPU/GPU crossover (elements).
    pub fn crossover(&self) -> usize {
        self.crossover
    }

    /// The out-of-core routing threshold (elements).
    pub fn out_of_core_threshold(&self) -> usize {
        self.out_of_core_threshold
    }

    /// Estimated CPU quicksort time for `len` elements, adjusted by the
    /// distribution hint (quicksort is data dependent — experiment E10).
    pub fn est_cpu_ms(&self, len: usize, hint: Option<Distribution>) -> f64 {
        if len < 2 {
            return 0.0;
        }
        let log = (len as f64).log2();
        self.cpu_ms_per_elem_log * len as f64 * log * hint_factor(hint)
    }

    /// Estimated simulated time of one *batched* GPU submission sorting
    /// `segments` independent segments of `segment_len` elements each: the
    /// launch overhead of sorting one segment (shared by all segments)
    /// plus per-element body work.
    pub fn est_gpu_batch_ms(&self, segment_len: usize, segments: usize) -> f64 {
        if segment_len < 2 || segments == 0 {
            return 0.0;
        }
        let l = (segment_len.next_power_of_two().trailing_zeros()) as f64;
        let [s0, s1, s2] = self.steps_fit;
        let steps = (s0 + s1 * l + s2 * l * l).max(1.0);
        let total = (segment_len * segments) as f64;
        steps * self.op_overhead_ms + self.work_ms_per_elem_l2 * total * l * l
    }

    /// Estimated simulated time of sorting `len` elements sharded over the
    /// configured slot count — the decomposition [`crate::ShardedSorter`]
    /// charges when it executes: a bandwidth-bound streaming partition,
    /// the dominant shard sort (quota padded to a power of two), the
    /// serialized inter-device gather hops, and the on-device tournament
    /// merge (the recursion levels above the shard blocks, priced from
    /// the same fitted steps/work model as [`Self::est_gpu_batch_ms`]).
    pub fn est_sharded_ms(&self, len: usize) -> f64 {
        let p = self.shard_slots.max(1);
        if len < 2 {
            return 0.0;
        }
        if p == 1 {
            return self.est_gpu_batch_ms(len.next_power_of_two(), 1);
        }
        let quota = len.div_ceil(p);
        let seg = quota.next_power_of_two();
        let total = seg * p.next_power_of_two();

        let elem_bytes = Value::BYTES;
        let partition_ms = (2 * len * elem_bytes) as f64 / (self.host_bandwidth_gbs * 1e9) * 1e3;
        let shard_ms = self.est_gpu_batch_ms(seg, 1);
        let gather_ms = (p - 1) as f64 * self.device_link.hop_ms((quota * elem_bytes) as u64);
        // The device merge runs levels log₂(seg)+1 ..= log₂(total): its
        // launch overhead is the fitted step-count difference and its body
        // work the L² difference of the fitted per-element cost.
        let (l_n, l_s) = (total.trailing_zeros() as f64, seg.trailing_zeros() as f64);
        let [s0, s1, s2] = self.steps_fit;
        let steps = |l: f64| (s0 + s1 * l + s2 * l * l).max(1.0);
        let merge_ms = (steps(l_n) - steps(l_s)).max(0.0) * self.op_overhead_ms
            + self.work_ms_per_elem_l2 * total as f64 * (l_n * l_n - l_s * l_s);

        partition_ms + shard_ms + gather_ms + merge_ms
    }

    /// Device slots the sharded route spreads over (1 ⇒ disabled).
    pub fn shard_slots(&self) -> usize {
        self.shard_slots
    }

    /// The sharded routing threshold (elements; `usize::MAX` ⇒ never).
    pub fn sharded_min(&self) -> usize {
        self.sharded_min
    }

    /// The inter-device link sharded executions are charged on.
    pub fn device_link(&self) -> DeviceLink {
        self.device_link
    }

    /// Host-memory bandwidth (GB/s) the sharded partition pass is charged
    /// at.
    pub fn host_bandwidth_gbs(&self) -> f64 {
        self.host_bandwidth_gbs
    }

    /// Rough estimate of the out-of-core pipeline: four streaming disk
    /// passes over the records (run formation read+write, external merge
    /// read+write) at the configured disk's sequential bandwidth, compute
    /// overlapped. Only used for slot scheduling, never for engine choice
    /// below the out-of-core threshold.
    pub fn est_tera_ms(&self, len: usize) -> f64 {
        let bytes = len as f64 * terasort::record::RECORD_BYTES as f64 * 4.0;
        bytes / (self.tera_disk.bandwidth_mb_s * 1e6) * 1_000.0
    }

    /// The disk profile the out-of-core engine runs on.
    pub fn tera_disk(&self) -> &DiskProfile {
        &self.tera_disk
    }

    /// Estimated simulated time of a GPU top-k over `len` elements: the
    /// early-exit recursion (`GpuAbiSorter::top_k_run`) sorts
    /// `padded / block` independent blocks of `block` elements — exactly
    /// the segmented-batch shape, priced by the same fitted model as
    /// [`Self::est_gpu_batch_ms`]. The block size mirrors the sorter:
    /// `min(max(2·2^⌈log₂k⌉, 16), padded)`.
    pub fn est_top_k_ms(&self, len: usize, k: usize) -> f64 {
        if len < 2 {
            return 0.0;
        }
        let padded = len.next_power_of_two();
        let k = k.clamp(1, len);
        let block = (2 * k.next_power_of_two()).max(16).min(padded);
        self.est_gpu_batch_ms(block, padded / block)
    }

    /// Estimated (and charged) duration of one linear streaming pass over
    /// `len` elements — the percentile histogram fold. Priced as the CPU
    /// sort model with the `log n` comparison factor stripped.
    pub fn est_scan_ms(&self, len: usize) -> f64 {
        self.cpu_ms_per_elem_log * len as f64
    }

    /// The same calibration with the crossover forced to `n`: engine
    /// selection then uses the size rule alone (`Some(0)` pins everything
    /// to the GPU — the coalescing-ablation knob).
    pub fn with_crossover(mut self, n: usize) -> Self {
        self.crossover = n;
        self.crossover_forced = true;
        self
    }

    /// Select the engine for a single job.
    pub fn select_single(&self, len: usize, hint: Option<Distribution>) -> Engine {
        if len >= self.out_of_core_threshold {
            return Engine::TeraSort;
        }
        if self.shard_slots > 1 && len >= self.sharded_min {
            return Engine::ShardedGpu;
        }
        if self.crossover_forced {
            return if len >= self.crossover {
                Engine::GpuAbiSort
            } else {
                Engine::CpuQuicksort
            };
        }
        if self.est_cpu_ms(len, hint) <= self.est_gpu_batch_ms(len.next_power_of_two(), 1) {
            Engine::CpuQuicksort
        } else {
            Engine::GpuAbiSort
        }
    }

    /// Select the engine for a coalesced batch whose segmented layout is
    /// `segments` (padded, power of two) segments of `segment_len`
    /// elements: the batched GPU submission versus sorting every job on
    /// the CPU.
    pub fn select_batch(
        &self,
        job_lens_and_hints: &[(usize, Option<Distribution>)],
        segment_len: usize,
        segments: usize,
    ) -> Engine {
        if let [(len, hint)] = job_lens_and_hints {
            return self.select_single(*len, *hint);
        }
        if self.crossover_forced {
            return if segment_len * segments >= self.crossover {
                Engine::GpuAbiSort
            } else {
                Engine::CpuQuicksort
            };
        }
        let cpu: f64 = job_lens_and_hints
            .iter()
            .map(|&(len, hint)| self.est_cpu_ms(len, hint))
            .sum();
        if self.est_gpu_batch_ms(segment_len, segments) < cpu {
            Engine::GpuAbiSort
        } else {
            Engine::CpuQuicksort
        }
    }

    /// Estimated duration of a batch under the given engine (used to build
    /// the admission controller's in-flight picture and the slot
    /// schedule).
    pub fn est_batch_ms(
        &self,
        engine: Engine,
        job_lens_and_hints: &[(usize, Option<Distribution>)],
        segment_len: usize,
        segments: usize,
    ) -> f64 {
        match engine {
            Engine::CpuQuicksort => job_lens_and_hints
                .iter()
                .map(|&(len, hint)| self.est_cpu_ms(len, hint))
                .sum(),
            Engine::GpuAbiSort => self.est_gpu_batch_ms(segment_len, segments),
            Engine::ShardedGpu => {
                self.est_sharded_ms(job_lens_and_hints.iter().map(|&(len, _)| len).sum())
            }
            Engine::TeraSort => job_lens_and_hints
                .iter()
                .map(|&(len, _)| self.est_tera_ms(len))
                .sum(),
        }
    }
}

/// CPU-estimate multiplier for a distribution hint. The shape follows the
/// data-dependence experiment (E10): median-of-three quicksort is fastest
/// on (nearly) sorted input, and duplicate-heavy inputs finish early via
/// the heapsort fallback; uniform random input is the reference.
fn hint_factor(hint: Option<Distribution>) -> f64 {
    match hint {
        None | Some(Distribution::Uniform) => 1.0,
        Some(Distribution::Sorted) => 0.55,
        Some(Distribution::NearlySorted { .. }) => 0.7,
        Some(Distribution::Reverse) => 0.9,
        Some(Distribution::FewDistinct { .. }) => 0.8,
        Some(Distribution::OrganPipe) => 0.85,
        Some(Distribution::Constant) => 0.9,
    }
}

/// Solve for the quadratic `y = a + b·x + c·x²` through three points.
fn fit_quadratic(points: [[f64; 2]; 3]) -> [f64; 3] {
    let [[x0, y0], [x1, y1], [x2, y2]] = points;
    // Lagrange form expanded to monomial coefficients.
    let d0 = (x0 - x1) * (x0 - x2);
    let d1 = (x1 - x0) * (x1 - x2);
    let d2 = (x2 - x0) * (x2 - x1);
    let c = y0 / d0 + y1 / d1 + y2 / d2;
    let b = -y0 * (x1 + x2) / d0 - y1 * (x0 + x2) / d1 - y2 * (x0 + x1) / d2;
    let a = y0 * x1 * x2 / d0 + y1 * x0 * x2 / d1 + y2 * x0 * x1 / d2;
    [a, b, c]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> SortPolicy {
        SortPolicy::calibrate(
            &GpuProfile::geforce_7800(),
            &SortConfig::default(),
            &PolicyConfig::default(),
        )
    }

    #[test]
    fn fit_quadratic_recovers_exact_coefficients() {
        let f = |x: f64| 2.0 - 3.0 * x + 0.5 * x * x;
        let [a, b, c] = fit_quadratic([[4.0, f(4.0)], [6.0, f(6.0)], [10.0, f(10.0)]]);
        assert!((a - 2.0).abs() < 1e-9);
        assert!((b + 3.0).abs() < 1e-9);
        assert!((c - 0.5).abs() < 1e-9);
    }

    #[test]
    fn calibration_is_deterministic() {
        let a = policy();
        let b = policy();
        assert_eq!(a.crossover(), b.crossover());
        assert_eq!(a.est_cpu_ms(1000, None), b.est_cpu_ms(1000, None));
        assert_eq!(a.est_gpu_batch_ms(256, 8), b.est_gpu_batch_ms(256, 8));
    }

    #[test]
    fn top_k_and_scan_estimates_undercut_the_full_sort() {
        let p = policy();
        let n = 1 << 16;
        // Early-exit top-k stops at small blocks: far fewer fitted steps
        // and a much smaller per-element L² body than the full recursion.
        assert!(p.est_top_k_ms(n, 8) < p.est_gpu_batch_ms(n, 1));
        // A histogram pass is one linear scan — cheaper than any sort.
        assert!(p.est_scan_ms(n) < p.est_cpu_ms(n, None));
        assert_eq!(p.est_top_k_ms(1, 5), 0.0);
        assert_eq!(p.est_scan_ms(0), 0.0);
    }

    #[test]
    fn crossover_lands_in_the_paper_regime() {
        // Section 8: CPU quicksort wins below roughly 32k keys. The
        // simulator is calibrated to the *shape*, not the exact value, so
        // accept a generous band of powers of two around it.
        let c = policy().crossover();
        assert!(
            (1 << 11..=1 << 19).contains(&c),
            "calibrated crossover {c} outside the plausible band"
        );
    }

    #[test]
    fn small_jobs_go_to_the_cpu_and_large_jobs_to_the_gpu() {
        let p = policy();
        assert_eq!(p.select_single(256, None), Engine::CpuQuicksort);
        assert_eq!(p.select_single(1 << 20, None), Engine::GpuAbiSort);
    }

    #[test]
    fn out_of_core_threshold_routes_to_terasort() {
        let cfg = PolicyConfig {
            out_of_core_threshold: 10_000,
            ..PolicyConfig::default()
        };
        let p = SortPolicy::calibrate(&GpuProfile::geforce_7800(), &SortConfig::default(), &cfg);
        assert_eq!(p.select_single(10_000, None), Engine::TeraSort);
        assert_ne!(p.select_single(9_999, None), Engine::TeraSort);
    }

    #[test]
    fn batched_estimate_amortizes_launch_overhead() {
        let p = policy();
        let single = p.est_gpu_batch_ms(256, 1);
        let batched = p.est_gpu_batch_ms(256, 64);
        // 64 segments must cost far less than 64 independent submissions.
        assert!(
            batched < 64.0 * single * 0.5,
            "batched {batched} single {single}"
        );
        // …but more than one (the body work still scales with n).
        assert!(batched > single);
    }

    #[test]
    fn coalesced_small_jobs_prefer_the_gpu_once_the_batch_fills() {
        let p = policy();
        let small: Vec<(usize, Option<Distribution>)> = vec![(256, None); 64];
        // A full batch of small jobs beats 64 CPU sorts…
        assert_eq!(p.select_batch(&small, 256, 64), Engine::GpuAbiSort);
        // …while a nearly-empty batch does not amortize its launches.
        let couple: Vec<(usize, Option<Distribution>)> = vec![(256, None); 2];
        assert_eq!(p.select_batch(&couple, 256, 2), Engine::CpuQuicksort);
    }

    #[test]
    fn sorted_hint_shifts_the_cpu_estimate_down() {
        let p = policy();
        assert!(
            p.est_cpu_ms(4096, Some(Distribution::Sorted)) < p.est_cpu_ms(4096, None),
            "sorted input must look cheaper to the data-dependent CPU engine"
        );
    }

    #[test]
    fn crossover_override_is_honored() {
        let cfg = PolicyConfig {
            crossover_override: Some(0),
            ..PolicyConfig::default()
        };
        let p = SortPolicy::calibrate(&GpuProfile::geforce_7800(), &SortConfig::default(), &cfg);
        assert_eq!(p.crossover(), 0);
    }

    #[test]
    fn engine_names_are_stable() {
        assert_eq!(Engine::CpuQuicksort.name(), "cpu-quicksort");
        assert_eq!(Engine::GpuAbiSort.name(), "gpu-abisort");
        assert_eq!(Engine::ShardedGpu.name(), "sharded-gpu");
        assert_eq!(Engine::TeraSort.name(), "terasort");
    }

    fn sharded_policy(shard_slots: usize) -> SortPolicy {
        SortPolicy::calibrate(
            &GpuProfile::geforce_7800(),
            &SortConfig::default(),
            &PolicyConfig {
                shard_slots,
                ..PolicyConfig::default()
            },
        )
    }

    #[test]
    fn sharding_is_disabled_with_a_single_slot() {
        let p = policy();
        assert_eq!(p.shard_slots(), 1);
        assert_eq!(p.sharded_min(), usize::MAX);
        assert_ne!(p.select_single(1 << 22, None), Engine::ShardedGpu);
    }

    #[test]
    fn sharded_threshold_calibrates_above_the_gpu_crossover() {
        let p = sharded_policy(4);
        let min = p.sharded_min();
        assert!(
            min >= p.crossover(),
            "sharded min {min} below GPU crossover {}",
            p.crossover()
        );
        assert!(min < usize::MAX, "sharding never calibrated in");
        assert_eq!(p.select_single(min, None), Engine::ShardedGpu);
        assert_ne!(p.select_single(min - 1, None), Engine::ShardedGpu);
    }

    #[test]
    fn sharded_estimate_beats_the_single_device_estimate_at_scale() {
        // The estimate only has to rank the routes correctly — the
        // measured ≥2x speed-up claim lives in the E20 experiment.
        let p = sharded_policy(4);
        for log_n in [19u32, 20, 21] {
            let n = 1usize << log_n;
            assert!(
                p.est_sharded_ms(n) < p.est_gpu_batch_ms(n, 1),
                "n=2^{log_n}: sharded {:.1} ms vs single {:.1} ms",
                p.est_sharded_ms(n),
                p.est_gpu_batch_ms(n, 1)
            );
        }
    }

    #[test]
    fn sharded_min_override_is_honored() {
        let p = SortPolicy::calibrate(
            &GpuProfile::geforce_7800(),
            &SortConfig::default(),
            &PolicyConfig {
                shard_slots: 2,
                sharded_min_override: Some(1000),
                ..PolicyConfig::default()
            },
        );
        assert_eq!(p.sharded_min(), 1000);
        assert_eq!(p.select_single(1000, None), Engine::ShardedGpu);
    }

    #[test]
    fn out_of_core_still_wins_over_sharding() {
        let p = SortPolicy::calibrate(
            &GpuProfile::geforce_7800(),
            &SortConfig::default(),
            &PolicyConfig {
                shard_slots: 4,
                sharded_min_override: Some(1000),
                out_of_core_threshold: 50_000,
                ..PolicyConfig::default()
            },
        );
        assert_eq!(p.select_single(50_000, None), Engine::TeraSort);
        assert_eq!(p.select_single(49_999, None), Engine::ShardedGpu);
    }
}
