//! Service-side telemetry: the simulated-timeline span tree of a service
//! run, emitted into the process-wide [`stream_arch::telemetry`] sink.
//!
//! The service's timeline is *simulated* (the deterministic slot schedule
//! of [`crate::SortService`]), so its spans are reconstructed from the
//! [`ServiceReport`] rather than measured with a host clock: every
//! completed job gets its own track under [`SIM_PID`] carrying a
//! three-span tree —
//!
//! ```text
//! job 17 t3                [arrival ............................ end]
//! ├─ queue-wait            [arrival ... batch start]
//! └─ execute [gpu-abisort]              [batch start ........... end]
//! ```
//!
//! By timeline construction `latency = queue + execute` exactly, so the
//! child spans tile the job span with no gap — the trace accounts for
//! 100% of each job's end-to-end latency (asserted ≥ 95% in
//! `tests/telemetry.rs`). Coalesced batches additionally get one span per
//! device slot track, which is where batch occupancy and engine choice
//! show up in the viewer.
//!
//! Emission is free unless tracing is enabled
//! ([`stream_arch::telemetry::enabled`]); with the sink on,
//! [`SortService::process`](crate::SortService::process) calls
//! [`emit_service_trace`] automatically, so both in-process runs and the
//! net server's micro-batches land in the same trace.

use crate::service::ServiceReport;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use stream_arch::telemetry::{self, TraceEvent, SIM_PID};

/// Job tracks start well above the device-slot tracks, so slots and jobs
/// never collide in the viewer.
const JOB_TID_BASE: u64 = 1 << 20;

/// Monotone job-track allocator: successive service runs (the net
/// server's micro-batches) reuse job ids starting at 0, but their
/// simulated timelines overlap, so each run's jobs get fresh tracks.
static NEXT_JOB_TRACK: AtomicU64 = AtomicU64::new(0);

/// Emit the simulated span tree of one service run. No-op when tracing
/// is off.
pub fn emit_service_trace(report: &ServiceReport) {
    if !telemetry::enabled() {
        return;
    }
    for b in &report.batches {
        telemetry::record(TraceEvent {
            pid: SIM_PID,
            tid: 1 + b.slot as u64,
            name: format!("batch {} [{}] ×{}", b.id, b.engine, b.jobs),
            cat: "batch",
            ts_us: b.start_ms * 1e3,
            dur_us: b.duration_ms * 1e3,
            args: vec![
                ("jobs", b.jobs as f64),
                ("elements", b.elements as f64),
                ("occupancy", b.occupancy),
                ("slots", b.slots as f64),
            ],
        });
    }

    let batch_start: HashMap<usize, f64> =
        report.batches.iter().map(|b| (b.id, b.start_ms)).collect();
    let first_track = NEXT_JOB_TRACK.fetch_add(report.results.len() as u64, Ordering::Relaxed);
    for (i, r) in report.results.iter().enumerate() {
        let tid = JOB_TID_BASE + first_track + i as u64;
        let start_ms = batch_start.get(&r.batch).copied().unwrap_or(0.0);
        let arrival_ms = start_ms - r.queue_ms;
        let args = vec![("tenant", r.tenant as f64), ("batch", r.batch as f64)];
        telemetry::record(TraceEvent {
            pid: SIM_PID,
            tid,
            name: format!("job {} t{}", r.id, r.tenant),
            cat: "job",
            ts_us: arrival_ms * 1e3,
            dur_us: r.latency_ms * 1e3,
            args: args.clone(),
        });
        telemetry::record(TraceEvent {
            pid: SIM_PID,
            tid,
            name: "queue-wait".to_string(),
            cat: "queue",
            ts_us: arrival_ms * 1e3,
            dur_us: r.queue_ms * 1e3,
            args: args.clone(),
        });
        telemetry::record(TraceEvent {
            pid: SIM_PID,
            tid,
            name: format!("execute [{}]", r.engine.name()),
            cat: "execute",
            ts_us: start_ms * 1e3,
            dur_us: (r.latency_ms - r.queue_ms) * 1e3,
            args,
        });
    }
}
