//! # sortsvc — a concurrent, batched sorting service on top of GPU-ABiSort
//!
//! The paper's evaluation (Section 8) establishes two economic facts about
//! sorting on stream architectures: per-stream-operation **launch overhead
//! dominates small problems** (which is why Section 7 exists), and **the
//! winning sorter depends on the problem size** (CPU quicksort below
//! roughly 32k keys, GPU-ABiSort above, the hybrid out-of-core pipeline
//! beyond device memory). This crate lifts both facts into a serving
//! layer, turning the benchmark reproduction into a system that can serve
//! sorting traffic:
//!
//! * [`job`] — [`SortJob`]s (value/pointer records + tenant, arrival time,
//!   distribution hint) and their results;
//! * [`queue`] — admission control with backpressure (bounded queue depth
//!   and in-flight memory) and per-tenant fair queueing;
//! * [`batch`] — the coalescer: many small jobs become one *segmented*
//!   device submission via [`abisort::GpuAbiSorter::sort_segments_run`],
//!   paying the stream operations of a single segment for the whole batch;
//! * [`keys`] — the [`SortKey`] codec layer: order-preserving encodings of
//!   floats, signed ints, composite tuples, and bounded strings into the
//!   u64 / `WideRecord` domain the engines sort natively (`docs/KEYS.md`);
//! * [`typed`] — the typed submission surface built on those codecs:
//!   [`TypedSortClient::submit_keys`], top-k, order-by over columnar
//!   batches, and percentile queries;
//! * [`policy`] — the engine-selection policy with a crossover calibrated
//!   against the service's [`stream_arch::GpuProfile`];
//! * [`shard`] — the [`ShardedSorter`] multi-device engine: splitter
//!   partition, concurrent per-device shard sorts, tournament p-way
//!   recombination charged with inter-device transfer costs;
//! * [`service`] — the [`SortService`] driver: deterministic planning, a
//!   `std::thread::scope` worker pool with one pooled
//!   [`stream_arch::StreamProcessor`] per device slot, and the simulated
//!   timeline;
//! * [`metrics`] — throughput, latency percentiles, batch occupancy,
//!   engine mix, device utilization;
//! * [`net`] — the framed-TCP front-end: a hand-rolled wire protocol
//!   (`docs/PROTOCOL.md`), a threaded [`SortServer`] feeding this
//!   pipeline, and a buffering [`SortClient`];
//! * [`telemetry`] — the simulated-timeline span tree of a service run,
//!   emitted into the process-wide [`stream_arch::telemetry`] trace sink
//!   (see `docs/OBSERVABILITY.md`);
//! * [`wal`] — the durability tier: an append-only, checksummed
//!   write-ahead job log with segment rotation, prefix compaction, and
//!   idempotent crash recovery (see `docs/DURABILITY.md`), surfaced
//!   through [`net::ServerConfig::durability_dir`] and
//!   [`SortService::recover`].
//!
//! ## Quick start
//!
//! ```
//! use sortsvc::{ServiceConfig, SortJob, SortService};
//!
//! let service = SortService::new(ServiceConfig::default());
//! let jobs = SortJob::from_requests(workloads::RequestMix::small_job_heavy(20).generate(42));
//!
//! let report = service.process(jobs).unwrap();
//! assert_eq!(report.metrics.jobs_completed, 20);
//! for result in &report.results {
//!     assert!(result.output.windows(2).all(|w| w[0] <= w[1]));
//! }
//! println!("p99 latency: {:.2} ms (simulated)", report.metrics.latency_p99_ms);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod job;
pub mod keys;
pub mod metrics;
pub mod net;
pub mod policy;
pub mod queue;
pub mod service;
pub mod shard;
pub mod telemetry;
pub mod typed;
pub mod wal;

pub use batch::{BatchOutcome, BatchPlan};
pub use job::{JobId, JobKind, JobResult, RejectReason, SortJob, TenantId};
pub use keys::{EncodedBatch, KeyError, SortKey, StrKey, StringDictionary, WideKey};
pub use metrics::ServiceMetrics;
pub use net::{
    ClientConfig, RetryPolicy, RetryingClient, ServerConfig, ServerStats, SortClient, SortServer,
};
pub use policy::{Engine, PolicyConfig, SortPolicy};
pub use queue::{AdmissionController, TenantQueues};
pub use service::{BatchSummary, RecoveredService, ServiceConfig, ServiceReport, SortService};
pub use shard::{ShardedConfig, ShardedRun, ShardedSorter};
pub use typed::{order_by, OrderByResult, TypedReport, TypedResult, TypedSortClient};
pub use wal::{AdmittedJob, Wal, WalConfig, WalError};
