//! `ShardedSorter` — one sort spread over several stream processors.
//!
//! The paper maps one sort onto one stream processor; this module turns
//! the device count into a scaling axis using the sample-sort idiom:
//!
//! 1. **Splitter selection** — draw an oversampled, deterministic sample
//!    of the input (strided positions), sort it on the host, and keep
//!    every `oversample`-th element as one of the `p − 1` splitters.
//! 2. **Partition** — route every record to the shard its splitter
//!    interval names (binary search under the total order, so duplicate
//!    keys are still spread by the id tie-breaker). Each shard has a hard
//!    capacity of `⌈n/p⌉` records; when a splitter-directed shard is full
//!    the record spills to the next shard with space. The caps bound the
//!    padded power-of-two problem each device sorts even when adversarial
//!    input collapses the splitters — correctness never depends on
//!    splitter quality because of step 4. The routing itself is a
//!    branch-free streaming pass (splitters live in registers, buckets are
//!    appended sequentially), so like the terasort reader/writer stages it
//!    is charged at host-memory bandwidth, not at quicksort comparison
//!    rates; only the tiny sample sort is charged to the CPU model.
//! 3. **Shard sorts** — every shard is sorted concurrently on its own
//!    pooled [`StreamProcessor`] by the existing [`GpuAbiSorter`]; the
//!    sharded phase costs the *maximum* of the per-shard simulated times.
//! 4. **Recombination** — the sorted shards are gathered onto one device
//!    over a [`DeviceLink`] (the inter-device hop model: hops serialize on
//!    the shared interconnect; odd shards are read back reversed, as in
//!    [`GpuAbiSorter::sort_segments_run`], to restore the alternating
//!    direction convention) and recombined by a **tournament of pairwise
//!    adaptive bitonic merges on the gathering device** — the paper's own
//!    merge machinery resumed above the shard blocks
//!    ([`GpuAbiSorter::merge_blocks_run`]). When the combined problem
//!    exceeds the device's stream-size limit, a host winner-tree merge
//!    ([`tournament_merge`]) charged at CPU-model rates takes over — the
//!    escape hatch that lets a sharded sort exceed one device's capacity.
//!
//! The simulated duration of the whole run is
//! `partition + max(shard sorts) + gather + merge`, and the run reports
//! the splitter-directed shard sizes so the service can surface skew.

use abisort::{GpuAbiSorter, SortConfig};
use baselines::{cpu::CpuSortStats, CpuSortModel};
use stream_arch::{Counters, DeviceLink, Node, Result, StreamElement, StreamProcessor, Value};

/// Configuration of a [`ShardedSorter`].
#[derive(Clone, Debug)]
pub struct ShardedConfig {
    /// GPU-ABiSort configuration used for every shard sort.
    pub sort_config: SortConfig,
    /// Splitter oversampling factor: `oversample × p` strided samples are
    /// drawn and every `oversample`-th becomes a splitter. Clamped to ≥ 1.
    pub oversample: usize,
    /// The inter-device link the gather step is charged on.
    pub link: DeviceLink,
    /// Host CPU model charging the sample sort and the host-merge
    /// fallback.
    pub cpu_model: CpuSortModel,
    /// Sustained host-memory bandwidth in GB/s charging the streaming
    /// partition pass (read + bucket write). ~3 GB/s matches the paper's
    /// dual-channel DDR Athlon-64 host.
    pub host_bandwidth_gbs: f64,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            sort_config: SortConfig::default(),
            oversample: 8,
            link: DeviceLink::host_staged(stream_arch::BusKind::PciExpressX16),
            cpu_model: CpuSortModel::athlon_64_4200(),
            host_bandwidth_gbs: 3.2,
        }
    }
}

/// The outcome of one sharded sort.
#[derive(Clone, Debug)]
pub struct ShardedRun {
    /// The sorted values (same length as the input).
    pub output: Vec<Value>,
    /// Simulated end-to-end duration:
    /// `partition + max(shard sorts) + gather + merge`.
    pub sim_ms: f64,
    /// Number of shards (devices) actually used.
    pub shards: usize,
    /// Capped per-shard sizes, in shard order.
    pub shard_sizes: Vec<usize>,
    /// Per-shard simulated sort times.
    pub shard_sort_ms: Vec<f64>,
    /// Simulated host time of the splitter selection + partition phase.
    pub partition_ms: f64,
    /// Simulated time of the inter-device gather.
    pub transfer_ms: f64,
    /// Simulated time of the recombination merge.
    pub merge_ms: f64,
    /// Whether the recombination ran on the gathering device (the merge
    /// machinery) or fell back to the host winner tree.
    pub merge_on_device: bool,
    /// Splitter skew: largest *splitter-directed* shard (before capacity
    /// capping) relative to the ideal `n/p`. 1.0 is perfectly balanced;
    /// `p` means every record wanted the same shard.
    pub skew: f64,
    /// Device counters summed over all shard sorts.
    pub counters: Counters,
    /// Host wall-clock time of the run.
    pub wall_time: std::time::Duration,
}

/// A multi-device sorting engine: splitter partition, concurrent
/// per-device GPU-ABiSort shard sorts, tournament p-way recombination.
#[derive(Clone, Debug)]
pub struct ShardedSorter {
    config: ShardedConfig,
    /// The device sorter, held for the sharder's lifetime so its launch
    /// plans are recorded once and replayed across runs (and shared by all
    /// shard threads of a run).
    sorter: GpuAbiSorter,
}

impl Default for ShardedSorter {
    fn default() -> Self {
        ShardedSorter::new(ShardedConfig::default())
    }
}

impl ShardedSorter {
    /// Create a sharded sorter.
    pub fn new(config: ShardedConfig) -> Self {
        let sorter = GpuAbiSorter::new(config.sort_config);
        ShardedSorter { config, sorter }
    }

    /// The sorter's configuration.
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    /// Sort `values` ascending over the devices backing `procs` (one shard
    /// per processor) and report the full [`ShardedRun`] record. Every
    /// processor is left with cleared counters (pool-friendly, like the
    /// service's single-slot batches).
    pub fn sort_run(&self, procs: &mut [StreamProcessor], values: &[Value]) -> Result<ShardedRun> {
        assert!(!procs.is_empty(), "need at least one stream processor");
        let started = std::time::Instant::now();
        let n = values.len();
        let p = procs.len().min(n.max(1));

        // --- Splitters + capped partition (host) -------------------------
        let quota = n.div_ceil(p);
        let splitters = self.select_splitters(values, p);
        let mut shards: Vec<Vec<Value>> = (0..p).map(|_| Vec::with_capacity(quota)).collect();
        let mut directed = vec![0u64; p];
        for &v in values {
            let want = splitters.partition_point(|s| s < &v);
            directed[want] += 1;
            let mut shard = want;
            while shards[shard].len() >= quota {
                shard = (shard + 1) % p;
            }
            shards[shard].push(v);
        }
        // The routing pass streams every record once (read + bucket
        // write) at host-memory bandwidth; the sample sort is the only
        // comparison-rate work.
        let s = self.config.oversample.max(1) * p;
        let sample_stats = CpuSortStats {
            comparisons: (s as f64 * (s.max(2) as f64).log2()).ceil() as u64,
            moves: s as u64,
            heapsort_fallbacks: 0,
        };
        let partition_ms = if p > 1 {
            (2 * n * Value::BYTES) as f64 / (self.config.host_bandwidth_gbs * 1e9) * 1e3
                + self.config.cpu_model.time_ms(&sample_stats)
        } else {
            0.0
        };
        let skew = if n == 0 {
            1.0
        } else {
            directed.iter().copied().max().unwrap_or(0) as f64 / (n as f64 / p as f64)
        };

        // --- Concurrent shard sorts (one device each) --------------------
        let sorter = &self.sorter;
        let mut shard_runs = Vec::with_capacity(p);
        std::thread::scope(|scope| {
            let handles: Vec<_> = procs
                .iter_mut()
                .zip(&shards)
                .map(|(proc, shard)| {
                    let sorter = &sorter;
                    scope.spawn(move || {
                        let run = sorter.sort_run(proc, shard);
                        // Leave the pooled processor clean for its next job.
                        proc.take_counters();
                        run
                    })
                })
                .collect();
            for handle in handles {
                shard_runs.push(handle.join().expect("shard sort thread panicked"));
            }
        });
        let mut sorted_shards = Vec::with_capacity(p);
        let mut shard_sort_ms = Vec::with_capacity(p);
        let mut counters = Counters::new();
        for run in shard_runs {
            let run = run?;
            shard_sort_ms.push(run.sim_time.total_ms);
            counters += &run.counters;
            sorted_shards.push(run.output);
        }
        let sort_ms = shard_sort_ms.iter().copied().fold(0.0, f64::max);
        let shard_sizes: Vec<usize> = sorted_shards.iter().map(Vec::len).collect();

        // --- Gather (inter-device hops) ----------------------------------
        // Where the merge runs decides what moves. On-device merge: shard 0
        // is already resident on the gathering device, the others hop. Host
        // fallback (combined problem exceeds the device's stream memory):
        // *every* shard leaves its device, so all p buffers are charged a
        // hop. Only real records move — segment padding is generated in
        // place by the merge.
        let seg = quota.next_power_of_two().max(1);
        let merge_on_device = p > 1
            && procs[0]
                .check_stream_size::<Node>(2 * seg * p.next_power_of_two())
                .is_ok();
        let shard_bytes: Vec<u64> = shard_sizes
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                if i == 0 && merge_on_device {
                    0
                } else {
                    (len * Value::BYTES) as u64
                }
            })
            .collect();
        let transfer_ms = if p > 1 {
            self.config.link.gather_ms(&shard_bytes)
        } else {
            0.0
        };

        // --- Recombination -----------------------------------------------
        let (output, merge_ms, merge_counters) = self.recombine(
            &mut procs[0],
            sorter,
            sorted_shards,
            n,
            seg,
            merge_on_device,
        )?;
        counters += &merge_counters;

        Ok(ShardedRun {
            output,
            sim_ms: partition_ms + sort_ms + transfer_ms + merge_ms,
            shards: p,
            shard_sizes,
            shard_sort_ms,
            partition_ms,
            transfer_ms,
            merge_ms,
            merge_on_device,
            skew,
            counters,
            wall_time: started.elapsed(),
        })
    }

    /// Recombine the sorted shards: a tournament of pairwise adaptive
    /// bitonic merges on the gathering device (`on_device`), or the host
    /// winner tree charged at CPU-model rates when the combined (padded)
    /// problem exceeds the device's stream memory.
    fn recombine(
        &self,
        proc: &mut StreamProcessor,
        sorter: &GpuAbiSorter,
        sorted_shards: Vec<Vec<Value>>,
        n: usize,
        seg: usize,
        on_device: bool,
    ) -> Result<(Vec<Value>, f64, Counters)> {
        let p = sorted_shards.len();
        if p <= 1 {
            return Ok((
                sorted_shards.into_iter().next().unwrap_or_default(),
                0.0,
                Counters::new(),
            ));
        }
        let segments = p.next_power_of_two();
        let total = seg * segments;

        if !on_device {
            let mut stats = CpuSortStats::default();
            let output = tournament_merge(&sorted_shards, &mut stats);
            return Ok((
                output,
                self.config.cpu_model.time_ms(&stats),
                Counters::new(),
            ));
        }

        // Assemble the device buffer: each shard padded to `seg` with
        // sentinels kept in segment order (higher pad index = smaller
        // sentinel, so they are appended in reverse), odd segments
        // reversed to the descending direction the merge levels expect —
        // the same readback convention as `sort_segments_run`. The buffer
        // is recycled through the gathering processor's arena.
        let mut buffer = proc.arena().take_capacity::<Value>(total);
        let mut pad = 0usize;
        for t in 0..segments {
            let start = buffer.len();
            let len = match sorted_shards.get(t) {
                Some(shard) => {
                    buffer.extend_from_slice(shard);
                    shard.len()
                }
                None => 0,
            };
            let pads = seg - len;
            for j in (0..pads).rev() {
                buffer.push(Value::padding_sentinel(pad + j));
            }
            pad += pads;
            if t % 2 == 1 {
                buffer[start..start + seg].reverse();
            }
        }

        let run = sorter.merge_blocks_run(proc, &buffer, seg)?;
        proc.arena().put_vec(buffer);
        proc.take_counters();
        let mut output = run.output;
        output.truncate(n);
        Ok((output, run.sim_time.total_ms, run.counters))
    }

    /// The `p − 1` splitters: an `oversample × p` strided sample of the
    /// input, sorted, thinned to every `oversample`-th element.
    /// Deterministic — strided positions, no RNG — so service runs replay
    /// exactly.
    fn select_splitters(&self, values: &[Value], p: usize) -> Vec<Value> {
        if p < 2 || values.is_empty() {
            return Vec::new();
        }
        let oversample = self.config.oversample.max(1);
        let s = oversample * p;
        let mut sample: Vec<Value> = (0..s).map(|i| values[i * values.len() / s]).collect();
        sample.sort();
        (1..p).map(|k| sample[k * oversample - 1]).collect()
    }
}

/// Tournament (winner-tree) p-way merge of sorted runs, counting each
/// comparison and each element move into `stats` (`n · ⌈log₂ p⌉`
/// comparisons). The host-side recombination fallback for sharded
/// problems whose combined size exceeds one device's stream memory.
pub fn tournament_merge(runs: &[Vec<Value>], stats: &mut CpuSortStats) -> Vec<Value> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut output = Vec::with_capacity(total);
    if runs.is_empty() {
        return output;
    }
    if runs.len() == 1 {
        stats.moves += runs[0].len() as u64;
        return runs[0].clone();
    }

    // Winner tree over `width` leaves (runs padded with exhausted slots).
    let width = runs.len().next_power_of_two();
    let mut heads = vec![0usize; runs.len()];
    let mut tree: Vec<Option<(Value, usize)>> = vec![None; 2 * width];
    let leaf = |r: usize, heads: &[usize]| -> Option<(Value, usize)> {
        runs.get(r)
            .and_then(|run| run.get(heads[r]))
            .map(|&v| (v, r))
    };
    for r in 0..width {
        tree[width + r] = if r < runs.len() {
            leaf(r, &heads)
        } else {
            None
        };
    }
    for node in (1..width).rev() {
        tree[node] = winner(tree[2 * node], tree[2 * node + 1], stats);
    }

    while let Some((value, run)) = tree[1] {
        output.push(value);
        stats.moves += 1;
        heads[run] += 1;
        let mut node = width + run;
        tree[node] = leaf(run, &heads);
        while node > 1 {
            node /= 2;
            tree[node] = winner(tree[2 * node], tree[2 * node + 1], stats);
        }
    }
    output
}

/// The smaller of two optional tournament entries, charging a comparison
/// only when both sides are live.
fn winner(
    a: Option<(Value, usize)>,
    b: Option<(Value, usize)>,
    stats: &mut CpuSortStats,
) -> Option<(Value, usize)> {
    match (a, b) {
        (Some(x), Some(y)) => {
            stats.comparisons += 1;
            if y.0 < x.0 {
                Some(y)
            } else {
                Some(x)
            }
        }
        (Some(x), None) => Some(x),
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_arch::GpuProfile;
    use workloads::Distribution;

    fn procs(p: usize) -> Vec<StreamProcessor> {
        (0..p)
            .map(|_| StreamProcessor::new(GpuProfile::geforce_7800()))
            .collect()
    }

    /// `⌈log₂ p⌉` — the winner-tree comparison bound per output element.
    fn log2_ceil(p: usize) -> u64 {
        if p < 2 {
            0
        } else {
            (usize::BITS - (p - 1).leading_zeros()) as u64
        }
    }

    fn reference(values: &[Value]) -> Vec<Value> {
        let mut v = values.to_vec();
        v.sort();
        v
    }

    #[test]
    fn tournament_merge_matches_std_sort() {
        for runs in [2usize, 3, 4, 5, 8] {
            let input = workloads::uniform(997, runs as u64);
            let mut shards: Vec<Vec<Value>> = (0..runs)
                .map(|r| {
                    let mut s: Vec<Value> = input.iter().copied().skip(r).step_by(runs).collect();
                    s.sort();
                    s
                })
                .collect();
            shards.push(Vec::new()); // an exhausted run must be harmless
            let mut stats = CpuSortStats::default();
            let merged = tournament_merge(&shards, &mut stats);
            assert_eq!(merged, reference(&input), "{runs} runs");
            assert!(stats.comparisons > 0);
            // n·⌈log₂ p⌉ is the tournament bound (padded width).
            let bound = input.len() as u64 * log2_ceil(shards.len().next_power_of_two()) + 64;
            assert!(
                stats.comparisons <= bound,
                "{} comparisons > bound {bound}",
                stats.comparisons
            );
        }
    }

    #[test]
    fn sharded_sort_matches_std_sort_across_distributions_and_sizes() {
        let sorter = ShardedSorter::default();
        for dist in [
            Distribution::Uniform,
            Distribution::Sorted,
            Distribution::Reverse,
            Distribution::Constant,
            Distribution::FewDistinct { distinct: 3 },
        ] {
            for &n in &[0usize, 1, 2, 37, 1000, 4097] {
                let input = workloads::generate(dist, n, 9);
                let mut pool = procs(4);
                let run = sorter.sort_run(&mut pool, &input).expect("sharded sort");
                assert_eq!(run.output, reference(&input), "{} n={n}", dist.name());
            }
        }
    }

    #[test]
    fn shard_sizes_are_capped_at_the_quota_even_under_collapse() {
        // All-equal keys: every record's key compares equal, so naive
        // splitters would send everything to one shard. The id tie-breaker
        // spreads the sample and the quota caps bound whatever remains.
        let input = workloads::generate(Distribution::Constant, 4096, 0);
        let mut pool = procs(4);
        let run = ShardedSorter::default()
            .sort_run(&mut pool, &input)
            .unwrap();
        let quota = input.len().div_ceil(4);
        assert_eq!(run.shards, 4);
        assert!(
            run.shard_sizes.iter().all(|&s| s <= quota),
            "{:?}",
            run.shard_sizes
        );
        assert_eq!(run.shard_sizes.iter().sum::<usize>(), input.len());
        assert_eq!(run.output, reference(&input));
        assert!(run.skew >= 1.0);
    }

    #[test]
    fn presorted_input_yields_near_perfect_splitters() {
        let input = workloads::generate(Distribution::Sorted, 8192, 3);
        let mut pool = procs(4);
        let run = ShardedSorter::default()
            .sort_run(&mut pool, &input)
            .unwrap();
        assert!(
            run.skew < 1.2,
            "strided sampling of sorted input: {}",
            run.skew
        );
        assert_eq!(run.output, reference(&input));
    }

    #[test]
    fn sharded_run_accounts_every_phase() {
        let input = workloads::uniform(16384, 7);
        let mut pool = procs(4);
        let run = ShardedSorter::default()
            .sort_run(&mut pool, &input)
            .unwrap();
        assert_eq!(run.shard_sort_ms.len(), 4);
        assert!(run.partition_ms > 0.0);
        assert!(run.transfer_ms > 0.0);
        assert!(run.merge_ms > 0.0);
        assert!(run.merge_on_device);
        let max_sort = run.shard_sort_ms.iter().copied().fold(0.0, f64::max);
        let total = run.partition_ms + max_sort + run.transfer_ms + run.merge_ms;
        assert!((run.sim_ms - total).abs() < 1e-9);
        assert!(run.counters.launches > 0);
        // The pooled processors were left clean.
        for proc in &pool {
            assert_eq!(proc.counters(), Counters::new());
        }
    }

    #[test]
    fn four_devices_beat_one_on_a_large_uniform_job() {
        // Debug-mode sizes: the speed-up grows with n (launch overhead and
        // per-phase constants amortize), so the full ≥2x-at-2²⁰ acceptance
        // claim lives in the release-mode E20 experiment; here a 2¹⁷ job
        // must already show clear scaling.
        let input = workloads::uniform(1 << 17, 42);
        let sorter = ShardedSorter::new(ShardedConfig {
            link: DeviceLink::pcie_peer(),
            ..ShardedConfig::default()
        });
        let one = sorter.sort_run(&mut procs(1), &input).unwrap();
        let four = sorter.sort_run(&mut procs(4), &input).unwrap();
        assert_eq!(one.output, four.output);
        assert!(
            four.sim_ms * 1.4 < one.sim_ms,
            "4 devices ({:.2} ms) should clearly beat 1 ({:.2} ms)",
            four.sim_ms,
            one.sim_ms
        );
        assert!(four.merge_on_device);
    }

    #[test]
    fn oversized_problems_fall_back_to_the_host_merge() {
        // A device whose stream limit (32² = 1024 elements) holds one
        // shard's node stream but not the combined problem: the shard
        // sorts run on-device, the recombination falls back to the host
        // winner tree — sharding as the way past one device's capacity.
        let mut profile = GpuProfile::geforce_7800();
        profile.max_texture_dim = 32;
        let mut pool: Vec<StreamProcessor> = (0..4)
            .map(|_| StreamProcessor::new(profile.clone()))
            .collect();
        let input = workloads::uniform(1000, 13);
        let run = ShardedSorter::default()
            .sort_run(&mut pool, &input)
            .unwrap();
        assert!(!run.merge_on_device);
        assert!(run.merge_ms > 0.0);
        assert_eq!(run.output, reference(&input));
        // Host merge: every shard leaves its device (no resident shard 0).
        let all_bytes: Vec<u64> = run
            .shard_sizes
            .iter()
            .map(|&len| (len * 8) as u64)
            .collect();
        let expected = ShardedConfig::default().link.gather_ms(&all_bytes);
        assert!(
            (run.transfer_ms - expected).abs() < 1e-9,
            "host fallback must charge all {} shards: {} vs {}",
            run.shard_sizes.len(),
            run.transfer_ms,
            expected
        );
    }

    #[test]
    fn single_processor_degenerates_to_a_plain_sort() {
        let input = workloads::uniform(2048, 5);
        let run = ShardedSorter::default()
            .sort_run(&mut procs(1), &input)
            .unwrap();
        assert_eq!(run.shards, 1);
        assert_eq!(run.transfer_ms, 0.0);
        assert_eq!(run.skew, 1.0);
        assert_eq!(run.output, reference(&input));
    }

    #[test]
    fn more_processors_than_elements_are_left_idle() {
        let input = workloads::uniform(3, 1);
        let run = ShardedSorter::default()
            .sort_run(&mut procs(8), &input)
            .unwrap();
        assert_eq!(run.shards, 3);
        assert_eq!(run.output, reference(&input));
    }
}
