//! Crash-fault injection at the WAL's write points.
//!
//! The durability tests need to crash the process (or simulate a crash)
//! at *exactly defined* byte positions in the log: mid-record during an
//! append (a torn write), just after a record is fully on disk but before
//! the caller learns of it, or between the unlinks of a compaction. This
//! module is the registry those tests arm.
//!
//! A [`FaultPlan`] names the [`FaultPoint`], how many occurrences to let
//! pass ([`FaultPlan::after`]), and the [`FaultMode`] — return a typed
//! error ([`FaultMode::Stop`], the in-process simulated crash), abort the
//! process ([`FaultMode::Abort`]), or stall forever after writing a
//! marker file so a parent test can `kill -9` the process at that precise
//! point ([`FaultMode::Stall`]). Plans are one-shot: firing disarms the
//! registry.
//!
//! Production code never arms a plan; with the registry empty the checks
//! are a single mutex-guarded `Option` test on a path that already does
//! file I/O.

use super::WalError;
use std::path::PathBuf;
use std::sync::Mutex;

/// Where in the WAL write path an injected fault fires.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultPoint {
    /// Mid-record during an `ADMITTED` append: only a prefix of the
    /// record's bytes reach the segment — a torn write.
    AdmitPrefix,
    /// Immediately after an `ADMITTED` record is fully written, before
    /// the append returns to the caller.
    AdmitFull,
    /// Mid-record during a `COMPLETED`/`REJECTED` append.
    AckPrefix,
    /// After a `COMPLETED`/`REJECTED` record is fully written.
    AckFull,
    /// Just before a sealed segment is unlinked during compaction.
    CompactUnlink,
}

impl FaultPoint {
    /// Stable name, used by [`arm_from_env`] specs and stall markers.
    pub fn name(&self) -> &'static str {
        match self {
            FaultPoint::AdmitPrefix => "admit-prefix",
            FaultPoint::AdmitFull => "admit-full",
            FaultPoint::AckPrefix => "ack-prefix",
            FaultPoint::AckFull => "ack-full",
            FaultPoint::CompactUnlink => "compact-unlink",
        }
    }

    /// Parse a [`FaultPoint::name`] back into the point.
    pub fn from_name(name: &str) -> Option<FaultPoint> {
        match name {
            "admit-prefix" => Some(FaultPoint::AdmitPrefix),
            "admit-full" => Some(FaultPoint::AdmitFull),
            "ack-prefix" => Some(FaultPoint::AckPrefix),
            "ack-full" => Some(FaultPoint::AckFull),
            "compact-unlink" => Some(FaultPoint::CompactUnlink),
            _ => None,
        }
    }

    /// Every injectable point, for tests that sweep them all.
    pub fn all() -> [FaultPoint; 5] {
        [
            FaultPoint::AdmitPrefix,
            FaultPoint::AdmitFull,
            FaultPoint::AckPrefix,
            FaultPoint::AckFull,
            FaultPoint::CompactUnlink,
        ]
    }
}

/// What happens when an armed fault fires.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// Return [`WalError::Injected`] from the append — an in-process
    /// simulated crash (the caller abandons the WAL as a real server
    /// would abandon the process).
    Stop,
    /// `std::process::abort()` — a real crash, for subprocess tests.
    Abort,
    /// Write the plan's marker file, then sleep forever, so the parent
    /// test can `kill -9` the process while it sits exactly at the fault
    /// point.
    Stall,
}

impl FaultMode {
    /// Stable name, used by [`arm_from_env`] specs.
    pub fn name(&self) -> &'static str {
        match self {
            FaultMode::Stop => "stop",
            FaultMode::Abort => "abort",
            FaultMode::Stall => "stall",
        }
    }

    /// Parse a [`FaultMode::name`] back into the mode.
    pub fn from_name(name: &str) -> Option<FaultMode> {
        match name {
            "stop" => Some(FaultMode::Stop),
            "abort" => Some(FaultMode::Abort),
            "stall" => Some(FaultMode::Stall),
            _ => None,
        }
    }
}

/// An armed fault: fire at the `after`-th matching occurrence.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// The write point to fire at.
    pub point: FaultPoint,
    /// Matching occurrences to let pass first (0 = fire on the first).
    pub after: u32,
    /// What firing does.
    pub mode: FaultMode,
    /// Marker file a [`FaultMode::Stall`] fault writes before stalling,
    /// so the parent process knows the child reached the point.
    pub marker: Option<PathBuf>,
}

/// Environment variable [`arm_from_env`] reads:
/// `point:after:mode[:marker-path]`, e.g. `admit-prefix:3:stall:/tmp/m`.
pub const FAULT_ENV: &str = "SORTSVC_WAL_FAULT";

static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

fn lock() -> std::sync::MutexGuard<'static, Option<FaultPlan>> {
    match PLAN.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Arm `plan`. Replaces any previously armed plan.
pub fn arm(plan: FaultPlan) {
    *lock() = Some(plan);
}

/// Disarm the registry.
pub fn disarm() {
    *lock() = None;
}

/// Parse a `point:after:mode[:marker]` spec (the [`FAULT_ENV`] format).
pub fn parse_spec(spec: &str) -> Option<FaultPlan> {
    let mut parts = spec.splitn(4, ':');
    let point = FaultPoint::from_name(parts.next()?)?;
    let after = parts.next()?.parse().ok()?;
    let mode = FaultMode::from_name(parts.next()?)?;
    let marker = parts.next().map(PathBuf::from);
    Some(FaultPlan {
        point,
        after,
        mode,
        marker,
    })
}

/// Arm from the [`FAULT_ENV`] environment variable if it is set and
/// parses; subprocess kill-and-resume tests use this to arm the child.
pub fn arm_from_env() {
    if let Ok(spec) = std::env::var(FAULT_ENV) {
        if let Some(plan) = parse_spec(&spec) {
            arm(plan);
        }
    }
}

/// Called by the WAL at each fault point: decides whether this occurrence
/// fires. Firing consumes the plan (one-shot) and returns the mode to
/// execute plus the stall marker.
pub(crate) fn fire(point: FaultPoint) -> Option<(FaultMode, Option<PathBuf>)> {
    let mut guard = lock();
    match guard.as_mut() {
        Some(plan) if plan.point == point => {
            if plan.after == 0 {
                let fired = guard.take().expect("plan present");
                Some((fired.mode, fired.marker))
            } else {
                plan.after -= 1;
                None
            }
        }
        _ => None,
    }
}

/// Execute a fired fault's mode. [`FaultMode::Stop`] returns the error to
/// propagate; the other modes never return.
pub(crate) fn execute(point: FaultPoint, mode: FaultMode, marker: Option<PathBuf>) -> WalError {
    match mode {
        FaultMode::Stop => WalError::Injected(point),
        FaultMode::Abort => std::process::abort(),
        FaultMode::Stall => {
            if let Some(marker) = marker {
                let _ = std::fs::write(&marker, point.name());
            }
            loop {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for point in FaultPoint::all() {
            assert_eq!(FaultPoint::from_name(point.name()), Some(point));
        }
        for mode in [FaultMode::Stop, FaultMode::Abort, FaultMode::Stall] {
            assert_eq!(FaultMode::from_name(mode.name()), Some(mode));
        }
        assert_eq!(FaultPoint::from_name("nope"), None);
        assert_eq!(FaultMode::from_name("nope"), None);
    }

    #[test]
    fn specs_parse_with_and_without_markers() {
        let plan = parse_spec("admit-prefix:3:stall:/tmp/marker").unwrap();
        assert_eq!(plan.point, FaultPoint::AdmitPrefix);
        assert_eq!(plan.after, 3);
        assert_eq!(plan.mode, FaultMode::Stall);
        assert_eq!(
            plan.marker.as_deref(),
            Some(std::path::Path::new("/tmp/marker"))
        );

        let plan = parse_spec("ack-full:0:stop").unwrap();
        assert_eq!(plan.point, FaultPoint::AckFull);
        assert!(plan.marker.is_none());

        assert!(parse_spec("bogus:0:stop").is_none());
        assert!(parse_spec("ack-full:x:stop").is_none());
        assert!(parse_spec("ack-full:0:bogus").is_none());
        assert!(parse_spec("").is_none());
    }
}
