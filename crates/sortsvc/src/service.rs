//! The sorting service: planning, parallel execution, and the simulated
//! timeline.
//!
//! A service run has three deterministic phases:
//!
//! 1. **Planning** — a single-threaded sweep over the jobs in arrival
//!    order: admission control (backpressure), per-tenant fair queueing,
//!    and batch formation. A batch closes when its padded capacity would
//!    exceed the configured maximum, when the oldest queued job has waited
//!    a full batch window, or at end of input. Large jobs bypass the
//!    coalescer. Every closed batch is routed through the policy engine
//!    and pinned to the device slot with the earliest *estimated* free
//!    time.
//! 2. **Execution** — one worker thread per device slot
//!    (`std::thread::scope`), each owning a pooled [`StreamProcessor`]
//!    that is take-and-reset between batches. Workers only touch their
//!    own slot's batches, so the phase is deterministic regardless of
//!    thread scheduling.
//! 3. **Timeline** — the measured batch durations are replayed over the
//!    slot schedule to produce per-job simulated latencies and the
//!    service metrics.
//!
//! Phase 1 decides with *estimates* (a real server cannot see the future);
//! phases 2–3 charge *measured* simulated durations.

use crate::batch::{self, BatchBuilder, BatchOutcome, BatchPlan};
use crate::job::{JobId, JobKind, JobResult, RejectReason, SortJob};
use crate::metrics::{ratio, ServiceMetrics};
use crate::policy::{Engine, PolicyConfig, SortPolicy};
use crate::queue::{AdmissionController, TenantQueues};
use crate::shard::{ShardedConfig, ShardedSorter};
use crate::wal::{self, Wal, WalConfig, WalError};
use abisort::{GpuAbiSorter, SortConfig};
use serde::Serialize;
use stream_arch::telemetry::LogHistogram;
use stream_arch::{GpuProfile, Result, StreamProcessor};
use terasort::TeraSortConfig;
use workloads::Distribution;

/// Configuration of a [`SortService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Hardware profile of every device slot.
    pub profile: GpuProfile,
    /// Number of device slots (worker threads, pooled processors).
    pub device_slots: usize,
    /// Coalesce small jobs into shared batched launches. With `false`
    /// every job becomes its own submission (the naive baseline the
    /// batching demo compares against).
    pub coalescing: bool,
    /// Maximum padded elements per coalesced batch.
    pub max_batch_elements: usize,
    /// How long (simulated ms) a queued job may wait for its batch to
    /// fill before the batch is closed anyway.
    pub batch_window_ms: f64,
    /// Jobs at or above this many elements skip the coalescer and are
    /// dispatched as single-job batches.
    pub large_job_cutoff: usize,
    /// Bound on in-flight memory (queued + scheduled-but-unfinished job
    /// bytes); admissions beyond it are rejected.
    pub max_inflight_bytes: usize,
    /// Bound on queued jobs; admissions beyond it are rejected.
    pub max_queued_jobs: usize,
    /// GPU-ABiSort configuration used by the device engine.
    pub sort_config: SortConfig,
    /// Policy calibration knobs.
    pub policy: PolicyConfig,
    /// Records per run of the out-of-core engine.
    pub tera_run_size: usize,
    /// Device slots one sharded batch may reserve: `0` (the default) means
    /// "all of `device_slots`", `1` disables the sharded route, anything
    /// else is clamped to `device_slots`.
    pub shard_slots: usize,
    /// Splitter oversampling factor of the sharded engine.
    pub shard_oversample: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            profile: GpuProfile::geforce_7800(),
            device_slots: 2,
            coalescing: true,
            max_batch_elements: 1 << 14,
            batch_window_ms: 2.0,
            large_job_cutoff: 1 << 12,
            max_inflight_bytes: 64 << 20,
            max_queued_jobs: 4096,
            sort_config: SortConfig::default(),
            policy: PolicyConfig::default(),
            tera_run_size: 1 << 14,
            shard_slots: 0,
            shard_oversample: 8,
        }
    }
}

/// Builder-style setters (the workspace-wide `with_*` convention; every
/// config type in the facade prelude offers the same shape).
///
/// ```
/// use sortsvc::ServiceConfig;
///
/// let config = ServiceConfig::default()
///     .with_device_slots(4)
///     .with_coalescing(false);
/// assert_eq!(config.device_slots, 4);
/// ```
impl ServiceConfig {
    /// Set the hardware profile of every device slot.
    pub fn with_profile(mut self, profile: GpuProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Set the number of device slots.
    pub fn with_device_slots(mut self, slots: usize) -> Self {
        self.device_slots = slots;
        self
    }

    /// Enable or disable coalescing.
    pub fn with_coalescing(mut self, on: bool) -> Self {
        self.coalescing = on;
        self
    }

    /// Set the maximum padded elements per coalesced batch.
    pub fn with_max_batch_elements(mut self, elements: usize) -> Self {
        self.max_batch_elements = elements;
        self
    }

    /// Set the batch window (simulated milliseconds).
    pub fn with_batch_window_ms(mut self, ms: f64) -> Self {
        self.batch_window_ms = ms;
        self
    }

    /// Set the solo-dispatch cutoff (elements).
    pub fn with_large_job_cutoff(mut self, elements: usize) -> Self {
        self.large_job_cutoff = elements;
        self
    }

    /// Set the policy calibration knobs.
    pub fn with_policy_config(mut self, policy: PolicyConfig) -> Self {
        self.policy = policy;
        self
    }

    /// Set the slots one sharded batch may reserve.
    pub fn with_shard_slots(mut self, slots: usize) -> Self {
        self.shard_slots = slots;
        self
    }
}

/// One executed batch, summarised for reports.
#[derive(Clone, Debug, Serialize)]
pub struct BatchSummary {
    /// Batch id (formation order).
    pub id: usize,
    /// Primary device slot the batch ran on.
    pub slot: usize,
    /// Device slots the batch reserved (1 for single-slot engines).
    pub slots: usize,
    /// Shards a sharded batch spread over (0 for other engines).
    pub shards: usize,
    /// Engine name.
    pub engine: String,
    /// Number of coalesced jobs.
    pub jobs: usize,
    /// Real elements carried.
    pub elements: usize,
    /// Padded device capacity.
    pub capacity: usize,
    /// `elements / capacity`.
    pub occupancy: f64,
    /// Simulated start time.
    pub start_ms: f64,
    /// Measured simulated duration.
    pub duration_ms: f64,
}

/// The outcome of one service run.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Completed jobs in submission (id) order.
    pub results: Vec<JobResult>,
    /// Rejected jobs and why.
    pub rejected: Vec<(JobId, RejectReason)>,
    /// Executed batches in formation order.
    pub batches: Vec<BatchSummary>,
    /// Aggregate service metrics.
    pub metrics: ServiceMetrics,
}

/// The multi-tenant batched sorting service.
pub struct SortService {
    config: ServiceConfig,
    policy: SortPolicy,
    sorter: GpuAbiSorter,
    sharder: ShardedSorter,
}

impl SortService {
    /// Slots one sharded batch reserves under `config` (≥ 1).
    fn effective_shard_slots(config: &ServiceConfig) -> usize {
        match config.shard_slots {
            0 => config.device_slots,
            n => n.min(config.device_slots),
        }
        .max(1)
    }

    /// Build a service, calibrating the policy for the configured profile.
    pub fn new(config: ServiceConfig) -> Self {
        let mut policy_cfg = config.policy.clone();
        // Out-of-core jobs must actually not fit the device comfortably.
        policy_cfg.out_of_core_threshold = policy_cfg
            .out_of_core_threshold
            .min(config.profile.max_stream_elements() / 2);
        // The sharded route spreads over the slots this service really has.
        policy_cfg.shard_slots = Self::effective_shard_slots(&config);
        let policy = SortPolicy::calibrate(&config.profile, &config.sort_config, &policy_cfg);
        Self::with_policy(config, policy)
    }

    /// Build a service around an already calibrated policy (lets tests and
    /// sweeps share one calibration).
    pub fn with_policy(config: ServiceConfig, policy: SortPolicy) -> Self {
        assert!(config.device_slots >= 1, "need at least one device slot");
        let sorter = GpuAbiSorter::new(config.sort_config);
        let sharder = ShardedSorter::new(ShardedConfig {
            sort_config: config.sort_config,
            oversample: config.shard_oversample.max(1),
            link: policy.device_link(),
            cpu_model: *policy.cpu_model(),
            host_bandwidth_gbs: policy.host_bandwidth_gbs(),
        });
        SortService {
            config,
            policy,
            sorter,
            sharder,
        }
    }

    /// The service's calibrated policy.
    pub fn policy(&self) -> &SortPolicy {
        &self.policy
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Run the service over a set of jobs until everything admitted has
    /// completed, and report per-job results plus service metrics.
    pub fn process(&self, mut jobs: Vec<SortJob>) -> Result<ServiceReport> {
        jobs.sort_by(|a, b| a.arrival_ms.total_cmp(&b.arrival_ms).then(a.id.cmp(&b.id)));
        let submitted = jobs.len();

        let (plans, rejected) = self.plan(jobs);
        let outcomes = self.execute(&plans)?;
        let report = self.assemble(submitted, plans, outcomes, rejected);
        crate::telemetry::emit_service_trace(&report);
        Ok(report)
    }

    // --- Phase 1: planning ----------------------------------------------

    fn plan(&self, jobs: Vec<SortJob>) -> (Vec<BatchPlan>, Vec<(JobId, RejectReason)>) {
        let mut planner = Planner {
            config: &self.config,
            policy: &self.policy,
            classes: std::collections::BTreeMap::new(),
            admission: AdmissionController::new(
                self.config.max_inflight_bytes,
                self.config.max_queued_jobs,
            ),
            slot_free_est: vec![0.0; self.config.device_slots],
            plans: Vec::new(),
            rejected: Vec::new(),
            solo_cutoff: self
                .config
                .large_job_cutoff
                .min(self.policy.out_of_core_threshold()),
        };
        for job in jobs {
            planner.on_arrival(job);
        }
        planner.drain();
        (planner.plans, planner.rejected)
    }

    // --- Phase 2: execution ---------------------------------------------

    fn execute(&self, plans: &[BatchPlan]) -> Result<Vec<BatchOutcome>> {
        // Sharded batches need several pooled processors at once, so they
        // run in their own pass; everything else stays on its slot worker.
        let mut by_slot: Vec<Vec<usize>> = vec![Vec::new(); self.config.device_slots];
        let mut multi_slot: Vec<usize> = Vec::new();
        for plan in plans {
            if plan.extra_slots.is_empty() {
                by_slot[plan.slot].push(plan.id);
            } else {
                multi_slot.push(plan.id);
            }
        }
        let tera = TeraSortConfig {
            run_size: self.config.tera_run_size,
            gpu_profile: self.config.profile.clone(),
            ..TeraSortConfig::default()
        };

        let mut per_slot: Vec<Result<Vec<BatchOutcome>>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = by_slot
                .iter()
                .map(|ids| {
                    let tera = &tera;
                    scope.spawn(move || -> Result<Vec<BatchOutcome>> {
                        let mut proc = StreamProcessor::new(self.config.profile.clone());
                        ids.iter()
                            .map(|&id| {
                                batch::execute(
                                    &plans[id],
                                    &mut proc,
                                    &self.sorter,
                                    &self.sharder,
                                    &self.policy,
                                    tera,
                                )
                            })
                            .collect()
                    })
                })
                .collect();
            for handle in handles {
                per_slot.push(handle.join().expect("service worker thread panicked"));
            }
        });

        let mut outcomes: Vec<Option<BatchOutcome>> = vec![None; plans.len()];
        for slot_result in per_slot {
            for outcome in slot_result? {
                let id = outcome.id;
                outcomes[id] = Some(outcome);
            }
        }

        // Multi-slot pass: one pooled processor per reserved slot; each
        // sharded batch parallelises internally across its shards.
        if !multi_slot.is_empty() {
            let pool_size = multi_slot
                .iter()
                .map(|&id| plans[id].slot_count())
                .max()
                .expect("non-empty multi-slot list");
            let mut pool: Vec<StreamProcessor> = (0..pool_size)
                .map(|_| StreamProcessor::new(self.config.profile.clone()))
                .collect();
            for &id in &multi_slot {
                let k = plans[id].slot_count();
                outcomes[id] = Some(batch::execute_sharded(
                    &plans[id],
                    &mut pool[..k],
                    &self.sharder,
                )?);
            }
        }

        Ok(outcomes
            .into_iter()
            .map(|o| o.expect("every batch executed"))
            .collect())
    }

    // --- Phase 3: timeline + metrics ------------------------------------

    fn assemble(
        &self,
        submitted: usize,
        plans: Vec<BatchPlan>,
        outcomes: Vec<BatchOutcome>,
        rejected: Vec<(JobId, RejectReason)>,
    ) -> ServiceReport {
        let slots = self.config.device_slots;
        let mut slot_free = vec![0.0f64; slots];
        let mut busy = 0.0f64;
        let mut wall_ms = 0.0f64;
        let mut results = Vec::new();
        let mut batches = Vec::new();
        let mut first_arrival = f64::INFINITY;
        let mut last_completion = 0.0f64;
        let mut elements: u64 = 0;
        let mut occupancy_weighted = 0.0f64;
        let mut capacity_total = 0.0f64;
        let (mut cpu_jobs, mut gpu_jobs, mut sharded_jobs, mut tera_jobs) =
            (0usize, 0usize, 0usize, 0usize);
        let (mut topk_jobs, mut orderby_jobs, mut percentile_jobs) = (0usize, 0usize, 0usize);
        let mut sharded_batches = 0usize;
        let mut shard_skew_max = 0.0f64;

        for (plan, outcome) in plans.iter().zip(outcomes) {
            // A multi-slot batch starts when *all* its reserved slots are
            // free and occupies every one of them until it completes.
            let start = plan
                .slots()
                .map(|s| slot_free[s])
                .fold(plan.ready_ms, f64::max);
            let end = start + outcome.duration_ms;
            for s in plan.slots() {
                slot_free[s] = end;
            }
            busy += outcome.duration_ms * plan.slot_count() as f64;
            wall_ms += outcome.wall_ms;
            last_completion = last_completion.max(end);
            occupancy_weighted += plan.occupancy() * plan.capacity() as f64;
            capacity_total += plan.capacity() as f64;
            if plan.engine == Engine::ShardedGpu {
                sharded_batches += 1;
                shard_skew_max = shard_skew_max.max(outcome.shard_skew);
            }

            batches.push(BatchSummary {
                id: plan.id,
                slot: plan.slot,
                slots: plan.slot_count(),
                shards: outcome.shards,
                engine: plan.engine.name().to_string(),
                jobs: plan.jobs.len(),
                elements: plan.elements(),
                capacity: plan.capacity(),
                occupancy: plan.occupancy(),
                start_ms: start,
                duration_ms: outcome.duration_ms,
            });

            for (job, output) in plan.jobs.iter().zip(outcome.outputs) {
                first_arrival = first_arrival.min(job.arrival_ms);
                elements += job.len() as u64;
                match plan.engine {
                    Engine::CpuQuicksort => cpu_jobs += 1,
                    Engine::GpuAbiSort => gpu_jobs += 1,
                    Engine::ShardedGpu => sharded_jobs += 1,
                    Engine::TeraSort => tera_jobs += 1,
                }
                match job.kind {
                    JobKind::Sort => {}
                    JobKind::TopK(_) => topk_jobs += 1,
                    JobKind::OrderBy => orderby_jobs += 1,
                    JobKind::Percentile(_) => percentile_jobs += 1,
                }
                results.push(JobResult {
                    id: job.id,
                    tenant: job.tenant,
                    kind: job.kind.clone(),
                    output,
                    engine: plan.engine,
                    batch: plan.id,
                    queue_ms: start - job.arrival_ms,
                    latency_ms: end - job.arrival_ms,
                    batch_wall_ms: outcome.wall_ms,
                });
            }
        }
        results.sort_by_key(|r| r.id);

        let completed = results.len();
        // A run that completes nothing — or completes only zero-duration
        // work — has no meaningful span; `ratio` keeps every derived rate
        // at a finite 0.0 instead of the NaN/∞ a division would produce.
        let makespan_ms = if completed == 0 {
            0.0
        } else {
            (last_completion - first_arrival).max(0.0)
        };
        // Streaming histograms instead of sort-the-whole-vector
        // percentiles: mergeable across micro-batches (the net server
        // folds these into its live snapshot) and constant-memory however
        // many jobs the run carried. Queue wait and execution tile each
        // job's latency exactly (`latency = queue + execute` by timeline
        // construction), which is also what the trace span tree shows.
        let mut latency_hist = LogHistogram::new();
        let mut queue_hist = LogHistogram::new();
        let mut exec_hist = LogHistogram::new();
        for r in &results {
            latency_hist.record(r.latency_ms);
            queue_hist.record(r.queue_ms);
            exec_hist.record(r.latency_ms - r.queue_ms);
        }

        let metrics = ServiceMetrics {
            jobs_submitted: submitted,
            jobs_completed: completed,
            jobs_rejected: rejected.len(),
            batches: batches.len(),
            elements_sorted: elements,
            makespan_ms,
            throughput_jobs_per_s: ratio(completed as f64 * 1_000.0, makespan_ms),
            throughput_kelems_per_s: ratio(elements as f64, makespan_ms),
            latency_mean_ms: latency_hist.mean(),
            latency_p50_ms: latency_hist.quantile(0.5),
            latency_p99_ms: latency_hist.quantile(0.99),
            queue_mean_ms: queue_hist.mean(),
            mean_batch_occupancy: ratio(occupancy_weighted, capacity_total),
            mean_jobs_per_batch: ratio(completed as f64, batches.len() as f64),
            cpu_jobs,
            gpu_jobs,
            sharded_jobs,
            tera_jobs,
            topk_jobs,
            orderby_jobs,
            percentile_jobs,
            sharded_batches,
            shard_skew_max,
            device_busy_ms: busy,
            device_utilization: ratio(busy, slots as f64 * makespan_ms),
            wall_ms,
            policy_crossover: self.policy.crossover().try_into().unwrap_or(u64::MAX),
            recovered_jobs: 0,
            replayed_bytes: 0,
            torn_tail_truncated: 0,
            latency: latency_hist.summary(),
            queue_wait: queue_hist.summary(),
            execution: exec_hist.summary(),
        };

        ServiceReport {
            results,
            rejected,
            batches,
            metrics,
        }
    }

    /// Open (or create) the write-ahead log in `dir`, replay it, and
    /// re-run every admitted-but-unacknowledged job through this service.
    ///
    /// Recovery is **idempotent and at-least-once**: jobs whose
    /// `COMPLETED`/`REJECTED` acknowledgement made it to disk are skipped;
    /// jobs whose admission record is intact but whose acknowledgement is
    /// missing are re-executed in admission order. A torn tail (a partial
    /// record left by a crash mid-append) is detected via its checksum and
    /// physically truncated — never replayed — while corruption in a
    /// *sealed* segment surfaces as [`WalError::Corrupt`]. After the
    /// replayed jobs finish, matching acknowledgements are appended and
    /// the log is fsynced, so a crash loop converges instead of replaying
    /// the same jobs forever.
    ///
    /// The returned [`RecoveredService`] carries the replay's
    /// [`ServiceReport`] (with the recovery counters stamped into its
    /// metrics) and the live [`Wal`], positioned to append records for new
    /// traffic. `docs/DURABILITY.md` documents the full recovery state
    /// machine.
    pub fn recover(
        &self,
        dir: impl AsRef<std::path::Path>,
        config: WalConfig,
    ) -> std::result::Result<RecoveredService, WalError> {
        let recovery = Wal::open(dir, config)?;
        let wal::Recovery {
            mut wal,
            pending,
            stats,
        } = recovery;

        let jobs: Vec<SortJob> = pending
            .iter()
            .map(|j| SortJob {
                id: j.job_id,
                tenant: j.tenant,
                arrival_ms: j.arrival_ms,
                values: j.values.clone(),
                hint: j.hint,
                // The wire/WAL record format predates job kinds; everything
                // recovered replays as a plain sort.
                kind: JobKind::Sort,
            })
            .collect();

        let mut report = if jobs.is_empty() {
            ServiceReport {
                results: Vec::new(),
                rejected: Vec::new(),
                batches: Vec::new(),
                metrics: ServiceMetrics::default(),
            }
        } else {
            self.process(jobs).map_err(|e| {
                WalError::Io(std::io::Error::other(format!(
                    "recovery replay failed: {e}"
                )))
            })?
        };

        for result in &report.results {
            wal.append_completed(result.id)?;
        }
        for &(id, reason) in &report.rejected {
            wal.append_rejected(id, reason)?;
        }
        wal.sync()?;

        report.metrics.recovered_jobs = stats.recovered_jobs;
        report.metrics.replayed_bytes = stats.replayed_bytes;
        report.metrics.torn_tail_truncated = stats.torn_tail_truncated;

        Ok(RecoveredService { report, wal, stats })
    }
}

/// The outcome of [`SortService::recover`]: the replay's report plus the
/// live write-ahead log, positioned to append records for new traffic.
pub struct RecoveredService {
    /// Report of re-running the replayed jobs (empty when the log was
    /// clean). Its metrics carry `recovered_jobs` / `replayed_bytes` /
    /// `torn_tail_truncated`.
    pub report: ServiceReport,
    /// The open log; the caller keeps appending to it for new jobs.
    pub wal: Wal,
    /// Raw recovery statistics from the log scan.
    pub stats: wal::RecoveryStats,
}

/// Mutable planning state (phase 1).
///
/// Queued jobs are bucketed by their padded segment size ("class"), so a
/// coalesced batch only carries equally padded segments and occupancy
/// stays ≥ ½ (heterogeneous batches would pad every small job to the
/// largest one's segment). Within a class, tenants are drained round-robin.
struct Planner<'a> {
    config: &'a ServiceConfig,
    policy: &'a SortPolicy,
    /// Per-segment-class fair queues.
    classes: std::collections::BTreeMap<usize, TenantQueues>,
    admission: AdmissionController,
    slot_free_est: Vec<f64>,
    plans: Vec<BatchPlan>,
    rejected: Vec<(JobId, RejectReason)>,
    /// Jobs at or above this size are dispatched solo.
    solo_cutoff: usize,
}

impl Planner<'_> {
    fn queued_jobs(&self) -> usize {
        self.classes.values().map(TenantQueues::jobs).sum()
    }

    fn queued_bytes(&self) -> usize {
        self.classes.values().map(TenantQueues::bytes).sum()
    }

    fn min_slot_free(&self) -> f64 {
        self.slot_free_est
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// The earliest time some class wants to close a batch, or `None`.
    ///
    /// A class asks to close when it can fill the configured batch
    /// capacity, or when its oldest job has waited a full batch window.
    /// Either way the close is deferred until a device slot is *estimated*
    /// free — batches are formed when they can start, so later arrivals
    /// (fairly interleaved across tenants) still make it into the next
    /// batch instead of queueing behind a pre-planned backlog.
    fn next_close(&self) -> Option<(usize, f64)> {
        let slot_free = self.min_slot_free();
        self.classes
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&class, q)| {
                let oldest = q.oldest_arrival_ms().expect("non-empty class");
                let capacity_full = class * q.jobs() >= self.config.max_batch_elements;
                let want = if capacity_full {
                    oldest
                } else {
                    oldest + self.config.batch_window_ms
                };
                (class, want.max(slot_free))
            })
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
    }

    fn on_arrival(&mut self, job: SortJob) {
        let now = job.arrival_ms;
        // Close every batch that is due before this arrival.
        while let Some((class, at)) = self.next_close() {
            if at <= now {
                self.close_batch(class, at);
            } else {
                break;
            }
        }

        if let Err(reason) =
            self.admission
                .admit(now, &job, self.queued_jobs(), self.queued_bytes())
        {
            self.rejected.push((job.id, reason));
            return;
        }
        let class = batch::segment_for(job.len());
        // A job whose padded segment alone exceeds the batch bound cannot
        // be coalesced without violating it — it goes solo like any large
        // job. Non-coalescing kinds (top-k, percentile) always go solo:
        // their outputs are not full sorted segments.
        if !self.config.coalescing
            || !job.kind.coalesces()
            || job.len() >= self.solo_cutoff
            || class > self.config.max_batch_elements
        {
            self.dispatch_solo(job, now);
            return;
        }
        self.classes.entry(class).or_default().push(job);
        while let Some((class, at)) = self.next_close() {
            if at <= now {
                self.close_batch(class, at);
            } else {
                break;
            }
        }
    }

    /// End of input: close everything that is still queued, in due order.
    fn drain(&mut self) {
        while let Some((class, at)) = self.next_close() {
            self.close_batch(class, at);
        }
    }

    /// Form one batch from `class` (round-robin across tenants) and
    /// schedule it no earlier than `at`.
    fn close_batch(&mut self, class: usize, at: f64) {
        let queue = self.classes.get_mut(&class).expect("known class");
        // Segment counts are padded to a power of two, so cap the job count
        // at the largest power of two whose capacity fits the batch bound.
        let cap = (self.config.max_batch_elements / class).max(1);
        let max_jobs = if cap.is_power_of_two() {
            cap
        } else {
            cap.next_power_of_two() / 2
        };
        let mut builder = BatchBuilder::new();
        while builder.len() < max_jobs {
            match queue.pop_fair() {
                Some(job) => builder.push(job),
                None => break,
            }
        }
        if queue.is_empty() {
            self.classes.remove(&class);
        }
        if builder.is_empty() {
            return;
        }
        let (jobs, segment_len, segments) = builder.take();
        // A deferred close may pick up jobs that arrived while the slots
        // were busy; the batch cannot be ready before its youngest job.
        let ready = jobs.iter().map(|j| j.arrival_ms).fold(at, f64::max);
        self.schedule(jobs, segment_len, segments, ready);
    }

    fn dispatch_solo(&mut self, job: SortJob, now: f64) {
        let segment_len = batch::segment_for(job.len());
        self.schedule(vec![job], segment_len, 1, now);
    }

    fn schedule(&mut self, jobs: Vec<SortJob>, segment_len: usize, segments: usize, now: f64) {
        let lens_hints: Vec<(usize, Option<Distribution>)> =
            jobs.iter().map(|j| (j.len(), j.hint)).collect();
        // Query kinds always dispatch solo (see `on_arrival`), so the
        // kind of the first job decides for the whole batch. Top-k needs
        // the early-exit bitonic recursion only the single-device GPU
        // engine implements (out-of-core jobs still fall back to terasort
        // + truncate); percentiles are a host histogram pass, labelled as
        // CPU work.
        let engine = match jobs.first().map(|j| &j.kind) {
            Some(JobKind::TopK(_)) => {
                match self.policy.select_single(jobs[0].len(), jobs[0].hint) {
                    Engine::TeraSort => Engine::TeraSort,
                    _ => Engine::GpuAbiSort,
                }
            }
            Some(JobKind::Percentile(_)) => Engine::CpuQuicksort,
            _ => self.policy.select_batch(&lens_hints, segment_len, segments),
        };
        let est_ms = match jobs.first().map(|j| &j.kind) {
            Some(&JobKind::TopK(k)) if engine == Engine::GpuAbiSort => {
                self.policy.est_top_k_ms(jobs[0].len(), k)
            }
            Some(JobKind::Percentile(_)) => self.policy.est_scan_ms(jobs[0].len()),
            _ => self
                .policy
                .est_batch_ms(engine, &lens_hints, segment_len, segments),
        };

        // A sharded batch reserves one slot per shard; everything else
        // pins to the single slot with the earliest estimated free time.
        // Reservations and single-slot batches interleave through the same
        // slot-free estimates, so a multi-slot reservation waits for (and
        // is waited on by) ordinary batches deterministically.
        let want = if engine == Engine::ShardedGpu {
            self.policy.shard_slots().min(self.slot_free_est.len())
        } else {
            1
        };
        let mut order: Vec<usize> = (0..self.slot_free_est.len()).collect();
        order.sort_by(|&a, &b| self.slot_free_est[a].total_cmp(&self.slot_free_est[b]));
        let chosen = &order[..want];
        // Every reserved slot must be free before the batch can start.
        let start_est = chosen
            .iter()
            .map(|&s| self.slot_free_est[s])
            .fold(now, f64::max);
        for &s in chosen {
            self.slot_free_est[s] = start_est + est_ms;
        }

        let bytes: usize = jobs.iter().map(SortJob::bytes).sum();
        self.admission.on_scheduled(start_est + est_ms, bytes);

        self.plans.push(BatchPlan {
            id: self.plans.len(),
            slot: chosen[0],
            extra_slots: chosen[1..].to_vec(),
            engine,
            ready_ms: now,
            est_ms,
            segment_len,
            segments,
            jobs,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One shared calibration for all service tests (calibration runs probe
    /// sorts; no need to repeat it per test).
    fn shared_policy() -> SortPolicy {
        static POLICY: OnceLock<SortPolicy> = OnceLock::new();
        POLICY
            .get_or_init(|| {
                SortPolicy::calibrate(
                    &GpuProfile::geforce_7800(),
                    &SortConfig::default(),
                    &PolicyConfig::default(),
                )
            })
            .clone()
    }

    fn service(config: ServiceConfig) -> SortService {
        SortService::with_policy(config, shared_policy())
    }

    fn small_mix_jobs(jobs: usize, seed: u64) -> Vec<SortJob> {
        SortJob::from_requests(workloads::RequestMix::small_job_heavy(jobs).generate(seed))
    }

    fn test_config() -> ServiceConfig {
        ServiceConfig {
            max_batch_elements: 4096,
            ..ServiceConfig::default()
        }
    }

    fn assert_outputs_correct(jobs: &[SortJob], report: &ServiceReport) {
        let rejected: std::collections::HashSet<JobId> =
            report.rejected.iter().map(|&(id, _)| id).collect();
        assert_eq!(
            report.results.len() + rejected.len(),
            jobs.len(),
            "every job completes or is rejected"
        );
        let mut results = report.results.iter();
        for job in jobs {
            if rejected.contains(&job.id) {
                continue;
            }
            let result = results.next().expect("result for admitted job");
            assert_eq!(result.id, job.id);
            let mut expected = job.values.clone();
            expected.sort();
            assert_eq!(result.output, expected, "job {}", job.id);
        }
    }

    #[test]
    fn service_sorts_a_mixed_stream_correctly() {
        let jobs = small_mix_jobs(40, 3);
        let report = service(test_config()).process(jobs.clone()).unwrap();
        assert_outputs_correct(&jobs, &report);
        assert!(report.metrics.batches > 0);
        assert!(report.metrics.throughput_kelems_per_s > 0.0);
        assert!(report.metrics.latency_p99_ms >= report.metrics.latency_p50_ms);
    }

    #[test]
    fn service_runs_are_deterministic() {
        let jobs = small_mix_jobs(30, 11);
        let svc = service(test_config());
        let a = svc.process(jobs.clone()).unwrap();
        let b = svc.process(jobs).unwrap();
        assert_eq!(a.metrics.latency_p99_ms, b.metrics.latency_p99_ms);
        assert_eq!(a.metrics.makespan_ms, b.metrics.makespan_ms);
        assert_eq!(a.batches.len(), b.batches.len());
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.output, y.output);
            assert_eq!(x.latency_ms, y.latency_ms);
        }
    }

    #[test]
    fn coalescing_beats_one_job_per_launch_submission() {
        // The acceptance scenario: a small-job-heavy stream sent to the
        // device either coalesced (segmented batches) or one job per
        // launch set. The policy is pinned to the GPU on both sides so the
        // comparison isolates the launch-overhead amortization.
        let all_gpu = |coalescing: bool| {
            SortService::new(ServiceConfig {
                coalescing,
                policy: PolicyConfig {
                    crossover_override: Some(0),
                    ..PolicyConfig::default()
                },
                ..ServiceConfig::default()
            })
        };
        let jobs: Vec<SortJob> = (0..96)
            .map(|i| {
                SortJob::new(
                    i,
                    (i % 4) as u32,
                    workloads::uniform(140 + (i as usize % 100), i),
                )
                .arriving_at(i as f64 * 0.02)
            })
            .collect();
        let coalesced = all_gpu(true).process(jobs.clone()).unwrap();
        let naive = all_gpu(false).process(jobs).unwrap();
        assert_eq!(coalesced.metrics.gpu_jobs, 96);
        assert_eq!(naive.metrics.gpu_jobs, 96);
        assert!(
            coalesced.metrics.throughput_kelems_per_s > 2.0 * naive.metrics.throughput_kelems_per_s,
            "coalesced {:.1} kelem/s must clearly beat naive {:.1} kelem/s",
            coalesced.metrics.throughput_kelems_per_s,
            naive.metrics.throughput_kelems_per_s
        );
        assert!(coalesced.metrics.mean_jobs_per_batch > naive.metrics.mean_jobs_per_batch);
        assert!(coalesced.metrics.batches < naive.metrics.batches);
    }

    #[test]
    fn tenant_fairness_interleaves_a_flood_with_light_traffic() {
        // Tenant 0 floods 40 equal-sized jobs at t=0 — far more than one
        // batch — and tenant 1 submits 4 jobs shortly after, while the
        // single device slot is still busy with the first batch. Fair
        // (round-robin) batch filling must interleave the light tenant into
        // the *next* batch instead of queueing it behind the flood.
        let mut jobs: Vec<SortJob> = (0..40)
            .map(|i| SortJob::new(i, 0, workloads::uniform(200, i)))
            .collect();
        for i in 0..4 {
            jobs.push(SortJob::new(1000 + i, 1, workloads::uniform(200, 77 + i)).arriving_at(0.01));
        }
        let config = ServiceConfig {
            device_slots: 1,
            max_batch_elements: 2048, // 8 jobs of class 256 per batch
            ..ServiceConfig::default()
        };
        let report = service(config).process(jobs).unwrap();
        let light_batches: Vec<usize> = report
            .results
            .iter()
            .filter(|r| r.tenant == 1)
            .map(|r| r.batch)
            .collect();
        assert_eq!(light_batches.len(), 4);
        assert!(
            light_batches.iter().all(|&b| b <= 1),
            "light tenant stuck behind the flood: batches {light_batches:?}"
        );
    }

    #[test]
    fn backpressure_rejects_beyond_the_queue_bound() {
        let config = ServiceConfig {
            max_queued_jobs: 8,
            batch_window_ms: 1000.0, // nothing closes early
            ..test_config()
        };
        // 20 tiny jobs all arriving at t=0: at most 8 fit the queue.
        let jobs: Vec<SortJob> = (0..20)
            .map(|i| SortJob::new(i, 0, workloads::uniform(32, i)))
            .collect();
        let report = service(config).process(jobs).unwrap();
        assert!(
            report.metrics.jobs_rejected >= 12,
            "expected rejections, got {}",
            report.metrics.jobs_rejected
        );
        assert_eq!(
            report.metrics.jobs_completed + report.metrics.jobs_rejected,
            20
        );
        assert!(report
            .rejected
            .iter()
            .all(|&(_, r)| r == RejectReason::QueueFull));
    }

    #[test]
    fn memory_backpressure_rejects_oversized_influx() {
        let config = ServiceConfig {
            max_inflight_bytes: 8 * 1024, // 1k elements
            ..test_config()
        };
        let jobs: Vec<SortJob> = (0..6)
            .map(|i| SortJob::new(i, i as u32, workloads::uniform(512, i)))
            .collect();
        let report = service(config).process(jobs).unwrap();
        assert!(report
            .rejected
            .iter()
            .any(|&(_, r)| r == RejectReason::MemoryPressure));
    }

    #[test]
    fn jobs_padding_beyond_the_batch_bound_go_solo() {
        // A 3000-element job pads to a 4096 segment — larger than this
        // config's whole batch bound, but below the large-job cutoff. It
        // must be dispatched solo rather than in a "coalesced" batch that
        // exceeds max_batch_elements.
        let config = ServiceConfig {
            max_batch_elements: 2048,
            ..ServiceConfig::default()
        };
        let jobs = vec![
            SortJob::new(0, 0, workloads::uniform(3000, 1)),
            SortJob::new(1, 0, workloads::uniform(3000, 2)),
        ];
        let report = service(config).process(jobs.clone()).unwrap();
        assert_outputs_correct(&jobs, &report);
        assert_eq!(report.batches.len(), 2);
        for batch in &report.batches {
            assert_eq!(batch.jobs, 1, "must not coalesce past the bound");
        }
    }

    #[test]
    fn out_of_core_jobs_route_to_terasort() {
        let config = ServiceConfig {
            policy: PolicyConfig {
                out_of_core_threshold: 3000,
                ..PolicyConfig::default()
            },
            tera_run_size: 2048,
            ..test_config()
        };
        // Needs its own policy (non-default out-of-core threshold).
        let svc = SortService::new(config);
        let jobs = vec![
            SortJob::new(0, 0, workloads::uniform(5000, 1)),
            SortJob::new(1, 0, workloads::uniform(100, 2)),
        ];
        let report = svc.process(jobs.clone()).unwrap();
        assert_outputs_correct(&jobs, &report);
        assert_eq!(report.results[0].engine, Engine::TeraSort);
        assert_eq!(report.metrics.tera_jobs, 1);
    }

    #[test]
    fn empty_job_and_empty_run_are_handled() {
        let svc = service(test_config());
        let empty_run = svc.process(Vec::new()).unwrap();
        assert_eq!(empty_run.metrics.jobs_completed, 0);
        assert_eq!(empty_run.metrics.makespan_ms, 0.0);

        let jobs = vec![
            SortJob::new(0, 0, Vec::new()),
            SortJob::new(1, 0, workloads::uniform(1, 1)),
        ];
        let report = svc.process(jobs).unwrap();
        assert_eq!(report.results[0].output, Vec::new());
        assert_eq!(report.results[1].output.len(), 1);
    }

    /// A service whose policy shards everything above 2000 elements over
    /// its device slots (forced threshold: debug-mode sizes).
    fn sharded_service(device_slots: usize) -> SortService {
        SortService::new(ServiceConfig {
            device_slots,
            policy: PolicyConfig {
                sharded_min_override: Some(2000),
                ..PolicyConfig::default()
            },
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn large_jobs_route_to_the_sharded_engine_and_reserve_slots() {
        let svc = sharded_service(4);
        let jobs = vec![
            SortJob::new(0, 0, workloads::uniform(6000, 1)),
            SortJob::new(1, 1, workloads::uniform(100, 2)),
        ];
        let report = svc.process(jobs.clone()).unwrap();
        assert_outputs_correct(&jobs, &report);
        assert_eq!(report.results[0].engine, Engine::ShardedGpu);
        assert_eq!(report.metrics.sharded_jobs, 1);
        assert_eq!(report.metrics.sharded_batches, 1);
        assert!(report.metrics.shard_skew_max >= 1.0);
        let sharded = report
            .batches
            .iter()
            .find(|b| b.engine == "sharded-gpu")
            .expect("a sharded batch");
        assert_eq!(sharded.slots, 4);
        assert_eq!(sharded.shards, 4);
    }

    #[test]
    fn sharded_reservations_interleave_deterministically_with_small_batches() {
        // A sharded job reserving both slots plus a stream of small jobs:
        // the timeline must replay identically across runs, and the
        // sharded batch must occupy every slot it reserved.
        let svc = sharded_service(2);
        let mut jobs = vec![SortJob::new(0, 0, workloads::uniform(4000, 3))];
        for i in 0..12 {
            jobs.push(
                SortJob::new(1 + i, 1 + (i % 2) as u32, workloads::uniform(200, 10 + i))
                    .arriving_at(0.01 * (i + 1) as f64),
            );
        }
        let a = svc.process(jobs.clone()).unwrap();
        let b = svc.process(jobs.clone()).unwrap();
        assert_outputs_correct(&jobs, &a);
        assert_eq!(a.metrics.makespan_ms, b.metrics.makespan_ms);
        assert_eq!(a.metrics.latency_p99_ms, b.metrics.latency_p99_ms);
        for (x, y) in a.batches.iter().zip(&b.batches) {
            assert_eq!(x.start_ms, y.start_ms);
            assert_eq!(x.duration_ms, y.duration_ms);
        }
        assert_eq!(a.metrics.sharded_jobs, 1);
        // The sharded batch blocks both slots while it runs: no other
        // batch may overlap it in simulated time.
        let sharded = a
            .batches
            .iter()
            .find(|b| b.engine == "sharded-gpu")
            .unwrap();
        let (s0, e0) = (sharded.start_ms, sharded.start_ms + sharded.duration_ms);
        for other in a.batches.iter().filter(|b| b.id != sharded.id) {
            let (s1, e1) = (other.start_ms, other.start_ms + other.duration_ms);
            assert!(
                e1 <= s0 + 1e-9 || s1 >= e0 - 1e-9,
                "batch {} overlaps the full-width sharded batch",
                other.id
            );
        }
    }

    #[test]
    fn single_slot_service_still_handles_sharded_routed_jobs() {
        // shard_slots clamps to the one available slot: the job degrades
        // to a single-shard sort and stays correct.
        let svc = sharded_service(1);
        let jobs = vec![SortJob::new(0, 0, workloads::uniform(5000, 9))];
        let report = svc.process(jobs.clone()).unwrap();
        assert_outputs_correct(&jobs, &report);
        assert_ne!(
            report.results[0].engine,
            Engine::ShardedGpu,
            "a single-slot service must not calibrate the sharded route in"
        );
    }

    #[test]
    fn zero_admitted_runs_report_finite_metrics() {
        // Regression: a run that admits nothing (or only zero-duration
        // work) must report 0.0 rates — not NaN or ∞ — so JSON reports
        // stay valid.
        let config = ServiceConfig {
            max_inflight_bytes: 0, // every non-empty job is rejected
            ..test_config()
        };
        let jobs: Vec<SortJob> = (0..5)
            .map(|i| SortJob::new(i, 0, workloads::uniform(64, i)))
            .collect();
        let report = service(config).process(jobs).unwrap();
        assert_eq!(report.metrics.jobs_completed, 0);
        assert_eq!(report.metrics.jobs_rejected, 5);

        // All-empty jobs complete instantly: zero-duration span.
        let empties: Vec<SortJob> = (0..3).map(|i| SortJob::new(i, 0, Vec::new())).collect();
        let zero_span = service(test_config()).process(empties).unwrap();
        assert_eq!(zero_span.metrics.jobs_completed, 3);

        for m in [&report.metrics, &zero_span.metrics] {
            for (name, v) in [
                ("throughput_jobs_per_s", m.throughput_jobs_per_s),
                ("throughput_kelems_per_s", m.throughput_kelems_per_s),
                ("latency_mean_ms", m.latency_mean_ms),
                ("latency_p50_ms", m.latency_p50_ms),
                ("latency_p99_ms", m.latency_p99_ms),
                ("queue_mean_ms", m.queue_mean_ms),
                ("mean_batch_occupancy", m.mean_batch_occupancy),
                ("mean_jobs_per_batch", m.mean_jobs_per_batch),
                ("device_utilization", m.device_utilization),
                ("makespan_ms", m.makespan_ms),
                ("shard_skew_max", m.shard_skew_max),
            ] {
                assert!(v.is_finite(), "{name} must be finite, got {v}");
            }
            let json = serde_json::to_string(m).unwrap();
            assert!(
                !json.contains("NaN") && !json.contains("inf"),
                "metrics JSON must stay numeric: {json}"
            );
        }
        assert_eq!(report.metrics.device_utilization, 0.0);
        assert_eq!(report.metrics.latency_p50_ms, 0.0);
        assert_eq!(report.metrics.latency_p99_ms, 0.0);
    }

    #[test]
    fn policy_crossover_is_visible_in_metrics() {
        let jobs = small_mix_jobs(10, 1);
        let report = service(test_config()).process(jobs).unwrap();
        assert_eq!(
            report.metrics.policy_crossover,
            shared_policy().crossover() as u64
        );
    }
}
