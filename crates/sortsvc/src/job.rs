//! Sort jobs and their results.

use crate::policy::Engine;
use stream_arch::Value;
use workloads::{Distribution, Request};

/// Identifier of a job within one service run.
pub type JobId = u64;

/// Identifier of a tenant (client) of the service.
pub type TenantId = u32;

/// What a job asks the service to compute over its records.
///
/// Plain sorts coalesce into segmented batches as before. The typed
/// query kinds ride the same admission → planner → engine pipeline but
/// are dispatched solo (their outputs are not full sorted segments, so
/// they cannot share a device submission with plain sorts).
#[derive(Clone, Debug, Default, PartialEq)]
pub enum JobKind {
    /// Sort the records ascending (the classic service workload).
    #[default]
    Sort,
    /// Return only the `k` smallest records, ascending. On the GPU
    /// engine the bitonic recursion stops early (see
    /// `GpuAbiSorter::top_k_run`), doing strictly fewer kernel steps
    /// than a full sort when `k` is small relative to the job.
    TopK(usize),
    /// Sort a `(column key, row index)` encoding and return the row
    /// permutation; execution is a plain sort, but results are counted
    /// separately and the ids carry the permutation.
    OrderBy,
    /// Approximate rank/percentile queries served from a
    /// `LogHistogram` over the encoded keys instead of a sort; one
    /// output record per requested quantile in `(0, 1]`.
    Percentile(Vec<f64>),
}

impl JobKind {
    /// Short name for metrics and diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::Sort => "sort",
            JobKind::TopK(_) => "top-k",
            JobKind::OrderBy => "order-by",
            JobKind::Percentile(_) => "percentile",
        }
    }

    /// Whether jobs of this kind may share a coalesced batch with other
    /// jobs. Only full sorts (including order-by, which *is* a full
    /// sort) produce per-segment sorted output, so only they coalesce.
    pub fn coalesces(&self) -> bool {
        matches!(self, JobKind::Sort | JobKind::OrderBy)
    }
}

/// One client sort request: a batch of value/pointer records plus the
/// metadata the admission queue and policy engine act on.
///
/// ```
/// use sortsvc::SortJob;
/// use workloads::Distribution;
///
/// let job = SortJob::new(7, 2, workloads::uniform(1000, 42))
///     .arriving_at(3.5)
///     .with_hint(Distribution::Uniform);
/// assert_eq!(job.len(), 1000);
/// assert_eq!(job.bytes(), 8000); // 8 bytes per value/pointer record
/// assert_eq!(job.tenant, 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SortJob {
    /// Unique id within the service run.
    pub id: JobId,
    /// The tenant submitting the job (per-tenant fairness key).
    pub tenant: TenantId,
    /// Simulated arrival time in milliseconds.
    pub arrival_ms: f64,
    /// The records to sort.
    pub values: Vec<Value>,
    /// Optional distribution hint for the policy engine (CPU quicksort is
    /// data dependent, so the hint shifts the CPU-cost estimate; the GPU
    /// engines are data independent).
    pub hint: Option<Distribution>,
    /// What to compute over the records (defaults to a full sort).
    pub kind: JobKind,
}

impl SortJob {
    /// Create a job arriving at time zero with no hint.
    pub fn new(id: JobId, tenant: TenantId, values: Vec<Value>) -> Self {
        SortJob {
            id,
            tenant,
            arrival_ms: 0.0,
            values,
            hint: None,
            kind: JobKind::Sort,
        }
    }

    /// Builder-style: set the arrival time.
    pub fn arriving_at(mut self, arrival_ms: f64) -> Self {
        self.arrival_ms = arrival_ms;
        self
    }

    /// Builder-style: set the distribution hint.
    pub fn with_hint(mut self, hint: Distribution) -> Self {
        self.hint = Some(hint);
        self
    }

    /// Builder-style: set the job kind (top-k, order-by, percentile).
    pub fn with_kind(mut self, kind: JobKind) -> Self {
        self.kind = kind;
        self
    }

    /// Convert a generated [`workloads::Request`] into a job. The request's
    /// distribution becomes the policy hint.
    pub fn from_request(id: JobId, request: Request) -> Self {
        SortJob {
            id,
            tenant: request.tenant,
            arrival_ms: request.arrival_ms,
            values: request.values,
            hint: Some(request.dist),
            kind: JobKind::Sort,
        }
    }

    /// Convert a generated request stream into jobs, ids assigned by
    /// position.
    pub fn from_requests(requests: Vec<Request>) -> Vec<SortJob> {
        requests
            .into_iter()
            .enumerate()
            .map(|(i, r)| Self::from_request(i as u64, r))
            .collect()
    }

    /// Number of elements in the job.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the job carries no elements.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// In-flight memory this job accounts for (8 bytes per value/pointer
    /// pair, the paper's record size).
    pub fn bytes(&self) -> usize {
        self.values.len() * 8
    }
}

/// The completed result of one job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The job's id.
    pub id: JobId,
    /// The job's tenant.
    pub tenant: TenantId,
    /// What the job computed (sort, top-k, order-by, percentile).
    pub kind: JobKind,
    /// The job's output records. For [`JobKind::Sort`] and
    /// [`JobKind::OrderBy`] this is the full sorted input (ascending,
    /// same multiset); for [`JobKind::TopK`] the `k` smallest records
    /// ascending; for [`JobKind::Percentile`] one record per requested
    /// quantile.
    pub output: Vec<Value>,
    /// Which engine sorted the job.
    pub engine: Engine,
    /// Id of the batch the job was coalesced into.
    pub batch: usize,
    /// Simulated time spent between arrival and batch start.
    pub queue_ms: f64,
    /// Simulated end-to-end latency (arrival → batch completion).
    pub latency_ms: f64,
    /// Host wall-clock time of the batch that executed the job.
    pub batch_wall_ms: f64,
}

/// Why the admission queue turned a job away.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The queue already holds the configured maximum number of jobs.
    QueueFull,
    /// Admitting the job would exceed the bounded in-flight memory.
    MemoryPressure,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_accessors_and_builders() {
        let job = SortJob::new(3, 1, workloads::uniform(10, 0))
            .arriving_at(2.5)
            .with_hint(Distribution::Sorted);
        assert_eq!(job.len(), 10);
        assert!(!job.is_empty());
        assert_eq!(job.bytes(), 80);
        assert_eq!(job.arrival_ms, 2.5);
        assert_eq!(job.hint, Some(Distribution::Sorted));
        assert_eq!(job.kind, JobKind::Sort);
        assert!(SortJob::new(0, 0, vec![]).is_empty());
    }

    #[test]
    fn job_kinds_route_and_name() {
        let job = SortJob::new(0, 0, workloads::uniform(8, 1)).with_kind(JobKind::TopK(3));
        assert_eq!(job.kind, JobKind::TopK(3));
        assert!(!job.kind.coalesces());
        assert!(JobKind::Sort.coalesces());
        assert!(JobKind::OrderBy.coalesces());
        assert!(!JobKind::Percentile(vec![0.5]).coalesces());
        assert_eq!(JobKind::TopK(1).name(), "top-k");
        assert_eq!(JobKind::default(), JobKind::Sort);
    }

    #[test]
    fn from_request_preserves_metadata() {
        let mix = workloads::RequestMix::small_job_heavy(3);
        let request = mix.generate(9).remove(1);
        let expected_values = request.values.clone();
        let job = SortJob::from_request(7, request.clone());
        assert_eq!(job.id, 7);
        assert_eq!(job.tenant, request.tenant);
        assert_eq!(job.arrival_ms, request.arrival_ms);
        assert_eq!(job.hint, Some(request.dist));
        assert_eq!(job.values, expected_values);
    }
}
