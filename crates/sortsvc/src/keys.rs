//! Order-preserving key codecs: the typed front door to the sort engines.
//!
//! Every engine in this workspace sorts one of two physical domains:
//!
//! * [`Value`] — a 32-bit float key plus a 32-bit id (the paper's
//!   value/pointer pairs, Section 8 of Greß & Zachmann), ordered by
//!   `f32::total_cmp` then id; or
//! * [`WideRecord`] — a 10-byte lexicographic key plus a payload handle
//!   (the out-of-core TeraSort path).
//!
//! [`SortKey`] maps *logical* key types — signed integers, IEEE floats,
//! composite tuples, bounded strings — into those domains through an
//! order-isomorphic `u64` encoding, so a typed sort is exactly a `Value`
//! sort on the encoded bits. The codec laws every implementation obeys
//! (and that `tests/codec_laws.rs` property-checks) are:
//!
//! 1. **Round trip**: `K::decode(k.encode()) == k` for every key `k`
//!    (bit-exact, including float NaN payloads and `-0.0`).
//! 2. **Order isomorphism**: `a.encode() < b.encode()` ⇔ `a < b` under the
//!    key type's total order (`Ord` for integers and strings,
//!    `total_cmp` for floats).
//! 3. **Width**: `k.encode() < 2^BITS` whenever [`SortKey::BITS`] `< 64`,
//!    which is what lets composite tuples pack fields side by side.
//!
//! The encodings themselves are the classic tricks (see `docs/KEYS.md`):
//! sign-flip for two's-complement integers, the IEEE total-order bit
//! flip for floats, big-endian zero-padded bytes for bounded strings,
//! and lexicographic bit concatenation for tuples. Composite keys wider
//! than 64 bits implement [`WideKey`] instead and ride the
//! [`WideRecord`] domain.

use crate::batch::MIN_SEGMENT;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::marker::PhantomData;
use stream_arch::Value;
use terasort::record::KEY_BYTES;
use terasort::WideRecord;

/// Sign bit of a 32-bit word.
const SIGN_32: u32 = 0x8000_0000;
/// Sign bit of a 64-bit word.
const SIGN_64: u64 = 0x8000_0000_0000_0000;

// ---------------------------------------------------------------------------
// The trait
// ---------------------------------------------------------------------------

/// A key type with an order-preserving `u64` encoding.
///
/// See the [module docs](self) for the three codec laws. The encoding
/// *defines* a total order on the key type; for every built-in
/// implementation that order coincides with the natural one (`Ord` for
/// integers, `f32::total_cmp`/`f64::total_cmp` for floats, lexicographic
/// byte order for [`StrKey`], lexicographic field order for tuples).
pub trait SortKey: Copy + PartialEq + fmt::Debug + Send + Sync + 'static {
    /// Number of significant low bits in [`encode`](SortKey::encode)
    /// (≤ 64). Narrow keys compose into tuples as long as the widths sum
    /// to at most 64.
    const BITS: u32;

    /// Short human-readable codec name (diagnostics and bench labels).
    const NAME: &'static str;

    /// Encode into the order-isomorphic `u64` domain. The result is
    /// `< 2^BITS` when `BITS < 64`.
    fn encode(&self) -> u64;

    /// Invert [`encode`](SortKey::encode). Only defined on encoder
    /// outputs; arbitrary bit patterns outside the codec image (e.g. a
    /// value `≥ 2^BITS`) may decode to an arbitrary key.
    fn decode(encoded: u64) -> Self;

    /// The total order induced by the codec (compares encodings).
    #[inline]
    fn key_cmp(&self, other: &Self) -> Ordering {
        self.encode().cmp(&other.encode())
    }
}

// ---------------------------------------------------------------------------
// Scalar implementations
// ---------------------------------------------------------------------------

macro_rules! unsigned_sort_key {
    ($($t:ty => $bits:expr, $name:literal);+ $(;)?) => {$(
        impl SortKey for $t {
            const BITS: u32 = $bits;
            const NAME: &'static str = $name;
            #[inline]
            fn encode(&self) -> u64 {
                *self as u64
            }
            #[inline]
            fn decode(encoded: u64) -> Self {
                encoded as $t
            }
        }
    )+};
}

unsigned_sort_key! {
    u8  => 8,  "u8";
    u16 => 16, "u16";
    u32 => 32, "u32";
    u64 => 64, "u64";
}

macro_rules! signed_sort_key {
    ($($t:ty => $u:ty, $bits:expr, $name:literal);+ $(;)?) => {$(
        impl SortKey for $t {
            const BITS: u32 = $bits;
            const NAME: &'static str = $name;
            #[inline]
            fn encode(&self) -> u64 {
                // Two's-complement sign flip: XOR the sign bit so the
                // unsigned order of the result matches the signed order
                // of the input (i64::MIN -> 0, -1 -> 2^(B-1)-1, 0 ->
                // 2^(B-1), i64::MAX -> 2^B-1).
                ((*self as $u) ^ (1 << ($bits - 1))) as u64
            }
            #[inline]
            fn decode(encoded: u64) -> Self {
                ((encoded as $u) ^ (1 << ($bits - 1))) as $t
            }
        }
    )+};
}

signed_sort_key! {
    i8  => u8,  8,  "i8";
    i16 => u16, 16, "i16";
    i32 => u32, 32, "i32";
    i64 => u64, 64, "i64";
}

impl SortKey for bool {
    const BITS: u32 = 1;
    const NAME: &'static str = "bool";
    #[inline]
    fn encode(&self) -> u64 {
        *self as u64
    }
    #[inline]
    fn decode(encoded: u64) -> Self {
        encoded & 1 != 0
    }
}

impl SortKey for f32 {
    const BITS: u32 = 32;
    const NAME: &'static str = "f32";
    #[inline]
    fn encode(&self) -> u64 {
        // IEEE total-order flip: negative floats have their bits
        // inverted (so more-negative sorts lower), non-negative floats
        // get the sign bit set (so they sort above every negative).
        // This is exactly `f32::total_cmp` as an unsigned comparison,
        // NaNs and ±0.0 included.
        let b = self.to_bits();
        let flipped = if b & SIGN_32 != 0 { !b } else { b | SIGN_32 };
        flipped as u64
    }
    #[inline]
    fn decode(encoded: u64) -> Self {
        let t = encoded as u32;
        let b = if t & SIGN_32 != 0 { t & !SIGN_32 } else { !t };
        f32::from_bits(b)
    }
}

impl SortKey for f64 {
    const BITS: u32 = 64;
    const NAME: &'static str = "f64";
    #[inline]
    fn encode(&self) -> u64 {
        let b = self.to_bits();
        if b & SIGN_64 != 0 {
            !b
        } else {
            b | SIGN_64
        }
    }
    #[inline]
    fn decode(encoded: u64) -> Self {
        let b = if encoded & SIGN_64 != 0 {
            encoded & !SIGN_64
        } else {
            !encoded
        };
        f64::from_bits(b)
    }
}

// ---------------------------------------------------------------------------
// Composite (tuple) keys — lexicographic bit concatenation
// ---------------------------------------------------------------------------

/// Extract `bits` bits of `encoded` starting at bit `shift` (LSB = 0).
#[inline]
fn take_bits(encoded: u64, shift: u32, bits: u32) -> u64 {
    let shifted = if shift >= 64 { 0 } else { encoded >> shift };
    if bits >= 64 {
        shifted
    } else {
        shifted & ((1u64 << bits) - 1)
    }
}

/// Append a field to a partial encoding (earlier fields end up in the
/// higher bits, giving lexicographic field order).
#[inline]
fn pack_field(acc: u64, field: u64, bits: u32) -> u64 {
    acc.checked_shl(bits).unwrap_or(0) | field
}

impl<A: SortKey, B: SortKey> SortKey for (A, B) {
    const BITS: u32 = {
        assert!(
            A::BITS + B::BITS <= 64,
            "composite key wider than 64 bits; use WideKey / WideRecord"
        );
        A::BITS + B::BITS
    };
    const NAME: &'static str = "tuple2";
    #[inline]
    fn encode(&self) -> u64 {
        let e = pack_field(0, self.0.encode(), A::BITS);
        pack_field(e, self.1.encode(), B::BITS)
    }
    #[inline]
    fn decode(encoded: u64) -> Self {
        (
            A::decode(take_bits(encoded, B::BITS, A::BITS)),
            B::decode(take_bits(encoded, 0, B::BITS)),
        )
    }
}

impl<A: SortKey, B: SortKey, C: SortKey> SortKey for (A, B, C) {
    const BITS: u32 = {
        assert!(
            A::BITS + B::BITS + C::BITS <= 64,
            "composite key wider than 64 bits; use WideKey / WideRecord"
        );
        A::BITS + B::BITS + C::BITS
    };
    const NAME: &'static str = "tuple3";
    #[inline]
    fn encode(&self) -> u64 {
        let e = pack_field(0, self.0.encode(), A::BITS);
        let e = pack_field(e, self.1.encode(), B::BITS);
        pack_field(e, self.2.encode(), C::BITS)
    }
    #[inline]
    fn decode(encoded: u64) -> Self {
        (
            A::decode(take_bits(encoded, B::BITS + C::BITS, A::BITS)),
            B::decode(take_bits(encoded, C::BITS, B::BITS)),
            C::decode(take_bits(encoded, 0, C::BITS)),
        )
    }
}

// ---------------------------------------------------------------------------
// Bounded strings
// ---------------------------------------------------------------------------

/// Error building a [`StrKey`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KeyError {
    /// The string is longer than [`StrKey::MAX_LEN`] bytes; use a
    /// [`StringDictionary`] instead.
    TooLong(usize),
    /// The string contains a NUL byte, which the zero-padding prefix
    /// codec cannot distinguish from end-of-string.
    EmbeddedNul,
}

impl fmt::Display for KeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyError::TooLong(n) => write!(
                f,
                "string of {n} bytes exceeds StrKey::MAX_LEN = {}; use a StringDictionary",
                StrKey::MAX_LEN
            ),
            KeyError::EmbeddedNul => write!(f, "string contains a NUL byte"),
        }
    }
}

impl std::error::Error for KeyError {}

/// A bounded string key: at most eight NUL-free bytes, encoded as the
/// big-endian zero-padded byte prefix so the `u64` order is exactly the
/// lexicographic byte order (`"a" < "ab" < "b"` because the pad byte `0`
/// sorts below every content byte).
///
/// Longer or NUL-containing strings do not fit this codec; rank-encode
/// them against a closed set with a [`StringDictionary`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StrKey {
    bytes: [u8; StrKey::MAX_LEN],
    len: u8,
}

impl StrKey {
    /// Maximum key length in bytes (one `u64` worth).
    pub const MAX_LEN: usize = 8;

    /// Build a key from a string of at most [`MAX_LEN`](Self::MAX_LEN)
    /// NUL-free bytes.
    pub fn new(s: &str) -> Result<Self, KeyError> {
        let raw = s.as_bytes();
        if raw.len() > Self::MAX_LEN {
            return Err(KeyError::TooLong(raw.len()));
        }
        if raw.contains(&0) {
            return Err(KeyError::EmbeddedNul);
        }
        let mut bytes = [0u8; Self::MAX_LEN];
        bytes[..raw.len()].copy_from_slice(raw);
        Ok(StrKey {
            bytes,
            len: raw.len() as u8,
        })
    }

    /// The key as a string slice.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.bytes[..self.len as usize]).expect("StrKey holds UTF-8")
    }

    /// Key length in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the key is the empty string.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl fmt::Debug for StrKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StrKey({:?})", self.as_str())
    }
}

impl fmt::Display for StrKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl SortKey for StrKey {
    const BITS: u32 = 64;
    const NAME: &'static str = "str8";
    #[inline]
    fn encode(&self) -> u64 {
        u64::from_be_bytes(self.bytes)
    }
    #[inline]
    fn decode(encoded: u64) -> Self {
        let bytes = encoded.to_be_bytes();
        // NUL-free content means the first zero byte is the pad start.
        let len = bytes.iter().position(|&b| b == 0).unwrap_or(Self::MAX_LEN);
        StrKey {
            bytes,
            len: len as u8,
        }
    }
}

/// Rank codec for arbitrary-length strings against a closed set: the
/// dictionary fallback for strings the [`StrKey`] prefix codec cannot
/// hold. Codes are ranks in the sorted deduplicated set, so the `u64`
/// order equals the lexicographic order *within the dictionary* (the
/// same closed-domain trade-off LocustDB-style dictionary encodings
/// make).
#[derive(Clone, Debug, Default)]
pub struct StringDictionary {
    sorted: Vec<String>,
}

impl StringDictionary {
    /// Build a dictionary from the closed set of strings (sorted and
    /// deduplicated internally).
    pub fn build<I, S>(strings: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut sorted: Vec<String> = strings.into_iter().map(Into::into).collect();
        sorted.sort();
        sorted.dedup();
        StringDictionary { sorted }
    }

    /// Rank of `s` in the dictionary, or `None` if it is not a member.
    pub fn encode(&self, s: &str) -> Option<u64> {
        self.sorted
            .binary_search_by(|probe| probe.as_str().cmp(s))
            .ok()
            .map(|rank| rank as u64)
    }

    /// The string at `code`, or `None` if the code is out of range.
    pub fn decode(&self, code: u64) -> Option<&str> {
        self.sorted.get(code as usize).map(String::as_str)
    }

    /// Number of distinct strings in the dictionary.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Wide composite keys (> 64 bits) — the WideRecord domain
// ---------------------------------------------------------------------------

/// Width of the [`WideRecord`] key in bits (ten bytes).
pub const WIDE_KEY_BITS: u32 = KEY_BYTES as u32 * 8;

/// A composite key wider than 64 bits, encoded order-isomorphically into
/// the low [`WIDE_KEY_BITS`] bits of a `u128` and packed into the
/// [`WideRecord`] lexicographic key the TeraSort path sorts.
///
/// Every pair of [`SortKey`]s whose widths sum to at most 80 bits is a
/// `WideKey` — e.g. `(f64, u16)` or `(i64, u16)`, which do not fit the
/// 64-bit [`SortKey`] tuple codec.
pub trait WideKey: Copy + PartialEq + fmt::Debug + Send + Sync + 'static {
    /// Number of significant low bits in
    /// [`encode_wide`](WideKey::encode_wide) (≤ [`WIDE_KEY_BITS`]).
    const WIDE_BITS: u32;

    /// Encode into the order-isomorphic `u128` domain
    /// (`< 2^WIDE_BITS`).
    fn encode_wide(&self) -> u128;

    /// Invert [`encode_wide`](WideKey::encode_wide) (defined on encoder
    /// outputs).
    fn decode_wide(encoded: u128) -> Self;
}

impl<A: SortKey, B: SortKey> WideKey for (A, B) {
    const WIDE_BITS: u32 = {
        assert!(
            A::BITS + B::BITS <= WIDE_KEY_BITS,
            "composite key wider than the 80-bit WideRecord key"
        );
        A::BITS + B::BITS
    };
    #[inline]
    fn encode_wide(&self) -> u128 {
        ((self.0.encode() as u128) << B::BITS) | self.1.encode() as u128
    }
    #[inline]
    fn decode_wide(encoded: u128) -> Self {
        let mask = (1u128 << B::BITS) - 1;
        (
            A::decode((encoded >> B::BITS) as u64),
            B::decode((encoded & mask) as u64),
        )
    }
}

/// Pack a wide encoding into a [`WideRecord`] key. The 80 key bits are
/// laid out big-endian and *left-aligned* after shifting the encoding up
/// by `WIDE_KEY_BITS - bits`, so lexicographic byte order on the record
/// key equals numeric order on the encoding regardless of the key width.
pub fn wide_to_record(encoded: u128, bits: u32, payload: u64) -> WideRecord {
    debug_assert!(bits <= WIDE_KEY_BITS);
    let aligned = encoded << (WIDE_KEY_BITS - bits);
    let be = aligned.to_be_bytes(); // 16 bytes; key is the low 10 => bytes 6..16
    let mut key = [0u8; KEY_BYTES];
    key.copy_from_slice(&be[16 - KEY_BYTES..]);
    WideRecord::new(key, payload)
}

/// Invert [`wide_to_record`] back to the wide encoding.
pub fn record_to_wide(record: &WideRecord, bits: u32) -> u128 {
    debug_assert!(bits <= WIDE_KEY_BITS);
    let mut be = [0u8; 16];
    be[16 - KEY_BYTES..].copy_from_slice(&record.key);
    u128::from_be_bytes(be) >> (WIDE_KEY_BITS - bits)
}

/// Pack a [`WideKey`] into a [`WideRecord`] with the given payload.
pub fn wide_key_to_record<K: WideKey>(key: &K, payload: u64) -> WideRecord {
    wide_to_record(key.encode_wide(), K::WIDE_BITS, payload)
}

/// Decode a [`WideKey`] back out of a [`WideRecord`] key.
pub fn record_to_wide_key<K: WideKey>(record: &WideRecord) -> K {
    K::decode_wide(record_to_wide(record, K::WIDE_BITS))
}

// ---------------------------------------------------------------------------
// Bridges into the engine domains
// ---------------------------------------------------------------------------

/// Map an encoded `u64` into the [`Value`] domain monotonically: the
/// high 32 bits become the float key through the inverse total-order
/// flip, the low 32 bits become the id. Because `Value`'s total order is
/// (`total_cmp` key, id) and the float flip is an order isomorphism on
/// all 2^32 bit patterns, `u64` order and `Value` order coincide — any
/// 64-bit-encoded key rides the existing engines unchanged.
///
/// The one caveat is inherited from [`Value::padding_sentinel`]: an
/// encoding whose high 32 bits are `0xFFFF_FFFF` (e.g. the flip of a
/// large positive `f64` NaN payload) shares its float key with the
/// padding sentinels and could tie with one if its low bits also land in
/// the top padding range; no realistic key stream produces that pattern.
#[inline]
pub fn encoded_to_value(encoded: u64) -> Value {
    Value::new(f32::decode(encoded >> 32), encoded as u32)
}

/// Invert [`encoded_to_value`].
#[inline]
pub fn value_to_encoded(value: &Value) -> u64 {
    (value.key.encode() << 32) | value.id as u64
}

/// Map a typed key into the [`Value`] domain (see [`encoded_to_value`]).
#[inline]
pub fn key_to_value<K: SortKey>(key: &K) -> Value {
    encoded_to_value(key.encode())
}

/// Decode a typed key back out of a [`Value`] (see [`value_to_encoded`]).
#[inline]
pub fn value_to_key<K: SortKey>(value: &Value) -> K {
    K::decode(value_to_encoded(value))
}

/// Pack an encoded `u64` into a [`WideRecord`]: the encoding fills the
/// first eight key bytes big-endian (so lexicographic record order is
/// numeric `u64` order), the payload carries the record handle. This is
/// the codec behind the deprecated `value_to_record` free function: a
/// [`Value`] maps to exactly the record its encoding produces here.
#[inline]
pub fn encoded_to_record(encoded: u64, payload: u64) -> WideRecord {
    let mut key = [0u8; KEY_BYTES];
    key[..8].copy_from_slice(&encoded.to_be_bytes());
    WideRecord::new(key, payload)
}

/// Invert [`encoded_to_record`] back to the `u64` encoding.
#[inline]
pub fn record_to_encoded(record: &WideRecord) -> u64 {
    u64::from_be_bytes(record.key[..8].try_into().expect("8 key bytes"))
}

/// Pack a typed key into a [`WideRecord`] with the given payload.
#[inline]
pub fn key_to_record<K: SortKey>(key: &K, payload: u64) -> WideRecord {
    encoded_to_record(key.encode(), payload)
}

/// Decode a typed key back out of a [`WideRecord`].
#[inline]
pub fn record_to_key<K: SortKey>(record: &WideRecord) -> K {
    K::decode(record_to_encoded(record))
}

// ---------------------------------------------------------------------------
// Duplicate handling: encode a key multiset into distinct Values
// ---------------------------------------------------------------------------

/// A batch of typed keys encoded into distinct [`Value`]s for the
/// engines, with duplicate multiplicities remembered on the side.
///
/// Adaptive bitonic sorting requires distinct elements (Section 4 of the
/// paper); plain `Value` jobs get that for free from the unique id, but
/// a typed key batch may contain duplicates that encode to the same
/// `u64`. `EncodedBatch` deduplicates at encode time (keeping
/// first-occurrence order so the input distribution shape survives),
/// submits one `Value` per distinct key, and re-expands multiplicities
/// when decoding the sorted output.
#[derive(Clone, Debug)]
pub struct EncodedBatch<K: SortKey> {
    values: Vec<Value>,
    counts: HashMap<u64, usize>,
    total: usize,
    _marker: PhantomData<K>,
}

impl<K: SortKey> EncodedBatch<K> {
    /// Encode a key batch, deduplicating into distinct [`Value`]s.
    pub fn new(keys: &[K]) -> Self {
        let mut counts: HashMap<u64, usize> = HashMap::with_capacity(keys.len());
        let mut values = Vec::with_capacity(keys.len());
        for key in keys {
            let encoded = key.encode();
            let count = counts.entry(encoded).or_insert(0);
            if *count == 0 {
                values.push(encoded_to_value(encoded));
            }
            *count += 1;
        }
        EncodedBatch {
            values,
            counts,
            total: keys.len(),
            _marker: PhantomData,
        }
    }

    /// The distinct encoded values, in first-occurrence order. This is
    /// what gets submitted to the engines.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Take ownership of the distinct encoded values.
    pub fn take_values(&mut self) -> Vec<Value> {
        std::mem::take(&mut self.values)
    }

    /// Number of distinct keys.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total number of keys including duplicates.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Decode a sorted engine output back into the full sorted key
    /// multiset, re-expanding duplicate multiplicities.
    pub fn decode_sorted(&self, sorted: &[Value]) -> Vec<K> {
        self.decode_prefix(sorted, self.total)
    }

    /// Decode a sorted engine output, stopping after the `k` smallest
    /// keys (multiplicities included) — the top-k view of the batch.
    pub fn decode_prefix(&self, sorted: &[Value], k: usize) -> Vec<K> {
        let want = k.min(self.total);
        let mut out = Vec::with_capacity(want);
        'outer: for value in sorted {
            let encoded = value_to_encoded(value);
            let count = self.counts.get(&encoded).copied().unwrap_or(1);
            let key = K::decode(encoded);
            for _ in 0..count {
                out.push(key);
                if out.len() == want {
                    break 'outer;
                }
            }
        }
        out
    }

    /// The number of distinct values a top-`k` submission must request
    /// so that re-expansion yields at least `k` keys (every distinct
    /// value expands to ≥ 1 key, so `k` distinct always suffice).
    pub fn distinct_for_top_k(&self, k: usize) -> usize {
        k.min(self.distinct()).max(1)
    }
}

/// Smallest power-of-two segment the service engines accept; re-exported
/// here so typed callers can size batches without reaching into
/// [`crate::batch`].
pub const MIN_TYPED_SEGMENT: usize = MIN_SEGMENT;

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<K: SortKey>(k: K) {
        assert_eq!(K::decode(k.encode()), k, "round trip failed for {k:?}");
    }

    #[test]
    fn integer_codecs_roundtrip_and_order() {
        for v in [i64::MIN, -2, -1, 0, 1, 2, i64::MAX] {
            roundtrip(v);
        }
        let mut xs = vec![5i64, -3, i64::MIN, i64::MAX, 0, -1];
        let mut by_code = xs.clone();
        xs.sort();
        by_code.sort_by_key(|x| x.encode());
        assert_eq!(xs, by_code);
        roundtrip(u64::MAX);
        roundtrip(-128i8);
        roundtrip(42u16);
        assert!((-1i32).encode() < 0i32.encode());
        assert!(0i32.encode() < 1i32.encode());
    }

    #[test]
    fn float_codec_is_total_order() {
        let special = [
            f32::NEG_INFINITY,
            -1.0f32,
            -0.0,
            0.0,
            1.0,
            f32::INFINITY,
            f32::NAN,
            -f32::NAN,
        ];
        for &a in &special {
            let back = f32::decode(a.encode());
            assert_eq!(back.to_bits(), a.to_bits(), "bit-exact round trip");
            for &b in &special {
                assert_eq!(a.encode().cmp(&b.encode()), a.total_cmp(&b), "{a} vs {b}");
            }
        }
        assert!((-0.0f64).encode() < 0.0f64.encode());
        assert_eq!(f64::decode(f64::NAN.encode()).to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn tuple_codec_is_lexicographic() {
        let a = (1i32, 2u32);
        let b = (1i32, 3u32);
        let c = (2i32, 0u32);
        assert!(a.encode() < b.encode());
        assert!(b.encode() < c.encode());
        roundtrip(a);
        roundtrip((i16::MIN, -1i16, u32::MAX));
        assert_eq!(<(i32, u32)>::BITS, 64);
        assert_eq!(<(i16, i16, u32)>::BITS, 64);
        assert_eq!(<(u8, bool)>::BITS, 9);
    }

    #[test]
    fn str_key_is_lexicographic_and_bounded() {
        let a = StrKey::new("a").unwrap();
        let ab = StrKey::new("ab").unwrap();
        let b = StrKey::new("b").unwrap();
        let empty = StrKey::new("").unwrap();
        let max = StrKey::new("zzzzzzzz").unwrap();
        assert!(empty.encode() < a.encode());
        assert!(a.encode() < ab.encode());
        assert!(ab.encode() < b.encode());
        assert!(b.encode() < max.encode());
        for k in [a, ab, b, empty, max] {
            roundtrip(k);
            assert_eq!(StrKey::decode(k.encode()).as_str(), k.as_str());
        }
        assert_eq!(StrKey::new("too long!"), Err(KeyError::TooLong(9)));
        assert_eq!(StrKey::new("nul\0"), Err(KeyError::EmbeddedNul));
    }

    #[test]
    fn string_dictionary_rank_encodes_a_closed_set() {
        let dict = StringDictionary::build(["walnut", "almond", "pecan", "almond"]);
        assert_eq!(dict.len(), 3);
        let a = dict.encode("almond").unwrap();
        let p = dict.encode("pecan").unwrap();
        let w = dict.encode("walnut").unwrap();
        assert!(a < p && p < w);
        assert_eq!(dict.decode(p), Some("pecan"));
        assert_eq!(dict.encode("cashew"), None);
        assert_eq!(dict.decode(99), None);
    }

    #[test]
    fn value_bridge_is_monotone_and_invertible() {
        let mut encs = vec![
            0u64,
            1,
            0x7FFF_FFFF_FFFF_FFFF,
            0x8000_0000_0000_0000,
            u64::MAX - 1,
            (-1.5f64).encode(),
            3.25f64.encode(),
        ];
        encs.sort();
        let values: Vec<Value> = encs.iter().map(|&e| encoded_to_value(e)).collect();
        let mut sorted = values.clone();
        sorted.sort();
        // Compare re-encodings, not Values: some encodings decode to NaN
        // float keys, and NaN != NaN under PartialEq even though the
        // total order (and the bijection) treats them identically.
        assert_eq!(
            sorted.iter().map(value_to_encoded).collect::<Vec<_>>(),
            encs,
            "u64 order must equal Value order"
        );
        for &e in &encs {
            assert_eq!(value_to_encoded(&encoded_to_value(e)), e);
        }
    }

    #[test]
    fn record_bridge_preserves_order() {
        let xs = [(-2.0f64).encode(), 0.0f64.encode(), 7.5f64.encode()];
        let records: Vec<WideRecord> = xs
            .iter()
            .enumerate()
            .map(|(i, &e)| encoded_to_record(e, i as u64))
            .collect();
        let mut sorted = records.clone();
        sorted.sort();
        assert_eq!(records, sorted);
        for (i, &e) in xs.iter().enumerate() {
            assert_eq!(record_to_encoded(&records[i]), e);
        }
    }

    #[test]
    fn wide_key_packs_lexicographically_into_records() {
        type K = (f64, u16);
        assert_eq!(<K as WideKey>::WIDE_BITS, 80);
        let keys: [K; 4] = [(-1.0, 9), (0.5, 1), (0.5, 2), (2.0, 0)];
        let records: Vec<WideRecord> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| wide_key_to_record(k, i as u64))
            .collect();
        let mut sorted = records.clone();
        sorted.sort();
        assert_eq!(records, sorted, "record order must equal key order");
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(record_to_wide_key::<K>(&records[i]), *k);
        }
        // Narrow wide keys left-align so byte order still matches.
        type N = (i32, u16);
        assert_eq!(<N as WideKey>::WIDE_BITS, 48);
        let lo = wide_key_to_record(&(-5i32, 0u16), 0);
        let hi = wide_key_to_record(&(5i32, 0u16), 1);
        assert!(lo < hi);
        assert_eq!(record_to_wide_key::<N>(&lo), (-5, 0));
    }

    #[test]
    fn encoded_batch_dedups_and_reexpands() {
        let keys = [3i64, -1, 3, 3, 0, -1];
        let batch = EncodedBatch::new(&keys);
        assert_eq!(batch.total(), 6);
        assert_eq!(batch.distinct(), 3);
        let mut sorted = batch.values().to_vec();
        sorted.sort();
        assert_eq!(batch.decode_sorted(&sorted), vec![-1, -1, 0, 3, 3, 3]);
        assert_eq!(batch.decode_prefix(&sorted, 4), vec![-1, -1, 0, 3]);
        assert_eq!(batch.distinct_for_top_k(2), 2);
        assert_eq!(batch.distinct_for_top_k(100), 3);
    }
}
