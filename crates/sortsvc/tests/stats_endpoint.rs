//! The `STATS` wire endpoint, end to end over loopback:
//!
//! * an empty `STATS` request is answered with a JSON snapshot whose
//!   histogram quantiles match the server's own final metrics rollup
//!   exactly (both derive from the same merged histograms);
//! * the snapshot's JSON shape is pinned byte-exactly, so a field rename
//!   or serializer change that would break deployed scrapers fails here
//!   first;
//! * a non-empty `STATS` request is a connection-fatal protocol error.

use sortsvc::metrics::ServiceMetrics;
use sortsvc::net::{ServerConfig, ServerStats, SortClient, SortServer};
use std::time::Duration;

fn small_server() -> SortServer {
    let mut config = ServerConfig::default();
    config.service.device_slots = 1;
    SortServer::start("127.0.0.1:0", config).expect("bind loopback")
}

#[test]
fn stats_round_trip_matches_final_rollup() {
    let server = small_server();
    let mut client = SortClient::connect(server.local_addr()).expect("connect");

    // A few jobs of different sizes so the histograms are non-trivial.
    let tickets: Vec<_> = [256usize, 512, 300, 64]
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            client
                .submit(workloads::uniform(n, 100 + i as u64))
                .expect("submit")
        })
        .collect();
    client.flush().expect("flush");
    for t in &tickets {
        t.wait_timeout(Duration::from_secs(60)).expect("reply");
    }

    let snap = client.stats().expect("STATS round trip");
    let service = snap.get("service").expect("service object");
    let num = |v: &serde_json::Value, key: &str| {
        v.get(key)
            .and_then(|x| x.as_f64())
            .unwrap_or_else(|| panic!("missing numeric field {key}"))
    };
    assert_eq!(num(service, "jobs_completed"), 4.0);
    assert_eq!(num(&snap, "wire_rejects"), 0.0);
    assert!(num(&snap, "frames_received") >= 5.0); // 4 SUBMIT + STATS

    // The quantile-consistency acceptance: the wire snapshot and the
    // server's in-process rollup come from the same histograms, and the
    // JSON round trip is shortest-roundtrip formatted, so the numbers
    // match exactly — not approximately.
    drop(client);
    let final_stats = server.shutdown();
    let m = &final_stats.service;
    assert_eq!(num(service, "latency_p50_ms"), m.latency_p50_ms);
    assert_eq!(num(service, "latency_p99_ms"), m.latency_p99_ms);
    assert_eq!(num(service, "latency_mean_ms"), m.latency_mean_ms);
    assert_eq!(num(service, "queue_mean_ms"), m.queue_mean_ms);
    let latency = service.get("latency").expect("latency summary");
    assert_eq!(num(latency, "count"), m.latency.count as f64);
    assert_eq!(num(latency, "p50_ms"), m.latency.p50_ms);
    assert_eq!(num(latency, "p99_ms"), m.latency.p99_ms);
    assert_eq!(num(latency, "max_ms"), m.latency.max_ms);
    let queue = service.get("queue_wait").expect("queue_wait summary");
    assert_eq!(num(queue, "count"), m.queue_wait.count as f64);
    let exec = service.get("execution").expect("execution summary");
    assert_eq!(num(exec, "count"), m.execution.count as f64);
    // The per-stage histograms tile the end-to-end one.
    assert_eq!(m.queue_wait.count, m.latency.count);
    assert_eq!(m.execution.count, m.latency.count);
}

#[test]
fn stats_json_shape_is_pinned() {
    // The exact bytes a scraper sees for a known snapshot. Built from a
    // hand-constructed ServerStats (not a live server) so the pin is
    // deterministic; the serializer and field order are the same code
    // path the STATS frame uses.
    let stats = ServerStats {
        connections_accepted: 2,
        connections_open: 1,
        peak_connections: 2,
        frames_received: 7,
        frames_sent: 6,
        wire_rejects: 1,
        fatal_errors: 0,
        micro_batches: 3,
        service: ServiceMetrics {
            jobs_submitted: 5,
            jobs_completed: 4,
            jobs_rejected: 1,
            latency_p50_ms: 1.25,
            ..ServiceMetrics::default()
        },
    };
    let json = serde_json::to_string(&stats).expect("serialize");
    let expected = "{\n  \"connections_accepted\": 2,\n  \"connections_open\": 1,\n  \
\"peak_connections\": 2,\n  \"frames_received\": 7,\n  \"frames_sent\": 6,\n  \
\"wire_rejects\": 1,\n  \"fatal_errors\": 0,\n  \"micro_batches\": 3,\n  \"service\": {\n    \
\"jobs_submitted\": 5,\n    \"jobs_completed\": 4,\n    \"jobs_rejected\": 1,\n    \
\"batches\": 0,\n    \"elements_sorted\": 0,\n    \"makespan_ms\": 0.0,\n    \
\"throughput_jobs_per_s\": 0.0,\n    \"throughput_kelems_per_s\": 0.0,\n    \
\"latency_mean_ms\": 0.0,\n    \"latency_p50_ms\": 1.25,\n    \"latency_p99_ms\": 0.0,\n    \
\"queue_mean_ms\": 0.0,\n    \"mean_batch_occupancy\": 0.0,\n    \
\"mean_jobs_per_batch\": 0.0,\n    \"cpu_jobs\": 0,\n    \"gpu_jobs\": 0,\n    \
\"sharded_jobs\": 0,\n    \"tera_jobs\": 0,\n    \"topk_jobs\": 0,\n    \
\"orderby_jobs\": 0,\n    \"percentile_jobs\": 0,\n    \"sharded_batches\": 0,\n    \
\"shard_skew_max\": 0.0,\n    \"device_busy_ms\": 0.0,\n    \"device_utilization\": 0.0,\n    \
\"wall_ms\": 0.0,\n    \"policy_crossover\": 0,\n    \"recovered_jobs\": 0,\n    \
\"replayed_bytes\": 0,\n    \"torn_tail_truncated\": 0,\n    \
\"latency\": {\n      \"count\": 0,\n      \
\"mean_ms\": 0.0,\n      \"p50_ms\": 0.0,\n      \"p90_ms\": 0.0,\n      \"p99_ms\": 0.0,\n      \
\"max_ms\": 0.0\n    },\n    \"queue_wait\": {\n      \"count\": 0,\n      \"mean_ms\": 0.0,\n      \
\"p50_ms\": 0.0,\n      \"p90_ms\": 0.0,\n      \"p99_ms\": 0.0,\n      \"max_ms\": 0.0\n    },\n    \
\"execution\": {\n      \"count\": 0,\n      \"mean_ms\": 0.0,\n      \"p50_ms\": 0.0,\n      \
\"p90_ms\": 0.0,\n      \"p99_ms\": 0.0,\n      \"max_ms\": 0.0\n    }\n  }\n}";
    assert_eq!(json, expected, "STATS snapshot JSON shape changed");
}

#[test]
fn non_empty_stats_request_is_connection_fatal() {
    use sortsvc::net::{Frame, FrameType};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let server = small_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect raw");
    stream
        .write_all(&Frame::new(FrameType::Stats, vec![1, 2, 3]).encode())
        .expect("write");
    // The server answers with an ERROR frame and hangs up: read to EOF
    // and check we got bytes then a clean close.
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read until close");
    assert!(!buf.is_empty(), "server must answer before hanging up");
    assert_eq!(&buf[0..4], b"ABSR", "the answer is a protocol frame");
    let stats = server.shutdown();
    assert_eq!(stats.fatal_errors, 1);
}
