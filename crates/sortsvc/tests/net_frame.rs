//! Codec tests for the `sortsvc` wire protocol (`docs/PROTOCOL.md`).
//!
//! Two families:
//!
//! * **Round-trip properties** — encode → decode is the identity for
//!   `SUBMIT`/`RESULT` payloads across the issue's job sizes
//!   (0, 1, 2, 37, 10 000 records) under both payload encodings, and for
//!   arbitrary key bit patterns (including NaN) under `RAW_LE`.
//! * **Adversarial decoding** — truncated frames, oversized length
//!   prefixes, bad magic, wrong version and garbage payloads each produce
//!   the documented typed error; nothing panics, and an oversized prefix
//!   is refused before any payload-sized allocation.

use proptest::prelude::*;
use sortsvc::net::{
    Frame, FrameError, FramePoll, FrameReader, FrameType, PayloadEncoding, ResultPayload,
    SubmitPayload, HEADER_LEN, JOB_HEADER_LEN, MAGIC, PROTOCOL_VERSION,
};
use std::io::Cursor;
use stream_arch::Value;

/// The job sizes the issue calls out: the edges, a non-round size, and a
/// four-digit job.
const JOB_SIZES: [usize; 5] = [0, 1, 2, 37, 10_000];

fn poll_one(bytes: &[u8], limit: u32) -> Result<FramePoll, FrameError> {
    FrameReader::new(limit).poll(&mut Cursor::new(bytes))
}

fn expect_frame(bytes: &[u8]) -> Frame {
    match poll_one(bytes, 64 << 20).expect("well-formed frame") {
        FramePoll::Frame(f) => f,
        other => panic!("expected a frame, got {other:?}"),
    }
}

/// Values with finite keys (representable in both encodings): a size from
/// [`JOB_SIZES`] picked by index, keys drawn as finite f32s.
fn finite_values(size_idx: usize, seed: u64) -> Vec<Value> {
    let n = JOB_SIZES[size_idx % JOB_SIZES.len()];
    (0..n)
        .map(|i| {
            // A cheap splitmix-style scramble: full 64-bit avalanche, then
            // fold to a finite f32 (scaled so the magnitude varies).
            let mut z = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let key = ((z >> 40) as i32 - (1 << 23)) as f32 / 256.0;
            Value::new(key, i as u32)
        })
        .collect()
}

fn bits(values: &[Value]) -> Vec<(u32, u32)> {
    values.iter().map(|v| (v.key.to_bits(), v.id)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// § Payloads: `SUBMIT` encode → decode is the identity over all
    /// issue job sizes × both encodings, through the frame layer too.
    #[test]
    fn submit_round_trips_both_encodings_at_all_job_sizes(
        size_idx in 0usize..JOB_SIZES.len(),
        seed in 0u64..u64::MAX,
        job_id in 0u64..u64::MAX,
        tenant in 0u32..u32::MAX,
        json in proptest::bool::ANY,
    ) {
        let payload = SubmitPayload {
            job_id,
            tenant,
            encoding: if json { PayloadEncoding::Json } else { PayloadEncoding::RawLe },
            values: finite_values(size_idx, seed),
        };
        let frame = Frame::new(FrameType::Submit, payload.encode().unwrap());
        let decoded_frame = expect_frame(&frame.encode());
        prop_assert_eq!(decoded_frame.frame_type, FrameType::Submit);
        let decoded = SubmitPayload::decode(&decoded_frame.payload).unwrap();
        prop_assert_eq!(decoded.job_id, payload.job_id);
        prop_assert_eq!(decoded.tenant, payload.tenant);
        prop_assert_eq!(decoded.encoding, payload.encoding);
        prop_assert_eq!(bits(&decoded.values), bits(&payload.values));
    }

    /// § Payloads: `RESULT` round-trips likewise.
    #[test]
    fn result_round_trips_both_encodings_at_all_job_sizes(
        size_idx in 0usize..JOB_SIZES.len(),
        seed in 0u64..u64::MAX,
        job_id in 0u64..u64::MAX,
        json in proptest::bool::ANY,
    ) {
        let payload = ResultPayload {
            job_id,
            encoding: if json { PayloadEncoding::Json } else { PayloadEncoding::RawLe },
            values: finite_values(size_idx, seed),
        };
        let decoded = ResultPayload::decode(&payload.encode().unwrap()).unwrap();
        prop_assert_eq!(decoded.job_id, payload.job_id);
        prop_assert_eq!(bits(&decoded.values), bits(&payload.values));
    }

    /// § Encodings: `RAW_LE` carries *every* 32-bit key pattern bit
    /// exactly — NaNs with payloads, infinities, negative zero, subnormals.
    #[test]
    fn raw_le_round_trips_arbitrary_key_bit_patterns(
        raw in proptest::collection::vec((0u32..u32::MAX, 0u32..u32::MAX), 0..64),
    ) {
        let values: Vec<Value> = raw
            .iter()
            .map(|&(k, id)| Value::new(f32::from_bits(k), id))
            .collect();
        let payload = SubmitPayload {
            job_id: 1,
            tenant: 0,
            encoding: PayloadEncoding::RawLe,
            values: values.clone(),
        };
        let decoded = SubmitPayload::decode(&payload.encode().unwrap()).unwrap();
        prop_assert_eq!(bits(&decoded.values), bits(&values));
    }

    /// § Framing: a frame decodes identically no matter how the bytes
    /// arrive — the reader retains partial state across read timeouts and
    /// never loses stream synchronisation.
    #[test]
    fn frame_decoding_is_split_invariant(
        payload in proptest::collection::vec(0u8..u8::MAX, 0..200),
        chunk in 1usize..32,
    ) {
        let frame = Frame::new(FrameType::Ping, payload);
        let bytes = frame.encode();

        // Deliver `chunk` bytes at a time with a WouldBlock between every
        // delivery, as a socket with a read timeout would.
        struct Chunked<'a> {
            bytes: &'a [u8],
            pos: usize,
            chunk: usize,
            block_next: bool,
        }
        impl std::io::Read for Chunked<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.block_next {
                    self.block_next = false;
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                self.block_next = true;
                let n = self.chunk.min(self.bytes.len() - self.pos).min(buf.len());
                buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }
        let mut r = Chunked { bytes: &bytes, pos: 0, chunk, block_next: false };
        let mut reader = FrameReader::new(1024);
        let mut decoded = None;
        loop {
            match reader.poll(&mut r).unwrap() {
                FramePoll::Frame(f) => {
                    decoded = Some(f);
                    break;
                }
                FramePoll::WouldBlock => continue,
                FramePoll::Eof => break,
            }
        }
        prop_assert_eq!(decoded, Some(frame));
    }
}

// --- Adversarial decoding (§ Error handling) ---------------------------

#[test]
fn truncated_frames_yield_typed_truncation_errors() {
    let bytes = Frame::new(FrameType::Submit, vec![7; 40]).encode();
    // Every proper prefix is a truncation (closed stream mid-frame), except
    // the empty prefix, which is a clean EOF.
    assert_eq!(poll_one(&[], 1024), Ok(FramePoll::Eof));
    for cut in 1..bytes.len() {
        assert_eq!(
            poll_one(&bytes[..cut], 1024),
            Err(FrameError::Truncated),
            "prefix of {cut} bytes"
        );
    }
}

#[test]
fn bad_magic_is_rejected_with_the_offending_bytes() {
    let mut bytes = Frame::new(FrameType::Ping, Vec::new()).encode();
    bytes[..4].copy_from_slice(b"HTTP");
    assert_eq!(poll_one(&bytes, 1024), Err(FrameError::BadMagic(*b"HTTP")));
}

#[test]
fn wrong_version_is_rejected_with_the_offending_version() {
    let mut bytes = Frame::new(FrameType::Ping, Vec::new()).encode();
    for v in [0u8, 2, 255] {
        bytes[4] = v;
        assert_eq!(poll_one(&bytes, 1024), Err(FrameError::BadVersion(v)));
    }
}

#[test]
fn unknown_frame_type_and_reserved_bits_are_rejected() {
    let mut bytes = Frame::new(FrameType::Ping, Vec::new()).encode();
    bytes[5] = 0x42;
    assert_eq!(poll_one(&bytes, 1024), Err(FrameError::UnknownType(0x42)));

    let mut bytes = Frame::new(FrameType::Ping, Vec::new()).encode();
    bytes[6] = 1; // reserved word must be zero
    assert_eq!(poll_one(&bytes, 1024), Err(FrameError::BadReserved(1)));
}

#[test]
fn oversized_length_prefix_is_refused_without_reading_the_payload() {
    // Header only — the claimed 4 GiB payload is never on the wire, and
    // the reader must refuse from the header alone (before allocating).
    let mut header = Vec::new();
    header.extend_from_slice(&MAGIC);
    header.push(PROTOCOL_VERSION);
    header.push(FrameType::Submit as u8);
    header.extend_from_slice(&0u16.to_le_bytes());
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(header.len(), HEADER_LEN);
    assert_eq!(
        poll_one(&header, 1 << 20),
        Err(FrameError::Oversized {
            len: u32::MAX,
            limit: 1 << 20,
        })
    );
}

#[test]
fn limit_boundary_is_inclusive() {
    let frame = Frame::new(FrameType::Ping, vec![0; 64]);
    let bytes = frame.encode();
    assert_eq!(expect_frame(&bytes).payload.len(), 64);
    assert_eq!(poll_one(&bytes, 64), Ok(FramePoll::Frame(frame)));
    assert_eq!(
        poll_one(&bytes, 63),
        Err(FrameError::Oversized { len: 64, limit: 63 })
    );
}

#[test]
fn garbage_submit_payloads_yield_typed_payload_errors() {
    // Shorter than the job header.
    assert!(SubmitPayload::decode(&[0u8; JOB_HEADER_LEN - 1]).is_err());
    // Unknown encoding byte.
    let mut bytes = SubmitPayload {
        job_id: 1,
        tenant: 2,
        encoding: PayloadEncoding::RawLe,
        values: vec![],
    }
    .encode()
    .unwrap();
    bytes[12] = 9;
    assert!(SubmitPayload::decode(&bytes).is_err());
    // RAW_LE record section not a multiple of the record size.
    bytes[12] = PayloadEncoding::RawLe as u8;
    bytes.extend_from_slice(&[1, 2, 3]);
    assert!(SubmitPayload::decode(&bytes).is_err());
    // JSON that is not an array of records.
    let mut json = SubmitPayload {
        job_id: 1,
        tenant: 2,
        encoding: PayloadEncoding::Json,
        values: vec![],
    }
    .encode()
    .unwrap();
    json.truncate(JOB_HEADER_LEN);
    json.extend_from_slice(b"{\"not\":\"records\"}");
    assert!(SubmitPayload::decode(&json).is_err());
}

/// The worked hexdumps in `docs/PROTOCOL.md` § Worked examples are real:
/// these are the exact bytes the codec produces.
#[test]
fn protocol_md_hexdump_example_is_accurate() {
    use sortsvc::net::{ErrorCode, RejectPayload};

    let submit = SubmitPayload {
        job_id: 1,
        tenant: 0,
        encoding: PayloadEncoding::RawLe,
        values: vec![Value::new(1.5, 0), Value::new(-2.25, 1)],
    };
    let bytes = Frame::new(FrameType::Submit, submit.encode().unwrap()).encode();
    #[rustfmt::skip]
    let expected: [u8; 44] = [
        0x41, 0x42, 0x53, 0x52, 0x01, 0x01, 0x00, 0x00, 0x20, 0x00, 0x00, 0x00,
        0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        0x00, 0x00, 0xc0, 0x3f, 0x00, 0x00, 0x00, 0x00,
        0x00, 0x00, 0x10, 0xc0, 0x01, 0x00, 0x00, 0x00,
    ];
    assert_eq!(bytes, expected);

    let reject = RejectPayload {
        job_id: 2,
        code: ErrorCode::QueueFull,
        retry_after_ms: 10,
    };
    let bytes = Frame::new(FrameType::Reject, reject.encode()).encode();
    #[rustfmt::skip]
    let expected: [u8; 28] = [
        0x41, 0x42, 0x53, 0x52, 0x01, 0x03, 0x00, 0x00, 0x10, 0x00, 0x00, 0x00,
        0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        0x01, 0x00, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x00,
    ];
    assert_eq!(bytes, expected);

    // The JSON record section of the same submission, byte for byte.
    let mut json = Vec::new();
    sortsvc::net::frame::encode_values(PayloadEncoding::Json, &submit.values, &mut json).unwrap();
    assert_eq!(json, br#"[{"k":1.5,"id":0},{"k":-2.25,"id":1}]"#);
}

#[test]
fn error_frame_after_violation_reports_the_matching_code() {
    use sortsvc::net::ErrorCode;
    let cases: [(&FrameError, ErrorCode); 4] = [
        (&FrameError::BadMagic(*b"HTTP"), ErrorCode::BadMagic),
        (&FrameError::BadVersion(3), ErrorCode::BadVersion),
        (
            &FrameError::Oversized { len: 99, limit: 1 },
            ErrorCode::FrameOversized,
        ),
        (&FrameError::UnknownType(0x42), ErrorCode::BadFrame),
    ];
    for (err, code) in cases {
        assert_eq!(err.error_code(), code);
        assert!(code.is_connection_fatal());
    }
}
