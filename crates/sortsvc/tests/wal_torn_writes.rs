//! Torn-write recovery properties of the write-ahead job log
//! (`docs/DURABILITY.md`).
//!
//! The crash-consistency contract under test: whatever a crash does to
//! the *tail* of the log — truncation at any byte, a flipped bit anywhere
//! in the last segment — recovery either replays an exact prefix of the
//! recorded events or reports a typed [`WalError`]; it never panics and
//! never replays a record whose checksum does not verify. Corruption in
//! a *sealed* (non-last) segment is not explicable by a crash mid-append
//! and must surface as [`WalError::Corrupt`] instead of being silently
//! truncated.
//!
//! The exhaustive tests walk every byte offset of a fixed log; the
//! proptests repeat the same assertions over randomized event sequences,
//! cut points and flip masks.

use proptest::prelude::*;
use sortsvc::wal::{encode_event, AdmittedJob, Wal, WalConfig, WalError, WalEvent};
use sortsvc::RejectReason;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use stream_arch::Value;
use workloads::Distribution;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "wal-torn-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.0).ok();
    }
}

/// A splitmix64 step — deterministic randomness without `rand`.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic event sequence: admissions of varied sizes (including
/// empty and hinted jobs) interleaved with completions and rejections of
/// earlier admissions.
fn event_sequence(jobs: usize, seed: u64) -> Vec<WalEvent> {
    let mut state = seed;
    let mut events = Vec::new();
    let mut open: Vec<u64> = Vec::new();
    for id in 0..jobs as u64 {
        let r = mix(&mut state);
        let len = (r % 23) as usize; // 0..=22 values
        let values = (0..len)
            .map(|i| Value::new((mix(&mut state) >> 40) as f32 / 1024.0 - 8000.0, i as u32))
            .collect();
        let hint = match r % 3 {
            0 => None,
            1 => Some(Distribution::Uniform),
            _ => Some(Distribution::Reverse),
        };
        events.push(WalEvent::Admitted(AdmittedJob {
            job_id: id,
            tenant: (r >> 8) as u32 % 4,
            arrival_ms: id as f64 * 0.25,
            hint,
            values,
        }));
        open.push(id);
        // Sometimes acknowledge one of the open jobs.
        if !open.is_empty() && mix(&mut state).is_multiple_of(2) {
            let victim = open.remove((mix(&mut state) % open.len() as u64) as usize);
            if mix(&mut state).is_multiple_of(4) {
                events.push(WalEvent::Rejected {
                    job_id: victim,
                    reason: RejectReason::QueueFull,
                });
            } else {
                events.push(WalEvent::Completed { job_id: victim });
            }
        }
    }
    events
}

/// The pending set a replay of exactly `events` must produce, in
/// admission order.
fn expected_pending(events: &[WalEvent]) -> Vec<AdmittedJob> {
    let mut pending: Vec<AdmittedJob> = Vec::new();
    for event in events {
        match event {
            WalEvent::Admitted(job) => pending.push(job.clone()),
            WalEvent::Completed { job_id } | WalEvent::Rejected { job_id, .. } => {
                pending.retain(|j| j.job_id != *job_id);
            }
        }
    }
    pending
}

/// Write `events` through the real `Wal` into `dir` (single segment) and
/// return the segment's bytes plus each record's end offset.
fn build_log(dir: &Path, events: &[WalEvent]) -> (Vec<u8>, Vec<usize>) {
    let mut wal = Wal::open(dir, WalConfig::default()).unwrap().wal;
    for event in events {
        match event {
            WalEvent::Admitted(job) => wal.append_admitted(job).unwrap(),
            WalEvent::Completed { job_id } => wal.append_completed(*job_id).unwrap(),
            WalEvent::Rejected { job_id, reason } => wal.append_rejected(*job_id, *reason).unwrap(),
        }
    }
    drop(wal);
    let bytes = fs::read(dir.join("wal-00000000.log")).unwrap();
    let mut ends = Vec::with_capacity(events.len());
    let mut offset = 0usize;
    for event in events {
        offset += encode_event(event).len();
        ends.push(offset);
    }
    assert_eq!(offset, bytes.len(), "boundary bookkeeping out of sync");
    (bytes, ends)
}

/// Open a log directory seeded with exactly `bytes` as its only segment.
fn open_raw(bytes: &[u8]) -> (TempDir, Result<sortsvc::wal::Recovery, WalError>) {
    let tmp = TempDir::new("raw");
    fs::write(tmp.path().join("wal-00000000.log"), bytes).unwrap();
    let result = Wal::open(tmp.path(), WalConfig::default());
    (tmp, result)
}

/// Assert one mutated-tail case: recovery succeeds, replays exactly the
/// records before `valid_records`, and truncates the rest.
fn assert_prefix_recovery(
    bytes: &[u8],
    events: &[WalEvent],
    ends: &[usize],
    valid_records: usize,
    context: &str,
) {
    let (tmp, result) = open_raw(bytes);
    let recovery = match result {
        Ok(r) => r,
        Err(err) => panic!("{context}: open failed: {err}"),
    };
    let expected = expected_pending(&events[..valid_records]);
    assert_eq!(recovery.pending, expected, "{context}: wrong pending set");
    assert_eq!(
        recovery.stats.recovered_jobs,
        expected.len() as u64,
        "{context}"
    );
    let prefix_end = if valid_records == 0 {
        0
    } else {
        ends[valid_records - 1]
    };
    assert_eq!(
        recovery.stats.torn_tail_truncated,
        (bytes.len() - prefix_end) as u64,
        "{context}: wrong truncation"
    );
    drop(recovery);

    // The truncation is physical: a second open finds a clean log with
    // the identical pending set.
    let again = Wal::open(tmp.path(), WalConfig::default()).unwrap();
    assert_eq!(again.pending, expected, "{context}: reopen diverged");
    assert_eq!(again.stats.torn_tail_truncated, 0, "{context}: reopen torn");
}

#[test]
fn truncation_at_every_byte_offset_replays_an_exact_prefix() {
    let master = TempDir::new("master");
    let events = event_sequence(8, 2006);
    let (bytes, ends) = build_log(master.path(), &events);

    for cut in 0..=bytes.len() {
        let valid = ends.iter().filter(|&&e| e <= cut).count();
        assert_prefix_recovery(
            &bytes[..cut],
            &events,
            &ends,
            valid,
            &format!("truncate at {cut}"),
        );
    }
}

#[test]
fn a_flip_at_every_byte_offset_truncates_at_the_damaged_record() {
    let master = TempDir::new("master");
    // A small log keeps the exhaustive sweep fast; the proptest below
    // covers larger randomized logs.
    let events = event_sequence(5, 424242);
    let (bytes, ends) = build_log(master.path(), &events);

    for offset in 0..bytes.len() {
        for mask in [0x01u8, 0x80] {
            let mut flipped = bytes.clone();
            flipped[offset] ^= mask;
            // Every record from the damaged one on is discarded: the
            // parse cannot trust anything past an unverifiable record.
            let damaged = ends.iter().filter(|&&e| e <= offset).count();
            assert_prefix_recovery(
                &flipped,
                &events,
                &ends,
                damaged,
                &format!("flip {mask:#04x} at {offset}"),
            );
        }
    }
}

#[test]
fn corruption_in_a_sealed_segment_is_a_typed_error_not_a_truncation() {
    let tmp = TempDir::new("sealed");
    // Tiny segments force rotation; no acks, so nothing compacts.
    let config = WalConfig {
        segment_max_bytes: 128,
        ..WalConfig::default()
    };
    let mut wal = Wal::open(tmp.path(), config.clone()).unwrap().wal;
    for id in 0..6u64 {
        wal.append_admitted(&AdmittedJob {
            job_id: id,
            tenant: 0,
            arrival_ms: 0.0,
            hint: None,
            values: (0..8).map(|i| Value::new(i as f32, i as u32)).collect(),
        })
        .unwrap();
    }
    assert!(wal.segment_count() > 1, "rotation must have happened");
    drop(wal);

    let sealed = tmp.path().join("wal-00000000.log");
    let clean = fs::read(&sealed).unwrap();
    for offset in (0..clean.len()).step_by(5) {
        let mut flipped = clean.clone();
        flipped[offset] ^= 0x01;
        fs::write(&sealed, &flipped).unwrap();
        match Wal::open(tmp.path(), config.clone()) {
            Err(WalError::Corrupt { segment: 0, .. }) => {}
            Err(other) => panic!("flip at {offset}: wrong error {other}"),
            Ok(_) => panic!("flip at {offset}: sealed corruption went unnoticed"),
        }
    }
    // Restoring the clean bytes restores recovery.
    fs::write(&sealed, &clean).unwrap();
    let recovery = Wal::open(tmp.path(), config).unwrap();
    assert_eq!(recovery.stats.recovered_jobs, 6);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_logs_cut_anywhere_recover_an_exact_prefix(
        jobs in 1usize..14,
        seed in 0u64..1_000_000,
        cut_sel in 0usize..1_000_000,
    ) {
        let master = TempDir::new("prop");
        let events = event_sequence(jobs, seed);
        let (bytes, ends) = build_log(master.path(), &events);
        let cut = cut_sel % (bytes.len() + 1);
        let valid = ends.iter().filter(|&&e| e <= cut).count();
        assert_prefix_recovery(&bytes[..cut], &events, &ends, valid, &format!("cut {cut}"));
    }

    #[test]
    fn random_logs_flipped_anywhere_never_replay_a_corrupt_record(
        jobs in 1usize..14,
        seed in 0u64..1_000_000,
        offset_sel in 0usize..1_000_000,
        mask_sel in 0u32..255,
    ) {
        let mask = (mask_sel + 1) as u8;
        let master = TempDir::new("prop");
        let events = event_sequence(jobs, seed);
        let (bytes, ends) = build_log(master.path(), &events);
        let offset = offset_sel % bytes.len();
        let mut flipped = bytes.clone();
        flipped[offset] ^= mask;
        let damaged = ends.iter().filter(|&&e| e <= offset).count();
        assert_prefix_recovery(
            &flipped,
            &events,
            &ends,
            damaged,
            &format!("flip {mask:#04x} at {offset}"),
        );
    }
}
