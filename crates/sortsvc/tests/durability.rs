//! The durability tier's headline contract (`docs/DURABILITY.md`): a
//! process that crashes anywhere in the WAL write path restarts, replays
//! exactly the admitted-but-unacknowledged jobs, and produces outputs
//! byte-identical to an uninterrupted run — with zero loss of any job a
//! client was acknowledged for.
//!
//! Three escalation levels of "crash" are exercised:
//!
//! 1. **Simulated** ([`FaultMode::Stop`]) — every [`FaultPoint`] in the
//!    write path fires a typed error mid-operation and the abandoned log
//!    is recovered in-process.
//! 2. **Server-level** — a real [`SortServer`] loses its ack append and
//!    is dropped without drain; a second server on the same directory
//!    replays the open job before accepting traffic, and a
//!    [`RetryingClient`] rides over a drain onto a sibling server.
//! 3. **`kill -9`** — a child *process* is SIGKILLed while stalled
//!    mid-record inside an append (a real torn write); the parent
//!    recovers the directory it left behind.

use sortsvc::net::{RetryingClient, ServerConfig, SortClient, SortServer};
use sortsvc::wal::{fault, AdmittedJob, Wal, WalConfig, WalError};
use sortsvc::{RecoveredService, ServiceConfig, SortService};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};
use stream_arch::Value;

/// Serializes every test that arms the process-global fault plan.
fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sortsvc-durability-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.0).ok();
    }
}

/// Deterministic per-job inputs with globally distinct keys (so the
/// sorted output is unique and "byte-identical" is meaningful): job `id`
/// gets keys drawn from `id*1000..id*1000+len`, order scrambled.
fn job_values(id: u64, len: usize) -> Vec<Value> {
    let mut values: Vec<Value> = (0..len)
        .map(|i| Value::new((id * 1000 + i as u64) as f32, i as u32))
        .collect();
    let mut state = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x2006;
    for i in (1..values.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        values.swap(i, (state % (i as u64 + 1)) as usize);
    }
    values
}

/// The exact bit pattern of a value sequence, for byte-identity asserts.
fn bits(values: &[Value]) -> Vec<(u32, u32)> {
    values.iter().map(|v| (v.key.to_bits(), v.id)).collect()
}

/// What an uninterrupted run must produce for `input`: ascending by key
/// (keys are distinct by construction, so this is total).
fn reference_sorted(input: &[Value]) -> Vec<Value> {
    let mut sorted = input.to_vec();
    sorted.sort_by(|a, b| a.key.partial_cmp(&b.key).unwrap());
    sorted
}

/// Ground truth the tests maintain while driving a WAL toward a crash:
/// which jobs are durably admitted and still unacknowledged, and what
/// their inputs were.
#[derive(Default)]
struct Tracker {
    inputs: BTreeMap<u64, Vec<Value>>,
    open: BTreeSet<u64>,
}

impl Tracker {
    /// Append an admission, folding the fault semantics into the
    /// bookkeeping: a torn admission ([`fault::FaultPoint::AdmitPrefix`])
    /// never becomes durable, a crash-after-write
    /// ([`fault::FaultPoint::AdmitFull`]) does.
    fn admit(&mut self, wal: &mut Wal, id: u64) -> Result<(), WalError> {
        let values = job_values(id, 48 + (id as usize * 37) % 150);
        let result = wal.append_admitted(&AdmittedJob {
            job_id: id,
            tenant: (id % 3) as u32,
            arrival_ms: id as f64,
            hint: None,
            values: values.clone(),
        });
        let durable = match &result {
            Ok(()) => true,
            Err(WalError::Injected(fault::FaultPoint::AdmitFull)) => true,
            Err(_) => false,
        };
        if durable {
            self.inputs.insert(id, values);
            self.open.insert(id);
        }
        result
    }

    /// Append a completion, with the same durable-or-not folding: a torn
    /// ack leaves the job open, a crash after the ack (or during the
    /// compaction it triggered) closes it.
    fn ack(&mut self, wal: &mut Wal, id: u64) -> Result<(), WalError> {
        let result = wal.append_completed(id);
        let durable = match &result {
            Ok(()) => true,
            Err(WalError::Injected(fault::FaultPoint::AckFull))
            | Err(WalError::Injected(fault::FaultPoint::CompactUnlink)) => true,
            Err(_) => false,
        };
        if durable {
            self.open.remove(&id);
        }
        result
    }
}

/// Recover `dir` and assert the full contract against `tracker`: exactly
/// the open jobs replay, every replayed output is byte-identical to the
/// uninterrupted reference, and a second recovery finds a converged log.
fn assert_recovery_matches(
    service: &SortService,
    dir: &Path,
    config: WalConfig,
    tracker: &Tracker,
    context: &str,
) {
    let RecoveredService { report, wal, stats } =
        service.recover(dir, config.clone()).unwrap_or_else(|e| {
            panic!("{context}: recovery failed: {e}");
        });
    assert_eq!(
        stats.recovered_jobs,
        tracker.open.len() as u64,
        "{context}: wrong replay count"
    );
    assert_eq!(
        report.metrics.recovered_jobs, stats.recovered_jobs,
        "{context}"
    );
    let replayed: BTreeSet<u64> = report.results.iter().map(|r| r.id).collect();
    assert!(
        report.rejected.is_empty(),
        "{context}: replay rejected jobs"
    );
    assert_eq!(replayed, tracker.open, "{context}: wrong replayed set");
    for result in &report.results {
        let input = &tracker.inputs[&result.id];
        assert_eq!(
            bits(&result.output),
            bits(&reference_sorted(input)),
            "{context}: job {} output diverged from the uninterrupted run",
            result.id
        );
    }
    drop(wal);

    // Crash-loop convergence: recovery acked everything it replayed, so
    // a second process life starts clean.
    let again = service.recover(dir, config).unwrap();
    assert_eq!(again.stats.recovered_jobs, 0, "{context}: did not converge");
    assert!(again.report.results.is_empty(), "{context}: replayed twice");
}

/// Shared service for the in-process tests (policy calibration is the
/// expensive part of construction; one instance serves every recovery).
fn service() -> &'static SortService {
    static SERVICE: OnceLock<SortService> = OnceLock::new();
    SERVICE.get_or_init(|| SortService::new(ServiceConfig::default()))
}

#[test]
fn a_simulated_crash_at_every_fault_point_recovers_every_unacked_job() {
    let _guard = fault_lock();
    use fault::FaultPoint::*;
    // (point, occurrences to let pass) — each chosen so the fault fires
    // mid-workload with a mix of acked and open jobs on both sides.
    for (point, after) in [
        (AdmitPrefix, 5),
        (AdmitFull, 5),
        (AckPrefix, 2),
        (AckFull, 2),
    ] {
        let tmp = TempDir::new("sweep");
        let config = WalConfig::default();
        let mut wal = Wal::open(tmp.path(), config.clone()).unwrap().wal;
        fault::arm(fault::FaultPlan {
            point,
            after,
            mode: fault::FaultMode::Stop,
            marker: None,
        });

        let mut tracker = Tracker::default();
        let crashed = 'crash: {
            for id in 0..12u64 {
                if tracker.admit(&mut wal, id).is_err() {
                    break 'crash true;
                }
                if id % 3 == 0 && tracker.ack(&mut wal, id).is_err() {
                    break 'crash true;
                }
            }
            false
        };
        assert!(crashed, "{point:?}: fault never fired");
        fault::disarm();
        drop(wal); // the process life that crashed abandons its handle

        assert_recovery_matches(
            service(),
            tmp.path(),
            config,
            &tracker,
            &format!("{point:?} after {after}"),
        );
    }
}

#[test]
fn a_crash_during_compaction_leaves_a_recoverable_partially_compacted_log() {
    let _guard = fault_lock();
    let tmp = TempDir::new("compact");
    // Tiny segments so acking the early jobs makes sealed segments
    // deletable while later jobs are still open.
    let config = WalConfig {
        segment_max_bytes: 400,
        ..WalConfig::default()
    };
    let mut wal = Wal::open(tmp.path(), config.clone()).unwrap().wal;
    let mut tracker = Tracker::default();
    for id in 0..10u64 {
        tracker.admit(&mut wal, id).unwrap();
    }
    assert!(wal.segment_count() > 2, "workload must span segments");

    fault::arm(fault::FaultPlan {
        point: fault::FaultPoint::CompactUnlink,
        after: 0,
        mode: fault::FaultMode::Stop,
        marker: None,
    });
    let mut crashed = false;
    for id in 0..8u64 {
        if tracker.ack(&mut wal, id).is_err() {
            crashed = true;
            break;
        }
    }
    assert!(crashed, "compaction fault never fired");
    fault::disarm();
    drop(wal);

    // The log now mixes sealed segments that were about to be deleted
    // (all-acked), stray acks, and open jobs; recovery must take it all
    // in stride.
    assert_recovery_matches(service(), tmp.path(), config, &tracker, "compact-unlink");
}

fn durable_server_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        durability_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    }
}

#[test]
fn a_drained_server_leaves_nothing_to_recover() {
    let tmp = TempDir::new("drain");
    let server = SortServer::start("127.0.0.1:0", durable_server_config(tmp.path())).unwrap();
    let mut client = SortClient::connect(server.local_addr()).unwrap();
    let tickets: Vec<_> = (0..6u64)
        .map(|id| client.submit(job_values(id, 200)).unwrap())
        .collect();
    client.flush().unwrap();
    for ticket in tickets {
        let reply = ticket.wait_timeout(Duration::from_secs(30)).unwrap();
        assert!(reply.sorted().is_some(), "job rejected under no load");
    }

    let stats = server.drain();
    assert_eq!(stats.service.jobs_completed, 6);
    assert_eq!(stats.service.recovered_jobs, 0);

    // The clean-handoff half of the contract: every answered job has its
    // acknowledgement on disk, so the next life replays nothing.
    let recovered = service().recover(tmp.path(), WalConfig::default()).unwrap();
    assert_eq!(recovered.stats.recovered_jobs, 0);
    assert!(recovered.report.results.is_empty());
}

#[test]
fn a_crashed_server_is_replayed_by_its_successor_with_zero_acknowledged_loss() {
    let _guard = fault_lock();
    let tmp = TempDir::new("restart");
    let first = SortServer::start("127.0.0.1:0", durable_server_config(tmp.path())).unwrap();
    let mut client = RetryingClient::connect(first.local_addr()).unwrap();

    // Normal traffic: every answer the client gets is correct.
    for id in 0..3u64 {
        let input = job_values(id, 300);
        let sorted = client.sort(input.clone()).unwrap();
        assert_eq!(bits(&sorted), bits(&reference_sorted(&input)));
    }

    // The crash: the next job's acknowledgement append tears. The client
    // still gets its RESULT (replies go out before acks are logged), but
    // the log keeps the job open — exactly the at-least-once window.
    fault::arm(fault::FaultPlan {
        point: fault::FaultPoint::AckPrefix,
        after: 0,
        mode: fault::FaultMode::Stop,
        marker: None,
    });
    let input = job_values(99, 300);
    let sorted = client.sort(input.clone()).unwrap();
    assert_eq!(bits(&sorted), bits(&reference_sorted(&input)));
    drop(first); // joins the dispatcher, so the ack append (and its fault) ran
    fault::disarm();

    // The successor replays the open job before accepting traffic…
    let second = SortServer::start("127.0.0.1:0", durable_server_config(tmp.path())).unwrap();
    let stats = second.stats();
    assert_eq!(
        stats.service.recovered_jobs, 1,
        "the unacked job must replay"
    );
    assert!(stats.service.replayed_bytes > 0);
    assert!(
        stats.service.jobs_completed >= 1,
        "the replayed job must finish"
    );

    // …and serves new work as usual.
    let mut client = RetryingClient::connect(second.local_addr()).unwrap();
    let input = job_values(100, 300);
    let sorted = client.sort(input.clone()).unwrap();
    assert_eq!(bits(&sorted), bits(&reference_sorted(&input)));
    assert_eq!(second.drain().service.recovered_jobs, 1);
}

#[test]
fn a_retrying_client_rides_a_drain_onto_the_sibling_server() {
    let primary = SortServer::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let sibling = SortServer::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addrs = [primary.local_addr(), sibling.local_addr()];
    let mut client = RetryingClient::connect(&addrs[..]).unwrap();

    let input = job_values(1, 250);
    let sorted = client.sort(input.clone()).unwrap();
    assert_eq!(bits(&sorted), bits(&reference_sorted(&input)));

    // Drain the server the client is talking to: it says GOODBYE and the
    // connection dies. The client's failure loop must reconnect (rotating
    // to the sibling) and resubmit without the caller noticing.
    primary.drain();
    let input = job_values(2, 250);
    let sorted = client.sort(input.clone()).unwrap();
    assert_eq!(bits(&sorted), bits(&reference_sorted(&input)));
    let stats = client.stats();
    assert!(
        stats.reconnects >= 1 || stats.rejects_retried >= 1,
        "failover must have gone through the retry loop: {stats:?}"
    );
    sibling.shutdown();
}

/// Environment variable carrying the child's WAL directory in the
/// `kill -9` test. Unset (the normal case) makes the child helper a
/// no-op.
const CHILD_DIR_ENV: &str = "SORTSVC_DURABILITY_CHILD_DIR";

/// How many admissions the child's armed fault lets pass before stalling
/// (see [`kill_minus_nine_mid_append_then_restart_replays_exactly_the_unacked_jobs`]).
const CHILD_STALL_AFTER: u64 = 7;

/// Helper, not a test: the process the `kill -9` test SIGKILLs. It
/// appends the deterministic workload until the env-armed fault stalls it
/// mid-record. Only runs when spawned by the parent (env var set).
#[test]
#[ignore = "subprocess helper for the kill -9 test"]
fn child_wal_writer() {
    let Ok(dir) = std::env::var(CHILD_DIR_ENV) else {
        return;
    };
    fault::arm_from_env();
    let mut wal = Wal::open(&dir, WalConfig::default()).unwrap().wal;
    let mut tracker = Tracker::default();
    for id in 0.. {
        // The armed stall never returns from inside the append, so the
        // loop needs no exit of its own; unwrap keeps real errors loud.
        tracker.admit(&mut wal, id).unwrap();
        if id % 2 == 0 {
            tracker.ack(&mut wal, id).unwrap();
        }
    }
}

#[test]
fn kill_minus_nine_mid_append_then_restart_replays_exactly_the_unacked_jobs() {
    let tmp = TempDir::new("kill9");
    let marker = tmp.path().join("stalled");

    // Re-exec this test binary, filtered down to the (ignored) child
    // helper, with a stall fault armed via the environment: the child
    // writes `marker` and hangs *mid-record inside an admission append*,
    // and we SIGKILL it right there — a genuine torn write by a genuine
    // dead process.
    let mut child = std::process::Command::new(std::env::current_exe().unwrap())
        .args(["--exact", "--ignored", "--nocapture", "child_wal_writer"])
        .env(CHILD_DIR_ENV, tmp.path())
        .env(
            fault::FAULT_ENV,
            format!(
                "admit-prefix:{CHILD_STALL_AFTER}:stall:{}",
                marker.display()
            ),
        )
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();

    let deadline = Instant::now() + Duration::from_secs(60);
    while !marker.exists() {
        if Instant::now() > deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("child never reached the stall point");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().unwrap(); // SIGKILL: no destructors, no flushes
    child.wait().unwrap();

    // Reconstruct the child's ground truth: admissions 0..CHILD_STALL_AFTER
    // are durable (the one *at* the stall is the torn half-record), even
    // ids were acked.
    let mut expected = Tracker::default();
    for id in 0..CHILD_STALL_AFTER {
        expected
            .inputs
            .insert(id, job_values(id, 48 + (id as usize * 37) % 150));
        if id % 2 != 0 {
            expected.open.insert(id);
        }
    }

    let recovered = service().recover(tmp.path(), WalConfig::default()).unwrap();
    assert!(
        recovered.stats.torn_tail_truncated > 0,
        "the kill left a half-written record that must be truncated"
    );
    let replayed: BTreeSet<u64> = recovered.report.results.iter().map(|r| r.id).collect();
    assert_eq!(replayed, expected.open, "wrong set of jobs replayed");
    assert!(recovered.report.rejected.is_empty());
    for result in &recovered.report.results {
        let input = &expected.inputs[&result.id];
        assert_eq!(
            bits(&result.output),
            bits(&reference_sorted(input)),
            "job {} output diverged after the kill",
            result.id
        );
    }
    drop(recovered);

    // Convergence survives a real kill too.
    let again = service().recover(tmp.path(), WalConfig::default()).unwrap();
    assert_eq!(again.stats.recovered_jobs, 0);
    assert_eq!(again.stats.torn_tail_truncated, 0);
}
