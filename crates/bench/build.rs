//! Captures the rustc version at build time so the report header can
//! record the toolchain a trajectory point was produced with (the
//! perf-regression gate compares wall-clock ratios across runs; knowing
//! the compiler behind each point makes cross-run numbers interpretable).

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".into());
    let version = std::process::Command::new(rustc)
        .arg("--version")
        .output()
        .ok()
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| "unknown".into());
    println!("cargo:rustc-env=BENCH_RUSTC_VERSION={version}");
    println!("cargo:rerun-if-changed=build.rs");
}
