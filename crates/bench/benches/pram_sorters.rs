//! E16 — the PRAM sorters of Section 2.1: Bilardi–Nicolau adaptive bitonic
//! sort (EREW), Batcher's bitonic network (EREW) and the rank-based
//! parallel merge sort (CREW) on the explicit PRAM simulator. The
//! simulated-step version is `repro --experiment pram`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pram::sorters::{abisort_pram, bitonic_network, rank_merge};
use std::time::Duration;

fn bench_pram_sorters(c: &mut Criterion) {
    let mut group = c.benchmark_group("pram_sorters");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    for log_n in [10u32, 12] {
        let n = 1usize << log_n;
        let input = workloads::uniform(n, log_n as u64);
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(
            BenchmarkId::new("abisort_overlapped", n),
            &input,
            |b, input| b.iter(|| abisort_pram::sort(input).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("abisort_sequential_stages", n),
            &input,
            |b, input| {
                b.iter(|| {
                    abisort_pram::sort_with_schedule(
                        input,
                        abisort_pram::Schedule::SequentialStages,
                    )
                    .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bitonic_network", n),
            &input,
            |b, input| b.iter(|| bitonic_network::sort(input).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("rank_merge", n), &input, |b, input| {
            b.iter(|| rank_merge::sort(input).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pram_sorters);
criterion_main!(benches);
