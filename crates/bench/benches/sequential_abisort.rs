//! Sequential adaptive bitonic sort versus the CPU quicksort baseline and
//! the standard library sort — the Section 2.1 remark that sequential
//! adaptive bitonic sorting is within a small factor of quicksort.

use baselines::CpuSorter;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential_abisort");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    for log_n in [12u32, 14, 16] {
        let n = 1usize << log_n;
        let input = workloads::uniform(n, 3);

        group.bench_with_input(
            BenchmarkId::new("adaptive_bitonic_classic", n),
            &input,
            |b, input| {
                b.iter(|| {
                    abisort::sequential::adaptive_bitonic_sort_with(
                        input,
                        abisort::MergeVariant::Classic,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("adaptive_bitonic_simplified", n),
            &input,
            |b, input| {
                b.iter(|| {
                    abisort::sequential::adaptive_bitonic_sort_with(
                        input,
                        abisort::MergeVariant::Simplified,
                    )
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("cpu_quicksort", n), &input, |b, input| {
            b.iter(|| CpuSorter.sort(input))
        });
        group.bench_with_input(
            BenchmarkId::new("std_sort_unstable", n),
            &input,
            |b, input| {
                b.iter(|| {
                    let mut v = input.clone();
                    v.sort_unstable();
                    v
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sequential);
criterion_main!(benches);
