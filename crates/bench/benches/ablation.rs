//! E15 — ablation: the effect of each design choice (layout, overlapped
//! stages, Section 7 optimizations) on the cost of a sort. The
//! simulated-time version is `repro --experiment ablation`.

use abisort::{GpuAbiSorter, LayoutChoice, SortConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use stream_arch::{GpuProfile, StreamProcessor};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let n = 1usize << 13;
    let input = workloads::uniform(n, 13);

    let configs: Vec<(&str, SortConfig)> = vec![
        (
            "baseline_rowwise_sequential",
            SortConfig::unoptimized().with_layout(LayoutChoice::RowWise { width: 2048 }),
        ),
        ("zorder", SortConfig::unoptimized()),
        (
            "zorder_overlapped",
            SortConfig::unoptimized().with_overlapped_steps(true),
        ),
        (
            "zorder_overlapped_localsort",
            SortConfig::unoptimized()
                .with_overlapped_steps(true)
                .with_local_sort(true),
        ),
        ("full_gpu_abisort", SortConfig::default()),
    ];

    for (name, config) in configs {
        group.bench_with_input(BenchmarkId::new("config", name), &input, |b, input| {
            b.iter(|| {
                let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
                GpuAbiSorter::new(config)
                    .sort_run(&mut proc, input)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
