//! E14 — scalability with the number of stream processor units `p`.
//!
//! The simulated-time scaling (which is what the paper's claim is about) is
//! produced by `repro --experiment scaling`; this bench measures the host
//! cost of simulating different unit counts, including the real
//! multi-threaded executor (`ExecMode::Parallel`) on machines with more
//! than one hardware thread.

use abisort::{GpuAbiSorter, SortConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use stream_arch::{ExecMode, GpuProfile, StreamProcessor};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_p");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let n = 1usize << 13;
    let input = workloads::uniform(n, 11);

    for units in [1usize, 4, 16, 24] {
        group.bench_with_input(
            BenchmarkId::new("simulated_units", units),
            &input,
            |b, input| {
                b.iter(|| {
                    let mut proc =
                        StreamProcessor::new(GpuProfile::geforce_7800().with_units(units));
                    GpuAbiSorter::new(SortConfig::default())
                        .sort_run(&mut proc, input)
                        .unwrap()
                })
            },
        );
    }

    // Host-parallel execution of the kernel instances (one thread per
    // simulated unit). On a single-core host this mainly measures the
    // thread-coordination overhead.
    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    group.bench_with_input(
        BenchmarkId::new("host_parallel_executor", host_threads),
        &input,
        |b, input| {
            b.iter(|| {
                let mut proc = StreamProcessor::with_mode(
                    GpuProfile::geforce_7800().with_units(host_threads),
                    ExecMode::Parallel,
                );
                GpuAbiSorter::new(SortConfig::default())
                    .sort_run(&mut proc, input)
                    .unwrap()
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
