//! E17 — the hybrid out-of-core pipeline (GPUTeraSort scenario, Section
//! 2.2) with the three in-core sorters. The simulated-time version is
//! `repro --experiment terasort`.

use abisort::SortConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use terasort::{
    disk::{DiskProfile, SimulatedDisk},
    pipeline::{CoreSorter, TeraSortConfig, TeraSorter},
    record,
};

fn bench_terasort(c: &mut Criterion) {
    let mut group = c.benchmark_group("terasort_pipeline");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    let records = record::generate(16_384, 7);
    group.throughput(Throughput::Elements(records.len() as u64));

    let sorters: Vec<(&str, CoreSorter)> = vec![
        ("gpu_abisort", CoreSorter::GpuAbiSort(SortConfig::default())),
        ("gpusort_network", CoreSorter::GpuBitonicNetwork),
        ("cpu_quicksort", CoreSorter::CpuQuicksort),
    ];

    for (name, core_sorter) in sorters {
        group.bench_with_input(
            BenchmarkId::new("core_sorter", name),
            &records,
            |b, records| {
                b.iter(|| {
                    let mut disk = SimulatedDisk::new(DiskProfile::raid_2006());
                    let input = disk.create("table");
                    disk.append(input, records);
                    let config = TeraSortConfig {
                        run_size: 4_096,
                        core_sorter: core_sorter.clone(),
                        ..TeraSortConfig::default()
                    };
                    TeraSorter::new(config).sort(&mut disk, input).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_terasort);
criterion_main!(benches);
