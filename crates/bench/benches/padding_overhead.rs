//! E18 — cost of the power-of-two padding (Section 4) for non-power-of-two
//! input lengths; the remedy (pruned bitonic trees) is the future work of
//! Section 9. The simulated-time version is `repro --experiment padding`.

use abisort::{GpuAbiSorter, SortConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use stream_arch::{GpuProfile, StreamProcessor};

fn bench_padding(c: &mut Criterion) {
    let mut group = c.benchmark_group("padding_overhead");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    let base = 1usize << 12;
    for n in [base, base + 1, base + base / 2, 2 * base - 1] {
        let input = workloads::uniform(n, 3);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("n", n), &input, |b, input| {
            b.iter(|| {
                let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
                GpuAbiSorter::new(SortConfig::default())
                    .sort_run(&mut proc, input)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_padding);
criterion_main!(benches);
