//! Wall-clock cost of the sharded multi-device engine as the processor
//! pool grows — the host-side price of splitter partitioning, concurrent
//! shard sorts and the device tournament merge, next to the simulated
//! speed-up the `repro` E20 scenario reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sortsvc::{ShardedConfig, ShardedSorter};
use std::time::Duration;
use stream_arch::{GpuProfile, StreamProcessor};

fn bench_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    let n = 1usize << 15;
    let input = workloads::uniform(n, 2006);
    let sorter = ShardedSorter::new(ShardedConfig::default());

    for devices in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("devices", devices), &devices, |b, &p| {
            b.iter(|| {
                let mut pool: Vec<StreamProcessor> = (0..p)
                    .map(|_| StreamProcessor::new(GpuProfile::geforce_7800()))
                    .collect();
                let run = sorter.sort_run(&mut pool, &input).expect("sharded sort");
                assert_eq!(run.output.len(), n);
                run.sim_ms
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
