//! E10 — data dependence: the CPU quicksort's wall-clock time varies with
//! the input distribution while GPU-ABiSort's stays flat (its comparison
//! count is data independent).

use abisort::{GpuAbiSorter, SortConfig};
use baselines::CpuSorter;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use stream_arch::{GpuProfile, StreamProcessor};
use workloads::Distribution;

fn bench_data_dependence(c: &mut Criterion) {
    let mut group = c.benchmark_group("data_dependence");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let n = 1usize << 13;

    for dist in Distribution::all_for_data_dependence() {
        let input = workloads::generate(dist, n, 7);
        group.bench_with_input(
            BenchmarkId::new("cpu_quicksort", dist.name()),
            &input,
            |b, input| b.iter(|| CpuSorter.sort(input)),
        );
        group.bench_with_input(
            BenchmarkId::new("gpu_abisort", dist.name()),
            &input,
            |b, input| {
                b.iter(|| {
                    let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
                    GpuAbiSorter::new(SortConfig::default())
                        .sort_run(&mut proc, input)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_data_dependence);
criterion_main!(benches);
