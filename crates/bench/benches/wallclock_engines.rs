//! E21 companion bench — host wall-clock of the three execution engines.
//!
//! The `repro --scenario wallclock` harness produces the reported
//! before/after table; this criterion target keeps the same comparison
//! under continuous measurement (and under `-- --test` smoke in CI):
//! sequential reference, pooled parallel ([`ExecMode::Parallel`]), and the
//! legacy spawn-per-launch baseline ([`ExecMode::SpawnParallel`]), plus
//! the stream arena on/off on the sequential engine.

use abisort::{GpuAbiSorter, SortConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use stream_arch::{ExecMode, GpuProfile, StreamProcessor};

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("wallclock_engines");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let n = 1usize << 12;
    let input = workloads::uniform(n, 7);
    let sorter = GpuAbiSorter::new(SortConfig::default());

    // Long-lived processors: the pooled engine's worker threads and the
    // arena's recycled buffers persist across iterations, exactly like a
    // service slot worker.
    let mut sequential = StreamProcessor::new(GpuProfile::geforce_7800());
    group.bench_function(BenchmarkId::new("engine", "sequential"), |b| {
        b.iter(|| sorter.sort_run(&mut sequential, &input).unwrap())
    });

    let mut no_arena = StreamProcessor::new(GpuProfile::geforce_7800());
    no_arena.arena().set_enabled(false);
    group.bench_function(BenchmarkId::new("engine", "sequential_no_arena"), |b| {
        b.iter(|| sorter.sort_run(&mut no_arena, &input).unwrap())
    });

    let mut pooled = StreamProcessor::with_mode(GpuProfile::geforce_7800(), ExecMode::Parallel);
    group.bench_function(BenchmarkId::new("engine", "parallel_pooled"), |b| {
        b.iter(|| sorter.sort_run(&mut pooled, &input).unwrap())
    });

    let mut spawn = StreamProcessor::with_mode(GpuProfile::geforce_7800(), ExecMode::SpawnParallel);
    group.bench_function(BenchmarkId::new("engine", "parallel_spawn_baseline"), |b| {
        b.iter(|| sorter.sort_run(&mut spawn, &input).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
