//! E13 — work complexity: wall-clock scaling of the adaptive sorters
//! (O(n log n) work) versus the sorting networks (O(n log² n) work) across
//! a size sweep. The comparison-count version of this experiment is in
//! `repro --experiment work`.

use abisort::{GpuAbiSorter, SortConfig};
use baselines::{GpuSortBaseline, OddEvenMergeSort, PeriodicBalancedSort};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use stream_arch::{GpuProfile, StreamProcessor};

fn bench_work(c: &mut Criterion) {
    let mut group = c.benchmark_group("work_complexity");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    for log_n in [10u32, 12, 14] {
        let n = 1usize << log_n;
        let input = workloads::uniform(n, 9);

        group.bench_with_input(
            BenchmarkId::new("sequential_abisort", n),
            &input,
            |b, input| b.iter(|| abisort::adaptive_bitonic_sort(input)),
        );
        group.bench_with_input(BenchmarkId::new("gpu_abisort", n), &input, |b, input| {
            b.iter(|| {
                let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
                GpuAbiSorter::new(SortConfig::default())
                    .sort(&mut proc, input)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("gpusort", n), &input, |b, input| {
            b.iter(|| {
                let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
                GpuSortBaseline::new().sort(&mut proc, input).unwrap()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("odd_even_merge_sort", n),
            &input,
            |b, input| {
                b.iter(|| {
                    let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
                    OddEvenMergeSort::new().sort(&mut proc, input).unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("periodic_balanced", n),
            &input,
            |b, input| {
                b.iter(|| {
                    let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
                    PeriodicBalancedSort::new().sort(&mut proc, input).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_work);
criterion_main!(benches);
