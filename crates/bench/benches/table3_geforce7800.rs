//! E9 — Table 3 (GeForce 7800 system): wall-clock benchmark of the three
//! sorters the table compares. See `repro --table 3` for the full-size
//! simulated-time table.

use abisort::{GpuAbiSorter, SortConfig};
use baselines::{CpuSorter, GpuSortBaseline};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use stream_arch::{GpuProfile, StreamProcessor};

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_geforce7800");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for log_n in [12u32, 14] {
        let n = 1usize << log_n;
        let input = workloads::uniform(n, 42);

        group.bench_with_input(BenchmarkId::new("cpu_quicksort", n), &input, |b, input| {
            b.iter(|| CpuSorter.sort(input))
        });
        group.bench_with_input(
            BenchmarkId::new("gpusort_bitonic_network", n),
            &input,
            |b, input| {
                b.iter(|| {
                    let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
                    GpuSortBaseline::new().sort(&mut proc, input).unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("gpu_abisort_zorder", n),
            &input,
            |b, input| {
                b.iter(|| {
                    let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
                    GpuAbiSorter::new(SortConfig::z_order())
                        .sort_run(&mut proc, input)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
