//! Wall-clock throughput of the sorting service over a seeded small-job
//! mix, coalesced versus one-job-per-launch — the host-side cost of the
//! serving layer on top of the simulated device time the `repro` service
//! scenario reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sortsvc::{ServiceConfig, SortJob, SortService};
use std::time::Duration;
use workloads::RequestMix;

fn bench_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    let mix = RequestMix::small_job_heavy(64);
    let jobs = SortJob::from_requests(mix.generate(7));

    let base = SortService::new(ServiceConfig::default());
    for (mode, coalescing) in [("coalesced", true), ("one-job-per-launch", false)] {
        let service = SortService::with_policy(
            ServiceConfig {
                coalescing,
                ..ServiceConfig::default()
            },
            base.policy().clone(),
        );
        group.bench_with_input(BenchmarkId::new(mode, jobs.len()), &jobs, |b, jobs| {
            b.iter(|| {
                service
                    .process(jobs.clone())
                    .expect("service run failed")
                    .metrics
                    .throughput_kelems_per_s
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
