//! E8 — Table 2 (GeForce 6800 system): wall-clock benchmark of the four
//! sorters the table compares, at simulator-friendly sizes.
//!
//! The full-size (up to n = 2^20) simulated-time table is produced by
//! `cargo run --release -p bench --bin repro -- --table 2`; this Criterion
//! bench measures the host wall-clock cost of the same code paths so that
//! regressions in the implementation itself are visible.

use abisort::{GpuAbiSorter, SortConfig};
use baselines::{CpuSorter, GpuSortBaseline};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use stream_arch::{GpuProfile, StreamProcessor};

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_geforce6800");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for log_n in [12u32, 14] {
        let n = 1usize << log_n;
        let input = workloads::uniform(n, 42);

        group.bench_with_input(BenchmarkId::new("cpu_quicksort", n), &input, |b, input| {
            b.iter(|| CpuSorter.sort(input))
        });
        group.bench_with_input(
            BenchmarkId::new("gpusort_bitonic_network", n),
            &input,
            |b, input| {
                b.iter(|| {
                    let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
                    GpuSortBaseline::new().sort(&mut proc, input).unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("gpu_abisort_rowwise", n),
            &input,
            |b, input| {
                b.iter(|| {
                    let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
                    GpuAbiSorter::new(SortConfig::row_wise(2048))
                        .sort_run(&mut proc, input)
                        .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("gpu_abisort_zorder", n),
            &input,
            |b, input| {
                b.iter(|| {
                    let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
                    GpuAbiSorter::new(SortConfig::z_order())
                        .sort_run(&mut proc, input)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
