//! The E21 accounting acceptance claim, enforced: batched cost accounting
//! plus zero-fill elision makes the sequential sorting path at least 1.5×
//! faster in host wall-clock time than the same binary's per-access
//! reference model with the default arena refill, with byte-identical
//! outputs, counters and simulated times (the identity assertions run
//! inside [`bench::wallclock::matrix_sequential`] itself).
//!
//! The floor is deliberately below the ≥2× *trajectory* improvement the
//! README's Performance table records against the PR-4 committed
//! `BENCH_WALL.json` point: the same-binary per-access reference already
//! benefits from this PR's shared access-path work (allocation-free block
//! sets, single-add locates, lazy cache resets), so it is a strictly
//! harder baseline than the engine the previous trajectory point measured.
//!
//! `#[ignore]`d in the debug tier-1 suite — wall-clock ratios are a
//! release-profile workload; CI runs it with
//! `cargo test --release -p bench --test accounting_acceptance -- --ignored`.

use bench::wallclock::{geometric_mean_speedup, matrix_sequential};

#[test]
#[ignore = "release-mode wall-clock workload (run explicitly, see ci.yml)"]
fn batched_accounting_is_at_least_1_5x_faster_than_per_access() {
    let rows = matrix_sequential();
    let speedup = geometric_mean_speedup(&rows);
    for r in &rows {
        eprintln!(
            "{:>24}: per-access {:.1} ms, batched {:.1} ms, {:.2}x",
            r.case, r.baseline_ms, r.current_ms, r.speedup
        );
    }
    assert!(
        speedup >= 1.5,
        "batched-accounting speedup {speedup:.2}x is below the 1.5x acceptance floor"
    );
}
