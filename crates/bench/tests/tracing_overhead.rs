//! Tracing-overhead acceptance: with the sink disabled, the instrumented
//! [`StreamProcessor::launch`] must cost within 5% of its hook-free twin
//! [`StreamProcessor::launch_untraced`] (the compiled-out control) on a
//! launch-overhead-dominated workload — i.e. disabled tracing is one
//! atomic branch, not a tax. With the sink enabled, the cost must stay
//! within a loose constant factor.
//!
//! Wall-clock and release-grade, so ignored by default; CI runs it
//! explicitly with `--release --ignored` (see the `obs` job).

use std::time::Instant;
use stream_arch::{GpuProfile, Layout, ReadView, Stream, StreamProcessor, TraceSink, WriteView};

/// Launches per timed trial. Small kernels, many launches: the regime
/// where per-launch overhead (and therefore the telemetry hook) is the
/// dominant cost.
const LAUNCHES: usize = 3000;
const INSTANCES: usize = 64;
const TRIALS: usize = 21;

/// One timed trial: `LAUNCHES` small kernel launches through `launch`
/// (`traced = true`) or `launch_untraced`.
fn trial(proc_: &mut StreamProcessor, input: &Stream<u32>, traced: bool) -> f64 {
    let n = INSTANCES;
    let mut output: Stream<u32> = Stream::new("out", n, Layout::Linear);
    let started = Instant::now();
    for _ in 0..LAUNCHES {
        let read = ReadView::contiguous(input, 0, n, 1).unwrap();
        let write = WriteView::contiguous(&mut output, 0, n, 1).unwrap();
        let kernel = |ctx: &mut stream_arch::KernelCtx<'_>| {
            let v = read.get(ctx, 0);
            write.set(ctx, 0, v.wrapping_mul(3).wrapping_add(1));
        };
        if traced {
            proc_.launch("overhead-probe", n, kernel).unwrap();
        } else {
            proc_.launch_untraced("overhead-probe", n, kernel).unwrap();
        }
    }
    started.elapsed().as_secs_f64()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

#[test]
#[ignore = "release-mode wall-clock workload (run explicitly, see ci.yml)"]
fn disabled_tracing_costs_less_than_five_percent() {
    let sink = TraceSink::global();
    sink.set_enabled(false);
    let mut proc_ = StreamProcessor::new(GpuProfile::idealized(4));
    let input = Stream::from_vec("in", (0u32..INSTANCES as u32).collect(), Layout::Linear);

    // Warm up both paths, then interleave the trials so slow drift in the
    // host (frequency scaling, a noisy neighbour) hits both arms equally.
    trial(&mut proc_, &input, true);
    trial(&mut proc_, &input, false);
    let mut traced = Vec::with_capacity(TRIALS);
    let mut control = Vec::with_capacity(TRIALS);
    for _ in 0..TRIALS {
        traced.push(trial(&mut proc_, &input, true));
        control.push(trial(&mut proc_, &input, false));
    }
    let (traced, control) = (median(traced), median(control));
    assert!(
        traced <= control * 1.05,
        "disabled tracing overhead exceeds 5%: traced {traced:.6}s vs control {control:.6}s \
         ({:.2}%)",
        100.0 * (traced / control - 1.0)
    );

    // Enabled tracing may pay for real work (timestamping, buffering) but
    // must stay within a loose constant factor on the same workload.
    sink.set_enabled(true);
    let mut enabled = Vec::with_capacity(TRIALS);
    for _ in 0..TRIALS {
        enabled.push(trial(&mut proc_, &input, true));
        // Drain per trial so the MAX_EVENTS cap never mutes the hook.
        sink.take_events();
    }
    sink.set_enabled(false);
    sink.take_events();
    let enabled = median(enabled);
    assert!(
        enabled <= control * 3.0,
        "enabled tracing is pathologically slow: {enabled:.6}s vs control {control:.6}s"
    );
}
