//! The E21 acceptance claim, enforced: the pooled execution engine is at
//! least 3× faster in host wall-clock time than the legacy per-launch
//! spawn engine on the conformance-scale matrix, with byte-identical
//! simulated results (the identity assertions run inside
//! [`bench::wallclock::matrix_parallel`] itself).
//!
//! `#[ignore]`d in the debug tier-1 suite — wall-clock ratios are a
//! release-profile workload; CI runs it with
//! `cargo test --release -p bench --test wallclock_acceptance -- --ignored`.

use bench::wallclock::{geometric_mean_speedup, matrix_parallel};

#[test]
#[ignore = "release-mode wall-clock workload (run explicitly, see ci.yml)"]
fn pooled_engine_is_at_least_3x_faster_than_spawn_per_launch() {
    let rows = matrix_parallel(14);
    let speedup = geometric_mean_speedup(&rows);
    for r in &rows {
        eprintln!(
            "{:>24}: spawn {:.1} ms, pooled {:.1} ms, {:.2}x",
            r.case, r.baseline_ms, r.current_ms, r.speedup
        );
    }
    assert!(
        speedup >= 3.0,
        "pooled engine speedup {speedup:.2}x is below the 3x acceptance floor"
    );
}
