//! The E20 acceptance claim, enforced: on a uniform 2²⁰-element job the
//! sharded route must deliver **≥ 2× the simulated throughput** of the
//! single-device submission at `device_slots = 4` on the peer link — the
//! headline the README and the BENCH_*.json trajectory state.
//!
//! The run sorts 2²⁰ elements through the simulator several times, which
//! is a release-mode workload (~minutes in debug), so the test is
//! `#[ignore]`d for the tier-1 debug suite and run explicitly by the CI
//! conformance job:
//!
//! ```bash
//! cargo test --release --test sharded_acceptance -- --ignored
//! ```

use bench::sharded::{sharded_mix_row, sharded_scaling};

#[test]
#[ignore = "release-mode acceptance run (sorts 2^20 elements repeatedly)"]
fn sharded_four_slots_doubles_simulated_throughput_at_one_million() {
    let rows = sharded_scaling(1 << 20);
    let row = |link: &str, slots: usize| {
        rows.iter()
            .find(|r| r.link == link && r.device_slots == slots)
            .unwrap_or_else(|| panic!("missing row {link}/{slots}"))
    };
    let four = row("peer", 4);
    assert_eq!(four.engine, "sharded-gpu");
    assert!(
        four.speedup >= 2.0,
        "acceptance: ≥2x at 4 slots on the peer link, got {:.2}x ({:.2} ms vs {:.2} ms single)",
        four.speedup,
        four.duration_ms,
        row("peer", 1).duration_ms
    );
    // Scaling is monotone in the slot count on both links.
    for link in ["peer", "host-staged"] {
        let mut last = 0.0;
        for slots in [1usize, 2, 4, 8] {
            let r = row(link, slots);
            assert!(
                r.speedup >= last,
                "{link}: speedup regressed at {slots} slots"
            );
            last = r.speedup;
        }
    }
}

#[test]
#[ignore = "release-mode acceptance run (serves sharded-scale jobs)"]
fn large_job_heavy_mix_shards_and_completes_everything() {
    let row = sharded_mix_row(10);
    assert_eq!(row.completed + row.rejected, row.jobs);
    assert_eq!(row.rejected, 0, "the default bounds must admit the mix");
    assert!(
        row.sharded_jobs >= 1,
        "the large jobs must take the sharded route (got mix {}/{}/{}/{})",
        row.cpu_jobs,
        row.gpu_jobs,
        row.sharded_jobs,
        row.tera_jobs
    );
    assert!(row.cpu_jobs + row.gpu_jobs > 0, "small jobs stay unsharded");
}
