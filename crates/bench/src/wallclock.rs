//! E21 — the wall-clock harness for the persistent execution engine.
//!
//! Everything else in this crate reports *simulated* time; this module
//! times the **host wall clock**, because the engine work the pooled
//! executor and the stream arena do (thread reuse instead of per-launch
//! spawns, buffer recycling instead of per-run mallocs) is invisible to
//! the cost model by design — results, counters and simulated times are
//! byte-identical either way, which every scenario here re-asserts while
//! it measures.
//!
//! Four scenarios, each reporting `baseline_ms` (the reference engine)
//! against `current_ms`:
//!
//! * **matrix-parallel** — the conformance-scale size × distribution
//!   matrix sorted in host-parallel mode: [`ExecMode::SpawnParallel`]
//!   (one `std::thread::scope` spawn per unit per launch — the legacy
//!   engine) versus the pooled [`ExecMode::Parallel`]. This is where the
//!   ≥ 3× acceptance claim lives: an adaptive bitonic sort issues
//!   O(log² n) *cheap* launches, so per-launch thread spawns dominate the
//!   host time and the pool removes them.
//! * **matrix-sequential** — a service-shaped stream of many small sorts
//!   on one sequential processor: the reference cost model
//!   ([`AccountingMode::PerAccess`] with the default refill on every
//!   arena take) versus the batched accounting plus zero-fill elision.
//!   This is where the accounting acceptance claim lives (≥ 1.5× against
//!   the same-binary reference, which already includes this PR's shared
//!   access-path improvements; ≥ 2× as a trajectory point against the
//!   engine the previous committed `BENCH_WALL.json` measured): the
//!   sequential path is dominated by per-access accounting, and the
//!   batched path charges whole cache-tile runs with one probe.
//! * **service-e19** — the E19 batched-service scenario end to end,
//!   reference engine (per-access accounting, no pooling, no elision —
//!   flipped via the process-wide defaults, since the service builds its
//!   slot processors internally) versus the current engine.
//! * **sharded-e20** — one sharded multi-device sort (E20 shape),
//!   reference engine versus current engine likewise.
//!
//! `repro --scenario wallclock --json BENCH_WALL.json` emits the rows as
//! the `wallclock` section of the report — the perf-trajectory file the
//! CI regression gate (`repro --scenario wallclock --check-baseline`)
//! compares every future run against.

use abisort::{GpuAbiSorter, SortConfig};
use serde::Serialize;
use sortsvc::{ServiceConfig, ShardedSorter, SortJob, SortService};
use std::time::Instant;
use stream_arch::{
    arena, executor, AccountingMode, ExecMode, GpuProfile, PlanMode, StreamProcessor,
};
use workloads::{Distribution, RequestMix};

/// One wall-clock comparison row.
#[derive(Clone, Debug, Serialize)]
pub struct WallClockRow {
    /// Scenario id (`matrix-parallel`, `matrix-sequential`, `service-e19`,
    /// `sharded-e20`).
    pub scenario: String,
    /// Case label within the scenario (size, distribution, job count …).
    pub case: String,
    /// Elements processed by one measured run.
    pub elements: usize,
    /// Host wall-clock time of the baseline engine (ms).
    pub baseline_ms: f64,
    /// Host wall-clock time of the current engine (ms).
    pub current_ms: f64,
    /// `baseline_ms / current_ms`.
    pub speedup: f64,
    /// Simulated time of the measured work (identical under both engines;
    /// 0 where the scenario has no single simulated duration).
    pub sim_ms: f64,
}

fn row(
    scenario: &str,
    case: String,
    elements: usize,
    baseline_ms: f64,
    current_ms: f64,
    sim_ms: f64,
) -> WallClockRow {
    WallClockRow {
        scenario: scenario.into(),
        case,
        elements,
        baseline_ms,
        current_ms,
        speedup: if current_ms > 0.0 {
            baseline_ms / current_ms
        } else {
            0.0
        },
        sim_ms,
    }
}

/// Milliseconds of wall clock spent in `f`.
fn time_ms<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let started = Instant::now();
    let r = f();
    (started.elapsed().as_secs_f64() * 1e3, r)
}

/// Minimum wall clock over `reps` runs of `f`, with the last run's result.
///
/// A single timed run on a loaded (or single-core CI) host carries enough
/// scheduler noise to swing an engine ratio severalfold; the minimum over
/// a few repetitions is the standard robust estimator of the undisturbed
/// cost, and it keeps the committed baseline rows stable enough for the
/// 25%-tolerance regression gate. The work is deterministic, so every
/// repetition produces the identical result the identity assertions
/// compare.
fn time_ms_best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let (mut best, mut result) = time_ms(&mut f);
    for _ in 1..reps.max(1) {
        let (ms, r) = time_ms(&mut f);
        if ms < best {
            best = ms;
        }
        result = r;
    }
    (best, result)
}

/// The distributions of the conformance matrix that exercise distinct
/// comparison/branch behaviour (a subset keeps release runtime sane).
fn matrix_distributions() -> Vec<Distribution> {
    vec![
        Distribution::Uniform,
        Distribution::Sorted,
        Distribution::FewDistinct { distinct: 16 },
    ]
}

/// The pooled-versus-spawn engine matrix (the acceptance scenario).
///
/// Every cell sorts the same input under both parallel engines and
/// asserts byte-identical output, counters (including per-unit cache
/// statistics) and simulated time before reporting the wall-clock ratio.
pub fn matrix_parallel(max_log_n: u32) -> Vec<WallClockRow> {
    let sorter = GpuAbiSorter::new(SortConfig::default());
    let mut rows = Vec::new();
    let top = max_log_n.clamp(10, 16);
    let sizes: Vec<usize> = (10..=top).step_by(2).map(|log| 1usize << log).collect();
    for &n in &sizes {
        for dist in matrix_distributions() {
            let input = workloads::generate(dist, n, 2006 + n as u64);

            let mut pooled =
                StreamProcessor::with_mode(GpuProfile::geforce_7800(), ExecMode::Parallel);
            pooled.set_plan_mode(PlanMode::Staged);
            // Force pool creation outside the measurement: the unit
            // threads are a one-time cost a long-lived processor has
            // already paid. Warm the plan cache likewise: a long-lived
            // sorter records each problem shape once.
            pooled.launch("warmup", 1, |_ctx| {}).expect("warmup");
            sorter.sort_run(&mut pooled, &input).expect("plan warmup");
            let (pooled_ms, pooled_run) =
                time_ms_best_of(5, || sorter.sort_run(&mut pooled, &input));
            let pooled_run = pooled_run.expect("pooled sort failed");

            let mut spawn =
                StreamProcessor::with_mode(GpuProfile::geforce_7800(), ExecMode::SpawnParallel);
            spawn.set_plan_mode(PlanMode::Eager);
            let (spawn_ms, spawn_run) = time_ms_best_of(3, || sorter.sort_run(&mut spawn, &input));
            let spawn_run = spawn_run.expect("spawn sort failed");

            // Live byte-identity check: the engines (including staged
            // versus eager plan interpretation) must be indistinguishable
            // in everything but wall-clock time.
            assert_eq!(pooled_run.output, spawn_run.output, "output diverged");
            assert_eq!(pooled_run.counters, spawn_run.counters, "counters diverged");
            assert_eq!(
                pooled_run.sim_time.total_ms, spawn_run.sim_time.total_ms,
                "simulated time diverged"
            );

            rows.push(row(
                "matrix-parallel",
                format!("n={n} {}", dist.name()),
                n,
                spawn_ms,
                pooled_ms,
                pooled_run.sim_time.total_ms,
            ));
        }
    }
    rows
}

/// The accounting matrix: many sequential sorts on one pooled processor —
/// the reference per-access cost model with the default arena refill
/// versus the batched accounting with zero-fill elision.
///
/// Every cell runs the identical job stream under both engines and
/// asserts byte-identical outputs, counters (including cache statistics)
/// and simulated times before reporting the wall-clock ratio; this is the
/// E21 live-identity check for the accounting tentpole.
pub fn matrix_sequential() -> Vec<WallClockRow> {
    matrix_sequential_cases(&[(256usize, 400usize), (1024, 200), (4096, 60), (16384, 20)])
}

/// [`matrix_sequential`] over explicit `(n, jobs)` cases (the debug smoke
/// tests run a tiny matrix; the identity assertions are the payload).
pub fn matrix_sequential_cases(cases: &[(usize, usize)]) -> Vec<WallClockRow> {
    let sorter = GpuAbiSorter::new(SortConfig::default());
    let mut rows = Vec::new();
    for &(n, jobs) in cases {
        let inputs: Vec<Vec<stream_arch::Value>> =
            (0..jobs).map(|j| workloads::uniform(n, j as u64)).collect();
        let run_all = |proc: &mut StreamProcessor| {
            let mut sim_ms = 0.0;
            let mut outputs = Vec::with_capacity(inputs.len());
            let mut counters = stream_arch::Counters::new();
            for input in &inputs {
                let run = sorter.sort_run(proc, input).expect("sort failed");
                sim_ms += run.sim_time.total_ms;
                counters += &run.counters;
                outputs.push(run.output);
            }
            (sim_ms, outputs, counters)
        };

        // One untimed pass per configuration: first-touch page faults on
        // the fresh inputs and the arena's initial allocations are
        // one-time costs; the service regime being measured is the steady
        // state. The two engines are then timed in interleaved
        // repetitions, so slow host-load drift hits both sides of the
        // ratio alike instead of whichever engine happened to run later.
        let mut batched = StreamProcessor::new(GpuProfile::geforce_7800());
        batched.set_accounting_mode(AccountingMode::Batched);
        batched.set_plan_mode(PlanMode::Staged);
        batched.arena().set_enabled(true);
        batched.arena().set_elision(true);
        run_all(&mut batched);

        let mut reference = StreamProcessor::new(GpuProfile::geforce_7800());
        reference.set_accounting_mode(AccountingMode::PerAccess);
        reference.set_plan_mode(PlanMode::Eager);
        reference.arena().set_enabled(true);
        reference.arena().set_elision(false);
        run_all(&mut reference);

        let mut current_ms = f64::INFINITY;
        let mut baseline_ms = f64::INFINITY;
        let mut on = None;
        let mut off = None;
        for _ in 0..5 {
            let (c, r_on) = time_ms(|| run_all(&mut batched));
            current_ms = current_ms.min(c);
            on = Some(r_on);
            let (b, r_off) = time_ms(|| run_all(&mut reference));
            baseline_ms = baseline_ms.min(b);
            off = Some(r_off);
        }
        let (sim_on, out_on, counters_on) = on.expect("at least one repetition");
        let (sim_off, out_off, counters_off) = off.expect("at least one repetition");

        // Live byte-identity: the engines must be indistinguishable in
        // everything but wall-clock time.
        assert_eq!(out_on, out_off, "batched accounting changed outputs");
        assert_eq!(
            counters_on, counters_off,
            "batched accounting changed counters"
        );
        assert_eq!(sim_on, sim_off, "batched accounting changed simulated time");
        rows.push(row(
            "matrix-sequential",
            format!("{jobs} sorts of n={n}"),
            n * jobs,
            baseline_ms,
            current_ms,
            sim_on,
        ));
    }
    rows
}

/// Run `f` under the full **reference engine** process defaults —
/// per-access accounting, no buffer pooling, no zero-fill elision, eager
/// per-run planning — and restore the current-engine defaults (batched,
/// pooled, eliding, staged plans) afterwards. The process-wide knobs exist
/// exactly for these scenarios: the service and the sharded sorter
/// construct their slot processors internally, so the engine generation
/// cannot be threaded through as a parameter.
fn under_reference_engine<R>(f: impl FnOnce() -> R) -> R {
    stream_arch::kernel::set_accounting_default(AccountingMode::PerAccess);
    arena::set_pooling_default(false);
    arena::set_elision_default(false);
    executor::set_plan_mode_default(PlanMode::Eager);
    let r = f();
    stream_arch::kernel::set_accounting_default(AccountingMode::Batched);
    arena::set_pooling_default(true);
    arena::set_elision_default(true);
    executor::set_plan_mode_default(PlanMode::Staged);
    r
}

/// E19 (batched sorting service) timed end to end, reference engine
/// (per-access accounting, no pooling, no elision) versus the current
/// engine; results are asserted identical either way.
pub fn service_e19(jobs: usize) -> Vec<WallClockRow> {
    let mix = RequestMix::small_job_heavy(jobs);
    let run_once = || {
        let service = SortService::new(ServiceConfig::default());
        let jobs = SortJob::from_requests(mix.generate(crate::service::SCENARIO_SEED));
        let elements: usize = jobs.iter().map(SortJob::len).sum();
        let report = service.process(jobs).expect("service run failed");
        (
            elements,
            report.metrics.jobs_completed,
            report.metrics.throughput_kelems_per_s,
        )
    };

    // Interleaved repetitions (see `matrix_sequential_cases`): slow host
    // drift cancels in the ratio.
    under_reference_engine(run_once); // untimed warm-up
    run_once();
    let mut baseline_ms = f64::INFINITY;
    let mut current_ms = f64::INFINITY;
    let mut off = None;
    let mut on = None;
    for _ in 0..5 {
        let (b, r_off) = under_reference_engine(|| time_ms(run_once));
        baseline_ms = baseline_ms.min(b);
        off = Some(r_off);
        let (c, r_on) = time_ms(run_once);
        current_ms = current_ms.min(c);
        on = Some(r_on);
    }
    let (off, on) = (off.expect("reps > 0"), on.expect("reps > 0"));
    assert_eq!(on, off, "the engine generation changed service metrics");

    vec![row(
        "service-e19",
        format!("{jobs} jobs small-job-heavy"),
        on.0,
        baseline_ms,
        current_ms,
        0.0,
    )]
}

/// E20 (sharded multi-device sort) timed, reference engine versus the
/// current engine (see [`service_e19`]).
pub fn sharded_e20(n: usize) -> Vec<WallClockRow> {
    let input = workloads::uniform(n, 42);
    let sharder = ShardedSorter::default();
    let run_once = || {
        let mut pool: Vec<StreamProcessor> = (0..4)
            .map(|_| StreamProcessor::new(GpuProfile::geforce_7800()))
            .collect();
        let run = sharder.sort_run(&mut pool, &input).expect("sharded sort");
        (run.output, run.sim_ms)
    };

    // Interleaved repetitions (see `matrix_sequential_cases`): slow host
    // drift cancels in the ratio.
    under_reference_engine(run_once); // untimed warm-up
    run_once();
    let mut baseline_ms = f64::INFINITY;
    let mut current_ms = f64::INFINITY;
    let mut off = None;
    let mut on = None;
    for _ in 0..3 {
        let (b, r_off) = under_reference_engine(|| time_ms(run_once));
        baseline_ms = baseline_ms.min(b);
        off = Some(r_off);
        let (c, r_on) = time_ms(run_once);
        current_ms = current_ms.min(c);
        on = Some(r_on);
    }
    let (out_off, sim_off) = off.expect("reps > 0");
    let (out_on, sim_on) = on.expect("reps > 0");
    assert_eq!(
        out_on, out_off,
        "the engine generation changed sharded output"
    );
    assert_eq!(
        sim_on, sim_off,
        "the engine generation changed sharded simulated time"
    );

    vec![row(
        "sharded-e20",
        format!("n={n} over 4 slots"),
        n,
        baseline_ms,
        current_ms,
        sim_on,
    )]
}

/// The full E21 suite (what `repro --scenario wallclock` runs).
pub fn wallclock_suite(max_log_n: u32) -> Vec<WallClockRow> {
    let mut rows = matrix_parallel(max_log_n);
    rows.extend(matrix_sequential());
    rows.extend(service_e19(if max_log_n >= 18 { 300 } else { 120 }));
    rows.extend(sharded_e20(1usize << max_log_n.clamp(14, 19)));
    rows
}

/// Geometric-mean speedup of the given rows (the acceptance aggregate of
/// the matrix scenarios).
pub fn geometric_mean_speedup(rows: &[WallClockRow]) -> f64 {
    let positive: Vec<f64> = rows
        .iter()
        .map(|r| r.speedup)
        .filter(|&s| s > 0.0)
        .collect();
    if positive.is_empty() {
        return 0.0;
    }
    (positive.iter().map(|s| s.ln()).sum::<f64>() / positive.len() as f64).exp()
}

/// Render the wall-clock rows as a report table.
pub fn render_wallclock(rows: &[WallClockRow]) -> String {
    let mut out = String::from(
        "E21 — wall-clock: pooled kernel workers + stream arenas vs the per-launch engine\n",
    );
    out.push_str(&format!(
        "{:>18} | {:>26} | {:>13} | {:>12} | {:>8} | {:>10}\n",
        "scenario", "case", "baseline [ms]", "current [ms]", "speedup", "sim [ms]"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>18} | {:>26} | {:>13.1} | {:>12.1} | {:>7.2}x | {:>10.2}\n",
            r.scenario, r.case, r.baseline_ms, r.current_ms, r.speedup, r.sim_ms
        ));
    }
    let matrix: Vec<WallClockRow> = rows
        .iter()
        .filter(|r| r.scenario == "matrix-parallel")
        .cloned()
        .collect();
    if !matrix.is_empty() {
        out.push_str(&format!(
            "matrix-parallel geometric-mean speedup: {:.2}x (acceptance floor: 3x)\n",
            geometric_mean_speedup(&matrix)
        ));
    }
    let sequential: Vec<WallClockRow> = rows
        .iter()
        .filter(|r| r.scenario == "matrix-sequential")
        .cloned()
        .collect();
    if !sequential.is_empty() {
        out.push_str(&format!(
            "matrix-sequential geometric-mean speedup: {:.2}x (acceptance floor: 1.5x \
             same-binary; trajectory vs the previous committed point: see README)\n",
            geometric_mean_speedup(&sequential)
        ));
    }
    out
}

// --- The perf-regression gate ----------------------------------------------

/// One `(scenario, case)` comparison of the wall-clock regression gate.
#[derive(Clone, Debug, Serialize)]
pub struct BaselineCheck {
    /// Scenario id of the compared row.
    pub scenario: String,
    /// Case label of the compared row.
    pub case: String,
    /// Speedup recorded in the committed baseline.
    pub baseline_speedup: f64,
    /// Speedup measured by this run.
    pub current_speedup: f64,
    /// The lowest speedup this run may show before the gate fails
    /// (`baseline · (1 − tolerance)`).
    pub floor: f64,
    /// Whether this row passed.
    pub ok: bool,
}

/// The logical cores the committed baseline was measured on, from its
/// `host` header (absent in pre-header baselines).
///
/// Engine-vs-engine speedups are only band-comparable on the same host
/// class — the parallel matrix in particular measures thread-spawn
/// serialization, which scales with the core count — so the gate's
/// caller enforces the tolerance only when this matches the current
/// host and downgrades to an advisory report otherwise (the absolute
/// acceptance floors still gate unconditionally).
pub fn baseline_host_cores(baseline_json: &str) -> Option<usize> {
    let doc = serde_json::from_str(baseline_json).ok()?;
    let cores = doc.get("host")?.get("cores")?.as_f64()?;
    (cores > 0.0).then_some(cores as usize)
}

/// Compare freshly measured wall-clock rows against a committed
/// `BENCH_WALL.json` baseline: every baseline row must be present in the
/// current run (same scenario and case — run the gate with the flags the
/// baseline was produced with) and must not have lost more than
/// `tolerance` (a fraction, e.g. `0.25`) of its speedup.
///
/// Returns one [`BaselineCheck`] per baseline row, or an error when the
/// baseline cannot be parsed or a row disappeared. Wall-clock ratios are
/// noisy in absolute terms, but the *ratio of two engines measured in the
/// same process* is stable enough that a 25% band holds comfortably on
/// the baseline's machine class; see [`baseline_host_cores`] for the
/// host-class guard the caller applies.
pub fn check_against_baseline(
    current: &[WallClockRow],
    baseline_json: &str,
    tolerance: f64,
) -> Result<Vec<BaselineCheck>, String> {
    let doc = serde_json::from_str(baseline_json).map_err(|e| format!("bad baseline: {e}"))?;
    let rows = doc
        .get("wallclock")
        .and_then(|w| w.as_array())
        .ok_or_else(|| "baseline has no `wallclock` rows".to_string())?;
    if rows.is_empty() {
        return Err("baseline `wallclock` section is empty".to_string());
    }
    let mut checks = Vec::with_capacity(rows.len());
    for row in rows {
        let field = |name: &str| -> Result<&serde_json::Value, String> {
            row.get(name)
                .ok_or_else(|| format!("baseline row is missing `{name}`"))
        };
        let scenario = field("scenario")?
            .as_str()
            .ok_or("`scenario` is not a string")?
            .to_string();
        let case = field("case")?
            .as_str()
            .ok_or("`case` is not a string")?
            .to_string();
        let baseline_speedup = field("speedup")?
            .as_f64()
            .ok_or("`speedup` is not a number")?;
        let fresh = current
            .iter()
            .find(|r| r.scenario == scenario && r.case == case)
            .ok_or_else(|| {
                format!(
                    "baseline row `{scenario} / {case}` was not produced by this run \
                     (run the gate with the same flags the baseline used)"
                )
            })?;
        let floor = baseline_speedup * (1.0 - tolerance);
        checks.push(BaselineCheck {
            scenario,
            case,
            baseline_speedup,
            current_speedup: fresh.speedup,
            floor,
            ok: fresh.speedup >= floor,
        });
    }
    Ok(checks)
}

/// Render the gate's verdict as a report table.
pub fn render_baseline_checks(checks: &[BaselineCheck], tolerance: f64) -> String {
    let mut out = format!(
        "E21 regression gate — speedup vs committed baseline (tolerance {:.0}%)\n",
        tolerance * 100.0
    );
    out.push_str(&format!(
        "{:>18} | {:>26} | {:>8} | {:>8} | {:>8} | {}\n",
        "scenario", "case", "baseline", "current", "floor", "verdict"
    ));
    for c in checks {
        out.push_str(&format!(
            "{:>18} | {:>26} | {:>7.2}x | {:>7.2}x | {:>7.2}x | {}\n",
            c.scenario,
            c.case,
            c.baseline_speedup,
            c.current_speedup,
            c.floor,
            if c.ok { "ok" } else { "REGRESSED" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_parallel_rows_are_identity_checked_and_positive() {
        // Debug-mode smoke on the smallest matrix: the identity assertions
        // inside matrix_parallel are the real payload of this test.
        let rows = matrix_parallel(10);
        assert_eq!(rows.len(), matrix_distributions().len());
        for r in &rows {
            assert!(r.baseline_ms > 0.0 && r.current_ms > 0.0);
            assert!(r.sim_ms > 0.0);
        }
    }

    #[test]
    fn matrix_sequential_rows_are_identity_checked_and_positive() {
        // Debug-mode smoke on a tiny matrix: the byte-identity assertions
        // (per-access + refill vs batched + elision) inside
        // matrix_sequential_cases are the real payload of this test.
        let rows = matrix_sequential_cases(&[(256, 6), (1024, 2)]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.baseline_ms > 0.0 && r.current_ms > 0.0);
            assert!(r.sim_ms > 0.0);
        }
    }

    #[test]
    fn geometric_mean_is_the_geometric_mean() {
        let rows = vec![
            super::row("s", "a".into(), 1, 8.0, 2.0, 0.0), // 4x
            super::row("s", "b".into(), 1, 1.0, 1.0, 0.0), // 1x
        ];
        assert!((geometric_mean_speedup(&rows) - 2.0).abs() < 1e-12);
    }

    /// A baseline document in the exact shape `repro --json` commits.
    fn baseline_doc(rows: &[WallClockRow]) -> String {
        let report = crate::Report {
            wallclock: rows.to_vec(),
            ..Default::default()
        };
        report.to_json()
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond_it() {
        let baseline = vec![
            super::row("matrix-sequential", "a".into(), 1, 10.0, 2.5, 0.0), // 4x
            super::row("matrix-parallel", "b".into(), 1, 12.0, 1.0, 0.0),   // 12x
        ];
        let doc = baseline_doc(&baseline);
        // Current run: first row dropped to 3.2x (within 25% of 4x),
        // second dropped to 8x (beyond 25% of 12x → floor 9x).
        let current = vec![
            super::row("matrix-sequential", "a".into(), 1, 8.0, 2.5, 0.0),
            super::row("matrix-parallel", "b".into(), 1, 8.0, 1.0, 0.0),
        ];
        let checks = check_against_baseline(&current, &doc, 0.25).unwrap();
        assert_eq!(checks.len(), 2);
        let seq = checks
            .iter()
            .find(|c| c.scenario == "matrix-sequential")
            .unwrap();
        let par = checks
            .iter()
            .find(|c| c.scenario == "matrix-parallel")
            .unwrap();
        assert!(seq.ok, "3.2x against a 3x floor must pass: {seq:?}");
        assert!(!par.ok, "8x against a 9x floor must fail: {par:?}");
        assert!(render_baseline_checks(&checks, 0.25).contains("REGRESSED"));
    }

    #[test]
    fn baseline_host_cores_reads_the_header() {
        let with_host = crate::Report {
            host: crate::HostInfo {
                cores: 4,
                ..Default::default()
            },
            ..Default::default()
        };
        assert_eq!(baseline_host_cores(&with_host.to_json()), Some(4));
        // A zero/absent host header means "unknown class" (pre-header
        // baselines serialize cores: 0 via Default).
        let without = crate::Report::default();
        assert_eq!(baseline_host_cores(&without.to_json()), None);
        assert_eq!(baseline_host_cores("{}"), None);
        assert_eq!(baseline_host_cores("not json"), None);
    }

    #[test]
    fn gate_rejects_missing_rows_and_bad_baselines() {
        let baseline = vec![super::row(
            "matrix-sequential",
            "a".into(),
            1,
            10.0,
            2.5,
            0.0,
        )];
        let doc = baseline_doc(&baseline);
        // The row the baseline expects is absent from the current run.
        let err = check_against_baseline(&[], &doc, 0.25).unwrap_err();
        assert!(err.contains("was not produced"), "{err}");
        // Unparseable / shapeless baselines are errors, not passes.
        assert!(check_against_baseline(&[], "{not json", 0.25).is_err());
        assert!(check_against_baseline(&[], "{}", 0.25).is_err());
        let empty = baseline_doc(&[]);
        assert!(check_against_baseline(&[], &empty, 0.25).is_err());
    }
}
