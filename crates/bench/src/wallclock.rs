//! E21 — the wall-clock harness for the persistent execution engine.
//!
//! Everything else in this crate reports *simulated* time; this module
//! times the **host wall clock**, because the engine work the pooled
//! executor and the stream arena do (thread reuse instead of per-launch
//! spawns, buffer recycling instead of per-run mallocs) is invisible to
//! the cost model by design — results, counters and simulated times are
//! byte-identical either way, which every scenario here re-asserts while
//! it measures.
//!
//! Four scenarios, each reporting `baseline_ms` (the pre-pool /
//! pre-arena engine) against `current_ms`:
//!
//! * **matrix-parallel** — the conformance-scale size × distribution
//!   matrix sorted in host-parallel mode: [`ExecMode::SpawnParallel`]
//!   (one `std::thread::scope` spawn per unit per launch — the legacy
//!   engine) versus the pooled [`ExecMode::Parallel`]. This is where the
//!   ≥ 3× acceptance claim lives: an adaptive bitonic sort issues
//!   O(log² n) *cheap* launches, so per-launch thread spawns dominate the
//!   host time and the pool removes them.
//! * **matrix-sequential** — a service-shaped stream of many small sorts
//!   on one sequential processor, arena pooling off versus on: the
//!   allocator-churn half of the engine.
//! * **service-e19** — the E19 batched-service scenario end to end, arena
//!   off versus on.
//! * **sharded-e20** — one sharded multi-device sort (E20 shape), arena
//!   off versus on.
//!
//! `repro --scenario wallclock --json BENCH_WALL.json` emits the rows as
//! the `wallclock` section of the report — the perf-trajectory file this
//! PR seeds.

use abisort::{GpuAbiSorter, SortConfig};
use serde::Serialize;
use sortsvc::{ServiceConfig, ShardedSorter, SortJob, SortService};
use std::time::Instant;
use stream_arch::{arena, ExecMode, GpuProfile, StreamProcessor};
use workloads::{Distribution, RequestMix};

/// One wall-clock comparison row.
#[derive(Clone, Debug, Serialize)]
pub struct WallClockRow {
    /// Scenario id (`matrix-parallel`, `matrix-sequential`, `service-e19`,
    /// `sharded-e20`).
    pub scenario: String,
    /// Case label within the scenario (size, distribution, job count …).
    pub case: String,
    /// Elements processed by one measured run.
    pub elements: usize,
    /// Host wall-clock time of the baseline engine (ms).
    pub baseline_ms: f64,
    /// Host wall-clock time of the current engine (ms).
    pub current_ms: f64,
    /// `baseline_ms / current_ms`.
    pub speedup: f64,
    /// Simulated time of the measured work (identical under both engines;
    /// 0 where the scenario has no single simulated duration).
    pub sim_ms: f64,
}

fn row(
    scenario: &str,
    case: String,
    elements: usize,
    baseline_ms: f64,
    current_ms: f64,
    sim_ms: f64,
) -> WallClockRow {
    WallClockRow {
        scenario: scenario.into(),
        case,
        elements,
        baseline_ms,
        current_ms,
        speedup: if current_ms > 0.0 {
            baseline_ms / current_ms
        } else {
            0.0
        },
        sim_ms,
    }
}

/// Milliseconds of wall clock spent in `f`.
fn time_ms<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let started = Instant::now();
    let r = f();
    (started.elapsed().as_secs_f64() * 1e3, r)
}

/// The distributions of the conformance matrix that exercise distinct
/// comparison/branch behaviour (a subset keeps release runtime sane).
fn matrix_distributions() -> Vec<Distribution> {
    vec![
        Distribution::Uniform,
        Distribution::Sorted,
        Distribution::FewDistinct { distinct: 16 },
    ]
}

/// The pooled-versus-spawn engine matrix (the acceptance scenario).
///
/// Every cell sorts the same input under both parallel engines and
/// asserts byte-identical output, counters (including per-unit cache
/// statistics) and simulated time before reporting the wall-clock ratio.
pub fn matrix_parallel(max_log_n: u32) -> Vec<WallClockRow> {
    let sorter = GpuAbiSorter::new(SortConfig::default());
    let mut rows = Vec::new();
    let top = max_log_n.clamp(10, 16);
    let sizes: Vec<usize> = (10..=top).step_by(2).map(|log| 1usize << log).collect();
    for &n in &sizes {
        for dist in matrix_distributions() {
            let input = workloads::generate(dist, n, 2006 + n as u64);

            let mut pooled =
                StreamProcessor::with_mode(GpuProfile::geforce_7800(), ExecMode::Parallel);
            // Force pool creation outside the measurement: the unit
            // threads are a one-time cost a long-lived processor has
            // already paid.
            pooled.launch("warmup", 1, |_ctx| {}).expect("warmup");
            let (pooled_ms, pooled_run) = time_ms(|| sorter.sort_run(&mut pooled, &input));
            let pooled_run = pooled_run.expect("pooled sort failed");

            let mut spawn =
                StreamProcessor::with_mode(GpuProfile::geforce_7800(), ExecMode::SpawnParallel);
            let (spawn_ms, spawn_run) = time_ms(|| sorter.sort_run(&mut spawn, &input));
            let spawn_run = spawn_run.expect("spawn sort failed");

            // Live byte-identity check: the engines must be
            // indistinguishable in everything but wall-clock time.
            assert_eq!(pooled_run.output, spawn_run.output, "output diverged");
            assert_eq!(pooled_run.counters, spawn_run.counters, "counters diverged");
            assert_eq!(
                pooled_run.sim_time.total_ms, spawn_run.sim_time.total_ms,
                "simulated time diverged"
            );

            rows.push(row(
                "matrix-parallel",
                format!("n={n} {}", dist.name()),
                n,
                spawn_ms,
                pooled_ms,
                pooled_run.sim_time.total_ms,
            ));
        }
    }
    rows
}

/// The arena on/off matrix: many small sequential sorts on one pooled
/// processor — the allocation pattern of a service slot worker.
pub fn matrix_sequential() -> Vec<WallClockRow> {
    let sorter = GpuAbiSorter::new(SortConfig::default());
    let mut rows = Vec::new();
    for (n, jobs) in [(256usize, 400usize), (1024, 200), (4096, 60)] {
        let inputs: Vec<Vec<stream_arch::Value>> =
            (0..jobs).map(|j| workloads::uniform(n, j as u64)).collect();
        let run_all = |proc: &mut StreamProcessor| {
            let mut sim_ms = 0.0;
            for input in &inputs {
                let run = sorter.sort_run(proc, input).expect("sort failed");
                sim_ms += run.sim_time.total_ms;
            }
            sim_ms
        };

        // One untimed pass per configuration: first-touch page faults on
        // the fresh inputs and the arena's initial allocations are
        // one-time costs; the service regime being measured is the steady
        // state.
        let mut with_arena = StreamProcessor::new(GpuProfile::geforce_7800());
        with_arena.arena().set_enabled(true);
        run_all(&mut with_arena);
        let (current_ms, sim_on) = time_ms(|| run_all(&mut with_arena));

        let mut without_arena = StreamProcessor::new(GpuProfile::geforce_7800());
        without_arena.arena().set_enabled(false);
        run_all(&mut without_arena);
        let (baseline_ms, sim_off) = time_ms(|| run_all(&mut without_arena));

        assert_eq!(sim_on, sim_off, "arena changed simulated time");
        rows.push(row(
            "matrix-sequential",
            format!("{jobs} sorts of n={n}"),
            n * jobs,
            baseline_ms,
            current_ms,
            sim_on,
        ));
    }
    rows
}

/// E19 (batched sorting service) timed end to end, arena off versus on.
///
/// The arena switch is the process-wide default because the service
/// constructs its slot processors internally; results are asserted
/// identical either way.
pub fn service_e19(jobs: usize) -> Vec<WallClockRow> {
    let mix = RequestMix::small_job_heavy(jobs);
    let run_once = || {
        let service = SortService::new(ServiceConfig::default());
        let jobs = SortJob::from_requests(mix.generate(crate::service::SCENARIO_SEED));
        let elements: usize = jobs.iter().map(SortJob::len).sum();
        let report = service.process(jobs).expect("service run failed");
        (
            elements,
            report.metrics.jobs_completed,
            report.metrics.throughput_kelems_per_s,
        )
    };

    arena::set_pooling_default(false);
    run_once(); // untimed warm-up (first-touch faults)
    let (baseline_ms, off) = time_ms(run_once);
    arena::set_pooling_default(true);
    run_once();
    let (current_ms, on) = time_ms(run_once);
    assert_eq!(on, off, "arena changed service metrics");

    vec![row(
        "service-e19",
        format!("{jobs} jobs small-job-heavy"),
        on.0,
        baseline_ms,
        current_ms,
        0.0,
    )]
}

/// E20 (sharded multi-device sort) timed, arena off versus on.
pub fn sharded_e20(n: usize) -> Vec<WallClockRow> {
    let input = workloads::uniform(n, 42);
    let sharder = ShardedSorter::default();
    let run_once = || {
        let mut pool: Vec<StreamProcessor> = (0..4)
            .map(|_| StreamProcessor::new(GpuProfile::geforce_7800()))
            .collect();
        let run = sharder.sort_run(&mut pool, &input).expect("sharded sort");
        (run.output, run.sim_ms)
    };

    arena::set_pooling_default(false);
    run_once(); // untimed warm-up (first-touch faults)
    let (baseline_ms, (out_off, sim_off)) = time_ms(run_once);
    arena::set_pooling_default(true);
    run_once();
    let (current_ms, (out_on, sim_on)) = time_ms(run_once);
    assert_eq!(out_on, out_off, "arena changed sharded output");
    assert_eq!(sim_on, sim_off, "arena changed sharded simulated time");

    vec![row(
        "sharded-e20",
        format!("n={n} over 4 slots"),
        n,
        baseline_ms,
        current_ms,
        sim_on,
    )]
}

/// The full E21 suite (what `repro --scenario wallclock` runs).
pub fn wallclock_suite(max_log_n: u32) -> Vec<WallClockRow> {
    let mut rows = matrix_parallel(max_log_n);
    rows.extend(matrix_sequential());
    rows.extend(service_e19(if max_log_n >= 18 { 300 } else { 120 }));
    rows.extend(sharded_e20(1usize << max_log_n.clamp(14, 19)));
    rows
}

/// Geometric-mean speedup of the given rows (the acceptance aggregate of
/// the matrix scenarios).
pub fn geometric_mean_speedup(rows: &[WallClockRow]) -> f64 {
    let positive: Vec<f64> = rows
        .iter()
        .map(|r| r.speedup)
        .filter(|&s| s > 0.0)
        .collect();
    if positive.is_empty() {
        return 0.0;
    }
    (positive.iter().map(|s| s.ln()).sum::<f64>() / positive.len() as f64).exp()
}

/// Render the wall-clock rows as a report table.
pub fn render_wallclock(rows: &[WallClockRow]) -> String {
    let mut out = String::from(
        "E21 — wall-clock: pooled kernel workers + stream arenas vs the per-launch engine\n",
    );
    out.push_str(&format!(
        "{:>18} | {:>26} | {:>13} | {:>12} | {:>8} | {:>10}\n",
        "scenario", "case", "baseline [ms]", "current [ms]", "speedup", "sim [ms]"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>18} | {:>26} | {:>13.1} | {:>12.1} | {:>7.2}x | {:>10.2}\n",
            r.scenario, r.case, r.baseline_ms, r.current_ms, r.speedup, r.sim_ms
        ));
    }
    let matrix: Vec<WallClockRow> = rows
        .iter()
        .filter(|r| r.scenario == "matrix-parallel")
        .cloned()
        .collect();
    if !matrix.is_empty() {
        out.push_str(&format!(
            "matrix-parallel geometric-mean speedup: {:.2}x (acceptance floor: 3x)\n",
            geometric_mean_speedup(&matrix)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_parallel_rows_are_identity_checked_and_positive() {
        // Debug-mode smoke on the smallest matrix: the identity assertions
        // inside matrix_parallel are the real payload of this test.
        let rows = matrix_parallel(10);
        assert_eq!(rows.len(), matrix_distributions().len());
        for r in &rows {
            assert!(r.baseline_ms > 0.0 && r.current_ms > 0.0);
            assert!(r.sim_ms > 0.0);
        }
    }

    #[test]
    fn geometric_mean_is_the_geometric_mean() {
        let rows = vec![
            super::row("s", "a".into(), 1, 8.0, 2.0, 0.0), // 4x
            super::row("s", "b".into(), 1, 1.0, 1.0, 0.0), // 1x
        ];
        assert!((geometric_mean_speedup(&rows) - 2.0).abs() < 1e-12);
    }
}
