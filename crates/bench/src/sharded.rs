//! The sharded-scaling experiment (E20): one large uniform job served by
//! the [`sortsvc::ShardedSorter`] route as the device-slot count grows,
//! under both inter-device links of the hop model — the peer link of a
//! bridge-connected multi-GPU rig and the conservative host-staged bus.
//!
//! The headline claim the BENCH_*.json trajectory tracks: at
//! `device_slots = 4` the sharded engine delivers **≥ 2× the simulated
//! throughput** of the single-device GPU-ABiSort submission on a uniform
//! 2²⁰-element job (peer link), with the partition / shard-sort /
//! gather / merge breakdown explaining where the remaining time goes.

use crate::service::{run_mode, ServiceRow};
use serde::Serialize;
use sortsvc::metrics::ratio;
use sortsvc::{PolicyConfig, ServiceConfig, SortJob, SortService};
use stream_arch::{BusKind, DeviceLink};
use workloads::RequestMix;

/// One sharded-scaling result row.
#[derive(Clone, Debug, Serialize)]
pub struct ShardedRow {
    /// Inter-device link label (`peer` / `host-staged`).
    pub link: String,
    /// Device slots of the service.
    pub device_slots: usize,
    /// Engine the job was routed to.
    pub engine: String,
    /// Elements in the job.
    pub elements: usize,
    /// Simulated duration of the job's batch.
    pub duration_ms: f64,
    /// Thousand elements per simulated second.
    pub throughput_kelems_per_s: f64,
    /// Speed-up over the single-slot run on the same link.
    pub speedup: f64,
    /// Shards the batch spread over (0 when unsharded).
    pub shards: usize,
    /// Splitter skew of the sharded batch (0.0 when unsharded).
    pub shard_skew: f64,
}

/// The two interconnects E20 compares.
fn links() -> [(&'static str, DeviceLink); 2] {
    [
        ("peer", DeviceLink::pcie_peer()),
        (
            "host-staged",
            DeviceLink::host_staged(BusKind::PciExpressX16),
        ),
    ]
}

/// Run the E20 scaling sweep on a uniform job of `n` elements, with the
/// calibrated sharded threshold.
pub fn sharded_scaling(n: usize) -> Vec<ShardedRow> {
    sharded_scaling_with(n, None)
}

/// E20 with an optional forced sharded threshold (`Some(0)` shards every
/// multi-slot run regardless of size — the debug-mode test knob).
pub fn sharded_scaling_with(n: usize, sharded_min_override: Option<usize>) -> Vec<ShardedRow> {
    let mut rows = Vec::new();
    for (label, link) in links() {
        let mut base_ms = 0.0;
        for slots in [1usize, 2, 4, 8] {
            let svc = SortService::new(ServiceConfig {
                device_slots: slots,
                policy: PolicyConfig {
                    device_link: Some(link),
                    sharded_min_override,
                    ..PolicyConfig::default()
                },
                ..ServiceConfig::default()
            });
            let jobs = vec![SortJob::new(0, 0, workloads::uniform(n, 2006))];
            let report = svc.process(jobs).expect("sharded scaling run failed");
            let batch = &report.batches[0];
            if slots == 1 {
                base_ms = batch.duration_ms;
            }
            rows.push(ShardedRow {
                link: label.into(),
                device_slots: slots,
                engine: report.results[0].engine.name().into(),
                elements: n,
                duration_ms: batch.duration_ms,
                throughput_kelems_per_s: ratio(n as f64, batch.duration_ms),
                speedup: ratio(base_ms, batch.duration_ms),
                shards: batch.shards,
                shard_skew: report.metrics.shard_skew_max,
            });
        }
    }
    rows
}

/// The sharded-reservation fairness half of E20: the
/// [`RequestMix::large_job_heavy`] traffic — sharded-scale jobs with a
/// trickle of small ones — on a four-slot peer-link service, so the
/// multi-slot reservations have to interleave with ordinary batches.
/// Reported as a [`ServiceRow`] (engine mix shows the sharded jobs).
pub fn sharded_mix_row(jobs: usize) -> ServiceRow {
    let svc = SortService::new(ServiceConfig {
        device_slots: 4,
        policy: PolicyConfig {
            device_link: Some(DeviceLink::pcie_peer()),
            ..PolicyConfig::default()
        },
        ..ServiceConfig::default()
    });
    run_mode(
        &svc,
        &RequestMix::large_job_heavy(jobs),
        "large-job-heavy",
        "sharded (4 slots, peer)",
    )
}

/// Render the E20 table.
pub fn render_sharded(rows: &[ShardedRow]) -> String {
    let n = rows.first().map(|r| r.elements).unwrap_or(0);
    let mut out = format!("E20 — sharded multi-device scaling (uniform job, n = {n})\n");
    out.push_str(&format!(
        "{:>12} | {:>5} | {:>12} | {:>10} | {:>12} | {:>8} | {:>6} | {:>9}\n",
        "link", "slots", "engine", "sim [ms]", "kelem/s", "speedup", "shards", "skew"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>12} | {:>5} | {:>12} | {:>10.2} | {:>12.1} | {:>7.2}x | {:>6} | {:>9.3}\n",
            row.link,
            row.device_slots,
            row.engine,
            row.duration_ms,
            row.throughput_kelems_per_s,
            row.speedup,
            row.shards,
            row.shard_skew,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsvc::Engine;

    #[test]
    fn scaling_rows_shard_and_speed_up() {
        // Debug-mode size at the calibrated GPU crossover, with a forced
        // sharding threshold (the calibrated one engages at 2¹⁶⁺); the
        // 2²⁰ acceptance run happens via `repro`.
        let rows = sharded_scaling_with(1 << 14, Some(1024));
        assert_eq!(rows.len(), 8);
        for row in &rows {
            if row.device_slots == 1 {
                assert_eq!(row.engine, Engine::GpuAbiSort.name());
                assert!((row.speedup - 1.0).abs() < 1e-9);
            } else {
                assert_eq!(row.engine, Engine::ShardedGpu.name());
                assert_eq!(row.shards, row.device_slots);
                assert!(row.speedup > 0.0);
            }
        }
        let rendered = render_sharded(&rows);
        assert!(rendered.contains("E20"));
        assert!(rendered.contains("sharded-gpu"));
    }
}
