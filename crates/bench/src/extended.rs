//! Extended experiments (E16–E18): the PRAM context of Section 2.1, the
//! GPUTeraSort-style hybrid out-of-core pipeline of Section 2.2, and the
//! cost of the power-of-two padding the paper leaves as future work
//! (Section 9, "pruned bitonic trees").
//!
//! Like the core experiments in [`crate::experiments`], all times are
//! simulated/model times; functional correctness of every run is asserted
//! before a number is reported.

use abisort::{GpuAbiSorter, SortConfig};
use pram::sorters::{abisort_pram, bitonic_network, rank_merge};
use pram::PramModel;
use serde::Serialize;
use stream_arch::{GpuProfile, StreamProcessor, Value};
use terasort::{
    disk::{DiskProfile, SimulatedDisk},
    pipeline::{CoreSorter, TeraSortConfig, TeraSorter},
    record,
};

fn check_sorted(label: &str, input: &[Value], output: &[Value]) {
    abisort::verify::check_sorts(input, output)
        .unwrap_or_else(|e| panic!("{label}: incorrect sort result: {e}"));
}

// ---------------------------------------------------------------------------
// E16 — PRAM comparison (Section 2.1)
// ---------------------------------------------------------------------------

/// One row of the PRAM-sorter comparison (E16).
#[derive(Clone, Debug, Serialize)]
pub struct PramRow {
    /// Sequence length `n`.
    pub n: usize,
    /// Parallel steps of the adaptive bitonic sort (overlapped schedule).
    pub abisort_steps: u64,
    /// Comparisons of the adaptive bitonic sort.
    pub abisort_comparisons: u64,
    /// Brent-scheduled time of the adaptive bitonic sort with
    /// `p = n / log n` processors (unit-cost accesses).
    pub abisort_brent_time: u64,
    /// Parallel steps of Batcher's bitonic network.
    pub network_steps: u64,
    /// Comparisons of Batcher's bitonic network.
    pub network_comparisons: u64,
    /// Comparisons of the rank-based (CREW) parallel merge sort.
    pub rank_merge_comparisons: u64,
    /// Concurrent reads the rank-based merge sort needed (zero for the two
    /// EREW algorithms).
    pub rank_merge_concurrent_reads: u64,
}

/// E16 — the parallel-sorting context of Section 2.1 on an explicit PRAM:
/// adaptive bitonic sorting is the only one of the three that is
/// simultaneously EREW, `O(log² n)`-step and `O(n log n)`-work.
pub fn pram_comparison(log_ns: &[u32]) -> Vec<PramRow> {
    log_ns
        .iter()
        .map(|&log_n| {
            let n = 1usize << log_n;
            let input = workloads::uniform(n, 77);
            let expected = {
                let mut copy = input.clone();
                copy.sort();
                copy
            };

            let abi = abisort_pram::sort(&input).expect("PRAM ABiSort failed");
            assert_eq!(abi.output, expected, "PRAM ABiSort produced a wrong order");
            assert_eq!(abi.stats.conflicts(PramModel::Erew), 0);

            let net = bitonic_network::sort(&input).expect("PRAM bitonic network failed");
            assert_eq!(net.output, expected);

            let rank = rank_merge::sort(&input).expect("PRAM rank merge failed");
            assert_eq!(rank.output, expected);

            let p = (n as u64 / log_n as u64).max(1);
            PramRow {
                n,
                abisort_steps: abi.stats.num_steps(),
                abisort_comparisons: abi.stats.comparisons(),
                abisort_brent_time: abi.stats.brent_time(p),
                network_steps: net.stats.num_steps(),
                network_comparisons: net.stats.comparisons(),
                rank_merge_comparisons: rank.stats.comparisons(),
                rank_merge_concurrent_reads: rank.stats.read_conflicts,
            }
        })
        .collect()
}

/// Render the E16 table.
pub fn render_pram(rows: &[PramRow]) -> String {
    let mut out =
        String::from("E16 — PRAM sorters (Section 2.1): steps, comparisons, memory model\n");
    out.push_str(&format!(
        "{:>9} | {:>10} | {:>12} | {:>14} | {:>9} | {:>12} | {:>12} | {:>14}\n",
        "n",
        "ABi steps",
        "ABi compare",
        "ABi Brent(n/lg)",
        "net steps",
        "net compare",
        "rank compare",
        "rank conc.rd"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>9} | {:>10} | {:>12} | {:>14} | {:>9} | {:>12} | {:>12} | {:>14}\n",
            row.n,
            row.abisort_steps,
            row.abisort_comparisons,
            row.abisort_brent_time,
            row.network_steps,
            row.network_comparisons,
            row.rank_merge_comparisons,
            row.rank_merge_concurrent_reads
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// E17 — hybrid out-of-core pipeline (Section 2.2)
// ---------------------------------------------------------------------------

/// One row of the hybrid out-of-core experiment (E17).
#[derive(Clone, Debug, Serialize)]
pub struct TeraSortRow {
    /// In-core sorter used during run formation.
    pub core_sorter: String,
    /// Total records sorted.
    pub records: usize,
    /// Number of runs.
    pub runs: usize,
    /// Run-formation phase: disk I/O time, ms.
    pub run_io_ms: f64,
    /// Run-formation phase: simulated GPU time, ms.
    pub run_gpu_ms: f64,
    /// Run-formation phase: modelled CPU time, ms.
    pub run_cpu_ms: f64,
    /// Merge phase elapsed time, ms.
    pub merge_ms: f64,
    /// Total elapsed time (overlapped I/O model), ms.
    pub total_ms: f64,
}

/// E17 — the GPUTeraSort-style pipeline with three in-core sorters: the
/// paper's GPU-ABiSort, the GPUSort bitonic network (what GPUTeraSort used)
/// and a pure-CPU quicksort pipeline.
pub fn terasort_pipelines(records: usize, run_size: usize) -> Vec<TeraSortRow> {
    let data = record::generate(records, 4242);
    [
        CoreSorter::GpuAbiSort(SortConfig::default()),
        CoreSorter::GpuBitonicNetwork,
        CoreSorter::CpuQuicksort,
    ]
    .into_iter()
    .map(|core_sorter| {
        let mut disk = SimulatedDisk::new(DiskProfile::raid_2006());
        let input = disk.create("table");
        disk.append(input, &data);
        let config = TeraSortConfig {
            run_size,
            core_sorter,
            gpu_profile: GpuProfile::geforce_7800(),
            ..TeraSortConfig::default()
        };
        let report = TeraSorter::new(config)
            .sort(&mut disk, input)
            .expect("terasort failed");
        let sorted = disk.read_all(report.output);
        assert!(record::is_sorted(&sorted), "terasort output not sorted");
        assert!(
            record::is_permutation(&data, &sorted),
            "terasort lost records"
        );
        TeraSortRow {
            core_sorter: report.core_sorter.to_string(),
            records: report.records,
            runs: report.runs,
            run_io_ms: report.run_phase.io_ms,
            run_gpu_ms: report.run_phase.gpu_ms,
            run_cpu_ms: report.run_phase.cpu_ms,
            merge_ms: report.merge_phase.elapsed_ms,
            total_ms: report.total_ms,
        }
    })
    .collect()
}

/// Render the E17 table.
pub fn render_terasort(rows: &[TeraSortRow]) -> String {
    let mut out = String::from("E17 — hybrid out-of-core pipeline (GPUTeraSort scenario)\n");
    if let Some(first) = rows.first() {
        out.push_str(&format!(
            "records = {}, runs = {}\n",
            first.records, first.runs
        ));
    }
    out.push_str(&format!(
        "{:>18} | {:>11} | {:>11} | {:>11} | {:>10} | {:>10}\n",
        "in-core sorter", "run IO [ms]", "GPU [ms]", "CPU [ms]", "merge [ms]", "total [ms]"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>18} | {:>11.1} | {:>11.1} | {:>11.1} | {:>10.1} | {:>10.1}\n",
            row.core_sorter,
            row.run_io_ms,
            row.run_gpu_ms,
            row.run_cpu_ms,
            row.merge_ms,
            row.total_ms
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// E18 — padding overhead for non-power-of-two lengths (Section 9)
// ---------------------------------------------------------------------------

/// One row of the padding-overhead experiment (E18).
#[derive(Clone, Debug, Serialize)]
pub struct PaddingRow {
    /// Requested (actual) sequence length.
    pub n: usize,
    /// Power-of-two length the stream program operated on.
    pub padded_len: usize,
    /// Padding factor `padded / n`.
    pub padding_factor: f64,
    /// Simulated GPU-ABiSort time, ms.
    pub sim_ms: f64,
    /// Simulated time per element, µs.
    pub us_per_element: f64,
}

/// E18 — what the power-of-two padding of Section 4 costs for awkward
/// lengths. The paper defers the remedy (pruned bitonic trees, Section 9)
/// to future work; this experiment quantifies what that remedy would save.
pub fn padding_overhead(log_n: u32) -> Vec<PaddingRow> {
    let base = 1usize << log_n;
    let lengths = [
        base,
        base + 1,
        base + base / 4,
        base + base / 2,
        2 * base - 1,
        2 * base,
    ];
    let profile = GpuProfile::geforce_7800();
    lengths
        .iter()
        .map(|&n| {
            let input = workloads::uniform(n, 99);
            let mut proc = StreamProcessor::new(profile.clone());
            let run = GpuAbiSorter::new(SortConfig::default())
                .sort_run(&mut proc, &input)
                .expect("GPU-ABiSort failed");
            check_sorted("padding", &input, &run.output);
            PaddingRow {
                n,
                padded_len: run.padded_len,
                padding_factor: run.padded_len as f64 / n as f64,
                sim_ms: run.sim_time.total_ms,
                us_per_element: run.sim_time.total_ms * 1000.0 / n as f64,
            }
        })
        .collect()
}

/// Render the E18 table.
pub fn render_padding(rows: &[PaddingRow]) -> String {
    let mut out = String::from("E18 — power-of-two padding overhead (Section 4 / Section 9)\n");
    out.push_str(&format!(
        "{:>9} | {:>10} | {:>14} | {:>10} | {:>14}\n",
        "n", "padded to", "padding factor", "sim [ms]", "µs / element"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>9} | {:>10} | {:>13.2}x | {:>10.2} | {:>14.3}\n",
            row.n, row.padded_len, row.padding_factor, row.sim_ms, row.us_per_element
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pram_comparison_shows_the_work_gap_and_erew_difference() {
        let rows = pram_comparison(&[10, 12]);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            let log_n = (row.n as f64).log2();
            // Optimal work vs Θ(n log² n): the network does clearly more
            // comparisons already at these sizes…
            assert!(row.network_comparisons as f64 > 1.5 * row.abisort_comparisons as f64);
            // ABiSort stays below 2 n log n.
            assert!((row.abisort_comparisons as f64) < 2.0 * row.n as f64 * log_n);
            // The rank-based merge sort needs concurrent reads, ABiSort none.
            assert!(row.rank_merge_concurrent_reads > 0);
            // O(log² n) steps for both network and ABiSort.
            assert_eq!(row.abisort_steps, (log_n as u64).pow(2));
        }
        // …and the gap grows with n (the extra Θ(log n) factor).
        let ratio = |r: &PramRow| r.network_comparisons as f64 / r.abisort_comparisons as f64;
        assert!(ratio(&rows[1]) > ratio(&rows[0]));
        assert!(render_pram(&rows).contains("Brent"));
    }

    #[test]
    fn terasort_rows_compare_the_three_pipelines() {
        let rows = terasort_pipelines(6_000, 2_048);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].core_sorter, "gpu-abisort");
        assert_eq!(rows[2].core_sorter, "cpu-quicksort");
        for row in &rows {
            assert_eq!(row.records, 6_000);
            assert_eq!(row.runs, 3);
            assert!(row.total_ms > 0.0);
        }
        // The CPU pipeline spends no GPU time; the GPU pipelines do.
        assert_eq!(rows[2].run_gpu_ms, 0.0);
        assert!(rows[0].run_gpu_ms > 0.0);
        assert!(render_terasort(&rows).contains("gpu-abisort"));
    }

    #[test]
    fn padding_overhead_is_worst_just_above_a_power_of_two() {
        let rows = padding_overhead(11);
        assert_eq!(rows[0].padding_factor, 1.0);
        // n = 2^k + 1 pads to 2^{k+1}: factor just under 2.
        assert!(rows[1].padding_factor > 1.9);
        // Per-element cost is worst right after the power of two and
        // recovers towards the next one.
        assert!(rows[1].us_per_element > rows[0].us_per_element);
        assert!(rows[1].us_per_element > rows.last().unwrap().us_per_element);
        assert!(render_padding(&rows).contains("padding factor"));
    }
}
