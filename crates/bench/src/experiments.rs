//! The experiment implementations.
//!
//! All experiments report *simulated* times from the calibrated
//! [`stream_arch::GpuProfile`] cost model (plus the CPU model of
//! [`baselines::CpuSortModel`]); wall-clock measurements of the same code
//! paths live in the Criterion benches. Absolute numbers are properties of
//! the simulator — what must match the paper is the *shape*: who wins, by
//! roughly what factor, and how the gaps scale with `n` and `p`.

use abisort::{GpuAbiSorter, SortConfig};
use baselines::{CpuSortModel, CpuSorter, GpuSortBaseline};
use serde::Serialize;
use stream_arch::{Counters, GpuProfile, StreamProcessor, TransferModel, Value};
use workloads::Distribution;

/// Number of differently-seeded uniform inputs used to produce the CPU
/// timing ranges of Tables 2 and 3.
const CPU_RANGE_SEEDS: u64 = 5;

fn check_sorted(label: &str, input: &[Value], output: &[Value]) {
    abisort::verify::check_sorts(input, output)
        .unwrap_or_else(|e| panic!("{label}: incorrect sort result: {e}"));
}

/// One row of Table 2 or Table 3.
#[derive(Clone, Debug, Serialize)]
pub struct TimingRow {
    /// Sequence length `n`.
    pub n: usize,
    /// CPU quicksort time range (min, max) over several random inputs, ms.
    pub cpu_ms: (f64, f64),
    /// GPUSort (bitonic sorting network) simulated time, ms.
    pub gpusort_ms: f64,
    /// GPU-ABiSort with the row-wise layout (variant a), ms. `None` for
    /// Table 3, which the paper reports only with the Z-order layout.
    pub abisort_rowwise_ms: Option<f64>,
    /// GPU-ABiSort with the Z-order layout (variant b), ms.
    pub abisort_zorder_ms: f64,
}

/// The sequence lengths of the paper's tables, optionally capped for quick
/// runs.
pub fn table_lengths(max_log_n: u32) -> Vec<usize> {
    workloads::paper_sequence_lengths()
        .into_iter()
        .filter(|&n| n <= (1usize << max_log_n))
        .collect()
}

fn cpu_range(model: &CpuSortModel, n: usize) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    for seed in 0..CPU_RANGE_SEEDS {
        let input = workloads::uniform(n, 1000 + seed);
        let (out, stats) = CpuSorter.sort(&input);
        check_sorted("cpu", &input, &out);
        let ms = model.time_ms(&stats);
        min = min.min(ms);
        max = max.max(ms);
    }
    (min, max)
}

fn abisort_ms(profile: &GpuProfile, config: SortConfig, input: &[Value]) -> f64 {
    let mut proc = StreamProcessor::new(profile.clone());
    let run = GpuAbiSorter::new(config)
        .sort_run(&mut proc, input)
        .expect("GPU-ABiSort failed");
    check_sorted("gpu-abisort", input, &run.output);
    run.sim_time.total_ms
}

fn gpusort_ms(profile: &GpuProfile, input: &[Value]) -> f64 {
    let mut proc = StreamProcessor::new(profile.clone());
    let run = GpuSortBaseline::new()
        .sort(&mut proc, input)
        .expect("GPUSort failed");
    check_sorted("gpusort", input, &run.output);
    run.sim_time.total_ms
}

/// E8 — Table 2: the GeForce 6800 / Athlon-XP system, comparing the CPU
/// sort, GPUSort and GPU-ABiSort with both 1D→2D mappings.
pub fn table2_geforce_6800(max_log_n: u32) -> Vec<TimingRow> {
    let profile = GpuProfile::geforce_6800();
    let cpu_model = CpuSortModel::athlon_xp_3000();
    table_lengths(max_log_n)
        .into_iter()
        .map(|n| {
            let input = workloads::uniform(n, 42);
            TimingRow {
                n,
                cpu_ms: cpu_range(&cpu_model, n),
                gpusort_ms: gpusort_ms(&profile, &input),
                abisort_rowwise_ms: Some(abisort_ms(&profile, SortConfig::row_wise(2048), &input)),
                abisort_zorder_ms: abisort_ms(&profile, SortConfig::z_order(), &input),
            }
        })
        .collect()
}

/// E9 — Table 3: the GeForce 7800 / Athlon-64 system (Z-order mapping
/// only, as in the paper).
pub fn table3_geforce_7800(max_log_n: u32) -> Vec<TimingRow> {
    let profile = GpuProfile::geforce_7800();
    let cpu_model = CpuSortModel::athlon_64_4200();
    table_lengths(max_log_n)
        .into_iter()
        .map(|n| {
            let input = workloads::uniform(n, 42);
            TimingRow {
                n,
                cpu_ms: cpu_range(&cpu_model, n),
                gpusort_ms: gpusort_ms(&profile, &input),
                abisort_rowwise_ms: None,
                abisort_zorder_ms: abisort_ms(&profile, SortConfig::z_order(), &input),
            }
        })
        .collect()
}

/// One row of the data-dependence experiment (E10).
#[derive(Clone, Debug, Serialize)]
pub struct DataDependenceRow {
    /// Input distribution name.
    pub distribution: String,
    /// CPU quicksort simulated time, ms.
    pub cpu_ms: f64,
    /// CPU quicksort comparison count.
    pub cpu_comparisons: u64,
    /// GPU-ABiSort simulated time, ms.
    pub abisort_ms: f64,
    /// GPU-ABiSort comparison count.
    pub abisort_comparisons: u64,
}

/// E10 — Section 8's observation that the CPU sort's time is data
/// dependent while GPU-ABiSort's is not.
pub fn data_dependence(n: usize) -> Vec<DataDependenceRow> {
    let cpu_model = CpuSortModel::athlon_64_4200();
    let profile = GpuProfile::geforce_7800();
    Distribution::all_for_data_dependence()
        .into_iter()
        .map(|dist| {
            let input = workloads::generate(dist, n, 7);
            let (cpu_out, cpu_stats) = CpuSorter.sort(&input);
            check_sorted("cpu", &input, &cpu_out);
            let mut proc = StreamProcessor::new(profile.clone());
            let run = GpuAbiSorter::new(SortConfig::default())
                .sort_run(&mut proc, &input)
                .unwrap();
            check_sorted("gpu-abisort", &input, &run.output);
            DataDependenceRow {
                distribution: dist.name(),
                cpu_ms: cpu_model.time_ms(&cpu_stats),
                cpu_comparisons: cpu_stats.comparisons,
                abisort_ms: run.sim_time.total_ms,
                abisort_comparisons: run.counters.comparisons,
            }
        })
        .collect()
}

/// One row of the transfer-overhead experiment (E11).
#[derive(Clone, Debug, Serialize)]
pub struct TransferRow {
    /// Bus name.
    pub bus: String,
    /// Upload time for n pairs, ms.
    pub upload_ms: f64,
    /// Readback time for n pairs, ms.
    pub readback_ms: f64,
    /// Round trip, ms.
    pub round_trip_ms: f64,
    /// GPU-ABiSort time for the same n (for comparison), ms.
    pub sort_ms: f64,
}

/// E11 — Section 8's transfer-overhead figures (~100 ms AGP, ~20 ms PCIe
/// for 2²⁰ pairs).
pub fn transfer_overhead(n: usize) -> Vec<TransferRow> {
    let input = workloads::uniform(n, 3);
    [
        (
            stream_arch::BusKind::Agp8x,
            GpuProfile::geforce_6800(),
            "AGP 8x (GeForce 6800 system)",
        ),
        (
            stream_arch::BusKind::PciExpressX16,
            GpuProfile::geforce_7800(),
            "PCI Express x16 (GeForce 7800 system)",
        ),
    ]
    .into_iter()
    .map(|(bus, profile, name)| {
        let model = TransferModel::new(bus);
        TransferRow {
            bus: name.to_string(),
            upload_ms: model.upload_ms(n, 8),
            readback_ms: model.readback_ms(n, 8),
            round_trip_ms: model.round_trip_ms(n, 8),
            sort_ms: abisort_ms(&profile, SortConfig::z_order(), &input),
        }
    })
    .collect()
}

/// One row of the stream-operation-count experiment (E12).
#[derive(Clone, Debug, Serialize)]
pub struct StreamOpsRow {
    /// Sequence length.
    pub n: usize,
    /// log₂ n.
    pub log_n: u32,
    /// Steps of the sequential-phase variant (O(log³ n)).
    pub sequential_phase_steps: u64,
    /// Steps of the overlapped variant (O(log² n)).
    pub overlapped_steps: u64,
    /// Steps of the fully optimized variant (Section 7).
    pub optimized_steps: u64,
    /// The analytic O(log³ n) phase count of Section 5.3.
    pub analytic_phases: u64,
    /// The analytic O(log² n) step count of Section 5.4.
    pub analytic_steps: u64,
}

/// E12 — stream-operation counts: measured steps of the three variants
/// against the analytic `½j²+½j` / `2j−1` per-level formulas.
pub fn stream_operation_counts(log_ns: &[u32]) -> Vec<StreamOpsRow> {
    log_ns
        .iter()
        .map(|&log_n| {
            let n = 1usize << log_n;
            let input = workloads::uniform(n, 5);
            let steps = |config: SortConfig| -> u64 {
                let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
                let run = GpuAbiSorter::new(config)
                    .sort_run(&mut proc, &input)
                    .unwrap();
                check_sorted("gpu-abisort", &input, &run.output);
                run.counters.steps
            };
            StreamOpsRow {
                n,
                log_n,
                sequential_phase_steps: steps(SortConfig::unoptimized()),
                overlapped_steps: steps(SortConfig::unoptimized().with_overlapped_steps(true)),
                optimized_steps: steps(SortConfig::default()),
                analytic_phases: abisort::stream_sort::layout_plan::total_phases(log_n),
                analytic_steps: abisort::stream_sort::layout_plan::total_steps(log_n),
            }
        })
        .collect()
}

/// One row of the work-complexity experiment (E13).
#[derive(Clone, Debug, Serialize)]
pub struct WorkRow {
    /// Sequence length.
    pub n: usize,
    /// Comparisons of the sequential adaptive bitonic sort.
    pub sequential_abisort: u64,
    /// Comparisons of GPU-ABiSort (unoptimized stream variant).
    pub stream_abisort: u64,
    /// Comparisons of the bitonic sorting network (GPUSort).
    pub gpusort: u64,
    /// Comparisons of the odd-even merge sort network.
    pub oems: u64,
    /// Comparisons of the periodic balanced sorting network.
    pub pbsn: u64,
    /// Comparisons of the CPU quicksort (uniform input).
    pub cpu_quicksort: u64,
    /// The paper's 2·n·log n bound for the adaptive bitonic sort.
    pub bound_2n_log_n: u64,
}

/// E13 — total work (comparisons): adaptive `O(n log n)` versus network
/// `O(n log² n)`, with the `< 2 n log n` bound of Section 2.1.
pub fn work_complexity(log_ns: &[u32]) -> Vec<WorkRow> {
    log_ns
        .iter()
        .map(|&log_n| {
            let n = 1usize << log_n;
            let input = workloads::uniform(n, 9);
            let (_, seq_stats) = abisort::sequential::adaptive_bitonic_sort_with(
                &input,
                abisort::MergeVariant::Simplified,
            );
            let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
            let stream_run = GpuAbiSorter::new(SortConfig::unoptimized())
                .sort_run(&mut proc, &input)
                .unwrap();
            let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
            let gpusort = GpuSortBaseline::new().sort(&mut proc, &input).unwrap();
            let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
            let oems = baselines::OddEvenMergeSort::new()
                .sort(&mut proc, &input)
                .unwrap();
            let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
            let pbsn = baselines::PeriodicBalancedSort::new()
                .sort(&mut proc, &input)
                .unwrap();
            let (_, cpu_stats) = CpuSorter.sort(&input);
            WorkRow {
                n,
                sequential_abisort: seq_stats.comparisons,
                stream_abisort: stream_run.counters.comparisons,
                gpusort: gpusort.counters.comparisons,
                oems: oems.counters.comparisons,
                pbsn: pbsn.counters.comparisons,
                cpu_quicksort: cpu_stats.comparisons,
                bound_2n_log_n: 2 * n as u64 * log_n as u64,
            }
        })
        .collect()
}

/// One row of the p-scaling experiment (E14).
#[derive(Clone, Debug, Serialize)]
pub struct ScalingRow {
    /// Number of stream processor units.
    pub units: usize,
    /// Simulated time with multi-block substream support, ms.
    pub multi_block_ms: f64,
    /// Simulated time without multi-block substreams (per-launch overhead),
    /// ms.
    pub single_block_ms: f64,
    /// Speed-up over one unit (multi-block variant).
    pub speedup: f64,
}

/// E14 — scalability with the number of stream processor units `p` at a
/// fixed problem size.
///
/// Uses the *idealized* stream-machine profile (high memory bandwidth, no
/// GPU-specific quirks) because the claim under test is the algorithm's
/// scalability with `p`, not the memory wall of one particular 2005 board —
/// on the GeForce profiles the speed-up saturates early simply because the
/// simulated memory bandwidth does not grow with `p`.
pub fn scaling_with_units(n: usize, units: &[usize]) -> Vec<ScalingRow> {
    let input = workloads::uniform(n, 11);
    let run_with = |profile: GpuProfile| -> (f64, Counters) {
        let mut proc = StreamProcessor::new(profile);
        let run = GpuAbiSorter::new(SortConfig::default())
            .sort_run(&mut proc, &input)
            .unwrap();
        (run.sim_time.total_ms, run.counters)
    };
    let (base_ms, _) = run_with(GpuProfile::idealized(1));
    units
        .iter()
        .map(|&p| {
            let (multi_ms, _) = run_with(GpuProfile::idealized(p));
            let (single_ms, _) = run_with(GpuProfile::idealized(p).with_multi_block(false));
            ScalingRow {
                units: p,
                multi_block_ms: multi_ms,
                single_block_ms: single_ms,
                speedup: base_ms / multi_ms,
            }
        })
        .collect()
}

/// One row of the ablation experiment (E15).
#[derive(Clone, Debug, Serialize)]
pub struct AblationRow {
    /// Configuration description.
    pub config: String,
    /// Simulated time, ms.
    pub sim_ms: f64,
    /// Stream operations (steps).
    pub steps: u64,
    /// Comparisons.
    pub comparisons: u64,
    /// Texture cache hit rate.
    pub cache_hit_rate: f64,
}

/// E15 — ablation over the design choices: layout, overlapped stages, and
/// the two Section 7 optimizations.
pub fn ablation(n: usize) -> Vec<AblationRow> {
    let input = workloads::uniform(n, 13);
    let configs: Vec<(String, SortConfig)> = vec![
        (
            "baseline (row-wise, sequential phases, no opts)".into(),
            SortConfig::unoptimized().with_layout(abisort::LayoutChoice::RowWise { width: 2048 }),
        ),
        ("+ z-order layout".into(), SortConfig::unoptimized()),
        (
            "+ overlapped stages".into(),
            SortConfig::unoptimized().with_overlapped_steps(true),
        ),
        (
            "+ local sort (Section 7.1)".into(),
            SortConfig::unoptimized()
                .with_overlapped_steps(true)
                .with_local_sort(true),
        ),
        (
            "+ fixed merge (Section 7.2) = full GPU-ABiSort".into(),
            SortConfig::default(),
        ),
    ];
    configs
        .into_iter()
        .map(|(name, config)| {
            let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
            let run = GpuAbiSorter::new(config)
                .sort_run(&mut proc, &input)
                .unwrap();
            check_sorted(&name, &input, &run.output);
            AblationRow {
                config: name,
                sim_ms: run.sim_time.total_ms,
                steps: run.counters.steps,
                comparisons: run.counters.comparisons,
                cache_hit_rate: run.counters.cache.hit_rate(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_small_scale_has_the_papers_shape() {
        // At reduced n the orderings the paper reports must already hold:
        // z-order ABiSort beats row-wise ABiSort and the CPU sort.
        let rows = table2_geforce_6800(15);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert!(row.abisort_zorder_ms < row.abisort_rowwise_ms.unwrap());
        assert!(row.abisort_zorder_ms < row.cpu_ms.0);
        assert!(row.cpu_ms.0 <= row.cpu_ms.1);
    }

    #[test]
    fn data_dependence_shows_constant_abisort_and_varying_cpu() {
        let rows = data_dependence(1 << 12);
        let abisort_counts: std::collections::HashSet<u64> =
            rows.iter().map(|r| r.abisort_comparisons).collect();
        assert_eq!(abisort_counts.len(), 1);
        let cpu_counts: std::collections::HashSet<u64> =
            rows.iter().map(|r| r.cpu_comparisons).collect();
        assert!(cpu_counts.len() > 1);
    }

    #[test]
    fn stream_op_counts_match_the_analytic_formulas() {
        let rows = stream_operation_counts(&[8, 10]);
        for row in rows {
            assert!(row.overlapped_steps < row.sequential_phase_steps);
            assert!(row.optimized_steps < row.overlapped_steps);
            // The unoptimized variants add one extract step and one commit
            // step per level on top of the analytic per-level counts.
            let levels = row.log_n as u64;
            assert_eq!(row.sequential_phase_steps, row.analytic_phases + 2 * levels);
            assert_eq!(row.overlapped_steps, row.analytic_steps + 2 * levels);
        }
    }

    #[test]
    fn work_complexity_orders_adaptive_below_networks() {
        let rows = work_complexity(&[10, 12]);
        for row in rows {
            assert!(row.sequential_abisort < row.bound_2n_log_n);
            assert!(row.stream_abisort < row.bound_2n_log_n);
            assert!(row.stream_abisort < row.gpusort);
            assert!(row.oems <= row.gpusort);
            assert!(row.gpusort <= row.pbsn);
        }
    }

    #[test]
    fn scaling_improves_with_more_units_then_saturates() {
        let rows = scaling_with_units(1 << 12, &[1, 4, 16, 64]);
        assert!(rows[1].speedup > 1.5);
        assert!(rows[2].speedup > rows[1].speedup);
        // Multi-block substreams never hurt.
        for row in &rows {
            assert!(row.multi_block_ms <= row.single_block_ms + 1e-9);
        }
    }

    #[test]
    fn ablation_improves_monotonically_in_simulated_time() {
        let rows = ablation(1 << 13);
        assert_eq!(rows.len(), 5);
        for pair in rows.windows(2) {
            assert!(
                pair[1].sim_ms <= pair[0].sim_ms * 1.05,
                "{} ({:.2} ms) should not be slower than {} ({:.2} ms)",
                pair[1].config,
                pair[1].sim_ms,
                pair[0].config,
                pair[0].sim_ms
            );
        }
    }

    #[test]
    fn transfer_overhead_reproduces_the_paper_figures() {
        let rows = transfer_overhead(1 << 20);
        assert!(rows[0].round_trip_ms > 70.0 && rows[0].round_trip_ms < 140.0);
        assert!(rows[1].round_trip_ms > 12.0 && rows[1].round_trip_ms < 30.0);
    }
}
