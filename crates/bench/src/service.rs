//! The serving-path experiment (E19): run the batched sorting service over
//! a seeded request mix, coalesced versus one-job-per-launch, and collect
//! the service metrics (throughput, tail latency, batch occupancy, engine
//! mix) that BENCH_*.json files track for the serving path.

use serde::Serialize;
use sortsvc::{ServiceConfig, SortJob, SortService};
use workloads::RequestMix;

/// One service-scenario result row.
#[derive(Clone, Debug, Serialize)]
pub struct ServiceRow {
    /// Submission mode: `coalesced` or `one-job-per-launch`.
    pub mode: String,
    /// Traffic mix name.
    pub mix: String,
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Jobs rejected by admission control.
    pub rejected: usize,
    /// Batches executed.
    pub batches: usize,
    /// Thousand elements sorted per simulated second.
    pub throughput_kelems_per_s: f64,
    /// Median simulated latency (ms).
    pub latency_p50_ms: f64,
    /// 99th-percentile simulated latency (ms).
    pub latency_p99_ms: f64,
    /// Capacity-weighted mean batch occupancy.
    pub batch_occupancy: f64,
    /// Mean jobs per batch.
    pub jobs_per_batch: f64,
    /// Jobs served by the CPU quicksort engine.
    pub cpu_jobs: usize,
    /// Jobs served by the batched GPU engine.
    pub gpu_jobs: usize,
    /// Jobs served by the multi-device sharded engine.
    pub sharded_jobs: usize,
    /// Jobs served by the out-of-core engine.
    pub tera_jobs: usize,
    /// The policy's calibrated CPU/GPU crossover (elements).
    pub policy_crossover: u64,
}

/// The deterministic seed every service scenario uses.
pub const SCENARIO_SEED: u64 = 2006;

/// Run one service over one mix and collect its row. `mode` is a label
/// (`coalesced` / `one-job-per-launch`).
pub fn run_mode(service: &SortService, mix: &RequestMix, mix_name: &str, mode: &str) -> ServiceRow {
    let jobs = SortJob::from_requests(mix.generate(SCENARIO_SEED));
    let submitted = jobs.len();
    let report = service.process(jobs).expect("service run failed");
    let m = &report.metrics;
    ServiceRow {
        mode: mode.into(),
        mix: mix_name.into(),
        jobs: submitted,
        completed: m.jobs_completed,
        rejected: m.jobs_rejected,
        batches: m.batches,
        throughput_kelems_per_s: m.throughput_kelems_per_s,
        latency_p50_ms: m.latency_p50_ms,
        latency_p99_ms: m.latency_p99_ms,
        batch_occupancy: m.mean_batch_occupancy,
        jobs_per_batch: m.mean_jobs_per_batch,
        cpu_jobs: m.cpu_jobs,
        gpu_jobs: m.gpu_jobs,
        sharded_jobs: m.sharded_jobs,
        tera_jobs: m.tera_jobs,
        policy_crossover: m.policy_crossover,
    }
}

/// Run the service scenario: a small-job-heavy mix (the coalescing regime)
/// and a mixed-size mix (the policy-crossover regime), each served
/// coalesced and one-job-per-launch — first with the calibrated policy,
/// then (small mix only) with the policy pinned to the device, which
/// isolates the launch-overhead amortization the coalescer exists for.
pub fn service_scenario(jobs: usize) -> Vec<ServiceRow> {
    // One calibration shared by all six service instances.
    let base = SortService::new(ServiceConfig::default());
    let service = |coalescing: bool, all_gpu: bool| {
        let policy = if all_gpu {
            base.policy().clone().with_crossover(0)
        } else {
            base.policy().clone()
        };
        SortService::with_policy(
            ServiceConfig {
                coalescing,
                ..ServiceConfig::default()
            },
            policy,
        )
    };
    let mut rows = Vec::new();
    for (mix_name, mix) in [
        ("small-job-heavy", RequestMix::small_job_heavy(jobs)),
        ("mixed", RequestMix::mixed(jobs / 2)),
    ] {
        for (mode, coalescing) in [("coalesced", true), ("one-job-per-launch", false)] {
            rows.push(run_mode(&service(coalescing, false), &mix, mix_name, mode));
        }
    }
    // The all-GPU ablation on the small-job mix: every job hits the
    // device, so the throughput gap is purely the per-launch overhead the
    // segmented batches amortize.
    let mix = RequestMix::small_job_heavy(jobs);
    for (mode, coalescing) in [
        ("coalesced (all-GPU)", true),
        ("one-job-per-launch (all-GPU)", false),
    ] {
        rows.push(run_mode(
            &service(coalescing, true),
            &mix,
            "small-job-heavy",
            mode,
        ));
    }
    rows
}

/// Render the service rows as a report table.
pub fn render_service(rows: &[ServiceRow]) -> String {
    let mut out = String::from("E19 — sorting service: batched coalescing vs one-job-per-launch\n");
    out.push_str(&format!(
        "{:>16} | {:>28} | {:>5} | {:>7} | {:>12} | {:>9} | {:>9} | {:>9} | {:>18}\n",
        "mix",
        "mode",
        "jobs",
        "batches",
        "kelem/s",
        "p50 ms",
        "p99 ms",
        "occupancy",
        "cpu/gpu/shard/tera"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>16} | {:>28} | {:>5} | {:>7} | {:>12.1} | {:>9.2} | {:>9.2} | {:>8.0}% | {:>18}\n",
            row.mix,
            row.mode,
            row.completed,
            row.batches,
            row.throughput_kelems_per_s,
            row.latency_p50_ms,
            row.latency_p99_ms,
            100.0 * row.batch_occupancy,
            format!(
                "{}/{}/{}/{}",
                row.cpu_jobs, row.gpu_jobs, row.sharded_jobs, row.tera_jobs
            ),
        ));
    }
    if let Some(first) = rows.first() {
        out.push_str(&format!(
            "(policy crossover: CPU below {} keys, GPU-ABiSort above)\n",
            first.policy_crossover
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_job_rows_show_coalescing_and_render() {
        // Only the small-job mix here: the mixed preset's large jobs are a
        // release-mode (repro) workload, not a unit-test one.
        let mix = RequestMix::small_job_heavy(40);
        let rows: Vec<ServiceRow> = [("coalesced", true), ("one-job-per-launch", false)]
            .into_iter()
            .map(|(mode, coalescing)| {
                let service = SortService::new(ServiceConfig {
                    coalescing,
                    ..ServiceConfig::default()
                });
                run_mode(&service, &mix, "small-job-heavy", mode)
            })
            .collect();
        let (coalesced, naive) = (&rows[0], &rows[1]);
        assert_eq!(coalesced.completed, 40);
        assert_eq!(naive.completed, 40);
        assert!(coalesced.jobs_per_batch > naive.jobs_per_batch);
        assert!(coalesced.batches < naive.batches);
        let rendered = render_service(&rows);
        assert!(rendered.contains("small-job-heavy"));
        assert!(rendered.contains("policy crossover"));
    }
}
