//! E24 — typed query scenario (typed): drive the `sortsvc::keys` codec
//! layer end-to-end through the service. Every row is one typed query —
//! full sorts over `f32`/`i64` keys, a top-k with `k ≪ n`, an order-by
//! over a generated columnar batch, and a percentile probe answered from
//! the histogram — with its engine, simulated latency and dedup factor.
//!
//! The top-k rows additionally run the stream sorter directly (full sort
//! versus early-exit top-k on the same input) and record both kernel-step
//! counts; the scenario asserts the early exit does strictly fewer steps,
//! which is the device-work saving the `TopK` job kind exists for.

use abisort::{GpuAbiSorter, SortConfig};
use serde::Serialize;
use sortsvc::{ServiceConfig, TypedSortClient};
use stream_arch::{GpuProfile, StreamProcessor};
use workloads::ColumnBatch;

/// One typed-scenario result row.
#[derive(Clone, Debug, Serialize)]
pub struct TypedRow {
    /// The typed operation (`sort f32`, `top-k f32`, `order-by price`, …).
    pub op: String,
    /// Keys submitted.
    pub n: usize,
    /// `k` for top-k rows, 0 otherwise.
    pub k: usize,
    /// Engine the service dispatched the job to.
    pub engine: String,
    /// Simulated end-to-end latency (ms).
    pub sim_ms: f64,
    /// Distinct encoded keys the engines actually sorted (the codec layer
    /// deduplicates; percentile rows keep the full multiset).
    pub distinct: usize,
    /// Kernel steps of the early-exit top-k run (top-k rows only).
    pub topk_steps: u64,
    /// Kernel steps of the full sort on the same input (top-k rows only).
    pub full_steps: u64,
}

/// The deterministic seed the typed scenario uses.
pub const TYPED_SEED: u64 = 2006;

/// The `k` every top-k row fetches (small against every scenario size, so
/// the early exit always has merge levels to skip).
pub const TOP_K: usize = 16;

fn row(op: &str, n: usize, k: usize, report: &sortsvc::TypedReport) -> TypedRow {
    TypedRow {
        op: op.into(),
        n,
        k,
        engine: report.engine.name().into(),
        sim_ms: report.latency_ms,
        distinct: report.distinct,
        topk_steps: 0,
        full_steps: 0,
    }
}

/// Run the typed scenario at one size: five typed queries through one
/// shared client (one calibration), plus the direct step-count comparison
/// for the top-k row.
fn typed_at(client: &TypedSortClient, n: usize) -> Vec<TypedRow> {
    let seed = TYPED_SEED ^ n as u64;
    let base = workloads::uniform(n, seed);
    let f32s: Vec<f32> = base.iter().map(|v| v.key).collect();
    let i64s: Vec<i64> = base
        .iter()
        .map(|v| (v.key.to_bits() as i64).wrapping_mul(37) - (1 << 40))
        .collect();

    let mut rows = Vec::new();

    let sorted = client.submit_keys(&f32s).expect("typed f32 sort");
    assert!(
        sorted
            .keys
            .windows(2)
            .all(|w| w[0].total_cmp(&w[1]).is_le()),
        "typed f32 sort must come back in total order"
    );
    rows.push(row("sort f32", n, 0, &sorted.report));

    let sorted = client.submit_keys(&i64s).expect("typed i64 sort");
    assert!(sorted.keys.windows(2).all(|w| w[0] <= w[1]));
    rows.push(row("sort i64", n, 0, &sorted.report));

    // Top-k through the service, plus the step-count comparison on the
    // stream sorter itself: same input, full sort versus early exit.
    let top = client.submit_top_k(&f32s, TOP_K).expect("typed top-k");
    assert_eq!(top.keys.len(), TOP_K.min(n));
    let mut trow = row("top-k f32", n, TOP_K, &top.report);
    let sorter = GpuAbiSorter::new(SortConfig::default());
    let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
    let full = sorter.sort_run(&mut proc, &base).expect("full sort run");
    let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
    let early = sorter
        .top_k_run(&mut proc, &base, TOP_K)
        .expect("top-k run");
    assert!(
        early.counters.steps < full.counters.steps,
        "top-k (k = {TOP_K} ≪ n = {n}) must take strictly fewer kernel steps \
         than the full sort ({} vs {})",
        early.counters.steps,
        full.counters.steps
    );
    trow.topk_steps = early.counters.steps;
    trow.full_steps = full.counters.steps;
    rows.push(trow);

    let batch = ColumnBatch::generate(n, seed);
    let order = client.order_by(&batch, "price").expect("typed order-by");
    assert_eq!(order.permutation.len(), n);
    rows.push(row("order-by price", n, 0, &order.report));

    let pct = client
        .submit_percentiles(&f32s, &[0.5, 0.99])
        .expect("typed percentiles");
    assert_eq!(pct.keys.len(), 2);
    rows.push(row("percentile p50/p99", n, 0, &pct.report));

    rows
}

/// Run the typed scenario at a small and a large size (the large one
/// capped by `max_log_n`); one shared calibration across every row.
pub fn typed_scenario(max_log_n: u32) -> Vec<TypedRow> {
    let client = TypedSortClient::new(ServiceConfig::default());
    let mut rows = typed_at(&client, 1 << 10);
    let large = max_log_n.clamp(11, 16);
    rows.extend(typed_at(&client, 1 << large));
    rows
}

/// Render the typed rows as a report table.
pub fn render_typed(rows: &[TypedRow]) -> String {
    let mut out =
        String::from("E24 — typed queries through the key-codec layer (simulated latency)\n");
    out.push_str(&format!(
        "{:>20} | {:>8} | {:>4} | {:>13} | {:>10} | {:>8} | {:>11} | {:>10}\n",
        "op", "n", "k", "engine", "sim [ms]", "distinct", "top-k steps", "full steps"
    ));
    for row in rows {
        let steps = |s: u64| {
            if s == 0 {
                "—".to_string()
            } else {
                s.to_string()
            }
        };
        out.push_str(&format!(
            "{:>20} | {:>8} | {:>4} | {:>13} | {:>10.3} | {:>8} | {:>11} | {:>10}\n",
            row.op,
            row.n,
            if row.k == 0 {
                "—".to_string()
            } else {
                row.k.to_string()
            },
            row.engine,
            row.sim_ms,
            row.distinct,
            steps(row.topk_steps),
            steps(row.full_steps),
        ));
    }
    out.push_str(
        "(top-k rows also run the stream sorter directly on the same input; the scenario \
         asserts the early-exit run takes strictly fewer kernel steps than the full sort)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_scenario_covers_every_op_and_wins_on_steps() {
        let rows = typed_scenario(11);
        assert_eq!(rows.len(), 10, "five ops at two sizes");
        for op in [
            "sort f32",
            "sort i64",
            "top-k f32",
            "order-by price",
            "percentile p50/p99",
        ] {
            assert_eq!(rows.iter().filter(|r| r.op == op).count(), 2, "{op}");
        }
        for row in &rows {
            assert!(row.sim_ms.is_finite() && row.sim_ms >= 0.0);
            assert!(row.distinct > 0);
            if row.op.starts_with("top-k") {
                assert!(row.topk_steps > 0 && row.topk_steps < row.full_steps);
            }
            if row.op.starts_with("percentile") {
                assert_eq!(row.engine, "cpu-quicksort");
            }
        }
        let rendered = render_typed(&rows);
        assert!(rendered.contains("typed queries"));
        assert!(rendered.contains("order-by price"));
    }
}
