//! E22 — networked soak (netsoak): drive the framed-TCP front-end over
//! loopback with N concurrent client threads and measure what the wire
//! adds on top of the in-process service — client-observed round-trip
//! latency percentiles, rejection rate under backpressure, and the
//! connection/frame accounting of the server.
//!
//! Unlike the simulated-time experiments, a soak measures real host
//! wall-clock behaviour (like E21): the numbers vary with the machine,
//! but the structural assertions hold everywhere — every submitted job is
//! answered (completed or typed-rejected, never dropped), and the
//! latency/rejection metrics are finite.

use crate::service::SCENARIO_SEED;
use serde::Serialize;
use sortsvc::metrics::ratio;
use sortsvc::net::{ClientConfig, JobReply, JobTicket, ServerConfig, SortClient};
use sortsvc::SortServer;
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};
use stream_arch::telemetry::{HistogramSummary, LogHistogram};
use workloads::RequestMix;

/// How many jobs one soak client keeps outstanding before reaping the
/// oldest — the pipelining window.
const PIPELINE_WINDOW: usize = 16;

/// Per-job reply deadline. Generous: a debug-mode CI runner sharing cores
/// with the server threads can take a while per micro-batch.
const REPLY_TIMEOUT: Duration = Duration::from_secs(60);

/// One netsoak result row.
#[derive(Clone, Debug, Serialize)]
pub struct NetSoakRow {
    /// Concurrent client threads.
    pub clients: usize,
    /// Jobs submitted across all clients.
    pub jobs: usize,
    /// Jobs answered with a `RESULT`.
    pub completed: usize,
    /// Jobs answered with a typed `REJECT`.
    pub rejected: usize,
    /// `rejected / jobs`.
    pub rejection_rate: f64,
    /// Client-observed median round-trip latency (wall ms; submit →
    /// reply, including client buffering and both wire directions).
    pub wire_p50_ms: f64,
    /// Client-observed 99th-percentile round-trip latency (wall ms).
    pub wire_p99_ms: f64,
    /// Client-observed mean round-trip latency (wall ms).
    pub wire_mean_ms: f64,
    /// Completed jobs per wall-clock second across the whole soak.
    pub throughput_jobs_per_s: f64,
    /// Connections the server accepted.
    pub connections: u64,
    /// Peak simultaneous connections.
    pub peak_connections: u64,
    /// Frames the server received.
    pub frames_received: u64,
    /// Frames the server sent.
    pub frames_sent: u64,
    /// Micro-batches the dispatcher ran.
    pub micro_batches: u64,
    /// Elements sorted (server-side, from the service metrics).
    pub elements_sorted: u64,
    /// Server-side simulated p99 latency (ms) — the service's own view of
    /// the same jobs, for comparison with the wire numbers.
    pub service_p99_ms: f64,
    /// Full distribution of the client-observed round trips (the stage
    /// the wire adds; source of `wire_p50_ms` / `wire_p99_ms`).
    pub wire: HistogramSummary,
    /// Server-side distribution of simulated queue/coalesce wait per job.
    pub queue: HistogramSummary,
    /// Server-side distribution of simulated execution time per job.
    pub execute: HistogramSummary,
}

/// What one client thread brings home. Latencies stream into a mergeable
/// histogram rather than a materialized vector, so a long soak's memory
/// is O(buckets) and the per-stage breakdown is exact-to-bucket.
struct ClientOutcome {
    wire: LogHistogram,
    completed: usize,
    rejected: usize,
}

/// Run the soak: `clients` threads, each submitting `jobs_per_client`
/// jobs from the seeded [`RequestMix::connection_driven`] mix over its
/// own loopback connection, pipelined `PIPELINE_WINDOW` (16) deep.
///
/// Panics if any job goes unanswered — a soak in which the server drops
/// work is a failed soak, not a slow one.
pub fn netsoak(clients: usize, jobs_per_client: usize) -> NetSoakRow {
    netsoak_with(ServerConfig::default(), clients, jobs_per_client)
}

/// [`netsoak`] with an explicit server configuration (the overload tests
/// shrink the queues to force typed rejects).
pub fn netsoak_with(config: ServerConfig, clients: usize, jobs_per_client: usize) -> NetSoakRow {
    let server = SortServer::start("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();

    let soak_started = Instant::now();
    let outcomes: Vec<ClientOutcome> = thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| scope.spawn(move || client_worker(addr, c as u32, jobs_per_client)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall_s = soak_started.elapsed().as_secs_f64();
    let stats = server.shutdown();

    // Merge the per-client wire histograms — associative and lossless, so
    // the merged quantiles equal one histogram over every round trip.
    let mut wire = LogHistogram::new();
    for o in &outcomes {
        wire.merge(&o.wire);
    }
    let completed: usize = outcomes.iter().map(|o| o.completed).sum();
    let rejected: usize = outcomes.iter().map(|o| o.rejected).sum();
    let jobs = clients * jobs_per_client;
    assert_eq!(
        completed + rejected,
        jobs,
        "every submitted job must be answered (completed or typed-rejected)"
    );

    NetSoakRow {
        clients,
        jobs,
        completed,
        rejected,
        rejection_rate: ratio(rejected as f64, jobs as f64),
        wire_p50_ms: wire.quantile(0.5),
        wire_p99_ms: wire.quantile(0.99),
        wire_mean_ms: wire.mean(),
        throughput_jobs_per_s: ratio(completed as f64, wall_s),
        connections: stats.connections_accepted,
        peak_connections: stats.peak_connections,
        frames_received: stats.frames_received,
        frames_sent: stats.frames_sent,
        micro_batches: stats.micro_batches,
        elements_sorted: stats.service.elements_sorted,
        service_p99_ms: stats.service.latency_p99_ms,
        wire: wire.summary(),
        queue: stats.service.queue_wait,
        execute: stats.service.execution,
    }
}

/// One soak client: submit the connection's request stream pipelined,
/// timing submit → reply per job.
fn client_worker(addr: SocketAddr, tenant: u32, jobs: usize) -> ClientOutcome {
    let requests =
        RequestMix::connection_driven(jobs).generate(SCENARIO_SEED ^ ((tenant as u64) << 32));
    let mut client = SortClient::connect_with(
        addr,
        ClientConfig {
            tenant,
            ..ClientConfig::default()
        },
    )
    .expect("connect to loopback server");

    let mut outcome = ClientOutcome {
        wire: LogHistogram::new(),
        completed: 0,
        rejected: 0,
    };
    let mut pending: VecDeque<(Instant, JobTicket)> = VecDeque::new();
    let reap = |pending: &mut VecDeque<(Instant, JobTicket)>, outcome: &mut ClientOutcome| {
        let (submitted, ticket) = pending.pop_front().expect("non-empty pipeline");
        let reply = ticket
            .wait_timeout(REPLY_TIMEOUT)
            .expect("job went unanswered");
        outcome.wire.record(submitted.elapsed().as_secs_f64() * 1e3);
        match reply {
            JobReply::Sorted(values) => {
                assert!(
                    values.windows(2).all(|w| w[0] <= w[1]),
                    "wire result must come back sorted"
                );
                outcome.completed += 1;
            }
            JobReply::Rejected { .. } => outcome.rejected += 1,
        }
    };

    for request in requests {
        let ticket = client.submit(request.values).expect("submit");
        pending.push_back((Instant::now(), ticket));
        if pending.len() >= PIPELINE_WINDOW {
            // The window is full: get the oldest reply on the wire and
            // wait for it before submitting more.
            client.flush().expect("flush");
            reap(&mut pending, &mut outcome);
        }
    }
    client.flush().expect("flush");
    while !pending.is_empty() {
        reap(&mut pending, &mut outcome);
    }
    outcome
}

/// Render the soak rows as a report table.
pub fn render_netsoak(rows: &[NetSoakRow]) -> String {
    let mut out =
        String::from("E22 — networked soak: concurrent TCP clients over loopback (wall clock)\n");
    out.push_str(&format!(
        "{:>7} | {:>5} | {:>9} | {:>8} | {:>9} | {:>9} | {:>9} | {:>8} | {:>7} | {:>12}\n",
        "clients",
        "jobs",
        "completed",
        "rejected",
        "p50 ms",
        "p99 ms",
        "jobs/s",
        "frames",
        "batches",
        "svc p99 ms"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>7} | {:>5} | {:>9} | {:>7.1}% | {:>9.2} | {:>9.2} | {:>9.1} | {:>8} | {:>7} | {:>12.2}\n",
            row.clients,
            row.jobs,
            row.completed,
            100.0 * row.rejection_rate,
            row.wire_p50_ms,
            row.wire_p99_ms,
            row.throughput_jobs_per_s,
            row.frames_received + row.frames_sent,
            row.micro_batches,
            row.service_p99_ms,
        ));
    }
    out.push_str(
        "(wire p50/p99 are client-observed round trips — wall clock, host dependent; \
         svc p99 is the server's simulated view of the same jobs)\n",
    );
    out.push_str("per-stage breakdown (streaming histograms; queue/execute are simulated ms):\n");
    for row in rows {
        out.push_str(&format!(
            "{:>7} clients | wire mean {:>8.2} p99 {:>8.2} | queue mean {:>8.2} p99 {:>8.2} | execute mean {:>8.2} p99 {:>8.2}\n",
            row.clients,
            row.wire.mean_ms,
            row.wire.p99_ms,
            row.queue.mean_ms,
            row.queue.p99_ms,
            row.execute.mean_ms,
            row.execute.p99_ms,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_soak_answers_every_job_with_finite_metrics() {
        // Small but genuinely concurrent: 2 clients × 8 jobs.
        let row = netsoak(2, 8);
        assert_eq!(row.clients, 2);
        assert_eq!(row.jobs, 16);
        assert_eq!(row.completed + row.rejected, 16);
        assert_eq!(row.connections, 2);
        assert!(row.wire_p50_ms.is_finite() && row.wire_p50_ms >= 0.0);
        assert!(row.wire_p99_ms.is_finite() && row.wire_p99_ms >= row.wire_p50_ms);
        assert!(row.rejection_rate.is_finite() && (0.0..=1.0).contains(&row.rejection_rate));
        assert!(row.frames_received >= 16); // ≥ one SUBMIT per job
        assert!(row.frames_sent >= 16); // ≥ one reply per job
        let rendered = render_netsoak(&[row]);
        assert!(rendered.contains("networked soak"));
    }
}
